"""Tests for the AMCAD model facade and variant factory."""

import numpy as np
import pytest

from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.models.amcad import AMCADConfig


class TestConfig:
    def test_default_signature_adaptive(self):
        cfg = AMCADConfig(num_subspaces=3)
        assert cfg.resolved_signature() == [None, None, None]

    def test_constant_signatures(self):
        assert AMCADConfig(space="euclidean").resolved_signature() == [0.0, 0.0]
        assert AMCADConfig(space="hyperbolic").resolved_signature() == [-1.0, -1.0]
        assert AMCADConfig(space="spherical").resolved_signature() == [1.0, 1.0]

    def test_explicit_signature(self):
        cfg = AMCADConfig(space="HS", num_subspaces=2)
        assert cfg.resolved_signature() == [-1.0, 1.0]

    def test_signature_with_unified_factor(self):
        cfg = AMCADConfig(space="HU", num_subspaces=2)
        assert cfg.resolved_signature() == [-1.0, None]

    def test_signature_length_mismatch(self):
        with pytest.raises(ValueError):
            AMCADConfig(space="HSE", num_subspaces=2).resolved_signature()

    def test_unknown_space(self):
        with pytest.raises(ValueError):
            AMCADConfig(space="dodecahedron").resolved_signature()


class TestFactory:
    @pytest.mark.parametrize("name,expected_kappas", [
        ("amcad_e", [0.0, 0.0]),
        ("amcad_h", [-1.0, -1.0]),
        ("amcad_s", [1.0, 1.0]),
    ])
    def test_constant_variants(self, train_graph, name, expected_kappas):
        model = make_model(name, train_graph, num_subspaces=2, subspace_dim=4)
        assert model.node_manifolds[NodeType.QUERY].kappas() == expected_kappas
        # frozen spaces expose no curvature parameters
        kappas = [f.kappa for f in model.node_manifolds[NodeType.QUERY].factors]
        assert not any(k.requires_grad for k in kappas)

    def test_full_amcad_has_trainable_curvatures(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=2,
                           subspace_dim=4)
        kappas = [f.kappa for f in model.node_manifolds[NodeType.QUERY].factors]
        assert all(k.requires_grad for k in kappas)
        # initialised spread across negative and positive curvature
        values = model.node_manifolds[NodeType.QUERY].kappas()
        assert values[0] < 0 < values[1]

    def test_amcad_u_single_wide_subspace(self, train_graph):
        model = make_model("amcad_u", train_graph, num_subspaces=2,
                           subspace_dim=4)
        manifold = model.node_manifolds[NodeType.QUERY]
        assert len(manifold) == 1
        assert manifold.factors[0].dim == 8  # 2 x 4 total budget

    def test_product_variant(self, train_graph):
        model = make_model("product:HS", train_graph, subspace_dim=4)
        assert model.node_manifolds[NodeType.QUERY].kappas() == [-1.0, 1.0]
        assert model.config.attention == "uniform"
        assert model.config.share_edge_space

    def test_hyperml_is_shallow(self, train_graph):
        model = make_model("hyperml", train_graph, subspace_dim=4)
        assert model.config.gcn_layers == 0
        assert not model.config.use_fusion

    def test_hgcn_single_hyperbolic(self, train_graph):
        model = make_model("hgcn", train_graph, num_subspaces=2,
                           subspace_dim=4)
        manifold = model.node_manifolds[NodeType.QUERY]
        assert len(manifold) == 1
        assert manifold.kappas()[0] == -1.0

    def test_gil_euclidean_hyperbolic(self, train_graph):
        model = make_model("gil", train_graph, subspace_dim=4)
        kappas = model.node_manifolds[NodeType.QUERY].kappas()
        assert kappas == [0.0, -1.0]

    def test_m2gnn_global_attention(self, train_graph):
        model = make_model("m2gnn", train_graph, num_subspaces=2,
                           subspace_dim=4)
        assert model.config.attention == "global"

    @pytest.mark.parametrize("name,check", [
        ("amcad-mixed", lambda m: len(m.node_manifolds[NodeType.QUERY]) == 1),
        ("amcad-curv", lambda m: m.node_manifolds[NodeType.QUERY].kappas()
         == [0.0, 0.0]),
        ("amcad-fusion", lambda m: not m.config.use_fusion),
        ("amcad-proj", lambda m: m.config.share_edge_space),
        ("amcad-comb", lambda m: m.config.attention == "uniform"),
    ])
    def test_ablation_variants(self, train_graph, name, check):
        assert check(make_model(name, train_graph, subspace_dim=4))

    def test_unknown_name_rejected(self, train_graph):
        with pytest.raises(ValueError):
            make_model("bert", train_graph)


class TestModelBehaviour:
    @pytest.fixture(scope="class")
    def model(self, train_graph):
        return make_model("amcad", train_graph, num_subspaces=2,
                          subspace_dim=4, seed=2)

    def test_similarity_between_zero_and_one(self, model, rng):
        src = np.array([0, 1, 2])
        dst = np.array([3, 4, 5])
        sim = model.similarity(Relation.Q2I, src, dst, rng)
        assert np.all(sim.data > 0) and np.all(sim.data < 1)

    def test_similarity_decreases_with_distance(self, model, rng):
        src = np.array([0] * 4)
        dst = np.array([1, 2, 3, 4])
        d = model.pair_distance(Relation.Q2I, src, dst,
                                np.random.default_rng(0)).data
        s = model.similarity(Relation.Q2I, src, dst,
                             np.random.default_rng(0)).data
        order_d = np.argsort(d)
        order_s = np.argsort(-s)
        assert np.array_equal(order_d, order_s)

    def test_curvature_report_keys(self, model):
        report = model.curvature_report()
        assert "node:query" in report
        assert any(k.startswith("edge:") for k in report)

    def test_constrain_clamps(self, model):
        factor = model.node_manifolds[NodeType.QUERY].factors[0]
        factor.kappa.data[...] = 99.0
        model.constrain()
        assert factor.kappa_value <= factor.kappa_bounds[1]
        factor.kappa.data[...] = -1.0  # restore

    def test_parameter_count_positive(self, model):
        params = list(model.parameters())
        assert len(params) > 20
        ids = set(map(id, params))
        assert len(ids) == len(params), "parameters() must not duplicate"
