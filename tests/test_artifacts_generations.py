"""Crash-safe generational artifacts: publish, verify, resolve, GC.

The store-level tests run over synthetic flat files (publishing does
not parse artifact contents); the pipeline-level tests share one tiny
end-to-end run and cover generation-bound reload, corruption detection
naming file + generation, hot swap, and the ``gc`` CLI.
"""

import json

import numpy as np
import pytest

from repro.pipeline import ArtifactStore, Pipeline, PipelineConfig
from repro.pipeline.artifacts import ArtifactCorruptionError
from repro.pipeline.cli import main as cli_main
from repro.testing.faults import FaultSpec, install, reset


@pytest.fixture(autouse=True)
def clean_injector():
    reset()
    yield
    reset()


def make_store(tmp_path, **contents):
    store = ArtifactStore(tmp_path / "art")
    defaults = {ArtifactStore.CONFIG: b'{"name": "t"}',
                ArtifactStore.INDICES: b"not-really-npz",
                ArtifactStore.MODEL: b"weights"}
    defaults.update(contents)
    for name, payload in defaults.items():
        store.path(name).write_bytes(payload)
    return store


class TestPublish:
    def test_publish_and_resolve(self, tmp_path):
        store = make_store(tmp_path)
        generation = store.publish_generation()
        assert generation == 1
        assert store.generations() == [1]
        assert store.latest_generation() == 1
        resolved = store.resolve(ArtifactStore.INDICES)
        assert resolved == store.generation_dir(1) / ArtifactStore.INDICES
        assert resolved.read_bytes() == b"not-really-npz"

    def test_manifest_checksums_every_file(self, tmp_path):
        store = make_store(tmp_path)
        store.publish_generation()
        manifest = store.load_manifest(1)
        files = manifest["files"]
        assert set(files) == {ArtifactStore.CONFIG, ArtifactStore.INDICES,
                              ArtifactStore.MODEL}
        for entry in files.values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0

    def test_checkpoint_never_published(self, tmp_path):
        store = make_store(tmp_path)
        store.path(ArtifactStore.CHECKPOINT).write_bytes(b"resume state")
        store.publish_generation()
        assert ArtifactStore.CHECKPOINT not in store.load_manifest(1)["files"]

    def test_generations_are_immutable_snapshots(self, tmp_path):
        store = make_store(tmp_path)
        store.publish_generation()
        store.path(ArtifactStore.MODEL).write_bytes(b"NEW weights")
        store.publish_generation()
        gen1 = store.generation_dir(1) / ArtifactStore.MODEL
        gen2 = store.generation_dir(2) / ArtifactStore.MODEL
        assert gen1.read_bytes() == b"weights"
        assert gen2.read_bytes() == b"NEW weights"

    def test_crashed_publish_leaves_no_generation(self, tmp_path):
        store = make_store(tmp_path)
        store.publish_generation()
        install(FaultSpec(site="artifacts.publish"))
        with pytest.raises(Exception):
            store.publish_generation()
        reset()
        assert store.generations() == [1]
        # ids never collide with the failed attempt and staging is gone
        assert store.publish_generation() == 2
        leftovers = [p.name for p in store.generations_root.iterdir()
                     if p.name.startswith(".staging")]
        assert leftovers == []

    def test_publish_requires_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path / "empty")
        with pytest.raises(FileNotFoundError, match="no artifacts"):
            store.publish_generation()


class TestVerify:
    def test_truncation_names_file_and_generation(self, tmp_path):
        store = make_store(tmp_path)
        store.publish_generation()
        target = store.generation_dir(1) / ArtifactStore.INDICES
        target.write_bytes(target.read_bytes()[: 4])
        with pytest.raises(ArtifactCorruptionError) as err:
            store.verify_generation(1)
        assert ArtifactStore.INDICES in str(err.value)
        assert "000001" in str(err.value)
        assert err.value.path == target
        assert err.value.generation == 1

    def test_bitflip_fails_checksum(self, tmp_path):
        store = make_store(tmp_path)
        store.publish_generation()
        target = store.generation_dir(1) / ArtifactStore.MODEL
        payload = bytearray(target.read_bytes())
        payload[0] ^= 0xFF
        target.write_bytes(bytes(payload))
        with pytest.raises(ArtifactCorruptionError, match="checksum"):
            store.verify_generation(1)

    def test_resolve_skips_corrupt_older_generations(self, tmp_path):
        store = make_store(tmp_path)
        store.publish_generation()
        store.publish_generation()
        # corrupt the *older* generation; latest still resolves cleanly
        (store.generation_dir(1) / ArtifactStore.MODEL).write_bytes(b"x")
        assert store.resolve(ArtifactStore.MODEL) == \
            store.generation_dir(2) / ArtifactStore.MODEL

    def test_resolve_explicit_missing_generation(self, tmp_path):
        store = make_store(tmp_path)
        store.publish_generation()
        with pytest.raises(FileNotFoundError, match="not published"):
            store.resolve(ArtifactStore.MODEL, generation=9)

    def test_resolve_flat_fallback(self, tmp_path):
        store = make_store(tmp_path)  # nothing published
        assert store.resolve(ArtifactStore.MODEL) == \
            store.path(ArtifactStore.MODEL)


class TestGC:
    def test_keeps_newest(self, tmp_path):
        store = make_store(tmp_path)
        for _ in range(4):
            store.publish_generation()
        removed = store.gc(keep=2)
        assert removed == [1, 2]
        assert store.generations() == [3, 4]

    def test_never_removes_live(self, tmp_path):
        store = make_store(tmp_path)
        for _ in range(3):
            store.publish_generation()
        removed = store.gc(keep=1, live=1)
        assert 1 not in removed
        assert 1 in store.generations()

    def test_keep_must_be_positive(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ValueError, match="keep"):
            store.gc(keep=0)

    def test_cli_gc(self, tmp_path, capsys):
        store = make_store(tmp_path)
        for _ in range(3):
            store.publish_generation()
        assert cli_main(["gc", "--artifacts", str(store.root),
                         "--keep", "1"]) == 0
        out = capsys.readouterr().out
        assert "removed 2 generation(s)" in out
        assert "live: 000003" in out
        assert store.generations() == [3]

    def test_cli_gc_empty(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "bare")
        assert cli_main(["gc", "--artifacts", str(store.root),
                         "--keep", "1"]) == 0
        assert "no published generations" in capsys.readouterr().out


TINY_GEN = {
    "name": "gen-tiny",
    "data": {
        "days": 2, "train_days": 1, "seed": 11,
        "simulator": {"num_queries": 120, "num_items": 180, "num_ads": 60,
                      "num_users": 90, "tree_depth": 3, "tree_branching": 2},
    },
    "model": {"name": "amcad", "num_subspaces": 2, "subspace_dim": 4},
    "training": {"steps": 6, "batch_size": 32},
    "index": {"top_k": 8},
    "serving": {"measure_requests": 0},
    "eval": {"enabled": False},
}


@pytest.fixture(scope="module")
def gen_pipeline(tmp_path_factory):
    artifact_dir = tmp_path_factory.mktemp("gen-artifacts")
    config = PipelineConfig.from_dict(json.loads(json.dumps(TINY_GEN)))
    pipeline = Pipeline(config, artifact_dir=str(artifact_dir))
    pipeline.run()
    return pipeline


class TestPipelineGenerations:
    def test_run_publishes_generation(self, gen_pipeline):
        assert gen_pipeline.serving_generation == 1
        store = gen_pipeline.store
        files = store.load_manifest(1)["files"]
        assert {ArtifactStore.CONFIG, ArtifactStore.MODEL,
                ArtifactStore.INDICES, ArtifactStore.REPORT} <= set(files)

    def test_from_artifacts_binds_latest_generation(self, gen_pipeline):
        reloaded = Pipeline.from_artifacts(gen_pipeline.store.root)
        assert reloaded.serving_generation == 1
        queries = [3, 14, 15]
        a = gen_pipeline.engine.serve(queries, k=5)
        b = reloaded.serve(queries, k=5)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.ads, rb.ads)

    def test_from_artifacts_explicit_generation(self, gen_pipeline):
        reloaded = Pipeline.from_artifacts(gen_pipeline.store.root,
                                           generation=1)
        assert reloaded.serving_generation == 1
        with pytest.raises(FileNotFoundError, match="no manifest"):
            Pipeline.from_artifacts(gen_pipeline.store.root, generation=7)

    def test_truncated_indices_reported_with_file_and_generation(
            self, gen_pipeline, tmp_path):
        # work on a copy so the shared fixture stays intact
        import shutil
        root = tmp_path / "corrupt"
        shutil.copytree(gen_pipeline.store.root, root)
        store = ArtifactStore(root, create=False)
        target = store.generation_dir(1) / ArtifactStore.INDICES
        target.write_bytes(target.read_bytes()[: 100])
        with pytest.raises(ArtifactCorruptionError) as err:
            Pipeline.from_artifacts(root)
        assert "indices.npz" in str(err.value)
        assert "000001" in str(err.value)

    def test_hot_swap_flips_engine_generation(self, gen_pipeline, tmp_path):
        import shutil
        root = tmp_path / "swap"
        shutil.copytree(gen_pipeline.store.root, root)
        pipeline = Pipeline.from_artifacts(root)
        engine = pipeline.engine
        before = engine.serve([3, 14], k=5)
        new_gen = pipeline.store.publish_generation()
        swapped = pipeline.hot_swap()
        assert swapped == new_gen == pipeline.serving_generation
        assert engine.generation == new_gen
        assert engine.stats.swaps == 1
        after = engine.serve([3, 14], k=5)
        for ra, rb in zip(before, after):
            np.testing.assert_array_equal(ra.ads, rb.ads)

    def test_hot_swap_without_generations(self, tmp_path):
        config = PipelineConfig.from_dict(json.loads(json.dumps(TINY_GEN)))
        pipeline = Pipeline(config, artifact_dir=str(tmp_path / "none"))
        with pytest.raises(FileNotFoundError, match="no published"):
            pipeline.hot_swap()

    def test_cli_serve_from_generation(self, gen_pipeline, capsys):
        assert cli_main(["serve", "--artifacts",
                         str(gen_pipeline.store.root),
                         "--generation", "1", "--queries", "3"]) == 0
        out = capsys.readouterr().out
        assert "serving generation 000001" in out
        assert "query 3" in out
