"""Tests for the serving subsystem: engine, LRU cache, queue model."""

import math

import numpy as np
import pytest

from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.serving import (
    EngineStats,
    LRUCache,
    ServingEngine,
    ServingSimulator,
    erlang_b,
    erlang_c_wait,
    percentiles,
)
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def retriever(train_graph):
    model = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                       seed=17)
    Trainer(model, TrainerConfig(steps=15, batch_size=32, seed=17)).train()
    return TwoLayerRetriever(IndexSet(model, top_k=15).build(),
                             expansion_k=4, ads_per_key=4)


@pytest.fixture
def traffic(rng):
    queries = rng.integers(100, size=20)
    preclicks = [list(rng.integers(40, size=2)) for _ in queries]
    return queries, preclicks


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")            # refresh a
        cache.put("c", 3)         # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None


class TestServingEngine:
    def test_results_match_direct_batch(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=6)
        served = engine.serve(queries, preclicks, k=8)
        direct = retriever.retrieve_batch(queries, preclicks, k=8)
        assert len(served) == len(direct)
        for a, b in zip(served, direct):
            assert np.array_equal(a.ads, b.ads)
            assert np.allclose(a.scores, b.scores)

    def test_micro_batch_accounting(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=8)
        engine.serve(queries, preclicks)
        assert engine.stats.requests == 20
        assert engine.stats.batches == 3
        assert engine.stats.batch_sizes == [8, 8, 4]
        assert engine.stats.mean_batch_size == pytest.approx(20 / 3)

    def test_cache_hits_on_repeat_traffic(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=8, cache_size=64)
        cold = engine.serve(queries, preclicks, k=6)
        assert engine.stats.cache_misses == 20
        warm = engine.serve(queries, preclicks, k=6)
        assert engine.stats.cache_hits == 20
        assert engine.stats.cache_hit_rate == pytest.approx(0.5)
        for a, b in zip(cold, warm):
            assert np.array_equal(a.ads, b.ads)
            assert np.allclose(a.scores, b.scores)

    def test_cache_disabled(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=8, cache_size=0)
        engine.serve(queries, preclicks)
        engine.serve(queries, preclicks)
        assert engine.stats.cache_hits == 0

    def test_per_worker_timing(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=4, num_workers=3)
        engine.serve(queries, preclicks)
        assert len(engine.stats.worker_busy_seconds) == 3
        assert all(t > 0 for t in engine.stats.worker_busy_seconds)
        assert engine.stats.service_seconds > 0
        assert engine.stats.throughput_rps > 0

    def test_submit_flush_cycle(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=3)
        out = []
        for query, items in zip(queries[:7], preclicks[:7]):
            out.extend(engine.submit(int(query), items, k=5))
        assert engine.pending_requests == 1     # 7 = 3 + 3 + 1 pending
        out.extend(engine.flush(k=5))
        assert engine.pending_requests == 0
        direct = retriever.retrieve_batch(queries[:7], preclicks[:7], k=5)
        assert len(out) == 7
        for a, b in zip(out, direct):
            assert np.array_equal(a.ads, b.ads)

    def test_flush_empty_is_noop(self, retriever):
        engine = ServingEngine(retriever)
        assert engine.flush() == []

    def test_length_mismatch_raises(self, retriever):
        engine = ServingEngine(retriever)
        with pytest.raises(ValueError):
            engine.serve([0, 1], [[2]])


class TestShardParallelServing:
    def test_sharded_results_match_unsharded(self, retriever, traffic):
        queries, preclicks = traffic
        plain = ServingEngine(retriever, max_batch_size=8)
        sharded = ServingEngine(retriever, max_batch_size=8, num_shards=3)
        a = plain.serve(queries, preclicks, k=6)
        b = sharded.serve(queries, preclicks, k=6)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x.ads, y.ads)
            assert np.allclose(x.scores, y.scores)

    def test_thread_pool_results_match_sequential(self, retriever, traffic):
        queries, preclicks = traffic
        sequential = ServingEngine(retriever, max_batch_size=10,
                                   num_shards=4, shard_parallelism=1)
        threaded = ServingEngine(retriever, max_batch_size=10,
                                 num_shards=4, shard_parallelism=3)
        a = sequential.serve(queries, preclicks, k=6)
        b = threaded.serve(queries, preclicks, k=6)
        threaded.close()
        for x, y in zip(a, b):
            assert np.array_equal(x.ads, y.ads)
            assert np.allclose(x.scores, y.scores)

    def test_stats_accounting_preserved(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=8, num_shards=3,
                               num_workers=4)
        engine.serve(queries, preclicks)
        stats = engine.stats
        assert stats.requests == 20
        assert stats.batches == 3                 # 8 + 8 + 4
        assert stats.batch_sizes == [8, 8, 4]
        # one wall-latency sample per micro-batch, each the max of its
        # shard slices, so it cannot exceed the total busy time
        assert len(stats.batch_wall_seconds) == 3
        assert stats.mean_batch_wall_seconds > 0
        assert sum(stats.batch_wall_seconds) <= \
            stats.total_busy_seconds + 1e-9
        assert stats.service_seconds > 0

    def test_cache_shared_across_shards(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=20, num_shards=4,
                               cache_size=64)
        engine.serve(queries, preclicks, k=6)
        assert engine.stats.cache_misses == 20
        engine.serve(queries, preclicks, k=6)
        assert engine.stats.cache_hits == 20

    def test_shards_capped_by_batch_size(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=2, num_shards=50)
        results = engine.serve(queries[:3], preclicks[:3], k=5)
        assert len(results) == 3
        assert engine.stats.requests == 3


class TestIdleStats:
    def test_idle_engine_rates_are_zero(self):
        """An engine that served nothing reports 0.0, not ZeroDivision."""
        stats = EngineStats()
        assert stats.service_seconds == 0.0
        assert stats.mean_batch_size == 0.0
        assert stats.cache_hit_rate == 0.0
        assert stats.throughput_rps == 0.0
        assert stats.mean_batch_wall_seconds == 0.0
        assert stats.latency_percentiles() == {"p50": 0.0, "p95": 0.0,
                                               "p99": 0.0}

    def test_fresh_engine_stats_are_idle(self, retriever):
        engine = ServingEngine(retriever)
        assert engine.stats.throughput_rps == 0.0
        assert engine.stats.cache_hit_rate == 0.0


class TestPercentiles:
    def test_empty_is_all_zero(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_known_values(self):
        result = percentiles([float(v) for v in range(1, 101)])
        assert result["p50"] == pytest.approx(50.5)
        assert result["p50"] <= result["p95"] <= result["p99"] <= 100.0


class TestRequestLatency:
    def test_serve_records_per_request_wall(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=8)
        engine.serve(queries, preclicks)
        assert len(engine.stats.request_wall_seconds) == 20
        assert all(t > 0 for t in engine.stats.request_wall_seconds)
        pcts = engine.stats.latency_percentiles()
        assert 0 < pcts["p50"] <= pcts["p95"] <= pcts["p99"]

    def test_submit_latency_includes_pending_wait(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=3)
        for query, items in zip(queries[:3], preclicks[:3]):
            engine.submit(int(query), items)
        samples = engine.stats.request_wall_seconds
        assert len(samples) == 3
        # within the batch, earlier submissions waited longer
        assert samples[0] >= samples[1] >= samples[2] > 0

    def test_serve_batch_returns_measured_wall(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=8)
        results, wall = engine.serve_batch(queries[:5], preclicks[:5], k=6)
        assert wall > 0
        assert wall == engine.stats.batch_wall_seconds[-1]
        direct = retriever.retrieve_batch(queries[:5], preclicks[:5], k=6)
        for a, b in zip(results, direct):
            assert np.array_equal(a.ads, b.ads)

    def test_serve_batch_length_mismatch_raises(self, retriever):
        engine = ServingEngine(retriever)
        with pytest.raises(ValueError):
            engine.serve_batch([0, 1], [[2]])


def _erlang_c_wait_factorial(arrival_rate, service_rate, servers):
    """The textbook formula the stable recursion must reproduce."""
    if arrival_rate <= 0:
        return 0.0
    utilisation = arrival_rate / (servers * service_rate)
    if utilisation >= 1.0:
        return float("inf")
    offered = arrival_rate / service_rate
    summation = sum(offered ** n / math.factorial(n) for n in range(servers))
    tail = offered ** servers / (math.factorial(servers)
                                 * (1.0 - utilisation))
    p_wait = tail / (summation + tail)
    return p_wait / (servers * service_rate - arrival_rate)


class TestErlang:
    def test_matches_factorial_formula_small_fleets(self):
        for servers in (1, 2, 4, 8, 16):
            for load in (0.2, 0.5, 0.9):
                lam = load * servers * 10.0
                assert erlang_c_wait(lam, 10.0, servers) == pytest.approx(
                    _erlang_c_wait_factorial(lam, 10.0, servers), rel=1e-10)

    def test_large_fleet_is_finite(self):
        # the factorial formula overflows beyond ~170 servers
        wait = erlang_c_wait(900.0, 1.0, 1000)
        assert 0.0 < wait < float("inf")

    def test_zero_load(self):
        assert erlang_c_wait(0.0, 10.0, 1000) == 0.0

    def test_unstable_is_infinite(self):
        assert erlang_c_wait(1001.0, 1.0, 1000) == float("inf")

    def test_wait_grows_with_load(self):
        waits = [erlang_c_wait(lam, 1.0, 1000) for lam in (500, 800, 990)]
        assert waits[0] < waits[1] < waits[2]

    def test_erlang_b_in_unit_interval(self):
        # tiny offered loads legitimately underflow to 0.0 blocking
        for offered in (0.5, 10.0, 500.0):
            for servers in (1, 100, 1000):
                assert 0.0 <= erlang_b(offered, servers) <= 1.0
        assert erlang_b(900.0, 1000) > 0.0


class TestSimulatorWithEngine:
    def test_batched_measurement_feeds_sweep(self, retriever, traffic):
        queries, preclicks = traffic
        engine = ServingEngine(retriever, max_batch_size=8, cache_size=64)
        sim = ServingSimulator(retriever, num_workers=16)
        service = sim.measure_batched_service_time(engine, queries,
                                                   preclicks, repeats=2)
        assert service > 0
        assert sim.service_seconds == service
        stats = sim.sweep([10, 100, 1000])
        times = [s.response_time_ms for s in stats]
        assert times[0] <= times[1] <= times[2]

    def test_injected_service_time_needs_no_retriever(self):
        sim = ServingSimulator(num_workers=1000, service_seconds=0.001)
        stats = sim.sweep([900000, 990000])   # 90% and 99% utilisation
        assert stats[0].response_time_ms < stats[1].response_time_ms
        assert sim.saturation_qps() == pytest.approx(1000 / 0.001)

    def test_measure_without_retriever_raises(self):
        sim = ServingSimulator()
        with pytest.raises(RuntimeError):
            sim.measure_service_time([0], [[1]])

    def test_legacy_import_path_still_works(self):
        from repro.retrieval.serving import (
            ServingSimulator as LegacySimulator,
            erlang_c_wait as legacy_wait,
        )
        assert LegacySimulator is ServingSimulator
        assert legacy_wait is erlang_c_wait
