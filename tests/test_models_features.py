"""Tests for feature embedding and the LRU feature-exit registry."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter
from repro.common import PAD
from repro.graph.schema import NodeType
from repro.models.features import FeatureEmbedding, LRUFeatureRegistry


@pytest.fixture
def embedding(rng):
    return FeatureEmbedding(
        NodeType.QUERY, {"id": 10, "category": 5, "terms": 20},
        feature_dim=4, num_subspaces=2, subspace_dim=6, rng=rng)


FEATURES = {
    "id": np.arange(10),
    "category": np.array([0, 1, 2, 3, 4] * 2),
    "terms": np.array([[1, 2, PAD], [3, PAD, PAD]] * 5),
}


class TestFeatureEmbedding:
    def test_output_shapes(self, embedding):
        out = embedding.forward(FEATURES, np.array([0, 3, 7]))
        assert len(out) == 2
        assert all(o.shape == (3, 6) for o in out)

    def test_subspaces_have_distinct_tables(self, embedding):
        out = embedding.forward(FEATURES, np.array([0, 1]))
        assert not np.allclose(out[0].data, out[1].data)

    def test_pad_slots_ignored(self, embedding):
        """A PAD slot must not contribute to the pooled term embedding."""
        feats_a = dict(FEATURES)
        feats_b = dict(FEATURES)
        feats_b["terms"] = FEATURES["terms"].copy()
        # change a PAD entry's underlying value: output must not move
        out_a = embedding.forward(feats_a, np.array([1]))[0].data.copy()
        table = embedding.tables[(0, "terms")]
        # row 0 of the table is arbitrary; perturb a row only referenced
        # through PAD-masked slots -> pick an unused term id
        table.data[19] += 100.0
        out_b = embedding.forward(feats_b, np.array([1]))[0].data
        assert np.allclose(out_a, out_b)

    def test_multislot_mean_pooling(self, rng):
        emb = FeatureEmbedding(NodeType.QUERY, {"terms": 5}, feature_dim=3,
                               num_subspaces=1, subspace_dim=3, rng=rng)
        feats = {"terms": np.array([[0, 1, PAD]])}
        out = emb.forward(feats, np.array([0]))[0]
        table = emb.tables[(0, "terms")].data
        manual = (table[0] + table[1]) / 2.0 @ emb.projections[0].data
        assert np.allclose(out.data[0], manual, atol=1e-12)

    def test_gradients_reach_tables(self, embedding):
        out = embedding.forward(FEATURES, np.array([0, 1, 2]))
        loss = ops.sum(out[0]) + ops.sum(out[1])
        loss.backward()
        grads = [t.grad for t in embedding.tables.values()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_parameters_enumerated(self, embedding):
        params = list(embedding.parameters())
        # 2 subspaces x 3 fields tables + 2 projections
        assert len(params) == 8


class TestLRURegistry:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            LRUFeatureRegistry(horizon_steps=0)

    def test_touch_and_evict_cycle(self):
        registry = LRUFeatureRegistry(horizon_steps=2, seed=0)
        table = Parameter(np.ones((6, 3)))
        registry.register(table)
        registry.touch(table, np.array([0, 1, 2]))
        registry.advance()
        registry.touch(table, np.array([0]))
        registry.advance()
        registry.touch(table, np.array([0]))
        registry.advance()
        evicted = registry.evict_stale()
        assert evicted == 2            # rows 1 and 2 went stale
        assert np.allclose(table.data[0], 1.0)   # row 0 kept
        assert not np.allclose(table.data[1], 1.0)  # re-initialised

    def test_never_seen_rows_untouched(self):
        registry = LRUFeatureRegistry(horizon_steps=1, seed=0)
        table = Parameter(np.ones((4, 2)))
        registry.register(table)
        registry.touch(table, np.array([0]))
        for _ in range(5):
            registry.advance()
        registry.evict_stale()
        # rows never seen keep their initial values
        assert np.allclose(table.data[2], 1.0)
        assert np.allclose(table.data[3], 1.0)

    def test_pad_ids_ignored(self):
        registry = LRUFeatureRegistry(horizon_steps=1)
        table = Parameter(np.ones((4, 2)))
        registry.touch(table, np.array([PAD, 1]))
        assert registry.active_rows == 1

    def test_active_rows_counts(self):
        registry = LRUFeatureRegistry(horizon_steps=3)
        t1 = Parameter(np.ones((5, 2)))
        t2 = Parameter(np.ones((5, 2)))
        registry.touch(t1, np.array([0, 1]))
        registry.touch(t2, np.array([2]))
        assert registry.active_rows == 3

    def test_eviction_resets_last_seen(self):
        registry = LRUFeatureRegistry(horizon_steps=1, seed=0)
        table = Parameter(np.ones((3, 2)))
        registry.touch(table, np.array([0]))
        registry.advance(5)
        assert registry.evict_stale() == 1
        assert registry.evict_stale() == 0  # not evicted twice
