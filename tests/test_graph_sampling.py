"""Tests for hard/easy negative sampling."""

import numpy as np
import pytest

from repro.graph import MetaPathWalker, NegativeSampler, NodeType
from repro.graph.metapath import PositivePair
from repro.graph.schema import NodeRef, Relation


@pytest.fixture(scope="module")
def sampler(train_graph):
    return NegativeSampler(train_graph, num_negatives=6, seed=0)


@pytest.fixture(scope="module")
def pairs(train_graph):
    walker = MetaPathWalker(train_graph)
    return walker.sample_pairs(np.random.default_rng(5), 400)


class TestNegativeSampler:
    def test_rejects_zero_negatives(self, train_graph):
        with pytest.raises(ValueError):
            NegativeSampler(train_graph, num_negatives=0)

    def test_rejects_easy_ratio_out_of_range(self, train_graph):
        with pytest.raises(ValueError, match="easy_ratio"):
            NegativeSampler(train_graph, easy_ratio=1.5)
        with pytest.raises(ValueError, match="easy_ratio"):
            NegativeSampler(train_graph, easy_ratio=-0.1)

    def test_rejects_non_finite_degree_smoothing(self, train_graph):
        with pytest.raises(ValueError, match="degree_smoothing"):
            NegativeSampler(train_graph, degree_smoothing=float("nan"))
        with pytest.raises(ValueError, match="degree_smoothing"):
            NegativeSampler(train_graph, degree_smoothing=float("inf"))

    def test_sample_count_and_type(self, sampler, pairs, rng):
        for pair in pairs[:30]:
            sample = sampler.sample(rng, pair)
            assert len(sample.negatives) == 6
            assert all(n.node_type == pair.target.node_type
                       for n in sample.negatives)

    def test_negatives_exclude_positive(self, sampler, pairs, rng):
        for pair in pairs[:50]:
            sample = sampler.sample(rng, pair)
            assert pair.target not in sample.negatives

    def test_hard_easy_split(self, sampler, train_graph, pairs, rng):
        """About 1/3 of negatives share the positive's category (hard)."""
        hard, total = 0, 0
        for pair in pairs:
            sample = sampler.sample(rng, pair)
            pos_cat = int(train_graph.categories[pair.target.node_type]
                          [pair.target.index])
            for neg in sample.negatives:
                neg_cat = int(train_graph.categories[neg.node_type][neg.index])
                if neg_cat == pos_cat:
                    hard += 1
                total += 1
        ratio = hard / total
        assert 0.15 < ratio < 0.55, "expected roughly 1/3 hard negatives"

    def test_relation_preserved(self, sampler, pairs, rng):
        sample = sampler.sample(rng, pairs[0])
        assert sample.relation == pairs[0].relation
        assert sample.source == pairs[0].source
        assert sample.positive == pairs[0].target

    def test_batch_form(self, sampler, pairs, rng):
        batch = sampler.sample_batch(rng, pairs[:10])
        assert len(batch) == 10

    def test_easy_ratio_extremes(self, train_graph, pairs, rng):
        all_easy = NegativeSampler(train_graph, num_negatives=4,
                                   easy_ratio=1.0)
        all_hard = NegativeSampler(train_graph, num_negatives=4,
                                   easy_ratio=0.0)
        pair = pairs[0]
        pos_cat = int(train_graph.categories[pair.target.node_type]
                      [pair.target.index])
        easy_sample = all_easy.sample(rng, pair)
        for neg in easy_sample.negatives:
            assert int(train_graph.categories[neg.node_type][neg.index]) != pos_cat
        hard_sample = all_hard.sample(rng, pair)
        same_cat = [n for n in hard_sample.negatives
                    if int(train_graph.categories[n.node_type][n.index]) == pos_cat]
        # hard sampling may fall back to easy when the category is tiny,
        # but with a populated category most should match
        assert len(same_cat) >= 2

    def test_degree_weighting_prefers_popular(self, train_graph, rng):
        sampler = NegativeSampler(train_graph, num_negatives=6,
                                  easy_ratio=1.0, degree_smoothing=1.0)
        degree = train_graph.degree(NodeType.ITEM)
        pair = PositivePair(NodeRef(NodeType.QUERY, 0),
                            NodeRef(NodeType.ITEM, 0), Relation.Q2I)
        drawn = []
        for _ in range(200):
            drawn.extend(n.index for n in sampler.sample(rng, pair).negatives)
        mean_deg = degree[drawn].mean()
        assert mean_deg > degree.mean(), \
            "degree-weighted negatives should be more popular than average"
