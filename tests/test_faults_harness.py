"""The fault-injection harness and the crash-safe write helpers.

Covers the PR-8 contracts:

- :class:`FaultSpec` validation and dict round-trips (specs ride
  through pipeline config and into spawned workers);
- firing semantics: warm-up (``after``), budgets (``max_fires``),
  context ``match``, and seed-deterministic ``rate`` draws;
- the mode table: raise / hang / slow / torn;
- the atomic-write helpers — and the regression that a write torn
  mid-way never damages the destination file.
"""

import os

import numpy as np
import pytest

from repro.common import (
    atomic_savez,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    file_sha256,
)
from repro.testing.faults import (
    FaultSpec,
    InjectedFault,
    InjectedTimeout,
    active_specs,
    fault_point,
    fires,
    install,
    install_plan,
    reset,
)


@pytest.fixture(autouse=True)
def clean_injector():
    reset()
    yield
    reset()


class TestFaultSpec:
    def test_roundtrip(self):
        spec = FaultSpec(site="shard.search", mode="hang", rate=0.5,
                         after=2, max_fires=3, delay=0.01,
                         match={"shard": 1}, seed=7)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            FaultSpec.from_dict({"site": "x", "mdoe": "raise"})

    @pytest.mark.parametrize("bad", [
        {"site": ""},
        {"site": "x", "mode": "explode"},
        {"site": "x", "rate": 0.0},
        {"site": "x", "rate": 1.5},
        {"site": "x", "after": -1},
        {"site": "x", "max_fires": 0},
        {"site": "x", "delay": -0.1},
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSpec(**bad)


class TestFiring:
    def test_noop_without_plan(self):
        fault_point("shard.search", shard=0)  # must not raise

    def test_raise_mode_carries_site_and_context(self):
        install(FaultSpec(site="shard.search"))
        with pytest.raises(InjectedFault) as err:
            fault_point("shard.search", shard=3)
        assert err.value.site == "shard.search"
        assert err.value.context == {"shard": 3}
        assert not err.value.torn

    def test_other_sites_untouched(self):
        install(FaultSpec(site="shard.search"))
        fault_point("engine.slice", slice=0)  # different site: no-op

    def test_match_restricts_to_context(self):
        install(FaultSpec(site="shard.search", match={"shard": 2}))
        fault_point("shard.search", shard=0)
        fault_point("shard.search", shard=1)
        with pytest.raises(InjectedFault):
            fault_point("shard.search", shard=2)
        assert fires("shard.search") == 1

    def test_after_warmup(self):
        install(FaultSpec(site="s", after=2))
        fault_point("s")
        fault_point("s")
        with pytest.raises(InjectedFault):
            fault_point("s")

    def test_max_fires_budget(self):
        install(FaultSpec(site="s", max_fires=2))
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fault_point("s")
        fault_point("s")  # budget spent: back to a no-op
        assert fires() == 2

    def test_rate_is_seed_deterministic(self):
        def pattern(seed):
            install_plan([FaultSpec(site="s", rate=0.4, seed=seed)])
            hits = []
            for _ in range(50):
                try:
                    fault_point("s")
                    hits.append(False)
                except InjectedFault:
                    hits.append(True)
            reset()
            return hits

        first = pattern(seed=5)
        assert pattern(seed=5) == first
        assert 0 < sum(first) < 50
        assert pattern(seed=6) != first

    def test_hang_raises_injected_timeout(self):
        install(FaultSpec(site="s", mode="hang", delay=0.0))
        with pytest.raises(InjectedTimeout):
            fault_point("s")

    def test_slow_continues(self):
        install(FaultSpec(site="s", mode="slow", delay=0.0))
        fault_point("s")  # sleeps, then returns normally
        assert fires() == 1

    def test_install_plan_replaces_and_reset_clears(self):
        install(FaultSpec(site="a"))
        install_plan([FaultSpec(site="b")])
        assert [spec.site for spec in active_specs()] == ["b"]
        reset()
        assert active_specs() == []
        fault_point("b")  # cleared: no-op


class TestAtomicWrites:
    def test_text_and_bytes(self, tmp_path):
        path = tmp_path / "note.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"
        atomic_write_bytes(path, b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_savez_roundtrip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        atomic_savez(path, {"a": np.arange(5), "b": np.eye(2)})
        with np.load(path) as data:
            np.testing.assert_array_equal(data["a"], np.arange(5))
            np.testing.assert_array_equal(data["b"], np.eye(2))

    def test_no_temp_files_left(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"x" * 1024)
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_failed_write_leaves_destination_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "original")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_writer(path, "w") as handle:
                handle.write("partial garbage")
                raise RuntimeError("simulated crash mid-write")
        assert path.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_torn_fault_regression(self, tmp_path):
        """A write torn mid-way must never damage the old file.

        The ``torn`` fault truncates the staged temp file and raises
        before the rename — exactly a crash between write and publish.
        The destination must still carry the previous bytes.
        """
        path = tmp_path / "model.npz"
        atomic_savez(path, {"w": np.arange(64, dtype=np.float64)})
        before = file_sha256(path)
        install(FaultSpec(site="io.atomic_write", mode="torn"))
        with pytest.raises(InjectedFault) as err:
            atomic_savez(path, {"w": np.zeros(64)})
        assert err.value.torn
        reset()
        assert file_sha256(path) == before
        with np.load(path) as data:
            np.testing.assert_array_equal(data["w"],
                                          np.arange(64, dtype=np.float64))

    def test_stale_tmp_swept_on_next_write(self, tmp_path):
        path = tmp_path / "out.txt"
        stale = tmp_path / (path.name + ".tmp-deadbeef")
        stale.write_text("leftover from a crash")
        atomic_write_text(path, "fresh")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]
