"""Tests for the shared benchmark harness."""

import numpy as np
import pytest

import repro.bench as bench


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench.bench_scale() == 1.0
        assert bench.scaled_steps(100) == 100

    def test_scale_env_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench.scaled_steps(100) == 50

    def test_scaled_steps_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        assert bench.scaled_steps(100) == 10


class TestDataset:
    def test_load_dataset_cached(self):
        a = bench.load_dataset()
        b = bench.load_dataset()
        assert a is b

    def test_dataset_fields(self):
        data = bench.load_dataset()
        assert data.train_graph.num_edges() > 0
        assert data.next_graph.num_edges() > 0
        assert data.truth_items
        assert data.truth_ads
        assert data.universe is data.simulator.universe


class TestReports:
    def test_write_report_creates_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
        path = bench.write_report("x.txt", "title", ["line one", "line two"])
        assert path.exists()
        text = path.read_text()
        assert "title" in text
        assert "line two" in text


class TestPipelines:
    def test_run_skipgram_baseline_small(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        data = bench.load_dataset()
        result = bench.run_skipgram_baseline("deepwalk", data,
                                             num_pairs=4000)
        assert np.isfinite(result.next_auc)
        assert "hr@10" in result.q2i
        assert result.train_seconds > 0
        assert "deepwalk" in result.row()

    def test_run_geometric_model_small(self):
        data = bench.load_dataset()
        result = bench.run_geometric_model("amcad_e", data, steps=12)
        assert np.isfinite(result.next_auc)
        assert result.q2a["hr@100"] >= 0
