"""Tests for the heterogeneous graph store."""

import numpy as np
import pytest

from repro.graph import EdgeType, HetGraph, NodeType
from repro.graph.category import CategoryTree


@pytest.fixture
def graph():
    tree = CategoryTree.balanced(1, 2)  # leaves 1, 2
    num = {NodeType.QUERY: 4, NodeType.ITEM: 5, NodeType.AD: 3}
    cats = {
        NodeType.QUERY: np.array([1, 1, 2, 2]),
        NodeType.ITEM: np.array([1, 1, 1, 2, 2]),
        NodeType.AD: np.array([1, 2, 2]),
    }
    feats = {t: {"id": np.arange(num[t])} for t in NodeType}
    g = HetGraph(num, cats, feats, tree)
    g.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                np.array([0, 0, 1, 2]), np.array([0, 1, 1, 3]),
                np.array([2.0, 1.0, 1.0, 1.0]), symmetric=True)
    g.add_edges(NodeType.ITEM, EdgeType.CO_CLICK, NodeType.ITEM,
                np.array([0, 1]), np.array([1, 2]), symmetric=True)
    return g


class TestConstruction:
    def test_category_shape_validated(self):
        tree = CategoryTree.balanced(1, 2)
        with pytest.raises(ValueError):
            HetGraph({NodeType.QUERY: 3, NodeType.ITEM: 0, NodeType.AD: 0},
                     {NodeType.QUERY: np.array([1])}, {}, tree)

    def test_out_of_range_edges_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                            np.array([0]), np.array([99]))

    def test_size_mismatch_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                            np.array([0, 1]), np.array([0]))

    def test_duplicate_edges_coalesce_weights(self):
        tree = CategoryTree.balanced(1, 2)
        num = {NodeType.QUERY: 2, NodeType.ITEM: 2, NodeType.AD: 0}
        cats = {NodeType.QUERY: np.array([1, 1]),
                NodeType.ITEM: np.array([1, 2]),
                NodeType.AD: np.empty(0, dtype=int)}
        g = HetGraph(num, cats, {}, tree)
        g.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                    np.array([0, 0]), np.array([1, 1]))
        ids, weights, _types = g.neighbors(NodeType.QUERY, 0)
        assert ids.tolist() == [1]
        assert weights.tolist() == [2.0]

    def test_incremental_add_merges_with_existing(self):
        tree = CategoryTree.balanced(1, 2)
        num = {NodeType.QUERY: 2, NodeType.ITEM: 2, NodeType.AD: 0}
        cats = {NodeType.QUERY: np.array([1, 1]),
                NodeType.ITEM: np.array([1, 2]),
                NodeType.AD: np.empty(0, dtype=int)}
        g = HetGraph(num, cats, {}, tree)
        g.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                    np.array([0]), np.array([1]))
        g.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                    np.array([0]), np.array([1]), np.array([3.0]))
        __, weights, __types = g.neighbors(NodeType.QUERY, 0)
        assert weights.tolist() == [4.0]


class TestAccess:
    def test_num_edges_filters(self, graph):
        assert graph.num_edges() == 4 + 4 + 2 + 2
        assert graph.num_edges(src_type=NodeType.QUERY) == 4
        assert graph.num_edges(edge_type=EdgeType.CO_CLICK) == 4
        assert graph.num_edges(src_type=NodeType.ITEM,
                               edge_type=EdgeType.CLICK) == 4

    def test_neighbors_with_weights(self, graph):
        ids, weights, types = graph.neighbors(NodeType.QUERY, 0)
        assert sorted(ids.tolist()) == [0, 1]
        assert sorted(weights.tolist()) == [1.0, 2.0]
        assert all(t == NodeType.ITEM for t in types)

    def test_neighbors_empty(self, graph):
        ids, weights, types = graph.neighbors(NodeType.QUERY, 3)
        assert ids.size == 0

    def test_degree(self, graph):
        degree = graph.degree(NodeType.QUERY)
        assert degree.tolist() == [2, 1, 1, 0]

    def test_degree_filtered_by_target(self, graph):
        degree = graph.degree(NodeType.ITEM, dst_type=NodeType.QUERY)
        assert degree[0] == 1  # item0 <- query0 click reverse

    def test_stats(self, graph):
        stats = graph.stats()
        assert stats["queries"] == 4
        assert stats["items"] == 5
        assert stats["ads"] == 3
        assert stats["edges"] == graph.num_edges()


class TestSampling:
    def test_sample_neighbors_shapes_and_mask(self, graph):
        rng = np.random.default_rng(0)
        ids, mask = graph.sample_neighbors(rng, NodeType.QUERY,
                                           np.array([0, 3]), NodeType.ITEM, 4)
        assert ids.shape == (2, 4)
        assert mask[0].sum() == 4      # query0 has item neighbours
        assert mask[1].sum() == 0      # query3 is isolated

    def test_sampled_ids_are_real_neighbors(self, graph):
        rng = np.random.default_rng(1)
        ids, mask = graph.sample_neighbors(rng, NodeType.QUERY,
                                           np.array([0]), NodeType.ITEM, 20)
        valid = set(graph.neighbors(NodeType.QUERY, 0,
                                    dst_type=NodeType.ITEM)[0].tolist())
        assert set(ids[0].tolist()) <= valid

    def test_zero_weight_rows_are_masked_out(self):
        tree = CategoryTree.balanced(1, 2)
        num = {NodeType.QUERY: 2, NodeType.ITEM: 2, NodeType.AD: 0}
        cats = {NodeType.QUERY: np.array([1, 1]),
                NodeType.ITEM: np.array([1, 2]),
                NodeType.AD: np.empty(0, dtype=np.int64)}
        feats = {t: {"id": np.arange(num[t])} for t in (NodeType.QUERY,
                                                        NodeType.ITEM)}
        g = HetGraph(num, cats, feats, tree)
        g.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                    np.array([0, 1]), np.array([0, 1]),
                    np.array([0.0, 1.0]))
        ids, mask = g.sample_neighbors(np.random.default_rng(0),
                                       NodeType.QUERY, np.array([0, 1]),
                                       NodeType.ITEM, 3)
        # query 0's only edge has weight 0 -> no samplable neighbour
        assert mask[0].sum() == 0
        assert mask[1].sum() == 3

    def test_weighted_sampling_prefers_heavy_edges(self, graph):
        rng = np.random.default_rng(2)
        ids, __ = graph.sample_neighbors(rng, NodeType.QUERY,
                                         np.array([0] * 200), NodeType.ITEM, 1)
        counts = np.bincount(ids.ravel(), minlength=2)
        # edge weights are 2:1 for items 0 and 1
        assert counts[0] > counts[1]

    def test_nodes_in_category(self, graph):
        items_cat1 = graph.nodes_in_category(NodeType.ITEM, 1)
        assert sorted(items_cat1.tolist()) == [0, 1, 2]
        assert graph.nodes_in_category(NodeType.ITEM, 999).size == 0
