"""Tests for meta-path walks and positive-pair extraction."""

import numpy as np
import pytest

from repro.graph import (
    MetaPath,
    MetaPathWalker,
    NodeType,
    Relation,
    TABLE_III_META_PATHS,
)
from repro.graph.schema import EdgeType, NodeRef, relation_of


class TestSchemaHelpers:
    def test_relation_of(self):
        assert relation_of(NodeType.QUERY, NodeType.ITEM) == Relation.Q2I
        assert relation_of(NodeType.ITEM, NodeType.AD) == Relation.I2A

    def test_relation_types(self):
        assert Relation.Q2A.source_type == NodeType.QUERY
        assert Relation.Q2A.target_type == NodeType.AD

    def test_ad_sourced_relation_rejected(self):
        with pytest.raises(ValueError):
            relation_of(NodeType.AD, NodeType.QUERY)

    def test_node_ref_str(self):
        assert str(NodeRef(NodeType.QUERY, 3)) == "q:3"


class TestTableIII:
    def test_six_meta_paths(self):
        assert len(TABLE_III_META_PATHS) == 6

    def test_start_types(self):
        starts = [p.start for p in TABLE_III_META_PATHS]
        assert starts.count(NodeType.QUERY) == 3
        assert starts.count(NodeType.ITEM) == 3

    def test_all_length_two(self):
        assert all(p.length == 2 for p in TABLE_III_META_PATHS)


class TestWalker:
    @pytest.fixture(scope="class")
    def walker(self, train_graph):
        return MetaPathWalker(train_graph)

    def test_walk_follows_types(self, walker, rng):
        path = TABLE_III_META_PATHS[1]  # q -click-> i -co_click-> i
        for _ in range(20):
            trail = walker.walk(rng, path)
            if trail is None:
                continue
            assert trail[0].node_type == NodeType.QUERY
            assert trail[1].node_type == NodeType.ITEM
            assert trail[2].node_type == NodeType.ITEM
            return
        pytest.skip("graph too sparse for this meta-path")

    def test_walk_steps_are_edges(self, walker, train_graph, rng):
        path = TABLE_III_META_PATHS[1]
        trail = None
        for _ in range(50):
            trail = walker.walk(rng, path)
            if trail is not None:
                break
        assert trail is not None
        for (step, (edge_type, dst_type)) in zip(
                range(len(trail) - 1), path.steps):
            src = trail[step]
            dst = trail[step + 1]
            ids, __w, __t = train_graph.neighbors(
                src.node_type, src.index, edge_type=edge_type,
                dst_type=dst_type)
            assert dst.index in ids.tolist()

    def test_pairs_have_correct_relations(self, walker, rng):
        pairs = walker.sample_pairs(rng, 200)
        assert pairs
        for pair in pairs:
            assert pair.relation == relation_of(pair.source.node_type,
                                                pair.target.node_type)

    def test_pairs_share_category(self, walker, train_graph, rng):
        tree = train_graph.category_tree
        pairs = walker.sample_pairs(rng, 200)
        for pair in pairs:
            cat_s = int(train_graph.categories[pair.source.node_type]
                        [pair.source.index])
            cat_t = int(train_graph.categories[pair.target.node_type]
                        [pair.target.index])
            lca = tree.lowest_common_ancestor(cat_s, cat_t)
            assert lca in (cat_s, cat_t)

    def test_category_constraint_can_be_disabled(self, train_graph, rng):
        walker = MetaPathWalker(train_graph, enforce_category=False)
        pairs = walker.sample_pairs(rng, 100)
        assert pairs  # may include cross-category pairs; just runs

    def test_iter_pairs_is_endless(self, walker, rng):
        stream = walker.iter_pairs(rng)
        collected = [next(stream) for _ in range(300)]
        assert len(collected) == 300

    def test_unreachable_metapath_returns_none(self, train_graph, rng):
        # a meta-path needing ad->ad co_click, which the builder never makes
        impossible = MetaPath("bad", NodeType.AD,
                              ((EdgeType.CO_CLICK, NodeType.AD),
                               (EdgeType.CO_CLICK, NodeType.AD)))
        walker = MetaPathWalker(train_graph, meta_paths=[impossible])
        results = [walker.walk(rng, impossible) for _ in range(10)]
        # either no start pool or dead-ends quickly; never crashes
        assert all(r is None or len(r) == 3 for r in results)

    def test_pair_relations_cover_all_six(self, walker, rng):
        pairs = walker.sample_pairs(rng, 3000)
        relations = {p.relation for p in pairs}
        assert len(relations) >= 5  # sparse graphs may miss one
