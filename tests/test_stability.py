"""Failure-injection / numerical-stability tests (paper §V-B).

The paper dedicates a section to curved-training instabilities:
out-of-boundary points, exploding/vanishing gradients near the steep
zones of exp/log maps.  These tests drive the implementation into those
zones on purpose and assert it stays finite.
"""

import numpy as np
import pytest

from repro.autodiff import Parameter, Tensor, ops
from repro.geometry import Hyperbolic, Spherical, UnifiedManifold
from repro.geometry import stereographic as stereo
from repro.models import make_model
from repro.training import Trainer, TrainerConfig


class TestBoundaryStability:
    def test_distance_near_ball_boundary_is_finite(self):
        kappa = -1.0
        x = Tensor(np.array([[0.999, 0.0]]))
        y = Tensor(np.array([[-0.999, 0.0]]))
        d = stereo.dist_k(x, y, kappa)
        assert np.isfinite(d.data).all()

    def test_gradient_near_boundary_is_finite(self):
        x = Parameter(np.array([[0.9995, 0.0]]))
        y = Parameter(np.array([[-0.9995, 0.0]]))
        out = ops.sum(stereo.dist_k(x, y, -1.0))
        out.backward()
        assert np.isfinite(x.grad).all()
        assert np.isfinite(y.grad).all()

    def test_expmap_of_huge_tangent_is_finite(self):
        for kappa in (-1.0, 1.0):
            v = Tensor(np.full((2, 3), 1e6))
            out = stereo.expmap0(v, kappa)
            assert np.isfinite(out.data).all()

    def test_project_pulls_point_inside(self):
        m = Hyperbolic(3)
        outside = Tensor(np.array([[10.0, 0.0, 0.0]]))
        back = m.project(outside)
        assert np.linalg.norm(back.data) < 1.0

    def test_logmap_of_projected_boundary_point_finite(self):
        m = Hyperbolic(3)
        near = m.project(Tensor(np.array([[5.0, 5.0, 5.0]])))
        out = m.logmap0(near)
        assert np.isfinite(out.data).all()

    def test_spherical_distance_large_coordinates(self):
        m = Spherical(3)
        x = Tensor(np.array([[100.0, 0.0, 0.0]]))
        y = Tensor(np.array([[0.0, 100.0, 0.0]]))
        d = m.dist(x, y)
        assert np.isfinite(d.data).all()


class TestTrainingStability:
    def test_high_learning_rate_stays_finite(self, train_graph):
        """Clipping + warm-up + projection keep an aggressive run alive."""
        model = make_model("amcad", train_graph, num_subspaces=2,
                           subspace_dim=4, seed=0)
        trainer = Trainer(model, TrainerConfig(
            steps=20, batch_size=32, learning_rate=1.0, warmup_steps=5,
            clip_norm=5.0, seed=0))
        report = trainer.train()
        assert np.isfinite(report.losses).all()
        for p in model.parameters():
            assert np.isfinite(p.data).all()

    def test_curvatures_clamped_after_aggressive_run(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=2,
                           subspace_dim=4, seed=1)
        Trainer(model, TrainerConfig(steps=10, batch_size=32,
                                     learning_rate=2.0, seed=1)).train()
        for manifold in model.node_manifolds.values():
            for factor in manifold.factors:
                lo, hi = factor.kappa_bounds
                assert lo <= factor.kappa_value <= hi

    def test_regularizer_bounds_embedding_norms(self, train_graph):
        """With strong regularisation, embeddings stay near the origin."""
        model = make_model("amcad", train_graph, num_subspaces=2,
                          subspace_dim=4, seed=2, regularization=0.5)
        Trainer(model, TrainerConfig(steps=25, batch_size=32,
                                     learning_rate=0.1, seed=2)).train()
        from repro.graph.schema import NodeType
        arrays = model.embed_all(NodeType.QUERY)
        norms = np.concatenate([np.linalg.norm(a, axis=-1) for a in arrays])
        assert np.isfinite(norms).all()
        assert norms.mean() < 2.0


class TestDegenerateInputs:
    def test_encode_isolated_nodes(self, train_graph, rng):
        """Nodes with no neighbours still encode (zero aggregation)."""
        model = make_model("amcad", train_graph, num_subspaces=2,
                           subspace_dim=4, seed=3)
        from repro.graph.schema import NodeType
        degree = train_graph.degree(NodeType.QUERY)
        isolated = np.flatnonzero(degree == 0)
        if isolated.size == 0:
            pytest.skip("no isolated queries in fixture graph")
        points = model.encode(NodeType.QUERY, isolated[:4], rng)
        for p in points:
            assert np.isfinite(p.data).all()

    def test_distance_of_identical_points_zero_grad_safe(self):
        x = Parameter(np.array([[0.3, 0.1]]))
        d = ops.sum(stereo.dist_k(x, x, -1.0))
        d.backward()
        assert np.isfinite(x.grad).all()

    def test_empty_batch_encode(self, train_graph, rng):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        from repro.graph.schema import NodeType
        points = model.encode(NodeType.ITEM, np.array([], dtype=int), rng)
        assert points[0].shape == (0, 4)
