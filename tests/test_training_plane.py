"""The overlapped training plane: prefetch producer, accumulation, backward dial.

Covers the PR-6 contracts:

- ``SampleBatch``/``EncodePlan`` pickle round-trips (they cross a
  process boundary now);
- payload determinism — step payloads are pure functions of
  ``(seed, step)``, so worker count never changes the stream;
- gradient accumulation's exact equivalence to one large batch;
- the ``backward_depth`` dial: bit-identical forward, exact upper-level
  gradients, no lower-level gradients;
- the configuration guard rails (incompatible plane/cache combos).
"""

import pickle

import numpy as np
import pytest

from repro.graph import MetaPathWalker, NegativeSampler
from repro.graph.sampling import SampleBatch
from repro.graph.schema import NodeType
from repro.models import make_model
from repro.models.plan import build_encode_plan
from repro.training import PlanProducer, Trainer, TrainerConfig
from repro.training.prefetch import ProducerState, build_step_payload
from repro.training.trainer import TrainingReport


def _make_producer(graph, *, total_steps, num_workers=0, batch_size=16,
                   gcn_layers=1, seed=0, plan_refresh=1, depth=2):
    return PlanProducer(
        MetaPathWalker(graph), NegativeSampler(graph),
        total_steps=total_steps, batch_size=batch_size,
        gcn_layers=gcn_layers, neighbor_samples=4, seed=seed,
        num_workers=num_workers, depth=depth, plan_refresh=plan_refresh)


def _assert_plans_equal(pa, pb):
    assert pa.node_type == pb.node_type
    assert pa.layers == pb.layers
    np.testing.assert_array_equal(pa.indices, pb.indices)
    for la, lb in zip(pa.levels, pb.levels):
        assert set(la.frontiers) == set(lb.frontiers)
        for t in la.frontiers:
            np.testing.assert_array_equal(la.frontiers[t], lb.frontiers[t])
        for t in la.blocks:
            for ba, bb in zip(la.blocks[t], lb.blocks[t]):
                assert ba.dst_type == bb.dst_type
                np.testing.assert_array_equal(ba.neigh_ids, bb.neigh_ids)
                np.testing.assert_array_equal(ba.mask, bb.mask)


def _assert_payloads_equal(a, b):
    assert a.step == b.step
    assert a.batch.relation == b.batch.relation
    np.testing.assert_array_equal(a.batch.src_idx, b.batch.src_idx)
    np.testing.assert_array_equal(a.batch.pos_idx, b.batch.pos_idx)
    np.testing.assert_array_equal(a.batch.neg_idx, b.batch.neg_idx)
    assert set(a.plans) == set(b.plans) == {"source", "target"}
    for role in ("source", "target"):
        _assert_plans_equal(a.plans[role], b.plans[role])


class TestPickleRoundTrip:
    def test_sample_batch_survives_pickle(self, train_graph, rng):
        sampler = NegativeSampler(train_graph)
        walker = MetaPathWalker(train_graph)
        block = walker.sample_pair_blocks(rng, 200)[0]
        batch = sampler.sample_arrays(rng, block.relation, block.src_idx,
                                      block.dst_idx)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.relation == batch.relation
        for field in ("src_idx", "pos_idx", "neg_idx"):
            original = getattr(batch, field)
            copied = getattr(clone, field)
            assert copied.dtype == np.int64
            assert copied.shape == original.shape
            np.testing.assert_array_equal(copied, original)
        # behaves like a batch on the other side, not just raw arrays
        assert len(clone) == len(batch)
        assert clone.num_negatives == batch.num_negatives

    def test_sample_batch_revalidates_on_unpickle(self):
        batch = SampleBatch.__new__(SampleBatch)
        with pytest.raises(ValueError):
            batch.__setstate__({
                "relation": None,
                "src_idx": np.arange(4),
                "pos_idx": np.arange(4),
                "neg_idx": np.arange(4),       # not (batch, K): must fail
            })

    def test_encode_plan_survives_pickle(self, train_graph, rng):
        indices = rng.integers(train_graph.num_nodes[NodeType.QUERY], size=24)
        plan = build_encode_plan(train_graph, NodeType.QUERY, indices,
                                 layers=2, neighbor_samples=4, rng=rng)
        clone = pickle.loads(pickle.dumps(plan))
        _assert_plans_equal(plan, clone)
        assert clone.indices.dtype == np.int64
        # derived machinery still works after the round-trip
        np.testing.assert_array_equal(clone.output_map(), plan.output_map())
        ids, mask = clone.lookup(0, NodeType.QUERY,
                                 clone.levels[1].frontiers[NodeType.QUERY],
                                 NodeType.ITEM)
        ref_ids, ref_mask = plan.lookup(
            0, NodeType.QUERY, plan.levels[1].frontiers[NodeType.QUERY],
            NodeType.ITEM)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(mask, ref_mask)
        assert clone.num_encoded() == plan.num_encoded()

    def test_encode_plan_rejects_corrupt_state(self, train_graph, rng):
        plan = build_encode_plan(train_graph, NodeType.QUERY,
                                 np.arange(8), layers=1, neighbor_samples=4,
                                 rng=rng)
        state = plan.__getstate__()
        state["levels"] = state["levels"][:1]   # lost a level in transit
        with pytest.raises(ValueError, match="corrupt EncodePlan"):
            pickle.loads(pickle.dumps(plan)).__setstate__(state)


class TestStepPayloads:
    def test_payload_is_pure_function_of_seed_and_step(self, train_graph):
        def build(step):
            state = ProducerState(
                MetaPathWalker(train_graph), NegativeSampler(train_graph),
                batch_size=16, gcn_layers=1, neighbor_samples=4, seed=5)
            return build_step_payload(state, step)

        _assert_payloads_equal(build(3), build(3))
        a, b = build(0), build(1)
        assert (a.batch.relation != b.batch.relation
                or not np.array_equal(a.batch.src_idx, b.batch.src_idx)
                or not np.array_equal(a.batch.neg_idx, b.batch.neg_idx))

    def test_inline_producer_is_deterministic(self, train_graph):
        first = list(iter(_make_producer(train_graph, total_steps=3)))
        second = list(iter(_make_producer(train_graph, total_steps=3)))
        assert [p.step for p in first] == [0, 1, 2]
        for a, b in zip(first, second):
            _assert_payloads_equal(a, b)

    def test_worker_pool_matches_inline(self, train_graph):
        """Two spawned workers emit exactly the inline payload stream."""
        inline = list(iter(_make_producer(train_graph, total_steps=4)))
        with _make_producer(train_graph, total_steps=4,
                            num_workers=2) as producer:
            pooled = list(iter(producer))
        assert [p.step for p in pooled] == [0, 1, 2, 3]
        for a, b in zip(inline, pooled):
            _assert_payloads_equal(a, b)

    def test_draw_cache_reuses_within_refresh_window(self, train_graph):
        producer = _make_producer(train_graph, total_steps=4, plan_refresh=4)
        payloads = list(iter(producer))
        state = producer._state
        assert state._window == 0          # never crossed a window boundary
        # target-role plans within the window replay cached draws for
        # nodes they share
        pa = payloads[0].plans["target"]
        pb = next(p.plans["target"] for p in payloads[1:]
                  if p.plans["target"].node_type == pa.node_type)
        t = pa.node_type
        fa, fb = pa.levels[1].frontiers[t], pb.levels[1].frontiers[t]
        common = np.intersect1d(fa, fb)
        assert common.size > 0
        for ba, bb in zip(pa.levels[1].blocks[t], pb.levels[1].blocks[t]):
            np.testing.assert_array_equal(
                ba.neigh_ids[np.searchsorted(fa, common)],
                bb.neigh_ids[np.searchsorted(fb, common)])

    def test_draw_cache_window_advances(self, train_graph):
        producer = _make_producer(train_graph, total_steps=5, plan_refresh=2)
        list(iter(producer))
        assert producer._state._window == 2    # steps 4.. live in window 2

    def test_refresh_window_shorter_than_pool_rejected(self, train_graph):
        with pytest.raises(ValueError, match="plan_refresh"):
            _make_producer(train_graph, total_steps=4, num_workers=2,
                           plan_refresh=2)

    def test_producer_validates_shape(self, train_graph):
        with pytest.raises(ValueError, match="num_workers"):
            _make_producer(train_graph, total_steps=4, num_workers=-1)
        with pytest.raises(ValueError, match="depth"):
            _make_producer(train_graph, total_steps=4, depth=0)


class TestPrefetchedTrainer:
    def test_worker_count_does_not_change_training(self, train_graph):
        """Fixed seed → identical payload stream → identical losses.

        Exact equality holds between any two worker counts >= 1 (the
        payload stream is a pure function of ``(seed, step)``).  The
        synchronous path (``prefetch_workers=0``) interleaves sampling
        and encode draws on one shared stream, so it is a statistically
        equivalent reference, not a bit-equal one — that ordering
        tolerance is by design and covered by
        ``test_prefetch_converges_like_sync``.
        """
        def run(workers):
            model = make_model("amcad", train_graph, subspace_dim=4, seed=0,
                               gcn_layers=1)
            config = TrainerConfig(steps=3, batch_size=16, seed=0,
                                   prefetch_workers=workers)
            return Trainer(model, config).train()

        one, two = run(1), run(2)
        assert one.losses == two.losses

    def test_prefetch_converges_like_sync(self, train_graph):
        def run(workers):
            model = make_model("amcad", train_graph, subspace_dim=4, seed=0,
                               gcn_layers=1)
            config = TrainerConfig(steps=4, batch_size=16, seed=0,
                                   prefetch_workers=workers)
            return Trainer(model, config).train()

        sync, pre = run(0), run(2)
        assert all(np.isfinite(sync.losses)) and all(np.isfinite(pre.losses))
        assert sync.prefetch_wait_seconds == 0.0
        assert pre.prefetch_wait_seconds >= 0.0
        assert 0.0 <= pre.overlap_fraction <= 1.0
        assert pre.samples_seen == sync.samples_seen == 4 * 16

    def test_prefetch_requires_batched_plane(self, train_graph):
        model = make_model("amcad", train_graph, subspace_dim=4, gcn_layers=0)
        with pytest.raises(ValueError, match="data_plane"):
            Trainer(model, TrainerConfig(prefetch_workers=2,
                                         data_plane="looped"))

    def test_trainer_rejects_short_refresh_window(self, train_graph):
        model = make_model("amcad", train_graph, subspace_dim=4, gcn_layers=1)
        with pytest.raises(ValueError, match="plan_refresh"):
            Trainer(model, TrainerConfig(prefetch_workers=2, plan_refresh=2))

    def test_overlap_fraction_math(self):
        report = TrainingReport(losses=[1.0], wall_seconds=10.0, steps=1,
                                samples_seen=16, prefetch_wait_seconds=2.5)
        assert report.overlap_fraction == pytest.approx(0.75)
        idle = TrainingReport(losses=[1.0], wall_seconds=0.0, steps=1,
                              samples_seen=16)
        assert idle.overlap_fraction == 1.0


class TestGradientAccumulation:
    def test_two_micro_batches_equal_one_large_batch(self, train_graph):
        """K=2 accumulation == one concatenated batch, to fp round-off.

        ``gcn_layers=0`` removes neighbour draws, so both sides see the
        exact same computation modulo summation order; the loss is
        mean-normalised per batch, which the 1/K scaling composes with
        exactly.
        """
        def model0():
            return make_model("amcad", train_graph, subspace_dim=4, seed=0,
                              gcn_layers=0)

        accum = model0()
        trainer = Trainer(accum, TrainerConfig(steps=1, batch_size=16, seed=0,
                                               accumulate_steps=2))
        payloads = list(iter(trainer.make_producer(steps=1)))
        assert len(payloads) == 2       # one optimiser step, two micro
        micro = iter([(p.batch, p.plans) for p in payloads])
        accum_loss = trainer._accumulate_micro(lambda: next(micro))
        accum_grads = [None if p.grad is None else p.grad.copy()
                       for p in accum.parameters()]

        reference = model0()
        merged = [sample for p in payloads for sample in p.batch]
        loss = reference.loss(merged)
        loss.backward()
        assert accum_loss == pytest.approx(loss.item(), abs=1e-12)
        ref_grads = [None if p.grad is None else p.grad.copy()
                     for p in reference.parameters()]
        checked = 0
        for got, want in zip(accum_grads, ref_grads):
            if got is None or want is None:
                assert got is None and want is None
                continue
            np.testing.assert_allclose(got, want, atol=1e-12)
            checked += 1
        assert checked > 0

    def test_accumulation_scales_samples_seen(self, train_graph):
        model = make_model("amcad", train_graph, subspace_dim=4, gcn_layers=0)
        config = TrainerConfig(steps=2, batch_size=8, seed=0,
                               accumulate_steps=3)
        report = Trainer(model, config).train()
        assert report.steps == 2
        assert report.samples_seen == 2 * 8 * 3
        assert len(report.losses) == 2

    def test_accumulate_steps_validated(self, train_graph):
        model = make_model("amcad", train_graph, subspace_dim=4, gcn_layers=0)
        with pytest.raises(ValueError, match="accumulate_steps"):
            Trainer(model, TrainerConfig(accumulate_steps=0))


class TestBackwardDepth:
    @pytest.fixture(scope="class")
    def payload(self, train_graph):
        state = ProducerState(
            MetaPathWalker(train_graph), NegativeSampler(train_graph),
            batch_size=16, gcn_layers=2, neighbor_samples=4, seed=7)
        return build_step_payload(state, 0)

    def _loss_and_encoder_grads(self, train_graph, payload, depth):
        model = make_model("amcad", train_graph, subspace_dim=4, seed=0,
                           gcn_layers=2)
        model.encoder.backward_depth = depth
        loss = model.loss(payload.batch, plans=payload.plans)
        loss.backward()
        grads = {key: None if p.grad is None else p.grad.copy()
                 for key, p in model.encoder.gcn_weights.items()}
        return loss.item(), grads

    def test_forward_is_bit_identical_at_any_depth(self, train_graph,
                                                   payload):
        """The dial truncates the backward only: same loss at all depths."""
        full, _ = self._loss_and_encoder_grads(train_graph, payload, 0)
        for depth in (1, 2, 3):
            truncated, _ = self._loss_and_encoder_grads(train_graph, payload,
                                                        depth)
            assert truncated == full        # tolerance 0, deliberately

    def test_upper_levels_get_exact_full_gradients(self, train_graph,
                                                   payload):
        """GCN round ``l`` weights act at level ``l+1``: above the cut
        they must receive *exactly* the full-backward gradients, below
        it none at all."""
        _, full = self._loss_and_encoder_grads(train_graph, payload, 0)
        _, truncated = self._loss_and_encoder_grads(train_graph, payload, 1)
        tops = lows = 0
        for key, grad in truncated.items():
            _, layer, _ = key
            if layer == 0:                  # below the cut: constants
                assert grad is None
                if full[key] is not None:
                    lows += 1               # full backward reached it
            elif full[key] is None:
                # node type absent from the top level of both endpoint
                # plans — untouched under full backward as well
                assert grad is None
            else:                           # top GCN round: on the tape
                assert grad is not None
                np.testing.assert_array_equal(grad, full[key])
                tops += 1
        assert tops > 0 and lows > 0

    def test_depth_beyond_layers_is_full_backward(self, train_graph,
                                                  payload):
        _, full = self._loss_and_encoder_grads(train_graph, payload, 0)
        _, deep = self._loss_and_encoder_grads(train_graph, payload, 3)
        for key, grad in full.items():
            if grad is None:
                assert deep[key] is None
            else:
                np.testing.assert_array_equal(grad, deep[key])

    def test_backward_depth_requires_frontier_plane(self, train_graph):
        model = make_model("amcad", train_graph, subspace_dim=4, gcn_layers=1,
                           compute_plane="recursive")
        with pytest.raises(ValueError, match="backward_depth"):
            Trainer(model, TrainerConfig(backward_depth=1))

    def test_trainer_sets_dial_on_encoder(self, train_graph):
        model = make_model("amcad", train_graph, subspace_dim=4, gcn_layers=2)
        Trainer(model, TrainerConfig(backward_depth=1))
        assert model.encoder.backward_depth == 1

    def test_trainer_trains_with_dial(self, train_graph):
        model = make_model("amcad", train_graph, subspace_dim=4, seed=0,
                           gcn_layers=2)
        config = TrainerConfig(steps=2, batch_size=8, seed=0,
                               backward_depth=1)
        report = Trainer(model, config).train()
        assert len(report.losses) == 2
        assert all(np.isfinite(report.losses))
