"""Property tests for the closed-loop traffic harness.

The :class:`TrafficGenerator` contracts that the capacity benches lean
on: arrivals are sorted and inside the horizon, streams are a pure
function of the seed, the offered rate hits the target (exactly for
Poisson; over integer periods for the diurnal curve), the query
marginal is the configured Zipf head-skew, and the lane split matches
``paid_share``.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serving import (
    ARRIVAL_PROCESSES,
    AdmissionController,
    SyntheticService,
    TrafficGenerator,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(scope="module")
def gen(daily_logs):
    return TrafficGenerator(daily_logs[:1], seed=0)


class TestArrivalProcesses:
    @given(seed=seeds, process=st.sampled_from(ARRIVAL_PROCESSES),
           qps=st.floats(min_value=20.0, max_value=400.0))
    @settings(max_examples=30, deadline=None)
    def test_arrivals_monotone_and_bounded(self, daily_logs, seed, process,
                                           qps):
        gen = TrafficGenerator(daily_logs[:1], process=process, seed=0)
        requests = gen.generate(qps=qps, duration=2.0, seed=seed)
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 2.0 for t in arrivals)
        assert all(r.lane in ("paid", "organic") for r in requests)

    @given(seed=seeds, process=st.sampled_from(ARRIVAL_PROCESSES))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_stream(self, daily_logs, seed, process):
        gen = TrafficGenerator(daily_logs[:1], process=process, seed=0)
        first = gen.generate(qps=150.0, duration=1.5, seed=seed)
        second = gen.generate(qps=150.0, duration=1.5, seed=seed)
        assert first == second

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_poisson_offered_qps_on_target(self, gen, seed):
        # 4000 expected arrivals, sd ~63: a 12% miss is >7 sigma
        requests = gen.generate(qps=400.0, duration=10.0, seed=seed)
        assert len(requests) == pytest.approx(4000, rel=0.12)

    def test_diurnal_mean_rate_over_integer_periods(self, daily_logs):
        # the sinusoid integrates to zero over whole periods, so the
        # offered mean is back on target (duration = 2 x 60s period)
        gen = TrafficGenerator(daily_logs[:1], process="diurnal", seed=0)
        for seed in (1, 2, 3):
            requests = gen.generate(qps=100.0, duration=120.0, seed=seed)
            assert len(requests) == pytest.approx(12000, rel=0.1)

    def test_bursty_mean_rate_on_target(self, daily_logs):
        # calm phases are slowed to compensate for bursts; over many
        # phase cycles (120s / 2s cycle) the mean lands on target
        gen = TrafficGenerator(daily_logs[:1], process="bursty", seed=0)
        for seed in (1, 2, 3):
            requests = gen.generate(qps=100.0, duration=120.0, seed=seed)
            assert len(requests) == pytest.approx(12000, rel=0.25)

    def test_bursty_is_overdispersed(self, daily_logs):
        """MMPP arrival counts have index of dispersion >> Poisson's 1."""
        def dispersion(process, seed):
            gen = TrafficGenerator(daily_logs[:1], process=process, seed=0)
            arrivals = [r.arrival
                        for r in gen.generate(qps=200.0, duration=60.0,
                                              seed=seed)]
            counts = np.bincount(
                (np.asarray(arrivals) * 10).astype(int), minlength=600)
            return counts.var() / counts.mean()

        assert dispersion("poisson", seed=5) < 1.5
        assert dispersion("bursty", seed=5) > 2.0


class TestRequestPopulation:
    @given(seed=seeds, exponent=st.floats(min_value=0.3, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_zipf_marginal_matches_configuration(self, daily_logs, seed,
                                                 exponent):
        gen = TrafficGenerator(daily_logs[:1], zipf_exponent=exponent,
                               seed=0)
        requests = gen.generate(qps=2000.0, duration=2.0, seed=seed)
        queries = np.array([r.query for r in requests])
        # the top-ranked query's empirical share matches its configured
        # probability (binomial sd ~0.008 at n~4000; 0.04 is >5 sigma)
        top = int(gen.ranked_queries[0])
        assert (queries == top).mean() == pytest.approx(
            float(gen.query_probs[0]), abs=0.04)
        # ...and the head outweighs the tail
        head = set(int(q) for q in gen.ranked_queries[:10])
        tail = set(int(q) for q in gen.ranked_queries[-10:])
        head_mass = sum(q in head for q in queries)
        tail_mass = sum(q in tail for q in queries)
        assert head_mass > tail_mass

    @given(seed=seeds, share=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_lane_split_matches_paid_share(self, daily_logs, seed, share):
        gen = TrafficGenerator(daily_logs[:1], paid_share=share, seed=0)
        requests = gen.generate(qps=2000.0, duration=2.0, seed=seed)
        paid = sum(r.lane == "paid" for r in requests) / len(requests)
        assert paid == pytest.approx(share, abs=0.05)

    def test_preclicks_replay_real_sessions(self, daily_logs, gen):
        from repro.graph.schema import NodeType
        allowed = {}
        for log in daily_logs[:1]:
            for session in log.sessions:
                allowed.setdefault(session.query, set()).update(
                    session.clicked_of_type(NodeType.ITEM))
        for request in gen.generate(qps=200.0, duration=1.0, seed=7):
            assert len(request.preclicks) <= gen.max_preclicks
            assert set(request.preclicks) <= allowed[request.query]

    def test_zero_exponent_is_uniform_over_ranked(self, daily_logs):
        gen = TrafficGenerator(daily_logs[:1], zipf_exponent=0.0, seed=0)
        assert np.allclose(gen.query_probs,
                           1.0 / gen.ranked_queries.size)


class TestClosedLoop:
    def test_underload_serves_everything(self, gen):
        ctrl = AdmissionController(SyntheticService(0.001, seed=1),
                                   max_batch=1, deadline_ms=50.0)
        report = gen.drive(ctrl, qps=100.0, duration=5.0)
        assert report.shed == 0
        assert report.served == report.offered
        # the makespan may run a service time past the horizon
        assert report.achieved_qps == pytest.approx(report.offered_qps,
                                                    rel=1e-3)
        assert report.wait_ms["p99"] <= 50.0

    def test_overload_sheds_and_caps_throughput(self, gen):
        # offered 5x the single-worker service rate: most traffic sheds
        ctrl = AdmissionController(SyntheticService(0.01, seed=2),
                                   max_batch=1, deadline_ms=50.0,
                                   max_queue=64)
        report = gen.drive(ctrl, qps=500.0, duration=4.0)
        assert report.shed > 0
        assert report.shed_rate > 0.5
        assert report.achieved_qps < report.offered_qps
        # served requests still met the deadline (shed, not served late)
        assert report.wait_ms["p99"] <= 50.0

    def test_drive_requires_fresh_controller(self, gen):
        ctrl = AdmissionController(SyntheticService(0.001), max_batch=1)
        gen.drive(ctrl, qps=50.0, duration=1.0)
        with pytest.raises(ValueError, match="fresh controller"):
            gen.drive(ctrl, qps=50.0, duration=1.0)

    def test_report_is_json_safe(self, gen):
        ctrl = AdmissionController(SyntheticService(0.001), max_batch=1)
        report = gen.drive(ctrl, qps=50.0, duration=1.0)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["process"] == "poisson"
        assert payload["offered"] == report.offered


class TestValidation:
    def test_generator_rejects_bad_parameters(self, daily_logs):
        logs = daily_logs[:1]
        with pytest.raises(ValueError, match="at least one session"):
            TrafficGenerator([])
        with pytest.raises(ValueError, match="zipf_exponent"):
            TrafficGenerator(logs, zipf_exponent=-0.1)
        with pytest.raises(ValueError, match="paid_share"):
            TrafficGenerator(logs, paid_share=1.5)
        with pytest.raises(ValueError, match="max_preclicks"):
            TrafficGenerator(logs, max_preclicks=-1)
        with pytest.raises(ValueError, match="process"):
            TrafficGenerator(logs, process="flash-crowd")
        with pytest.raises(ValueError, match="burstiness"):
            TrafficGenerator(logs, burstiness=0.5)
        with pytest.raises(ValueError, match="burst_fraction"):
            TrafficGenerator(logs, burst_fraction=1.0)
        with pytest.raises(ValueError, match="compensate"):
            TrafficGenerator(logs, burstiness=4.0, burst_fraction=0.5)
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            TrafficGenerator(logs, diurnal_amplitude=2.0)
        with pytest.raises(ValueError, match="periods"):
            TrafficGenerator(logs, diurnal_period_seconds=0.0)

    def test_generate_rejects_bad_run(self, gen):
        with pytest.raises(ValueError, match="qps"):
            gen.generate(qps=0.0, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            gen.generate(qps=10.0, duration=0.0)

    def test_synthetic_service_validation(self):
        with pytest.raises(ValueError, match="mean_seconds"):
            SyntheticService(0.0)
        with pytest.raises(ValueError, match="distribution"):
            SyntheticService(0.01, "lognormal")

    def test_synthetic_service_deterministic_batches(self):
        svc = SyntheticService(0.01, "deterministic", max_batch_size=8)
        results, seconds = svc.serve_batch([1, 2, 3], [(), (), ()])
        assert results == [None, None, None]
        assert seconds == pytest.approx(0.03)
        assert svc.batches_served == 1
