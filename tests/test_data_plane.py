"""The batched training data plane: parity with the looped reference.

Covers the §IV-A-2 / §V-A sampling pipeline end to end — batched
meta-path walks, vectorised same-category masks, array-native negative
draws, ``SampleBatch`` consumption by the loss — against the looped
implementations kept as the behavioural reference, plus determinism of
both planes.
"""

import collections

import numpy as np
import pytest

from repro.graph import (
    MetaPathWalker,
    NegativeSampler,
    SampleBatch,
    TABLE_III_META_PATHS,
    as_sample_batches,
)
from repro.graph.schema import NodeRef, NodeType, Relation
from repro.models import make_model
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def walker(train_graph):
    return MetaPathWalker(train_graph)


@pytest.fixture(scope="module")
def blocks(walker):
    return walker.sample_pair_blocks(np.random.default_rng(7), 1500)


class TestCategoryBranch:
    def test_same_branch_matches_lca_definition(self, train_graph, rng):
        tree = train_graph.category_tree
        n = len(tree)
        a = rng.integers(n, size=300)
        b = rng.integers(n, size=300)
        got = tree.same_branch(a, b)
        for x, y, flag in zip(a, b, got):
            lca = tree.lowest_common_ancestor(int(x), int(y))
            assert flag == (lca in (int(x), int(y)))

    def test_ancestor_matrix_shape_and_root(self, train_graph):
        tree = train_graph.category_tree
        anc = tree.ancestor_matrix()
        depth = tree.depth_array()
        assert anc.shape == (int(depth.max()) + 1, len(tree))
        assert np.all(anc[0] == 0), "depth-0 ancestor is always the root"

    def test_cache_refreshes_after_growth(self, train_graph):
        from repro.graph import CategoryTree
        tree = CategoryTree.balanced(2, 2)
        before = tree.ancestor_matrix().shape
        leaf = tree.leaves[0]
        child = tree.add_child(leaf)
        after = tree.ancestor_matrix()
        assert after.shape[1] == before[1] + 1
        assert tree.same_branch([leaf], [child])[0]


class TestBatchedWalker:
    def test_walk_batch_steps_are_edges(self, walker, train_graph):
        path = TABLE_III_META_PATHS[1]  # q -click-> i -co_click-> i
        levels, alive = walker.walk_batch(np.random.default_rng(0), path, 80)
        assert alive.any()
        current_type = path.start
        for level_from, level_to, (edge_type, dst_type) in zip(
                levels, levels[1:], path.steps):
            for src, dst in list(zip(level_from[alive], level_to[alive]))[:25]:
                ids, _w, _t = train_graph.neighbors(
                    current_type, int(src), edge_type=edge_type,
                    dst_type=dst_type)
                assert int(dst) in ids.tolist()
            current_type = dst_type

    def test_blocks_respect_category_constraint(self, train_graph, blocks):
        tree = train_graph.category_tree
        assert blocks
        for block in blocks:
            src_cats = train_graph.categories[block.relation.source_type][
                block.src_idx]
            dst_cats = train_graph.categories[block.relation.target_type][
                block.dst_idx]
            assert tree.same_branch(src_cats, dst_cats).all()

    def test_blocks_never_pair_a_node_with_itself(self, blocks):
        for block in blocks:
            if block.relation.source_type == block.relation.target_type:
                assert np.all(block.src_idx != block.dst_idx)

    def test_relation_mix_matches_looped_reference(self, walker):
        num_walks = 2500
        looped = collections.Counter(
            p.relation for p in walker.sample_pairs(
                np.random.default_rng(3), num_walks))
        batched = collections.Counter()
        for block in walker.sample_pair_blocks(
                np.random.default_rng(4), num_walks):
            batched[block.relation] += len(block)
        total_l = sum(looped.values())
        total_b = sum(batched.values())
        assert abs(total_l - total_b) / total_l < 0.15
        for relation in looped:
            share_l = looped[relation] / total_l
            share_b = batched[relation] / total_b
            assert abs(share_l - share_b) < 0.05, (
                "relation %s share drifted: looped %.3f batched %.3f"
                % (relation, share_l, share_b))

    def test_to_pairs_round_trip(self, blocks):
        block = max(blocks, key=len)
        pairs = block.to_pairs()
        assert len(pairs) == len(block)
        assert all(p.relation == block.relation for p in pairs)
        assert [p.source.index for p in pairs] == block.src_idx.tolist()
        assert [p.target.index for p in pairs] == block.dst_idx.tolist()

    def test_batched_plane_sees_edges_added_after_construction(self):
        """``add_edges`` invalidation must reach the walker's tables."""
        from repro.graph import CategoryTree, HetGraph, MetaPath
        from repro.graph.schema import EdgeType
        tree = CategoryTree.balanced(1, 2)
        graph = HetGraph(
            {NodeType.QUERY: 2, NodeType.ITEM: 3, NodeType.AD: 0},
            {NodeType.QUERY: np.array([1, 1]),
             NodeType.ITEM: np.array([1, 1, 1]),
             NodeType.AD: np.empty(0, dtype=np.int64)},
            {t: {} for t in NodeType}, tree)
        graph.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                        np.array([0]), np.array([0]))
        path = MetaPath("q-i", NodeType.QUERY,
                        ((EdgeType.CLICK, NodeType.ITEM),))
        walker = MetaPathWalker(graph, meta_paths=[path])
        levels, alive = walker.walk_batch(np.random.default_rng(0), path, 50,
                                          starts=np.zeros(50, dtype=np.int64))
        assert set(levels[1][alive].tolist()) == {0}
        graph.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                        np.array([0]), np.array([2]), weights=np.array([9.0]))
        levels, alive = walker.walk_batch(np.random.default_rng(0), path, 50,
                                          starts=np.zeros(50, dtype=np.int64))
        assert 2 in levels[1][alive].tolist(), \
            "walker must see edges added after construction"

    def test_unreachable_path_yields_dead_walks(self, train_graph):
        from repro.graph import MetaPath
        from repro.graph.schema import EdgeType
        # semantic edges only exist between queries, so this path has
        # no start pool and no adjacency at all
        impossible = MetaPath("bad", NodeType.AD,
                              ((EdgeType.SEMANTIC, NodeType.AD),
                               (EdgeType.SEMANTIC, NodeType.AD)))
        solo = MetaPathWalker(train_graph, meta_paths=[impossible])
        levels, alive = solo.walk_batch(np.random.default_rng(0),
                                        impossible, 16)
        assert not alive.any()
        assert solo.sample_pair_blocks(np.random.default_rng(0), 16) == []


class TestSampleBatchPlane:
    @pytest.fixture(scope="class")
    def sampler(self, train_graph):
        return NegativeSampler(train_graph, num_negatives=6)

    @pytest.fixture(scope="class")
    def big_block(self, blocks):
        return max(blocks, key=len)

    def test_negatives_exclude_positive(self, sampler, blocks):
        rng = np.random.default_rng(0)
        for block in blocks:
            batch = sampler.sample_arrays(rng, block.relation, block.src_idx,
                                          block.dst_idx)
            assert not np.any(batch.neg_idx == batch.pos_idx[:, None])
            assert batch.neg_idx.shape == (len(block), 6)
            assert np.all(batch.neg_idx >= 0)

    def test_hard_easy_split_matches_reference(self, sampler, train_graph,
                                               walker):
        """Batched and looped negatives agree on the category split."""
        pairs = walker.sample_pairs(np.random.default_rng(11), 600)

        def hard_share_looped():
            rng = np.random.default_rng(1)
            hard = total = 0
            for sample in sampler.sample_batch(rng, pairs):
                pos_cat = train_graph.categories[
                    sample.positive.node_type][sample.positive.index]
                for neg in sample.negatives:
                    hard += int(train_graph.categories[neg.node_type][
                        neg.index] == pos_cat)
                    total += 1
            return hard / total

        def hard_share_batched():
            rng = np.random.default_rng(1)
            hard = total = 0
            for block in walker.sample_pair_blocks(
                    np.random.default_rng(11), 600):
                batch = sampler.sample_arrays(rng, block.relation,
                                              block.src_idx, block.dst_idx)
                cats = train_graph.categories[block.relation.target_type]
                hard += int((cats[batch.neg_idx]
                             == cats[batch.pos_idx][:, None]).sum())
                total += batch.neg_idx.size
            return hard / total

        looped, batched = hard_share_looped(), hard_share_batched()
        assert abs(looped - batched) < 0.06, (looped, batched)
        assert 0.15 < batched < 0.55, "expected roughly 1/3 hard negatives"

    def test_all_easy_negatives_avoid_positive_category(self, train_graph,
                                                        big_block):
        sampler = NegativeSampler(train_graph, num_negatives=4,
                                  easy_ratio=1.0)
        batch = sampler.sample_arrays(np.random.default_rng(2),
                                      big_block.relation, big_block.src_idx,
                                      big_block.dst_idx)
        cats = train_graph.categories[big_block.relation.target_type]
        assert not np.any(cats[batch.neg_idx] == cats[batch.pos_idx][:, None])

    def test_all_hard_negatives_share_category(self, train_graph, big_block):
        sampler = NegativeSampler(train_graph, num_negatives=4,
                                  easy_ratio=0.0)
        batch = sampler.sample_arrays(np.random.default_rng(2),
                                      big_block.relation, big_block.src_idx,
                                      big_block.dst_idx)
        cats = train_graph.categories[big_block.relation.target_type]
        same = cats[batch.neg_idx] == cats[batch.pos_idx][:, None]
        # rows whose category pool is a singleton fall back to easy draws
        pools = train_graph.category_pools(big_block.relation.target_type)
        populated = pools.count[cats[batch.pos_idx]] > 1
        assert same[populated].all()

    def test_singleton_category_positive_falls_back(self):
        """A positive alone in the *last* category must not crash the
        pooled gather (regression: the rank shift walked off the end of
        ``pools.order`` before the fallback overwrite)."""
        from repro.graph import CategoryTree, HetGraph
        from repro.graph.schema import EdgeType
        tree = CategoryTree.balanced(1, 3)
        num_nodes = {NodeType.QUERY: 4, NodeType.ITEM: 5, NodeType.AD: 0}
        categories = {
            NodeType.QUERY: np.array([1, 1, 2, 2]),
            # item 4 is the only member of category 3, the last pool
            NodeType.ITEM: np.array([1, 1, 2, 2, 3]),
            NodeType.AD: np.empty(0, dtype=np.int64),
        }
        graph = HetGraph(num_nodes, categories,
                         {t: {} for t in NodeType}, tree)
        graph.add_edges(NodeType.QUERY, EdgeType.CLICK, NodeType.ITEM,
                        np.array([0, 1, 2, 3]), np.array([0, 1, 2, 4]))
        sampler = NegativeSampler(graph, num_negatives=3, easy_ratio=0.0)
        batch = sampler.sample_arrays(
            np.random.default_rng(0), Relation.Q2I,
            np.array([0, 1, 3]), np.array([0, 1, 4]))
        assert batch.neg_idx.shape == (3, 3)
        assert np.all((batch.neg_idx >= 0) & (batch.neg_idx < 5))
        # populated two-member pools leave exactly the other member
        assert np.all(batch.neg_idx[0] == 1)
        assert np.all(batch.neg_idx[1] == 0)
        # the singleton row fell back to global draws (which, as in the
        # looped reference, may legitimately include the positive)

    def test_alias_marginals_prefer_popular(self, train_graph):
        """Degree-weighted easy negatives keep the alias-table marginal."""
        sampler = NegativeSampler(train_graph, num_negatives=6,
                                  easy_ratio=1.0, degree_smoothing=1.0)
        degree = train_graph.degree(NodeType.ITEM)
        src = np.zeros(300, dtype=np.int64)
        pos = np.zeros(300, dtype=np.int64)
        batch = sampler.sample_arrays(np.random.default_rng(3), Relation.Q2I,
                                      src, pos)
        assert degree[batch.neg_idx.ravel()].mean() > degree.mean()

    def test_batch_iterates_as_training_samples(self, sampler, big_block):
        batch = sampler.sample_arrays(np.random.default_rng(4),
                                      big_block.relation, big_block.src_idx,
                                      big_block.dst_idx)
        samples = list(batch)
        assert len(samples) == len(batch)
        first = samples[0]
        assert first.relation == batch.relation
        assert first.source == NodeRef(batch.relation.source_type,
                                       int(batch.src_idx[0]))
        assert [n.index for n in first.negatives] == batch.neg_idx[0].tolist()

    def test_as_sample_batches_round_trip(self, sampler, big_block):
        batch = sampler.sample_arrays(np.random.default_rng(5),
                                      big_block.relation, big_block.src_idx,
                                      big_block.dst_idx)
        rebuilt = as_sample_batches(list(batch))
        assert len(rebuilt) == 1
        assert rebuilt[0].relation == batch.relation
        assert np.array_equal(rebuilt[0].src_idx, batch.src_idx)
        assert np.array_equal(rebuilt[0].pos_idx, batch.pos_idx)
        assert np.array_equal(rebuilt[0].neg_idx, batch.neg_idx)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SampleBatch(Relation.Q2I, np.arange(3), np.arange(2),
                        np.zeros((3, 2)))
        with pytest.raises(ValueError):
            SampleBatch(Relation.Q2I, np.arange(3), np.arange(3),
                        np.zeros(3))

    def test_loss_accepts_batch_and_matches_list_form(self, train_graph,
                                                      sampler, big_block):
        model = make_model("amcad_e", train_graph, num_subspaces=2,
                           subspace_dim=4, seed=0)
        batch = sampler.sample_arrays(np.random.default_rng(6),
                                      big_block.relation, big_block.src_idx,
                                      big_block.dst_idx)
        from_batch = model.loss(batch, rng=np.random.default_rng(9)).item()
        from_list = model.loss(list(batch),
                               rng=np.random.default_rng(9)).item()
        assert from_batch == pytest.approx(from_list, rel=1e-12)


class TestDeterminism:
    @pytest.mark.parametrize("plane", ["batched", "looped"])
    def test_same_seed_same_losses(self, train_graph, plane):
        def run():
            model = make_model("amcad_e", train_graph, num_subspaces=1,
                               subspace_dim=4, seed=0)
            config = TrainerConfig(steps=6, batch_size=16, seed=3,
                                   data_plane=plane)
            return Trainer(model, config).train().losses

        assert run() == run()

    def test_same_seed_same_sample_batch_stream(self, train_graph):
        def stream():
            model = make_model("amcad_e", train_graph, num_subspaces=1,
                               subspace_dim=4, seed=0)
            trainer = Trainer(model, TrainerConfig(steps=1, batch_size=16,
                                                   seed=5))
            return [trainer._next_batch() for _ in range(4)]

        for a, b in zip(stream(), stream()):
            assert a.relation == b.relation
            assert np.array_equal(a.src_idx, b.src_idx)
            assert np.array_equal(a.pos_idx, b.pos_idx)
            assert np.array_equal(a.neg_idx, b.neg_idx)

    def test_next_batch_is_relation_homogeneous_sample_batch(self,
                                                             train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        trainer = Trainer(model, TrainerConfig(steps=1, batch_size=16,
                                               seed=1))
        batch = trainer._next_batch()
        assert isinstance(batch, SampleBatch)
        assert len(batch) == 16

    def test_unknown_data_plane_rejected(self, train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        with pytest.raises(ValueError, match="data_plane"):
            Trainer(model, TrainerConfig(data_plane="quantum"))


class TestNode2VecRejection:
    def test_step_marginals_match_bias(self, train_graph):
        """Rejection sampling reproduces the normalised node2vec bias."""
        from repro.models.baselines.walks import Node2VecGenerator
        gen = Node2VecGenerator(train_graph, p=2.0, q=0.5, seed=0)
        # a current node with several neighbours, previous chosen among them
        degrees = np.diff(gen.indptr)
        cur = int(np.argmax(degrees))
        neigh = gen._neighbors(cur)
        prev = int(neigh[0])
        n = 12_000
        trails = np.full((n, 3), -1, dtype=np.int64)
        trails[:, 0] = prev
        trails[:, 1] = cur
        current = np.full(n, cur, dtype=np.int64)
        draws = gen._step_block(trails, 2, current)
        assert np.all(draws >= 0)
        bias = np.where(neigh == prev, 1.0 / gen.p,
                        np.where(gen._has_edge(np.full(neigh.size, prev),
                                               neigh), 1.0, 1.0 / gen.q))
        expected = bias / bias.sum()
        counts = np.array([(draws == v).sum() for v in neigh]) / n
        assert np.allclose(counts, expected, atol=0.03)
