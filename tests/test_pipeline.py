"""The `repro.pipeline` subsystem: config round-trips, staged runs,
artifact reload parity, and the satellite helpers."""

import dataclasses
import importlib
import json
import warnings

import numpy as np
import pytest

from repro.models import list_models, make_model
from repro.pipeline import (
    ArtifactStore,
    Pipeline,
    PipelineConfig,
    PipelineReport,
)
from repro.serving import ServingSimulator


TINY = {
    "name": "test-tiny",
    "data": {
        "days": 2, "train_days": 1, "seed": 11,
        "simulator": {"num_queries": 220, "num_items": 320, "num_ads": 90,
                      "num_users": 160, "tree_depth": 3, "tree_branching": 2},
    },
    "model": {"name": "amcad", "num_subspaces": 2, "subspace_dim": 4},
    "training": {"steps": 12, "batch_size": 32},
    "index": {"top_k": 10},
    "serving": {"measure_requests": 8, "measure_repeats": 1,
                "qps_sweep": [1000.0, 20000.0]},
    "eval": {"auc_samples": 60, "ranking_ks": [10], "max_queries": 40},
}


def tiny_config(**section_updates):
    payload = json.loads(json.dumps(TINY))
    for section, update in section_updates.items():
        payload.setdefault(section, {}).update(update)
    return PipelineConfig.from_dict(payload)


@pytest.fixture(scope="module")
def run_pipeline(tmp_path_factory):
    """One tiny end-to-end run with artifacts, shared by the module."""
    artifact_dir = tmp_path_factory.mktemp("pipeline-artifacts")
    pipeline = Pipeline(tiny_config(), artifact_dir=str(artifact_dir))
    pipeline.run()
    return pipeline


class TestConfig:
    def test_json_roundtrip_equality(self):
        config = tiny_config()
        assert PipelineConfig.from_json(config.to_json()) == config

    def test_default_roundtrip(self):
        config = PipelineConfig()
        assert PipelineConfig.from_dict(config.to_dict()) == config

    def test_save_load(self, tmp_path):
        config = tiny_config()
        path = config.save(tmp_path / "config.json")
        assert PipelineConfig.load(path) == config

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline key"):
            PipelineConfig.from_dict({"trainign": {}})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ValueError, match="training"):
            PipelineConfig.from_dict({"training": {"step": 10}})

    def test_unknown_simulator_key_rejected(self):
        with pytest.raises(ValueError, match="data.simulator"):
            PipelineConfig.from_dict(
                {"data": {"simulator": {"num_querys": 10}}})

    def test_unknown_model_name_rejected(self):
        with pytest.raises(ValueError, match="registered variant"):
            PipelineConfig.from_dict({"model": {"name": "amacd"}})

    def test_bad_product_signature_rejected(self):
        with pytest.raises(ValueError, match="EHSU"):
            PipelineConfig.from_dict({"model": {"name": "product:XZ"}})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="not registered"):
            PipelineConfig.from_dict({"index": {"backend": "faiss"}})

    def test_bad_serving_measurement_rejected(self):
        with pytest.raises(ValueError, match="measure_repeats"):
            PipelineConfig.from_dict({"serving": {"measure_repeats": 0}})
        with pytest.raises(ValueError, match="preclicks_per_request"):
            PipelineConfig.from_dict(
                {"serving": {"preclicks_per_request": -1}})

    def test_admission_keys_validated(self):
        with pytest.raises(ValueError, match="admission_max_queue"):
            PipelineConfig.from_dict({"serving": {"admission_max_queue": 0}})
        with pytest.raises(ValueError, match="admission_deadline_ms"):
            PipelineConfig.from_dict(
                {"serving": {"admission_deadline_ms": 0}})
        with pytest.raises(ValueError, match="admission_max_batch"):
            PipelineConfig.from_dict(
                {"serving": {"admission_max_batch": -1}})
        with pytest.raises(ValueError, match="admission_priority_share"):
            PipelineConfig.from_dict(
                {"serving": {"admission_priority_share": 1.5}})

    def test_admission_keys_settable_and_forwarded(self):
        config = tiny_config().with_overrides(
            ["serving.admission_max_queue=64",
             "serving.admission_deadline_ms=20.0",
             "serving.admission_priority_share=0.5"])
        kwargs = config.serving.admission_kwargs()
        assert kwargs["max_queue"] == 64
        assert kwargs["deadline_ms"] == 20.0
        assert kwargs["priority_share"] == 0.5
        assert kwargs["k"] == config.serving.k
        # admission_max_batch=0 (the default) adopts the engine batch
        assert kwargs["max_batch"] == config.serving.max_batch_size
        explicit = config.with_overrides(["serving.admission_max_batch=3"])
        assert explicit.serving.admission_kwargs()["max_batch"] == 3

    def test_bad_day_split_rejected(self):
        with pytest.raises(ValueError, match="train_days"):
            PipelineConfig.from_dict({"data": {"days": 2, "train_days": 3}})

    def test_data_plane_validated_and_forwarded(self):
        with pytest.raises(ValueError, match="data_plane"):
            PipelineConfig.from_dict({"training": {"data_plane": "async"}})
        config = PipelineConfig.from_dict(
            {"training": {"data_plane": "looped"}})
        assert config.training.trainer_config().data_plane == "looped"
        assert PipelineConfig().training.data_plane == "batched"

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError, match="relation"):
            PipelineConfig.from_dict({"index": {"relations": ["q2x"]}})

    def test_overrides(self):
        config = tiny_config().with_overrides(
            ["training.steps=99", "model.name=amcad_e",
             "eval.ranking_ks=[10,20]", "serving.enabled=false"])
        assert config.training.steps == 99
        assert config.model.name == "amcad_e"
        assert config.eval.ranking_ks == [10, 20]
        assert config.serving.enabled is False
        # the original is untouched
        assert tiny_config().training.steps == 12

    def test_override_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            tiny_config().with_overrides(["training.step=99"])

    def test_override_can_introduce_free_form_keys(self):
        # num_brands is absent from TINY's simulator dict (and from the
        # all-defaults config) but is a valid SimulatorConfig field
        config = tiny_config().with_overrides(
            ["data.simulator.num_brands=10"])
        assert config.data.simulator["num_brands"] == 10
        config = PipelineConfig().with_overrides(
            ["model.overrides.gcn_layers=0"])
        assert config.model.overrides == {"gcn_layers": 0}

    def test_override_free_form_keys_still_validated(self):
        with pytest.raises(ValueError, match="data.simulator"):
            tiny_config().with_overrides(["data.simulator.num_querys=10"])

    def test_override_revalidates(self):
        with pytest.raises(ValueError, match="steps"):
            tiny_config().with_overrides(["training.steps=0"])

    def test_shard_keys_validated(self):
        with pytest.raises(ValueError, match="num_shards"):
            PipelineConfig.from_dict({"index": {"num_shards": 0}})
        with pytest.raises(ValueError, match="shard_parallelism"):
            PipelineConfig.from_dict({"index": {"shard_parallelism": 0}})
        with pytest.raises(ValueError, match="inner_backend"):
            PipelineConfig.from_dict({"index": {"inner_backend": "sharded"}})
        with pytest.raises(ValueError, match="inner_backend"):
            PipelineConfig.from_dict({"index": {"inner_backend": "faiss"}})

    def test_sharded_backend_accepted_and_settable(self):
        config = tiny_config().with_overrides(
            ["index.backend=sharded", "index.num_shards=4",
             "index.inner_backend=pq", "index.shard_parallelism=2"])
        assert config.index.backend == "sharded"
        assert config.index.num_shards == 4
        kwargs = config.index.resolved_backend_kwargs()
        assert kwargs == {"num_shards": 4, "inner_backend": "pq",
                          "parallelism": 2}
        assert config.index.serving_shards == 4
        # JSON round-trip carries the shard keys
        assert PipelineConfig.from_json(config.to_json()) == config

    def test_shard_kwargs_only_fold_in_for_sharded_backend(self):
        config = tiny_config()
        assert config.index.backend == "exact"
        assert config.index.resolved_backend_kwargs() == {}
        assert config.index.serving_shards == 1

    def test_explicit_backend_kwargs_win(self):
        config = tiny_config(index={"backend": "sharded", "num_shards": 2,
                                    "backend_kwargs": {"num_shards": 5}})
        assert config.index.resolved_backend_kwargs()["num_shards"] == 5


class TestPipelineRun:
    def test_stage_order_and_report(self, run_pipeline):
        report = run_pipeline.report
        assert [s.name for s in report.stages] == [
            "data", "graph", "train", "index", "serve", "eval"]
        assert report.total_seconds > 0
        assert len(report.training_losses) == 12
        assert np.isfinite(report.final_loss)
        assert 0.0 <= report.next_auc <= 100.0
        assert report.service_seconds > 0
        assert report["serve"].info["fleet_workers"] >= 1
        assert len(report["serve"].info["qps_sweep"]) == 2

    def test_artifact_layout(self, run_pipeline):
        store = run_pipeline.store
        for name in (ArtifactStore.CONFIG, ArtifactStore.MODEL,
                     ArtifactStore.INDICES, ArtifactStore.REPORT):
            assert store.has(name), name
        # the persisted report parses back and matches in shape
        loaded = store.load_report()
        assert [s.name for s in loaded.stages] == \
            [s.name for s in run_pipeline.report.stages]
        assert loaded.next_auc == pytest.approx(run_pipeline.report.next_auc)

    def test_ranking_ks_clip_to_built_width(self, tmp_path):
        # top_k=120 but only 90 ads: the q2a index is built 89 wide, so
        # hr@100 must be dropped for q2a (not mislabelled) yet kept for
        # q2i (320 items), and the artifact-reload eval must agree
        config = tiny_config(training={"steps": 8},
                             index={"top_k": 120},
                             serving={"enabled": False},
                             eval={"auc_samples": 0, "ranking_ks": [100]})
        pipeline = Pipeline(config, artifact_dir=str(tmp_path))
        info = pipeline.run()["eval"].info
        assert "q2i" in info and "hr@100" in info["q2i"]
        assert "q2a" not in info
        reloaded = Pipeline.from_artifacts(tmp_path).evaluate()
        assert "q2a" not in reloaded
        assert reloaded["q2i"]["hr@100"] == \
            pytest.approx(info["q2i"]["hr@100"])

    def test_report_json_roundtrip(self, run_pipeline):
        report = run_pipeline.report
        payload = json.loads(json.dumps(report.to_dict()))
        again = PipelineReport.from_dict(payload)
        assert again.next_auc == pytest.approx(report.next_auc)
        assert again.summary() == report.summary()


class TestFromArtifacts:
    def test_serving_parity_with_in_memory(self, run_pipeline):
        """The reloaded pipeline returns the same ads as the in-memory one."""
        served = Pipeline.from_artifacts(run_pipeline.store.root)
        assert served.ctx.index_set.model is None  # truly model-free
        rng = np.random.default_rng(5)
        queries = rng.integers(220, size=12)
        preclicks = [list(rng.integers(320, size=2)) for _ in queries]
        fresh = run_pipeline.retriever.retrieve_batch(queries, preclicks, k=8)
        reloaded = served.serve(queries, preclicks, k=8)
        for a, b in zip(fresh, reloaded):
            np.testing.assert_array_equal(a.ads, b.ads)
            np.testing.assert_allclose(a.scores, b.scores)

    def test_eval_from_artifacts_matches_run(self, run_pipeline):
        served = Pipeline.from_artifacts(run_pipeline.store.root)
        info = served.evaluate()
        assert info["next_auc"] == pytest.approx(run_pipeline.report.next_auc)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Pipeline.from_artifacts(tmp_path / "nope")

    def test_ab_eval_without_control_artifacts_raises(self, run_pipeline):
        # the artifacts were produced without a control channel, so an
        # eval-time A/B request must fail loudly, not silently skip
        served = Pipeline.from_artifacts(run_pipeline.store.root)
        served.config = served.ctx.config = served.config.with_overrides(
            ['eval.ab_control="amcad_e"'])
        with pytest.raises(RuntimeError, match="no control channel"):
            served.evaluate()


class TestABPipeline:
    def test_ab_smoke(self):
        config = tiny_config(
            training={"steps": 8},
            serving={"enabled": False},
            eval={"auc_samples": 0, "ranking_ks": [],
                  "ab_control": "amcad_e", "ab_requests": 40},
        )
        report = Pipeline(config).run()
        ctr = report.ab_ctr_lift
        rpm = report.ab_rpm_lift
        assert ctr is not None and "overall" in ctr
        assert rpm is not None and "overall" in rpm
        assert report["train"].info["control_model"] == "amcad_e"
        assert report["serve"].info == {"enabled": False,
                                        "summary": "disabled"}


class TestSharedDataContext:
    def test_fork_data_skips_resimulation(self, run_pipeline):
        config = tiny_config(model={"name": "amcad_e"},
                             training={"steps": 8},
                             serving={"enabled": False},
                             eval={"auc_samples": 40, "ranking_ks": []})
        forked = Pipeline(config,
                          context=run_pipeline.ctx.fork_data(config))
        assert forked.ctx.simulator is run_pipeline.ctx.simulator
        report = forked.run()
        assert forked.ctx.train_graph is run_pipeline.ctx.train_graph
        assert report["train"].info["model"] == "amcad_e"
        # the source pipeline's trained model is untouched
        assert run_pipeline.ctx.model is not forked.ctx.model


class TestShardedPipeline:
    def test_sharded_run_matches_exact_indices(self, run_pipeline):
        """Same data + model seed, sharded index plane: identical indices,
        shard metadata in the report, serving up through shard fan-out."""
        from repro.graph.schema import Relation
        config = tiny_config(index={"backend": "sharded", "num_shards": 3,
                                    "shard_parallelism": 2, "top_k": 10})
        sharded = Pipeline(config,
                           context=run_pipeline.ctx.fork_data(config))
        report = sharded.run()
        assert report["index"].info["num_shards"] == 3
        assert report["index"].info["inner_backend"] == "exact"
        assert report["serve"].info["num_shards"] == 3
        for relation in (Relation.Q2A, Relation.Q2I):
            assert np.array_equal(
                run_pipeline.ctx.index_set[relation].ids,
                sharded.ctx.index_set[relation].ids)
        assert sharded.ctx.engine.num_shards == 3
        assert sharded.ctx.engine.stats.batch_wall_seconds

    def test_rebuild_indices_reshards_artifacts(self, run_pipeline):
        """Model-free index refresh: re-shard persisted artifacts and
        serve identically (exact merge semantics)."""
        store_dir = str(run_pipeline.store.root)
        reloaded = Pipeline.from_artifacts(store_dir)
        try:
            before = reloaded.serve([3, 14], [[2], []], k=5)
            reloaded.config = reloaded.ctx.config = \
                reloaded.config.with_overrides(
                    ["index.backend=sharded", "index.num_shards=3"])
            info = reloaded.rebuild_indices()
            assert info["backend"] == "sharded"
            # fresh engine over the new indices
            assert reloaded.ctx.engine is None
            after = reloaded.serve([3, 14], [[2], []], k=5)
            for a, b in zip(before, after):
                assert np.array_equal(a.ads, b.ads)
            # the persisted artifacts now carry the sharded layout
            again = Pipeline.from_artifacts(store_dir)
            assert again.config.index.backend == "sharded"
            assert again.ctx.index_set.backend_name == "sharded"
            assert again.ctx.index_set.shard_bounds
        finally:
            # restore the exact layout for the other module-scoped tests
            reloaded.config = reloaded.ctx.config = \
                reloaded.config.with_overrides(["index.backend=exact"])
            reloaded.rebuild_indices()


class TestSatellites:
    def test_list_models_contents(self):
        models = list_models()
        for expected in ("amcad", "amcad_e", "hgcn", "m2gnn", "amcad-comb"):
            assert expected in models

    def test_every_listed_model_constructs(self, train_graph):
        # guards MODEL_VARIANTS against drifting from make_model's
        # dispatch: every advertised name must actually build
        for name in list_models():
            assert make_model(name, train_graph, num_subspaces=2,
                              subspace_dim=2, seed=0) is not None, name

    def test_make_model_unknown_name_lists_variants(self, train_graph):
        with pytest.raises(ValueError) as excinfo:
            make_model("amacd", train_graph)
        message = str(excinfo.value)
        assert "amcad_e" in message and "product:<SIG>" in message

    def test_size_fleet(self):
        sim = ServingSimulator(service_seconds=0.002)
        assert sim.size_fleet(50000, target_utilisation=0.8) == 125
        assert sim.num_workers == 125
        # the sized fleet actually runs at the target utilisation
        (stat,) = sim.sweep([50000])
        assert stat.utilisation == pytest.approx(0.8)
        with pytest.raises(ValueError):
            sim.size_fleet(1000, target_utilisation=0.0)
        with pytest.raises(ValueError):
            sim.size_fleet(-5)

    def test_retrieval_serving_shim(self):
        import repro.retrieval.serving as shim
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.reload(shim)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught), "shim import must warn"
        from repro.serving import ServingSimulator as canonical
        assert shim.ServingSimulator is canonical
        for name in ("ServingSimulator", "ServingStats", "erlang_b",
                     "erlang_c_wait"):
            assert hasattr(shim, name), name

    def test_importing_retrieval_package_does_not_warn(self):
        import repro.retrieval
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(repro.retrieval)
        assert not any(issubclass(w.category, DeprecationWarning)
                       for w in caught)
