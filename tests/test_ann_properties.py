"""Property-based tests (hypothesis) for the ANN backends and recall@k.

Random relation spaces and dial settings, three invariant families:

- ``recall_at_k`` behaves like a recall: 1.0 against itself, invariant
  to within-row permutations, monotone in the approximate depth;
- IVF results are always sorted by metric distance, unique, in range,
  and a full top-k regardless of how starved the dial is;
- ``nprobe >= num_lists`` with an uncapped re-rank is bit-identical to
  the exact backend — the dial degenerates to exact search, by
  construction, for *any* space.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.schema import Relation
from repro.retrieval import ExactBackend, IVFBackend, NSWBackend
from repro.retrieval.mnn import RelationSpace
from repro.retrieval.quantization import recall_at_k

spaces = st.builds(
    lambda seed, n, dim: _space(seed, n, dim),
    seed=st.integers(0, 2 ** 16), n=st.integers(3, 120),
    dim=st.integers(2, 6))


def _space(seed, num_targets, dim):
    rng = np.random.default_rng(seed)
    scale = 0.3
    num_sources = 8
    return RelationSpace(
        relation=Relation.Q2A,
        src_embeddings=[scale * rng.standard_normal((num_sources, dim)),
                        scale * rng.standard_normal((num_sources, dim))],
        dst_embeddings=[scale * rng.standard_normal((num_targets, dim)),
                        scale * rng.standard_normal((num_targets, dim))],
        src_weights=rng.uniform(0.3, 0.7, size=(num_sources, 2)),
        dst_weights=rng.uniform(0.3, 0.7, size=(num_targets, 2)),
        kappas=[-0.5, 0.4],
    )


class TestRecallAtK:
    @given(st.integers(0, 2 ** 16), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_self_recall_is_one(self, seed, k):
        rng = np.random.default_rng(seed)
        ids = np.stack([rng.choice(100, size=k, replace=False)
                        for _ in range(5)])
        assert recall_at_k(ids, ids, k) == 1.0

    @given(st.integers(0, 2 ** 16), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariant(self, seed, k):
        """Recall counts set overlap — row order must not matter."""
        rng = np.random.default_rng(seed)
        exact = np.stack([rng.choice(100, size=k, replace=False)
                          for _ in range(5)])
        approx = np.stack([rng.choice(100, size=k, replace=False)
                           for _ in range(5)])
        shuffled = np.stack([rng.permutation(row) for row in approx])
        assert recall_at_k(approx, exact, k) == \
            recall_at_k(shuffled, exact, k)

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_approx_depth(self, seed):
        """A deeper approximate list can only gain overlap with the
        fixed exact top-k."""
        rng = np.random.default_rng(seed)
        exact = np.stack([rng.choice(50, size=10, replace=False)
                          for _ in range(4)])
        approx = np.stack([rng.choice(50, size=10, replace=False)
                           for _ in range(4)])
        shallow = recall_at_k(approx[:, :4], exact, 10)
        deep = recall_at_k(approx, exact, 10)
        assert deep >= shallow


class TestIVFInvariants:
    @given(spaces, st.integers(1, 10), st.integers(1, 8),
           st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_results_sorted_unique_in_range(self, space, k, num_lists,
                                            nprobe):
        backend = IVFBackend(num_lists=num_lists,
                             nprobe=nprobe).build(space)
        k = min(k, space.num_targets)
        ids, dists = backend.search(np.arange(8), k)
        assert ids.shape == dists.shape == (8, k)
        assert ids.min() >= 0 and ids.max() < space.num_targets
        for row in ids:
            assert np.unique(row).size == row.size
        assert np.all(np.isfinite(dists))
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    @given(spaces, st.integers(1, 10), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_full_probe_bit_identical_to_exact(self, space, k, num_lists):
        backend = IVFBackend(num_lists=num_lists,
                             nprobe=num_lists).build(space)
        assert backend.is_exact_dial
        k = min(k, space.num_targets)
        ids_a, dists_a = backend.search(np.arange(8), k)
        ids_b, dists_b = ExactBackend().build(space).search(np.arange(8), k)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(dists_a, dists_b)


class TestNSWInvariants:
    @given(spaces, st.integers(1, 10), st.integers(2, 8),
           st.sampled_from([0, 20]), st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_results_sorted_unique_in_range(self, space, k, max_degree,
                                            rerank_k, expand_hops):
        backend = NSWBackend(max_degree=max_degree, ef_search=12,
                             rerank_k=rerank_k,
                             expand_hops=expand_hops).build(space)
        k = min(k, space.num_targets)
        ids, dists = backend.search(np.arange(8), k)
        assert ids.shape == dists.shape == (8, k)
        assert ids.min() >= 0 and ids.max() < space.num_targets
        for row in ids:
            assert np.unique(row).size == row.size
        assert np.all(np.isfinite(dists))
        assert np.all(np.diff(dists, axis=1) >= -1e-12)
