"""The sharded offline inference plane: full-graph plans + numpy compute.

Covers the offline half of the system rebuilt in this PR:

- ``build_full_graph_plan`` covering every node of a type with an
  identity output map;
- ``NodeEncoder.encode_from_plan_numpy`` held to *bit* parity with the
  tensor compute phase (the documented tolerance of the plan path is
  zero: same float64 ops, same order);
- ``AMCAD.embed_all`` plan/batch equivalence on a shared plan, the
  NeighborDrawCache refresh policy, and the empty-vocabulary shape
  regression (dims must come from the manifold factors, not the config).
"""

import copy

import numpy as np
import pytest

from repro.graph.schema import NodeType
from repro.models import NeighborDrawCache, build_full_graph_plan, make_model
from repro.retrieval.mnn import RelationSpace
from repro.graph.schema import Relation


@pytest.fixture(scope="module")
def model(train_graph):
    return make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                      seed=5, gcn_layers=2)


class TestFullGraphPlan:
    def test_covers_whole_vocabulary(self, model, train_graph):
        plan = model.build_full_plan(NodeType.ITEM)
        n = train_graph.num_nodes[NodeType.ITEM]
        top = plan.levels[plan.layers].frontiers[NodeType.ITEM]
        assert np.array_equal(top, np.arange(n))
        assert np.array_equal(plan.output_map(), np.arange(n))

    def test_zero_layers_plan(self, train_graph):
        shallow = make_model("amcad", train_graph, num_subspaces=2,
                             subspace_dim=4, seed=5, gcn_layers=0)
        arrays = shallow.embed_all(NodeType.AD)
        n = train_graph.num_nodes[NodeType.AD]
        assert all(a.shape == (n, 4) for a in arrays)

    def test_draw_cache_reuse_across_refreshes(self, model, train_graph):
        """With a shared cache, repeated plans replay identical draws."""
        cache = NeighborDrawCache()
        rng = np.random.default_rng(3)
        first = build_full_graph_plan(train_graph, NodeType.QUERY, 2, 4,
                                      rng, draw_cache=cache)
        second = build_full_graph_plan(train_graph, NodeType.QUERY, 2, 4,
                                       rng, draw_cache=cache)
        a = model.encoder.encode_from_plan_numpy(first)
        b = model.encoder.encode_from_plan_numpy(second)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        # a cleared cache resamples: embeddings move
        cache.clear()
        third = build_full_graph_plan(train_graph, NodeType.QUERY, 2, 4,
                                      rng, draw_cache=cache)
        c = model.encoder.encode_from_plan_numpy(third)
        assert any(not np.array_equal(x, z) for x, z in zip(a, c))


class TestNumpyComputeParity:
    def test_bit_equal_to_tensor_path_on_shared_plan(self, model):
        """Documented tolerance of the numpy compute phase: zero."""
        plan = model.build_full_plan(NodeType.QUERY)
        via_numpy = model.encoder.encode_from_plan_numpy(plan)
        via_tensor = model.encode(NodeType.QUERY, plan.indices, plan=plan)
        for a, b in zip(via_numpy, via_tensor):
            assert np.array_equal(a, b.data)

    def test_embed_all_plan_vs_batch_bit_equal(self, model):
        plan = model.build_full_plan(NodeType.ITEM)
        via_plan = model.embed_all(NodeType.ITEM, method="plan", plan=plan)
        via_batch = model.embed_all(NodeType.ITEM, method="batch",
                                    batch_size=100, plan=plan)
        for a, b in zip(via_plan, via_batch):
            assert np.array_equal(a, b)

    def test_parity_without_fusion(self, train_graph):
        lean = make_model("amcad-fusion", train_graph, num_subspaces=2,
                          subspace_dim=4, seed=5, gcn_layers=1)
        plan = lean.build_full_plan(NodeType.AD)
        via_numpy = lean.encoder.encode_from_plan_numpy(plan)
        via_tensor = lean.encode(NodeType.AD, plan.indices, plan=plan)
        for a, b in zip(via_numpy, via_tensor):
            assert np.array_equal(a, b.data)

    def test_parity_on_frozen_curvature_variant(self, train_graph):
        """Hyperbolic model exercises the project() clipping branch."""
        hyp = make_model("amcad_h", train_graph, num_subspaces=2,
                         subspace_dim=4, seed=5, gcn_layers=1)
        plan = hyp.build_full_plan(NodeType.QUERY)
        via_numpy = hyp.encoder.encode_from_plan_numpy(plan)
        via_tensor = hyp.encode(NodeType.QUERY, plan.indices, plan=plan)
        for a, b in zip(via_numpy, via_tensor):
            assert np.array_equal(a, b.data)


class TestEmbedAll:
    def test_default_is_plan_path(self, model, train_graph):
        arrays = model.embed_all(NodeType.QUERY)
        n = train_graph.num_nodes[NodeType.QUERY]
        assert all(a.shape == (n, 4) for a in arrays)
        assert all(np.isfinite(a).all() for a in arrays)

    def test_unknown_method_raises(self, model):
        with pytest.raises(ValueError, match="plan.*batch"):
            model.embed_all(NodeType.QUERY, method="recursive")

    def test_partial_plan_rows_follow_plan_indices(self, model):
        """encode_all on a partial plan honours the request order/dupes
        (same contract as encode with a plan), not frontier order."""
        indices = np.array([5, 3, 3, 11])
        plan = model.encoder.build_plan(NodeType.QUERY, indices,
                                        np.random.default_rng(4))
        points = model.encode_all(NodeType.QUERY, plan=plan)
        reference = model.encode(NodeType.QUERY, indices, plan=plan)
        for a, b in zip(points, reference):
            assert a.shape[0] == indices.size
            assert np.array_equal(a, b.data)
        # duplicated requests yield duplicated rows
        assert np.array_equal(points[0][1], points[0][2])

    def test_empty_vocabulary_dims_come_from_factors(self, model):
        """Regression: the old batch path padded empty chunks with
        ``config.subspace_dim`` columns for every subspace — wrong
        whenever the config value goes stale relative to the manifold
        factors, which are the authority on per-subspace width."""
        hollow = copy.copy(model)
        hollow.graph = copy.copy(model.graph)
        hollow.graph.num_nodes = dict(model.graph.num_nodes)
        hollow.graph.num_nodes[NodeType.AD] = 0
        hollow.config = copy.copy(model.config)
        hollow.config.subspace_dim = 999   # stale — must not leak out
        for method in ("plan", "batch"):
            arrays = hollow.embed_all(NodeType.AD, method=method)
            assert [a.shape for a in arrays] == [(0, 4), (0, 4)]


class TestProjectAllPlanPath:
    def test_relation_space_matches_manual_projection(self, model):
        """from_model's full-plan encode == encode_all + scorer by hand."""
        space = RelationSpace.from_model(model, Relation.Q2A)
        points = model.encode_all(NodeType.QUERY,
                                  np.random.default_rng(2024))
        from repro.autodiff.tensor import Tensor, no_grad
        with no_grad():
            projected = model.scorer.project(
                Relation.Q2A, NodeType.QUERY,
                [Tensor(p) for p in points])
        for a, b in zip(space.src_embeddings, projected):
            assert np.array_equal(a, b.data)
