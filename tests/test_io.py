"""Tests for model / index persistence."""

import numpy as np
import pytest

from repro.graph.schema import NodeType, Relation
from repro.io import load_index_set, load_model, save_index_set, save_model
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def trained(train_graph):
    model = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                       seed=6)
    Trainer(model, TrainerConfig(steps=15, batch_size=32, seed=6)).train()
    return model


class TestModelCheckpoint:
    def test_roundtrip_preserves_similarity(self, trained, train_graph,
                                            tmp_path):
        path = save_model(trained, tmp_path / "model.npz")
        restored = load_model(path, train_graph)
        src = np.array([0, 1, 2, 3])
        dst = np.array([4, 5, 6, 7])
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        original = trained.similarity(Relation.Q2I, src, dst, rng_a).data
        loaded = restored.similarity(Relation.Q2I, src, dst, rng_b).data
        assert np.allclose(original, loaded)

    def test_roundtrip_preserves_curvatures(self, trained, train_graph,
                                            tmp_path):
        path = save_model(trained, tmp_path / "model.npz")
        restored = load_model(path, train_graph)
        assert restored.curvature_report() == trained.curvature_report()

    def test_config_restored(self, trained, train_graph, tmp_path):
        path = save_model(trained, tmp_path / "model.npz")
        restored = load_model(path, train_graph)
        assert restored.config == trained.config

    def test_wrong_universe_rejected(self, trained, tmp_path):
        from repro.data import SimulatorConfig, SponsoredSearchSimulator
        from repro.graph import build_graph
        other = SponsoredSearchSimulator(SimulatorConfig(
            num_queries=30, num_items=40, num_ads=10, num_users=20, seed=1))
        other_graph = build_graph(other.universe, other.simulate_days(1))
        path = save_model(trained, tmp_path / "model.npz")
        with pytest.raises(ValueError):
            load_model(path, other_graph)


class TestIndexPersistence:
    def test_roundtrip_lookup_identical(self, trained, tmp_path):
        index_set = IndexSet(trained, top_k=10).build(
            [Relation.Q2A, Relation.Q2I])
        path = save_index_set(index_set, tmp_path / "indices.npz")
        stored = load_index_set(path)
        for relation in (Relation.Q2A, Relation.Q2I):
            assert relation in stored
            ids_a, dists_a = index_set[relation].lookup(3)
            ids_b, dists_b = stored[relation].lookup(3)
            assert np.array_equal(ids_a, ids_b)
            assert np.allclose(dists_a, dists_b)

    def test_stored_set_serves_two_layer_retrieval(self, trained, tmp_path):
        index_set = IndexSet(trained, top_k=10).build()
        path = save_index_set(index_set, tmp_path / "indices.npz")
        stored = load_index_set(path)
        live = TwoLayerRetriever(index_set, expansion_k=3, ads_per_key=3)
        offline = TwoLayerRetriever(stored, expansion_k=3, ads_per_key=3)
        a = live.retrieve(2, [5], k=8)
        b = offline.retrieve(2, [5], k=8)
        assert np.array_equal(a.ads, b.ads)
        assert np.allclose(a.scores, b.scores)

    def test_missing_relation_not_contained(self, trained, tmp_path):
        index_set = IndexSet(trained, top_k=5).build([Relation.Q2A])
        path = save_index_set(index_set, tmp_path / "indices.npz")
        stored = load_index_set(path)
        assert Relation.Q2A in stored
        assert Relation.I2I not in stored

    def test_index_set_save_load_methods_agree_with_io(self, trained,
                                                       tmp_path):
        """IndexSet.save/.load are the io functions behind one method."""
        index_set = IndexSet(trained, top_k=7).build(
            [Relation.Q2A, Relation.I2A])
        path = index_set.save(tmp_path / "methods.npz")
        via_io = load_index_set(path)
        via_method = IndexSet.load(path)
        for relation in (Relation.Q2A, Relation.I2A):
            ids_a, dists_a = via_io[relation].lookup(2)
            ids_b, dists_b = via_method[relation].lookup(2)
            assert np.array_equal(ids_a, ids_b)
            assert np.allclose(dists_a, dists_b)
