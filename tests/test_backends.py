"""Tests for the pluggable search backends and backend-built indices."""

import numpy as np
import pytest

from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.retrieval import (
    BACKENDS,
    ExactBackend,
    IndexSet,
    PQBackend,
    SearchBackend,
    ShardedBackend,
    TwoLayerRetriever,
    make_backend,
    resolve_backend_factory,
)
from repro.retrieval.mnn import MNNSearcher, RelationSpace
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def model(train_graph):
    m = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                   seed=9)
    Trainer(m, TrainerConfig(steps=20, batch_size=32, seed=9)).train()
    return m


@pytest.fixture(scope="module")
def q2a_space(model):
    return RelationSpace.from_model(model, Relation.Q2A)


def _reference_topk(space, src_indices, k, exclude_self=False):
    """Brute-force ground truth: full pair-distance matrix, argsorted."""
    n = space.num_targets
    ids = []
    dists = []
    for src in src_indices:
        all_d = space.pair_distance(np.full(n, src), np.arange(n))
        if exclude_self and (space.relation.source_type
                             == space.relation.target_type):
            all_d[src] = np.inf
        order = np.argsort(all_d, kind="stable")[:k]
        ids.append(order)
        dists.append(all_d[order])
    return np.array(ids), np.array(dists)


def _tall_space(num_sources=16, num_targets=4000, dim=6, seed=0):
    """A synthetic RelationSpace with a tall target set (no model)."""
    rng = np.random.default_rng(seed)
    scale = 0.3  # keep points well inside any curvature ball
    return RelationSpace(
        relation=Relation.Q2A,
        src_embeddings=[scale * rng.standard_normal((num_sources, dim)),
                        scale * rng.standard_normal((num_sources, dim))],
        dst_embeddings=[scale * rng.standard_normal((num_targets, dim)),
                        scale * rng.standard_normal((num_targets, dim))],
        src_weights=np.full((num_sources, 2), 0.5),
        dst_weights=np.full((num_targets, 2), 0.5),
        kappas=[-0.5, 0.4],
    )


class TestExactBackend:
    def test_matches_bruteforce_reference(self, q2a_space):
        backend = ExactBackend(block_size=32).build(q2a_space)
        src = np.array([0, 3, 11, 42])
        ids, dists = backend.search(src, k=8)
        ref_ids, ref_dists = _reference_topk(q2a_space, src, k=8)
        assert np.array_equal(ids, ref_ids)
        assert np.allclose(dists, ref_dists)

    def test_matches_old_full_matrix_search(self, q2a_space):
        """Streamed merge returns what one giant block would."""
        streamed = ExactBackend(block_size=16).build(q2a_space)
        one_block = ExactBackend(block_size=10 ** 9).build(q2a_space)
        src = np.arange(12)
        ids_a, dists_a = streamed.search(src, k=10)
        ids_b, dists_b = one_block.search(src, k=10)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)

    def test_exclude_self_same_type(self, model):
        space = RelationSpace.from_model(model, Relation.Q2Q)
        backend = ExactBackend(block_size=64).build(space)
        src = np.arange(20)
        ids, __ = backend.search(src, k=5, exclude_self=True)
        assert not np.any(ids == src[:, None])

    def test_streamed_memory_bounded_on_tall_target_set(self):
        """Peak candidate width must not scale with the target count."""
        space = _tall_space(num_targets=4000)
        k = 25
        backend = ExactBackend(block_size=256).build(space)
        ids, dists = backend.search(np.arange(16), k=k)
        # merge buffer held at most previous best-k plus one block top-k
        assert backend.peak_candidate_width <= 2 * k
        assert backend.peak_candidate_width < space.num_targets // 10
        # and the streamed result is still exact
        ref_ids, ref_dists = _reference_topk(space, np.arange(16), k=k)
        assert np.array_equal(ids, ref_ids)
        assert np.allclose(dists, ref_dists)

    def test_threaded_wave_matches_serial(self):
        space = _tall_space(num_targets=1500)
        serial = ExactBackend(num_workers=1, block_size=128).build(space)
        threaded = ExactBackend(num_workers=4, block_size=128).build(space)
        src = np.arange(10)
        ids_a, dists_a = serial.search(src, k=9)
        ids_b, dists_b = threaded.search(src, k=9)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)
        # a wave merges at most num_workers block top-ks onto the best-k
        assert threaded.peak_candidate_width <= 5 * 9

    def test_search_before_build_raises(self):
        with pytest.raises(RuntimeError):
            ExactBackend().search(np.array([0]), k=3)


class TestPQBackend:
    def test_shapes_and_range(self, q2a_space):
        backend = PQBackend(num_blocks=4, codebook_size=16).build(q2a_space)
        ids, dists = backend.search(np.array([0, 1, 2]), k=7)
        assert ids.shape == dists.shape == (3, 7)
        assert ids.min() >= 0 and ids.max() < q2a_space.num_targets
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_exclude_self_same_type(self, model):
        space = RelationSpace.from_model(model, Relation.I2I)
        backend = PQBackend(num_blocks=4, codebook_size=16).build(space)
        src = np.arange(30)
        ids, __ = backend.search(src, k=6, exclude_self=True)
        assert ids.shape == (30, 6)
        assert not np.any(ids == src[:, None])

    def test_block_count_shrinks_to_divisor(self):
        # dim 6 per subspace x2 = 12, not divisible by 5 -> falls to 4
        space = _tall_space(num_targets=300, dim=6)
        backend = PQBackend(num_blocks=5, codebook_size=8).build(space)
        assert backend.index.num_blocks == 4

    def test_reasonable_recall_on_own_metric(self, q2a_space):
        """PQ should roughly track exact Euclidean search (its home turf)."""
        from repro.retrieval.quantization import recall_at_k
        backend = PQBackend(num_blocks=4, codebook_size=32).build(q2a_space)
        queries = np.arange(40)
        pq_ids, __ = backend.search(queries, k=10)
        db = np.concatenate(q2a_space.dst_embeddings, axis=1)
        qv = np.concatenate([e[queries] for e in q2a_space.src_embeddings],
                            axis=1)
        d2 = ((qv[:, None, :] - db[None, :, :]) ** 2).sum(-1)
        flat_ids = np.argsort(d2, axis=1)[:, :10]
        assert recall_at_k(pq_ids, flat_ids, 10) > 0.3


class TestShardedBackend:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_identical_to_exact(self, q2a_space, num_shards):
        """Exact merge semantics: sharded == monolithic, bit for bit."""
        sharded = ShardedBackend(num_shards=num_shards).build(q2a_space)
        exact = ExactBackend().build(q2a_space)
        src = np.arange(25)
        ids_a, dists_a = sharded.search(src, k=9)
        ids_b, dists_b = exact.search(src, k=9)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)

    def test_exclude_self_identical_to_exact(self, model):
        space = RelationSpace.from_model(model, Relation.Q2Q)
        sharded = ShardedBackend(num_shards=5).build(space)
        exact = ExactBackend().build(space)
        src = np.arange(40)
        ids_a, __ = sharded.search(src, k=7, exclude_self=True)
        ids_b, __ = exact.search(src, k=7, exclude_self=True)
        assert np.array_equal(ids_a, ids_b)
        assert not np.any(ids_a == src[:, None])

    def test_more_shards_than_targets(self):
        space = _tall_space(num_targets=5)
        backend = ShardedBackend(num_shards=50).build(space)
        assert len(backend.shards) == 5
        ids, dists = backend.search(np.arange(4), k=3)
        ref_ids, ref_dists = _reference_topk(space, np.arange(4), k=3)
        assert np.array_equal(ids, ref_ids)
        assert np.allclose(dists, ref_dists)

    def test_parallel_build_and_search_match_serial(self):
        space = _tall_space(num_targets=1200)
        serial = ShardedBackend(num_shards=4, parallelism=1).build(space)
        threaded = ShardedBackend(num_shards=4, parallelism=3).build(space)
        src = np.arange(12)
        ids_a, dists_a = serial.search(src, k=11)
        ids_b, dists_b = threaded.search(src, k=11)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)
        # the search pool is persistent across calls, closable, and
        # never created on the serial path
        assert serial._executor is None
        assert threaded._executor is not None
        pool = threaded._executor
        threaded.search(src, k=5)
        assert threaded._executor is pool
        threaded.close()
        assert threaded._executor is None

    def test_shard_bounds_partition_target_space(self, q2a_space):
        backend = ShardedBackend(num_shards=4).build(q2a_space)
        bounds = backend.shard_bounds
        assert bounds[0][0] == 0
        assert bounds[-1][1] == q2a_space.num_targets
        for (_, stop), (start, _) in zip(bounds[:-1], bounds[1:]):
            assert stop == start

    def test_pq_inner_backend(self, q2a_space):
        backend = ShardedBackend(num_shards=3, inner_backend="pq",
                                 inner_kwargs={"codebook_size": 8}).build(
            q2a_space)
        assert all(isinstance(s, PQBackend) for s in backend.shards)
        ids, dists = backend.search(np.arange(6), k=5)
        assert ids.shape == dists.shape == (6, 5)
        assert ids.min() >= 0 and ids.max() < q2a_space.num_targets
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_registered_in_backends(self):
        assert BACKENDS["sharded"] is ShardedBackend
        assert isinstance(make_backend("sharded", num_shards=3),
                          ShardedBackend)

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedBackend(num_shards=0)
        with pytest.raises(ValueError, match="sharded"):
            ShardedBackend(inner_backend="sharded")
        with pytest.raises(ValueError, match="unknown inner"):
            ShardedBackend(inner_backend="annoy")

    def test_search_before_build_raises(self):
        with pytest.raises(RuntimeError):
            ShardedBackend().search(np.array([0]), k=3)


class TestBackendFactory:
    def test_make_backend_by_name(self):
        assert isinstance(make_backend("exact"), ExactBackend)
        assert isinstance(make_backend("pq", codebook_size=8), PQBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_backend("annoy")

    def test_resolve_accepts_class_and_factory(self):
        from_class = resolve_backend_factory(ExactBackend, block_size=7)()
        assert from_class.block_size == 7
        ready = PQBackend(codebook_size=4)
        from_factory = resolve_backend_factory(lambda: ready)()
        assert from_factory is ready

    def test_factory_kwargs_conflict_raises(self):
        with pytest.raises(ValueError):
            resolve_backend_factory(lambda: ExactBackend(), block_size=3)


class TestIndexSetBackends:
    def test_build_through_pq_backend(self, model, train_graph):
        index_set = IndexSet(model, top_k=8, backend="pq",
                             backend_kwargs={"codebook_size": 16}).build(
            [Relation.Q2I])
        index = index_set[Relation.Q2I]
        assert index.ids.shape[1] == 8
        assert index.ids.max() < train_graph.num_nodes[NodeType.ITEM]
        assert isinstance(index_set.backends[Relation.Q2I], PQBackend)

    def test_default_backend_is_exact(self, model):
        index_set = IndexSet(model, top_k=5).build([Relation.Q2A])
        assert isinstance(index_set.backends[Relation.Q2A], ExactBackend)

    def test_custom_factory(self, model):
        index_set = IndexSet(
            model, top_k=5,
            backend=lambda: ExactBackend(block_size=33)).build(
            [Relation.Q2A])
        assert index_set.backends[Relation.Q2A].block_size == 33

    def test_build_encodes_each_node_type_once(self, model, monkeypatch):
        """The per-build encode cache shares the vocabulary encode
        across relations: one encode_all per node type, not per
        relation endpoint."""
        calls = []
        original = type(model).encode_all

        def counting(self, node_type, rng=None, plan=None):
            calls.append(node_type)
            return original(self, node_type, rng=rng, plan=plan)

        monkeypatch.setattr(type(model), "encode_all", counting)
        IndexSet(model, top_k=5).build()     # all six relations
        assert sorted(c.value for c in calls) == ["ad", "item", "query"]

    def test_exact_and_pq_backends_agree_on_easy_top1(self, model):
        """Both rank valid ids; exact is the MNN ground truth."""
        exact = IndexSet(model, top_k=5).build([Relation.Q2A])
        searcher = MNNSearcher(exact.spaces[Relation.Q2A])
        ids, __ = searcher.search(np.array([0]), k=5)
        assert np.array_equal(exact[Relation.Q2A].lookup(0)[0], ids[0])


class TestIndexSetPersistence:
    def test_save_load_roundtrip(self, model, tmp_path):
        built = IndexSet(model, top_k=6).build([Relation.Q2A, Relation.Q2I])
        path = built.save(tmp_path / "indices.npz")
        loaded = IndexSet.load(path)
        for relation in (Relation.Q2A, Relation.Q2I):
            assert relation in loaded
            ids_a, dists_a = built[relation].lookup(4)
            ids_b, dists_b = loaded[relation].lookup(4)
            assert np.array_equal(ids_a, ids_b)
            assert np.allclose(dists_a, dists_b)
        assert loaded.top_k == 6

    def test_loaded_set_serves_without_model(self, model, tmp_path):
        path = IndexSet(model, top_k=10).build().save(tmp_path / "ix.npz")
        # from here on, only the file is in scope
        loaded = IndexSet.load(path)
        assert loaded.model is None
        retriever = TwoLayerRetriever(loaded, expansion_k=3, ads_per_key=3)
        result = retriever.retrieve(1, [2], k=5)
        assert result.ads.size > 0

    def test_loaded_set_cannot_build(self, model, tmp_path):
        path = IndexSet(model, top_k=5).build([Relation.Q2A]).save(
            tmp_path / "ix.npz")
        loaded = IndexSet.load(path)
        with pytest.raises(RuntimeError):
            loaded.build_one(Relation.Q2I)

    _BACKEND_SPECS = {
        "exact": {},
        "pq": {"codebook_size": 16},
        "sharded": {"num_shards": 3},
        "ivf": {"num_lists": 4, "nprobe": 2},
        "nsw": {"ef_search": 16, "max_degree": 4},
    }

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_roundtrip_every_registered_backend(self, model, tmp_path,
                                                backend):
        """save/load must round-trip for every name in BACKENDS."""
        built = IndexSet(model, top_k=6, backend=backend,
                         backend_kwargs=self._BACKEND_SPECS[backend]).build(
            [Relation.Q2A, Relation.I2I])
        path = built.save(tmp_path / ("ix_%s.npz" % backend))
        loaded = IndexSet.load(path)
        assert loaded.backend_name == backend
        for relation in (Relation.Q2A, Relation.I2I):
            ids_a, dists_a = built[relation].lookup_batch(np.arange(10))
            ids_b, dists_b = loaded[relation].lookup_batch(np.arange(10))
            assert np.array_equal(ids_a, ids_b)
            assert np.allclose(dists_a, dists_b)
        # and the loaded set serves the two-layer retriever model-free
        retriever = TwoLayerRetriever(loaded, expansion_k=3, ads_per_key=3)
        result = retriever.retrieve(1, [2], k=5)
        assert result.ads.size > 0

    def test_shard_layout_survives_roundtrip(self, model, tmp_path):
        built = IndexSet(model, top_k=6, backend="sharded",
                         backend_kwargs={"num_shards": 3}).build(
            [Relation.Q2A])
        assert len(built.shard_bounds[Relation.Q2A]) == 3
        loaded = IndexSet.load(built.save(tmp_path / "sharded.npz"))
        assert loaded.backend_name == "sharded"
        assert loaded.shard_bounds[Relation.Q2A] == \
            built.shard_bounds[Relation.Q2A]

    def test_sharded_inherits_index_num_workers(self, model):
        """index.num_workers must reach the exact inner shards."""
        index_set = IndexSet(model, top_k=5, num_workers=3,
                             backend="sharded",
                             backend_kwargs={"num_shards": 2}).build(
            [Relation.Q2A])
        backend = index_set.backends[Relation.Q2A]
        assert all(shard.num_workers == 3 for shard in backend.shards)

    def test_sharded_build_matches_exact_build(self, model):
        exact = IndexSet(model, top_k=7).build([Relation.Q2A])
        sharded = IndexSet(model, top_k=7, backend="sharded",
                           backend_kwargs={"num_shards": 4}).build(
            [Relation.Q2A])
        assert np.array_equal(exact[Relation.Q2A].ids,
                              sharded[Relation.Q2A].ids)
        assert np.allclose(exact[Relation.Q2A].distances,
                           sharded[Relation.Q2A].distances)
