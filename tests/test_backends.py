"""Tests for the pluggable search backends and backend-built indices."""

import numpy as np
import pytest

from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.retrieval import (
    ExactBackend,
    IndexSet,
    PQBackend,
    SearchBackend,
    TwoLayerRetriever,
    make_backend,
    resolve_backend_factory,
)
from repro.retrieval.mnn import MNNSearcher, RelationSpace
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def model(train_graph):
    m = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                   seed=9)
    Trainer(m, TrainerConfig(steps=20, batch_size=32, seed=9)).train()
    return m


@pytest.fixture(scope="module")
def q2a_space(model):
    return RelationSpace.from_model(model, Relation.Q2A)


def _reference_topk(space, src_indices, k, exclude_self=False):
    """Brute-force ground truth: full pair-distance matrix, argsorted."""
    n = space.num_targets
    ids = []
    dists = []
    for src in src_indices:
        all_d = space.pair_distance(np.full(n, src), np.arange(n))
        if exclude_self and (space.relation.source_type
                             == space.relation.target_type):
            all_d[src] = np.inf
        order = np.argsort(all_d, kind="stable")[:k]
        ids.append(order)
        dists.append(all_d[order])
    return np.array(ids), np.array(dists)


def _tall_space(num_sources=16, num_targets=4000, dim=6, seed=0):
    """A synthetic RelationSpace with a tall target set (no model)."""
    rng = np.random.default_rng(seed)
    scale = 0.3  # keep points well inside any curvature ball
    return RelationSpace(
        relation=Relation.Q2A,
        src_embeddings=[scale * rng.standard_normal((num_sources, dim)),
                        scale * rng.standard_normal((num_sources, dim))],
        dst_embeddings=[scale * rng.standard_normal((num_targets, dim)),
                        scale * rng.standard_normal((num_targets, dim))],
        src_weights=np.full((num_sources, 2), 0.5),
        dst_weights=np.full((num_targets, 2), 0.5),
        kappas=[-0.5, 0.4],
    )


class TestExactBackend:
    def test_matches_bruteforce_reference(self, q2a_space):
        backend = ExactBackend(block_size=32).build(q2a_space)
        src = np.array([0, 3, 11, 42])
        ids, dists = backend.search(src, k=8)
        ref_ids, ref_dists = _reference_topk(q2a_space, src, k=8)
        assert np.array_equal(ids, ref_ids)
        assert np.allclose(dists, ref_dists)

    def test_matches_old_full_matrix_search(self, q2a_space):
        """Streamed merge returns what one giant block would."""
        streamed = ExactBackend(block_size=16).build(q2a_space)
        one_block = ExactBackend(block_size=10 ** 9).build(q2a_space)
        src = np.arange(12)
        ids_a, dists_a = streamed.search(src, k=10)
        ids_b, dists_b = one_block.search(src, k=10)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)

    def test_exclude_self_same_type(self, model):
        space = RelationSpace.from_model(model, Relation.Q2Q)
        backend = ExactBackend(block_size=64).build(space)
        src = np.arange(20)
        ids, __ = backend.search(src, k=5, exclude_self=True)
        assert not np.any(ids == src[:, None])

    def test_streamed_memory_bounded_on_tall_target_set(self):
        """Peak candidate width must not scale with the target count."""
        space = _tall_space(num_targets=4000)
        k = 25
        backend = ExactBackend(block_size=256).build(space)
        ids, dists = backend.search(np.arange(16), k=k)
        # merge buffer held at most previous best-k plus one block top-k
        assert backend.peak_candidate_width <= 2 * k
        assert backend.peak_candidate_width < space.num_targets // 10
        # and the streamed result is still exact
        ref_ids, ref_dists = _reference_topk(space, np.arange(16), k=k)
        assert np.array_equal(ids, ref_ids)
        assert np.allclose(dists, ref_dists)

    def test_threaded_wave_matches_serial(self):
        space = _tall_space(num_targets=1500)
        serial = ExactBackend(num_workers=1, block_size=128).build(space)
        threaded = ExactBackend(num_workers=4, block_size=128).build(space)
        src = np.arange(10)
        ids_a, dists_a = serial.search(src, k=9)
        ids_b, dists_b = threaded.search(src, k=9)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)
        # a wave merges at most num_workers block top-ks onto the best-k
        assert threaded.peak_candidate_width <= 5 * 9

    def test_search_before_build_raises(self):
        with pytest.raises(RuntimeError):
            ExactBackend().search(np.array([0]), k=3)


class TestPQBackend:
    def test_shapes_and_range(self, q2a_space):
        backend = PQBackend(num_blocks=4, codebook_size=16).build(q2a_space)
        ids, dists = backend.search(np.array([0, 1, 2]), k=7)
        assert ids.shape == dists.shape == (3, 7)
        assert ids.min() >= 0 and ids.max() < q2a_space.num_targets
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_exclude_self_same_type(self, model):
        space = RelationSpace.from_model(model, Relation.I2I)
        backend = PQBackend(num_blocks=4, codebook_size=16).build(space)
        src = np.arange(30)
        ids, __ = backend.search(src, k=6, exclude_self=True)
        assert ids.shape == (30, 6)
        assert not np.any(ids == src[:, None])

    def test_block_count_shrinks_to_divisor(self):
        # dim 6 per subspace x2 = 12, not divisible by 5 -> falls to 4
        space = _tall_space(num_targets=300, dim=6)
        backend = PQBackend(num_blocks=5, codebook_size=8).build(space)
        assert backend.index.num_blocks == 4

    def test_reasonable_recall_on_own_metric(self, q2a_space):
        """PQ should roughly track exact Euclidean search (its home turf)."""
        from repro.retrieval.quantization import recall_at_k
        backend = PQBackend(num_blocks=4, codebook_size=32).build(q2a_space)
        queries = np.arange(40)
        pq_ids, __ = backend.search(queries, k=10)
        db = np.concatenate(q2a_space.dst_embeddings, axis=1)
        qv = np.concatenate([e[queries] for e in q2a_space.src_embeddings],
                            axis=1)
        d2 = ((qv[:, None, :] - db[None, :, :]) ** 2).sum(-1)
        flat_ids = np.argsort(d2, axis=1)[:, :10]
        assert recall_at_k(pq_ids, flat_ids, 10) > 0.3


class TestBackendFactory:
    def test_make_backend_by_name(self):
        assert isinstance(make_backend("exact"), ExactBackend)
        assert isinstance(make_backend("pq", codebook_size=8), PQBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_backend("annoy")

    def test_resolve_accepts_class_and_factory(self):
        from_class = resolve_backend_factory(ExactBackend, block_size=7)()
        assert from_class.block_size == 7
        ready = PQBackend(codebook_size=4)
        from_factory = resolve_backend_factory(lambda: ready)()
        assert from_factory is ready

    def test_factory_kwargs_conflict_raises(self):
        with pytest.raises(ValueError):
            resolve_backend_factory(lambda: ExactBackend(), block_size=3)


class TestIndexSetBackends:
    def test_build_through_pq_backend(self, model, train_graph):
        index_set = IndexSet(model, top_k=8, backend="pq",
                             backend_kwargs={"codebook_size": 16}).build(
            [Relation.Q2I])
        index = index_set[Relation.Q2I]
        assert index.ids.shape[1] == 8
        assert index.ids.max() < train_graph.num_nodes[NodeType.ITEM]
        assert isinstance(index_set.backends[Relation.Q2I], PQBackend)

    def test_default_backend_is_exact(self, model):
        index_set = IndexSet(model, top_k=5).build([Relation.Q2A])
        assert isinstance(index_set.backends[Relation.Q2A], ExactBackend)

    def test_custom_factory(self, model):
        index_set = IndexSet(
            model, top_k=5,
            backend=lambda: ExactBackend(block_size=33)).build(
            [Relation.Q2A])
        assert index_set.backends[Relation.Q2A].block_size == 33

    def test_exact_and_pq_backends_agree_on_easy_top1(self, model):
        """Both rank valid ids; exact is the MNN ground truth."""
        exact = IndexSet(model, top_k=5).build([Relation.Q2A])
        searcher = MNNSearcher(exact.spaces[Relation.Q2A])
        ids, __ = searcher.search(np.array([0]), k=5)
        assert np.array_equal(exact[Relation.Q2A].lookup(0)[0], ids[0])


class TestIndexSetPersistence:
    def test_save_load_roundtrip(self, model, tmp_path):
        built = IndexSet(model, top_k=6).build([Relation.Q2A, Relation.Q2I])
        path = built.save(tmp_path / "indices.npz")
        loaded = IndexSet.load(path)
        for relation in (Relation.Q2A, Relation.Q2I):
            assert relation in loaded
            ids_a, dists_a = built[relation].lookup(4)
            ids_b, dists_b = loaded[relation].lookup(4)
            assert np.array_equal(ids_a, ids_b)
            assert np.allclose(dists_a, dists_b)
        assert loaded.top_k == 6

    def test_loaded_set_serves_without_model(self, model, tmp_path):
        path = IndexSet(model, top_k=10).build().save(tmp_path / "ix.npz")
        # from here on, only the file is in scope
        loaded = IndexSet.load(path)
        assert loaded.model is None
        retriever = TwoLayerRetriever(loaded, expansion_k=3, ads_per_key=3)
        result = retriever.retrieve(1, [2], k=5)
        assert result.ads.size > 0

    def test_loaded_set_cannot_build(self, model, tmp_path):
        path = IndexSet(model, top_k=5).build([Relation.Q2A]).save(
            tmp_path / "ix.npz")
        loaded = IndexSet.load(path)
        with pytest.raises(RuntimeError):
            loaded.build_one(Relation.Q2I)
