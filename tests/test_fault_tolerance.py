"""Fault tolerance: degraded retrieval, chaos training, exact resume.

Drives the failure paths the PR-8 lifecycle claims to survive:

- a dead/hung index shard degrades the sharded search (healthy-shard
  merge, correct order, flagged) instead of failing it;
- serving-engine slice faults degrade to empty results, feed the
  circuit breaker, and shed load at the admission layer;
- a SIGKILLed prefetch worker is respawned and the loss trajectory is
  bit-identical to an undisturbed run;
- a worker that dies during the ready handshake fails fast with a
  clear error instead of hanging the trainer;
- a run killed mid-training resumes from its checkpoint with losses
  bit-identical to the uninterrupted run.
"""

import numpy as np
import pytest

from repro.graph.schema import Relation
from repro.models import make_model
from repro.retrieval import IndexSet, ShardedBackend, TwoLayerRetriever
from repro.retrieval.mnn import RelationSpace
from repro.serving.admission import AdmissionController
from repro.serving.breaker import CircuitBreaker
from repro.serving.engine import ServingEngine
from repro.testing.faults import FaultSpec, install, install_plan, reset
from repro.training import Trainer, TrainerConfig


@pytest.fixture(autouse=True)
def clean_injector():
    reset()
    yield
    reset()


def _space(num_sources=12, num_targets=800, dim=6, seed=3):
    rng = np.random.default_rng(seed)
    scale = 0.3
    return RelationSpace(
        relation=Relation.Q2A,
        src_embeddings=[scale * rng.standard_normal((num_sources, dim)),
                        scale * rng.standard_normal((num_sources, dim))],
        dst_embeddings=[scale * rng.standard_normal((num_targets, dim)),
                        scale * rng.standard_normal((num_targets, dim))],
        src_weights=np.full((num_sources, 2), 0.5),
        dst_weights=np.full((num_targets, 2), 0.5),
        kappas=[-0.5, 0.4],
    )


@pytest.fixture(scope="module")
def space():
    return _space()


def _healthy_reference(space, src_indices, k, excluded_ranges=()):
    """Brute-force top-k over targets outside the excluded shard ranges."""
    n = space.num_targets
    ids, dists = [], []
    for src in src_indices:
        all_d = space.pair_distance(np.full(n, src), np.arange(n))
        for lo, hi in excluded_ranges:
            all_d[lo:hi] = np.inf
        order = np.argsort(all_d, kind="stable")[:k]
        ids.append(order)
        dists.append(all_d[order])
    return np.array(ids), np.array(dists)


class TestDegradedShardedSearch:
    SRC = np.array([0, 3, 7, 11])

    def _backend(self, space, **kwargs):
        kwargs.setdefault("num_shards", 4)
        return ShardedBackend(**kwargs).build(space)

    def test_dead_shard_merge_matches_healthy_exact(self, space):
        backend = self._backend(space)
        install(FaultSpec(site="shard.search", match={"shard": 2}))
        ids, dists = backend.search(self.SRC, k=10)
        dead = backend.shard_bounds[2]
        ref_ids, ref_dists = _healthy_reference(space, self.SRC, k=10,
                                                excluded_ranges=[dead])
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_allclose(dists, ref_dists)
        # never empty, never out of order, dead shard fully excluded
        assert np.all(np.diff(dists, axis=1) >= 0)
        assert not np.any((ids >= dead[0]) & (ids < dead[1]))
        assert backend.last_degraded
        assert backend.last_failed_shards == [2]
        assert backend.degraded_searches == 1
        assert backend.shard_errors[2] >= 1

    def test_healthy_search_flags_nothing(self, space):
        backend = self._backend(space)
        ids, dists = backend.search(self.SRC, k=10)
        ref_ids, ref_dists = _healthy_reference(space, self.SRC, k=10)
        np.testing.assert_array_equal(ids, ref_ids)
        assert not backend.last_degraded
        assert backend.degraded_searches == 0

    def test_transient_fault_recovered_by_retry(self, space):
        backend = self._backend(space, shard_retries=1)
        install(FaultSpec(site="shard.search", match={"shard": 1},
                          max_fires=1))
        ids, dists = backend.search(self.SRC, k=10)
        ref_ids, _ = _healthy_reference(space, self.SRC, k=10)
        np.testing.assert_array_equal(ids, ref_ids)
        assert not backend.last_degraded
        assert backend.shard_errors[1] == 1  # the fault did fire

    def test_hung_shard_counts_as_timeout(self, space):
        backend = self._backend(space)
        install(FaultSpec(site="shard.search", mode="hang", delay=0.0,
                          match={"shard": 0}))
        backend.search(self.SRC, k=10)
        assert backend.last_degraded
        assert backend.shard_timeouts[0] >= 1

    def test_all_shards_dead_raises(self, space):
        backend = self._backend(space)
        install(FaultSpec(site="shard.search"))
        with pytest.raises(RuntimeError, match="all"):
            backend.search(self.SRC, k=10)

    def test_outcome_callback_feeds_observer(self, space):
        backend = self._backend(space)
        outcomes = []
        backend.on_shard_outcome = lambda shard, ok: outcomes.append(
            (shard, ok))
        install(FaultSpec(site="shard.search", match={"shard": 3}))
        backend.search(self.SRC, k=10)
        assert (3, False) in outcomes
        assert sum(1 for _, ok in outcomes if ok) == 3
        health = backend.health()
        assert health["degraded_searches"] == 1
        assert health["last_failed_shards"] == [3]


class TestCircuitBreaker:
    def test_trips_at_threshold_and_sheds(self):
        breaker = CircuitBreaker(window=8, threshold=0.5, probe_every=4,
                                 min_samples=4)
        for _ in range(4):
            breaker.record(False)
        assert breaker.is_open
        allowed = [breaker.allow() for _ in range(8)]
        assert allowed.count(True) == 2  # every 4th call probes
        assert breaker.summary()["trips"] == 1

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(window=8, threshold=0.5, probe_every=2,
                                 min_samples=4)
        for _ in range(4):
            breaker.record(False)
        assert breaker.is_open
        breaker.record(True)  # the probe came back healthy
        assert not breaker.is_open
        assert all(breaker.allow() for _ in range(8))

    def test_opens_on_high_rate_stays_closed_on_low(self):
        hot = CircuitBreaker(window=16, threshold=0.5, min_samples=8)
        for i in range(32):
            hot.record(i % 4 == 0)  # 75% error rate
        assert hot.is_open
        cool = CircuitBreaker(window=16, threshold=0.5, min_samples=8)
        for i in range(32):
            cool.record(i % 4 != 0)  # 25% error rate
        assert not cool.is_open


@pytest.fixture(scope="module")
def served_model(train_graph):
    model = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                       seed=9)
    Trainer(model, TrainerConfig(steps=15, batch_size=32, seed=9)).train()
    return model


@pytest.fixture(scope="module")
def retriever(served_model):
    index_set = IndexSet(served_model, top_k=10).build()
    return TwoLayerRetriever(index_set, expansion_k=5, ads_per_key=5)


class TestEngineDegradation:
    QUERIES = list(range(16))
    PRECLICKS = [[] for _ in range(16)]

    def test_slice_fault_degrades_only_its_requests(self, retriever):
        healthy = ServingEngine(retriever, max_batch_size=16, num_shards=4)
        expected = healthy.serve(self.QUERIES, self.PRECLICKS, k=5)

        engine = ServingEngine(retriever, max_batch_size=16, num_shards=4)
        install(FaultSpec(site="engine.slice", match={"slice": 1}))
        results = engine.serve(self.QUERIES, self.PRECLICKS, k=5)
        assert engine.stats.degraded
        assert engine.stats.degraded_requests == 4
        assert engine.stats.degraded_batches == 1
        for i, (got, want) in enumerate(zip(results, expected)):
            if 4 <= i < 8:  # slice 1 of 4 over 16 requests
                assert got.ads.size == 0
            else:
                np.testing.assert_array_equal(got.ads, want.ads)

    def test_slice_retry_recovers(self, retriever):
        healthy = ServingEngine(retriever, max_batch_size=16, num_shards=4)
        expected = healthy.serve(self.QUERIES, self.PRECLICKS, k=5)
        engine = ServingEngine(retriever, max_batch_size=16, num_shards=4,
                               slice_retries=1)
        install(FaultSpec(site="engine.slice", match={"slice": 1},
                          max_fires=1))
        results = engine.serve(self.QUERIES, self.PRECLICKS, k=5)
        assert not engine.stats.degraded
        assert engine.stats.slice_errors == 1
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got.ads, want.ads)

    def test_breaker_trips_and_admission_sheds(self, retriever):
        breaker = CircuitBreaker(window=8, threshold=0.5, probe_every=64,
                                 min_samples=4)
        engine = ServingEngine(retriever, max_batch_size=4, num_shards=1,
                               breaker=breaker)
        controller = AdmissionController(engine, max_queue=64,
                                         deadline_ms=1e9, max_batch=4)
        install(FaultSpec(site="engine.slice"))
        arrival = 0.0
        for i in range(32):
            arrival += 0.001
            controller.offer(arrival, i % 16, [])
        controller.drain()
        assert breaker.is_open
        assert controller.stats.shed_breaker > 0
        assert engine.stats.degraded

    def test_hot_swap_preserves_in_flight_results(self, retriever):
        """A swap between batches changes the pointer, not past answers."""
        engine = ServingEngine(retriever, max_batch_size=8, num_shards=2)
        before = engine.serve(self.QUERIES[:8], self.PRECLICKS[:8], k=5)
        engine.swap_retriever(retriever, generation=5)
        assert engine.generation == 5
        assert engine.stats.swaps == 1
        after = engine.serve(self.QUERIES[:8], self.PRECLICKS[:8], k=5)
        for got, want in zip(after, before):
            np.testing.assert_array_equal(got.ads, want.ads)
        # the cache was cleared on swap: the second pass re-missed
        assert engine.stats.cache_misses >= 16


class TestWorkerChaos:
    @staticmethod
    def _trainer(graph, workers, checkpoint_every=0):
        model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                           seed=2)
        config = TrainerConfig(steps=6, batch_size=16, seed=2,
                               prefetch_workers=workers,
                               checkpoint_every=checkpoint_every)
        return Trainer(model, config)

    def test_killed_worker_respawns_and_losses_unchanged(self, train_graph):
        # reference: the producer-driven loop, inline (payloads are
        # (seed, step)-pure, so worker topology cannot matter)
        reference = self._trainer(train_graph, workers=0,
                                  checkpoint_every=5).train()
        assert reference.worker_deaths == 0

        install_plan([FaultSpec(site="prefetch.worker", mode="kill",
                                match={"worker": 0}, after=1, max_fires=1)])
        chaotic = self._trainer(train_graph, workers=2).train()
        assert chaotic.worker_deaths == 1
        assert chaotic.worker_respawns == 1
        assert chaotic.losses == reference.losses

    def test_handshake_death_fails_fast_with_clear_error(self, train_graph):
        install_plan([FaultSpec(site="prefetch.worker.start", mode="kill",
                                match={"worker": 0})])
        trainer = self._trainer(train_graph, workers=1)
        producer = trainer.make_producer()
        with pytest.raises(RuntimeError, match="ready handshake"):
            with producer:
                pass

    def test_respawn_budget_is_finite(self, train_graph):
        install_plan([FaultSpec(site="prefetch.worker", mode="kill")])
        trainer = self._trainer(train_graph, workers=1)
        producer = trainer.make_producer()
        producer.max_respawns = 0
        with pytest.raises(RuntimeError, match="respawn budget"):
            with producer:
                list(producer)


class TestCheckpointResume:
    @staticmethod
    def _trainer(graph, checkpoint_path=None, **overrides):
        model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                           seed=4)
        params = dict(steps=8, batch_size=16, seed=4, checkpoint_every=3)
        params.update(overrides)
        return Trainer(model, TrainerConfig(**params),
                       checkpoint_path=checkpoint_path)

    def _crash_at(self, trainer, step):
        original = trainer._accumulate_micro
        calls = [0]

        def crashy(next_micro):
            if calls[0] == step:
                raise RuntimeError("simulated crash")
            calls[0] += 1
            return original(next_micro)

        trainer._accumulate_micro = crashy

    def test_resume_is_bit_identical(self, train_graph, tmp_path):
        ckpt = tmp_path / "checkpoint.npz"
        reference = self._trainer(train_graph, tmp_path / "ref.npz").train()
        assert not (tmp_path / "ref.npz").exists()  # deleted on completion
        assert reference.checkpoints_written == 2

        crashed = self._trainer(train_graph, ckpt)
        self._crash_at(crashed, step=5)
        with pytest.raises(RuntimeError, match="simulated crash"):
            crashed.train()
        assert ckpt.exists()  # checkpoint from step 3 survived the crash

        resumed = self._trainer(train_graph, ckpt)
        at = resumed.restore_checkpoint()
        assert at == 3
        report = resumed.train()
        assert report.resumed_from_step == 3
        assert report.steps == 5
        assert report.losses == reference.losses[3:]
        assert resumed.loss_history == reference.losses
        assert not ckpt.exists()

    def test_fingerprint_mismatch_rejected(self, train_graph, tmp_path):
        ckpt = tmp_path / "checkpoint.npz"
        trainer = self._trainer(train_graph, ckpt)
        trainer.train(steps=2)
        trainer.save_checkpoint()
        other = self._trainer(train_graph, ckpt, seed=5)
        with pytest.raises(ValueError, match="different config"):
            other.restore_checkpoint()

    def test_topology_excluded_from_fingerprint(self, train_graph, tmp_path):
        ckpt = tmp_path / "checkpoint.npz"
        trainer = self._trainer(train_graph, ckpt)
        trainer.train(steps=2)
        trainer.save_checkpoint()
        # more workers is a deployment decision, not a training change
        resumed = self._trainer(train_graph, ckpt, prefetch_workers=2)
        assert resumed.restore_checkpoint() == 2

    def test_checkpoint_requires_batched_plane(self, train_graph):
        with pytest.raises(ValueError, match="batched"):
            self._trainer(train_graph, data_plane="looped")

    def test_checkpoint_must_align_with_plan_refresh(self, train_graph):
        with pytest.raises(ValueError, match="plan_refresh"):
            self._trainer(train_graph, checkpoint_every=3, plan_refresh=2)
