"""Property-based and unit tests for the κ-stereographic operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Parameter, Tensor, ops
from repro.geometry import stereographic as stereo
from repro.geometry.fast import (
    artan_k_numpy,
    pairwise_dist,
    rowwise_dist,
    tan_k_numpy,
)

KAPPAS = [-1.5, -1.0, -0.3, 0.0, 0.4, 1.0, 1.5]

finite_vectors = st.lists(
    st.floats(min_value=-0.4, max_value=0.4, allow_nan=False), min_size=3,
    max_size=3)
curvatures = st.floats(min_value=-1.5, max_value=1.5, allow_nan=False)


class TestTrigonometry:
    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_tan_artan_inverse(self, kappa):
        x = np.linspace(-0.8, 0.8, 9)
        t = stereo.tan_k(Tensor(x), kappa)
        back = stereo.artan_k(t, kappa)
        assert np.allclose(back.data, x, atol=1e-8)

    def test_tan_k_zero_curvature_is_identityish(self):
        x = np.linspace(-1, 1, 5)
        assert np.allclose(stereo.tan_k(Tensor(x), 0.0).data, x)

    def test_tan_k_continuous_across_zero(self):
        # values at κ=±tol should agree with the Taylor branch to O(κ²)
        x = Tensor(np.array([0.3]))
        near = 2e-5
        low = stereo.tan_k(x, -near).data
        mid = stereo.tan_k(x, 0.0).data
        high = stereo.tan_k(x, near).data
        assert abs(low - mid) < 1e-5
        assert abs(high - mid) < 1e-5

    def test_tan_k_matches_tanh_formula(self):
        x = np.array([0.5])
        out = stereo.tan_k(Tensor(x), -1.0).data
        assert np.allclose(out, np.tanh(0.5))

    def test_tan_k_matches_tan_formula(self):
        x = np.array([0.5])
        out = stereo.tan_k(Tensor(x), 1.0).data
        assert np.allclose(out, np.tan(0.5))

    def test_numpy_kernels_match_tensor_ops(self):
        x = np.linspace(-0.7, 0.7, 11)
        for kappa in KAPPAS:
            assert np.allclose(tan_k_numpy(x, kappa),
                               stereo.tan_k(Tensor(x), kappa).data, atol=1e-12)
            assert np.allclose(artan_k_numpy(x, kappa),
                               stereo.artan_k(Tensor(x), kappa).data, atol=1e-12)


class TestMobiusAddition:
    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_zero_is_identity(self, kappa):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(scale=0.2, size=(5, 3)))
        zero = Tensor(np.zeros((5, 3)))
        out = stereo.mobius_add(x, zero, kappa)
        assert np.allclose(out.data, x.data, atol=1e-10)
        out2 = stereo.mobius_add(zero, x, kappa)
        assert np.allclose(out2.data, x.data, atol=1e-10)

    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_left_inverse(self, kappa):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(scale=0.2, size=(5, 3)))
        out = stereo.mobius_add(-x, x, kappa)
        assert np.allclose(out.data, 0.0, atol=1e-9)

    def test_euclidean_limit_is_addition(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(4, 3)))
        y = Tensor(rng.normal(size=(4, 3)))
        out = stereo.mobius_add(x, y, 0.0)
        assert np.allclose(out.data, x.data + y.data, atol=1e-12)

    @given(finite_vectors, finite_vectors, curvatures)
    @settings(max_examples=60, deadline=None)
    def test_result_stays_in_ball_for_hyperbolic(self, xs, ys, kappa):
        if kappa >= -1e-4:
            return
        radius = 1.0 / np.sqrt(-kappa)
        x = Tensor(np.asarray([xs]) * 0.8)
        y = Tensor(np.asarray([ys]) * 0.8)
        out = stereo.mobius_add(x, y, kappa)
        assert np.linalg.norm(out.data) <= radius + 1e-6


class TestExpLog:
    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_roundtrip(self, kappa):
        rng = np.random.default_rng(3)
        v = rng.normal(scale=0.3, size=(10, 4))
        point = stereo.expmap0(Tensor(v), kappa)
        back = stereo.logmap0(point, kappa)
        assert np.allclose(back.data, v, atol=1e-7)

    @given(finite_vectors, curvatures)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, vs, kappa):
        v = np.asarray([vs])
        point = stereo.expmap0(Tensor(v), kappa)
        back = stereo.logmap0(point, kappa)
        assert np.allclose(back.data, v, atol=1e-6)

    def test_expmap0_at_origin(self):
        out = stereo.expmap0(Tensor(np.zeros((2, 3))), -1.0)
        assert np.allclose(out.data, 0.0)


class TestDistance:
    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_self_distance_zero(self, kappa):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(scale=0.2, size=(5, 3)))
        d = stereo.dist_k(x, x, kappa)
        assert np.allclose(d.data, 0.0, atol=1e-6)

    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_symmetry(self, kappa):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(scale=0.2, size=(5, 3)))
        y = Tensor(rng.normal(scale=0.2, size=(5, 3)))
        dxy = stereo.dist_k(x, y, kappa).data
        dyx = stereo.dist_k(y, x, kappa).data
        assert np.allclose(dxy, dyx, atol=1e-9)

    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_non_negative(self, kappa):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(scale=0.3, size=(8, 3)))
        y = Tensor(rng.normal(scale=0.3, size=(8, 3)))
        assert np.all(stereo.dist_k(x, y, kappa).data >= -1e-12)

    def test_euclidean_limit_is_twice_euclidean(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=(6, 3))
        d = stereo.dist_k(Tensor(x), Tensor(y), 0.0).data[..., 0]
        assert np.allclose(d, 2 * np.linalg.norm(x - y, axis=-1), atol=1e-9)

    @given(finite_vectors, finite_vectors, finite_vectors, curvatures)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, xs, ys, zs, kappa):
        x = Tensor(np.asarray([xs]))
        y = Tensor(np.asarray([ys]))
        z = Tensor(np.asarray([zs]))
        dxy = float(stereo.dist_k(x, y, kappa).data[0, 0])
        dyz = float(stereo.dist_k(y, z, kappa).data[0, 0])
        dxz = float(stereo.dist_k(x, z, kappa).data[0, 0])
        assert dxz <= dxy + dyz + 1e-7


class TestFastKernels:
    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_pairwise_matches_tensor_distance(self, kappa):
        rng = np.random.default_rng(8)
        x = rng.normal(scale=0.25, size=(4, 5))
        y = rng.normal(scale=0.25, size=(7, 5))
        fast = pairwise_dist(x, y, kappa)
        for i in range(4):
            for j in range(7):
                slow = stereo.dist_k(Tensor(x[i:i + 1]), Tensor(y[j:j + 1]),
                                     kappa).data[0, 0]
                assert np.isclose(fast[i, j], slow, atol=1e-8), (i, j, kappa)

    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_rowwise_matches_pairwise_diagonal(self, kappa):
        rng = np.random.default_rng(9)
        x = rng.normal(scale=0.25, size=(6, 4))
        y = rng.normal(scale=0.25, size=(6, 4))
        row = rowwise_dist(x, y, kappa)
        full = pairwise_dist(x, y, kappa)
        assert np.allclose(row, np.diag(full), atol=1e-10)

    def test_pairwise_self_distance_zero(self):
        rng = np.random.default_rng(10)
        x = rng.normal(scale=0.25, size=(5, 4))
        d = pairwise_dist(x, x, -1.0)
        assert np.allclose(np.diag(d), 0.0, atol=1e-6)


class TestProjection:
    def test_hyperbolic_projection_respects_radius(self):
        kappa = -1.0
        x = Tensor(np.array([[5.0, 0.0, 0.0]]))
        out = stereo.project(x, kappa)
        assert np.linalg.norm(out.data) <= 1.0

    def test_projection_noop_inside_ball(self):
        x = Tensor(np.array([[0.1, 0.2, 0.0]]))
        out = stereo.project(x, -1.0)
        assert np.allclose(out.data, x.data)

    def test_projection_noop_for_sphere_and_flat(self):
        x = Tensor(np.array([[5.0, 5.0, 5.0]]))
        for kappa in (0.0, 1.0):
            assert np.allclose(stereo.project(x, kappa).data, x.data)


class TestCurvatureGradients:
    @pytest.mark.parametrize("kappa0", [-0.8, 0.9])
    def test_distance_gradient_wrt_kappa(self, kappa0):
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(scale=0.2, size=(4, 3)))
        y = Tensor(rng.normal(scale=0.2, size=(4, 3)))
        kappa = Parameter(np.asarray(kappa0))
        out = ops.sum(stereo.dist_k(x, y, kappa))
        out.backward()
        analytic = float(kappa.grad)
        eps = 1e-6
        kappa.data[...] = kappa0 + eps
        up = ops.sum(stereo.dist_k(x, y, kappa)).item()
        kappa.data[...] = kappa0 - eps
        down = ops.sum(stereo.dist_k(x, y, kappa)).item()
        numeric = (up - down) / (2 * eps)
        assert np.isclose(analytic, numeric, atol=1e-5)


class TestFermiDirac:
    def test_monotone_decreasing_in_distance(self):
        d = Tensor(np.linspace(0, 5, 10))
        sim = stereo.fermi_dirac(d, radius=2.0, temperature=2.0).data
        assert np.all(np.diff(sim) < 0)

    def test_radius_is_half_probability_point(self):
        sim = stereo.fermi_dirac(Tensor(np.array([2.0])), radius=2.0,
                                 temperature=3.0)
        assert np.isclose(sim.data[0], 0.5)
