"""Tests for the behaviour-log simulator and entity universe."""

import numpy as np
import pytest

from repro.common import PAD
from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.data.logs import merge_logs
from repro.graph.schema import NodeType


class TestUniverse:
    def test_entity_counts_match_config(self, simulator, universe):
        cfg = simulator.config
        assert len(universe.queries) == cfg.num_queries
        assert len(universe.items) == cfg.num_items
        assert len(universe.ads) == cfg.num_ads

    def test_item_ad_categories_are_leaves(self, universe):
        tree = universe.category_tree
        assert all(tree.is_leaf(c) for c in universe.items.category)
        assert all(tree.is_leaf(c) for c in universe.ads.category)

    def test_queries_span_multiple_depths(self, universe):
        tree = universe.category_tree
        depths = {tree.depth[c] for c in universe.queries.category}
        assert len(depths) >= 2, "queries should include broad and specific"

    def test_terms_lie_on_category_path(self, universe):
        tree = universe.category_tree
        per_cat = (universe.vocab_size // len(tree))
        for q in range(0, len(universe.queries), 37):
            cat = int(universe.queries.category[q])
            allowed = set()
            for node in tree.path(cat):
                allowed.update(range(node * per_cat, (node + 1) * per_cat))
            terms = [t for t in universe.queries.terms[q] if t != PAD]
            assert terms, "queries must have at least one term"
            assert set(terms) <= allowed

    def test_feature_tables_shapes(self, universe):
        feats = universe.features()
        assert feats[NodeType.QUERY]["terms"].shape[0] == len(universe.queries)
        assert feats[NodeType.AD]["bid_words"].shape[0] == len(universe.ads)

    def test_vocab_sizes_cover_feature_values(self, universe):
        feats = universe.features()
        sizes = universe.feature_vocab_sizes()
        for node_type, fields in feats.items():
            for field, values in fields.items():
                assert values.max() < sizes[node_type][field]

    def test_ads_have_positive_prices(self, universe):
        assert np.all(universe.ads.price_per_click > 0)


class TestLogs:
    def test_reproducible_from_seed(self):
        cfg = SimulatorConfig(num_queries=50, num_items=80, num_ads=20,
                              num_users=30, seed=5)
        log_a = SponsoredSearchSimulator(cfg).simulate_day(0)
        log_b = SponsoredSearchSimulator(cfg).simulate_day(0)
        assert len(log_a) == len(log_b)
        for sa, sb in zip(log_a, log_b):
            assert sa.query == sb.query
            assert sa.clicks == sb.clicks

    def test_sessions_reference_valid_entities(self, simulator, daily_logs):
        cfg = simulator.config
        for session in daily_logs[0]:
            assert 0 <= session.query < cfg.num_queries
            for ref in session.clicks:
                bound = {NodeType.ITEM: cfg.num_items,
                         NodeType.AD: cfg.num_ads}[ref.node_type]
                assert 0 <= ref.index < bound

    def test_sessions_grouped_by_user(self, daily_logs):
        users = [s.user for s in daily_logs[0]]
        # each user appears in one contiguous run
        seen = set()
        previous = None
        for user in users:
            if user != previous:
                assert user not in seen
                seen.add(user)
            previous = user

    def test_clicks_obey_locality(self, simulator, daily_logs):
        """Most clicks land in or near the query's category subtree."""
        universe = simulator.universe
        tree = universe.category_tree
        near, total = 0, 0
        for session in daily_logs[0]:
            q_cat = int(universe.queries.category[session.query])
            for ref in session.clicks:
                cat = {NodeType.ITEM: universe.items.category,
                       NodeType.AD: universe.ads.category}[ref.node_type]
                leaf = int(cat[ref.index])
                lca = tree.lowest_common_ancestor(q_cat, leaf)
                if lca != 0:  # share a non-root ancestor
                    near += 1
                total += 1
        assert near / total > 0.5

    def test_user_session_runs(self, daily_logs):
        runs = list(daily_logs[0].user_session_runs())
        assert sum(len(r) for r in runs) == len(daily_logs[0])
        for run in runs:
            assert len({s.user for s in run}) == 1

    def test_click_counts(self, daily_logs):
        counts = daily_logs[0].click_counts()
        assert counts
        assert all(v >= 1 for v in counts.values())
        total_clicks = sum(len(s.clicks) for s in daily_logs[0])
        assert sum(counts.values()) == total_clicks

    def test_merge_logs(self, daily_logs):
        merged = merge_logs(daily_logs[:2])
        assert len(merged) == len(daily_logs[0]) + len(daily_logs[1])
        assert merged.day == daily_logs[1].day

    def test_different_days_differ(self, daily_logs):
        q0 = [s.query for s in daily_logs[0]]
        q1 = [s.query for s in daily_logs[1]]
        assert q0 != q1
