"""Shared fixtures: a small simulated platform and its graphs.

Session-scoped so the whole suite pays graph construction once.
"""

import numpy as np
import pytest

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.graph import build_graph


SMALL_CONFIG = SimulatorConfig(
    num_queries=220, num_items=320, num_ads=90, num_users=160,
    tree_depth=3, tree_branching=2, seed=11)


@pytest.fixture(scope="session")
def simulator():
    return SponsoredSearchSimulator(SMALL_CONFIG)


@pytest.fixture(scope="session")
def universe(simulator):
    return simulator.universe


@pytest.fixture(scope="session")
def daily_logs(simulator):
    return simulator.simulate_days(3)


@pytest.fixture(scope="session")
def train_graph(universe, daily_logs):
    return build_graph(universe, daily_logs[:1])


@pytest.fixture(scope="session")
def next_graph(universe, daily_logs):
    return build_graph(universe, daily_logs[1:2])


@pytest.fixture
def rng():
    return np.random.default_rng(123)
