"""Tests for offline metrics and the A/B test simulator."""

import numpy as np
import pytest

from repro.data.logs import BehaviorLog, Session
from repro.evaluation import (
    ABTestConfig,
    auc_from_scores,
    evaluate_ranking,
    ground_truth_from_log,
    hitrate_at_k,
    ndcg_at_k,
    next_auc,
    run_ab_test,
)
from repro.graph.schema import NodeRef, NodeType, Relation


class TestAUC:
    def test_perfect_separation(self):
        assert auc_from_scores(np.array([3.0, 4.0]), np.array([1.0, 2.0])) == 1.0

    def test_inverted_separation(self):
        assert auc_from_scores(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        auc = auc_from_scores(rng.normal(size=2000), rng.normal(size=2000))
        assert 0.47 < auc < 0.53

    def test_ties_average(self):
        auc = auc_from_scores(np.array([1.0]), np.array([1.0]))
        assert auc == 0.5

    def test_empty_inputs_nan(self):
        assert np.isnan(auc_from_scores(np.array([]), np.array([1.0])))

    def test_matches_sklearn_style_definition(self):
        # AUC = P(pos > neg) + 0.5 P(pos == neg), brute-force comparison
        rng = np.random.default_rng(1)
        pos = rng.normal(loc=0.5, size=50)
        neg = rng.normal(size=80)
        expected = np.mean([(p > n) + 0.5 * (p == n)
                            for p in pos for n in neg])
        assert np.isclose(auc_from_scores(pos, neg), expected, atol=1e-12)


class TestNextAUC:
    def test_trained_model_beats_random_scorer(self, next_graph, rng):
        def random_scorer(relation, src, dst):
            return rng.normal(size=len(np.asarray(src)))

        auc = next_auc(random_scorer, next_graph, num_samples=200, seed=0)
        assert 40.0 < auc < 60.0

    def test_oracle_scorer_wins(self, next_graph, universe):
        """Scoring by category match should beat random clearly."""
        tree = universe.category_tree

        def oracle(relation, src, dst):
            src_cats = next_graph.categories[relation.source_type][np.asarray(src)]
            dst_cats = next_graph.categories[relation.target_type][np.asarray(dst)]
            return np.array([-tree.tree_distance(int(a), int(b))
                             for a, b in zip(src_cats, dst_cats)], dtype=float)

        auc = next_auc(oracle, next_graph, num_samples=300, seed=0)
        assert auc > 70.0


class TestRankingMetrics:
    def test_hitrate(self):
        assert hitrate_at_k([1, 2, 3], [2, 9], k=3) == 0.5
        assert hitrate_at_k([1, 2], [3], k=2) == 0.0
        assert np.isnan(hitrate_at_k([1], [], k=1))

    def test_ndcg_perfect_ranking(self):
        assert ndcg_at_k([5, 6, 7], [5, 6, 7], k=3) == pytest.approx(1.0)

    def test_ndcg_order_matters(self):
        good = ndcg_at_k([5, 1, 2], [5], k=3)
        bad = ndcg_at_k([1, 2, 5], [5], k=3)
        assert good > bad

    def test_evaluate_ranking_oracle(self):
        truth = {0: [10, 11], 1: [12]}

        def retrieve(queries, k):
            lookup = {0: [10, 11] + list(range(50, 50 + k)),
                      1: [12] + list(range(70, 70 + k))}
            return np.array([lookup[int(q)][:k] for q in queries])

        metrics = evaluate_ranking(retrieve, truth, ks=(2,))
        assert metrics.hitrate[2] == 1.0
        assert metrics.ndcg[2] == pytest.approx(1.0)
        assert metrics.num_queries == 2

    def test_evaluate_ranking_row_scale(self):
        truth = {0: [1]}
        metrics = evaluate_ranking(
            lambda q, k: np.array([[1] + [99] * (k - 1)]), truth, ks=(5,))
        row = metrics.row()
        assert row["hr@5"] == 100.0

    def test_max_queries_subsamples(self):
        truth = {i: [i] for i in range(50)}
        calls = {}

        def retrieve(queries, k):
            calls["n"] = len(queries)
            return np.zeros((len(queries), k), dtype=int)

        evaluate_ranking(retrieve, truth, ks=(1,), max_queries=10)
        assert calls["n"] == 10


class TestGroundTruth:
    def test_sorted_by_click_count(self):
        log = BehaviorLog(day=1, sessions=[
            Session(0, 7, [NodeRef(NodeType.ITEM, 1)]),
            Session(1, 7, [NodeRef(NodeType.ITEM, 2),
                           NodeRef(NodeType.ITEM, 2)]),
            Session(2, 7, [NodeRef(NodeType.ITEM, 2)]),
        ])
        truth = ground_truth_from_log(log, NodeType.ITEM)
        assert truth[7] == [2, 1]

    def test_filters_by_type(self):
        log = BehaviorLog(day=1, sessions=[
            Session(0, 3, [NodeRef(NodeType.AD, 4)]),
        ])
        assert ground_truth_from_log(log, NodeType.ITEM) == {}
        assert ground_truth_from_log(log, NodeType.AD) == {3: [4]}


class _FixedRetriever:
    """Serves a fixed ad ranking regardless of the request."""

    def __init__(self, ads):
        self._ads = np.asarray(ads)

    def retrieve(self, query, preclicks, k):
        class R:
            pass

        r = R()
        r.ads = self._ads[:k]
        return r


class TestABTest:
    def test_relevant_channel_beats_offtopic(self, universe):
        """A channel serving intent-matched ads must lift CTR and RPM."""
        # control: always the same (mostly irrelevant) ads
        control = _FixedRetriever(np.arange(20))

        class OracleRetriever:
            def __init__(self, universe):
                self.by_leaf = {
                    leaf: np.flatnonzero(universe.ads.category == leaf)
                    for leaf in universe.category_tree.leaves}
                self.universe = universe

            def retrieve(self, query, preclicks, k):
                leaf = int(self.universe.queries.category[query])
                tree = self.universe.category_tree
                if not tree.is_leaf(leaf):
                    # broad query: descend to its first leaf
                    node = leaf
                    while not tree.is_leaf(node):
                        node = tree.children[node][0]
                    leaf = node
                pool = self.by_leaf.get(leaf, np.arange(k))

                class R:
                    pass

                r = R()
                if pool.size == 0:
                    pool = np.arange(k)
                r.ads = np.resize(pool, k)
                return r

        config = ABTestConfig(num_requests=250, seed=3)
        result = run_ab_test(universe, control, OracleRetriever(universe),
                             config)
        assert result.ctr_lift()["overall"] > 0
        assert result.rpm_lift()["overall"] > 0

    def test_identical_channels_have_zero_lift(self, universe):
        channel = _FixedRetriever(np.arange(20))
        config = ABTestConfig(num_requests=150, seed=1)
        result = run_ab_test(universe, channel, channel, config)
        assert result.ctr_lift()["overall"] == pytest.approx(0.0)
        assert result.rpm_lift()["overall"] == pytest.approx(0.0)

    def test_per_page_keys_present(self, universe):
        channel = _FixedRetriever(np.arange(20))
        result = run_ab_test(universe, channel, channel,
                             ABTestConfig(num_requests=20, num_pages=3))
        lift = result.ctr_lift()
        assert set(lift) == {"page 1", "page 2", "page 3", "overall"}

    def test_impressions_counted(self, universe):
        channel = _FixedRetriever(np.arange(20))
        config = ABTestConfig(num_requests=10, ads_per_page=4, num_pages=5)
        result = run_ab_test(universe, channel, channel, config)
        assert result.control.impressions.sum() == 10 * 20
