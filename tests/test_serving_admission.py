"""Admission layer: bounded queue, lanes, fill-or-deadline, calibration.

The calibration tests are the contract that makes the Erlang-C
:class:`ServingSimulator` a trustworthy capacity-planning tool:

- over a :class:`SyntheticService` with exponential draws the
  controller at ``max_batch=1`` *is* an M/M/c queue, and its measured
  mean wait must match ``erlang_c_wait`` within **±35%** (sampling
  noise of ~8k requests at a fixed seed — the documented tight band);
- with deterministic service it is M/D/c and must match the
  ``allen_cunneen_wait`` correction (``cs2=0``) within the same band;
- with the *real* :class:`ServingEngine` in the loop, measured service
  times are noisy on shared CI hardware, so the documented band is
  wide (**ratio in [0.2, 5]** at three sub-saturation loads) — the
  tight engine-backed agreement gate lives in
  ``benchmarks/bench_serving_async.py`` where thousands of requests
  amortise the noise.
"""

import numpy as np
import pytest

from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.serving import (
    AdmissionController,
    AdmissionStats,
    ServingEngine,
    SyntheticService,
    TrafficGenerator,
    allen_cunneen_wait,
    erlang_c_wait,
)
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def retriever(train_graph):
    model = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                       seed=23)
    Trainer(model, TrainerConfig(steps=12, batch_size=32, seed=23)).train()
    return TwoLayerRetriever(IndexSet(model, top_k=15).build(),
                             expansion_k=4, ads_per_key=4)


def det_service(mean=0.01, max_batch=1):
    return SyntheticService(mean, "deterministic", max_batch_size=max_batch)


class TestAdmissionQueue:
    def test_fill_dispatch(self):
        """A full batch dispatches at the max_batch-th arrival time."""
        ctrl = AdmissionController(det_service(), max_batch=4,
                                   deadline_ms=1e6, num_workers=1)
        for i, t in enumerate([0.0, 0.001, 0.002, 0.003]):
            assert ctrl.offer(t, query=i)
        ctrl.drain()
        # the batch went out at t=0.003, the arrival that filled it —
        # the waits say so even though the deadline was nowhere near
        assert ctrl.depth == 0
        assert ctrl.stats.batch_sizes == [4]
        assert ctrl.stats.queue_wait_seconds == pytest.approx(
            [0.003, 0.002, 0.001, 0.0])
        # deterministic service: 4 requests x 10 ms summed
        assert ctrl.stats.service_seconds == pytest.approx([0.04] * 4)

    def test_deadline_dispatch(self):
        """A partial batch goes out when the oldest budget is spent."""
        ctrl = AdmissionController(det_service(), max_batch=100,
                                   deadline_ms=20.0, num_workers=1)
        ctrl.offer(0.0, query=0)
        ctrl.offer(0.005, query=1)
        assert ctrl.depth == 2          # neither full nor expired yet
        ctrl.offer(0.05, query=2)       # advancing past 0.02 dispatches
        assert ctrl.stats.batch_sizes == [2]
        assert ctrl.stats.queue_wait_seconds == pytest.approx([0.02, 0.015])
        # the late request waits out its own deadline before drain
        ctrl.drain()
        assert ctrl.stats.batch_sizes == [2, 1]
        assert ctrl.stats.queue_wait_seconds[-1] == pytest.approx(0.02)

    def test_backpressure_shed_at_watermark(self):
        ctrl = AdmissionController(det_service(), max_queue=2, max_batch=100,
                                   deadline_ms=1e6, num_workers=1)
        admitted = [ctrl.offer(0.0, query=i) for i in range(5)]
        assert admitted == [True, True, False, False, False]
        assert ctrl.stats.admitted == 2
        assert ctrl.stats.shed_queue == 3
        assert ctrl.stats.shed_rate == pytest.approx(3 / 5)

    def test_priority_reservation(self):
        """priority_share of the queue only admits the paid lane."""
        ctrl = AdmissionController(det_service(), max_queue=4, max_batch=100,
                                   deadline_ms=1e6, priority_share=0.5)
        assert ctrl.offer(0.0, query=0, lane="organic")
        assert ctrl.offer(0.0, query=1, lane="organic")
        # organic stops at (1 - 0.5) * max_queue = 2...
        assert not ctrl.offer(0.0, query=2, lane="organic")
        # ...but paid fills the reserved half
        assert ctrl.offer(0.0, query=3, lane="paid")
        assert ctrl.offer(0.0, query=4, lane="paid")
        assert not ctrl.offer(0.0, query=5, lane="paid")
        assert ctrl.stats.shed_by_lane == {"paid": 1, "organic": 1}

    def test_strict_priority_dequeue(self):
        """Paid drains first even when organic arrived earlier."""
        ctrl = AdmissionController(det_service(), max_batch=3,
                                   deadline_ms=1e6, keep_results=True)
        ctrl.offer(0.0, query=0, lane="organic")
        ctrl.offer(0.001, query=1, lane="paid")
        ctrl.offer(0.002, query=2, lane="paid")
        ctrl.drain()
        lanes = [request.lane for request, _ in ctrl.results]
        assert lanes == ["paid", "paid", "organic"]

    def test_deadline_shed_when_workers_saturated(self):
        """Requests that outwaited their budget are dropped at dispatch."""
        ctrl = AdmissionController(det_service(mean=0.05), max_batch=1,
                                   deadline_ms=10.0, num_workers=1)
        ctrl.offer(0.0, query=0)        # dispatches at t=0, busy until 0.05
        ctrl.offer(0.001, query=1)      # expires at 0.011 < 0.05
        ctrl.offer(0.002, query=2)      # expires at 0.012 < 0.05
        ctrl.drain()
        assert ctrl.stats.served == 1
        assert ctrl.stats.shed_deadline == 2

    def test_served_wait_bounded_by_deadline(self, daily_logs):
        """Construction guarantee: an admitted+served wait <= deadline."""
        svc = SyntheticService(0.01, "exponential", seed=4)
        ctrl = AdmissionController(svc, max_queue=64, deadline_ms=25.0,
                                   max_batch=1, num_workers=2)
        traffic = TrafficGenerator(daily_logs[:1], seed=6)
        traffic.drive(ctrl, qps=1.5 * 2 / 0.01, duration=2.0)  # overloaded
        assert ctrl.stats.shed > 0
        assert max(ctrl.stats.queue_wait_seconds) <= 0.025 + 1e-12
        # latency of admitted requests = wait + its batch's service
        for wait, service, latency in zip(ctrl.stats.queue_wait_seconds,
                                          ctrl.stats.service_seconds,
                                          ctrl.stats.latency_seconds):
            assert latency == pytest.approx(wait + service)

    def test_arrivals_must_be_monotonic(self):
        ctrl = AdmissionController(det_service())
        ctrl.offer(1.0, query=0)
        with pytest.raises(ValueError, match="non-decreasing"):
            ctrl.offer(0.5, query=1)

    def test_unknown_lane_rejected(self):
        ctrl = AdmissionController(det_service())
        with pytest.raises(ValueError, match="lane"):
            ctrl.offer(0.0, query=0, lane="platinum")

    def test_validation(self):
        engine = det_service()
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(engine, max_queue=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            AdmissionController(engine, deadline_ms=0.0)
        with pytest.raises(ValueError, match="num_workers"):
            AdmissionController(engine, num_workers=0)
        with pytest.raises(ValueError, match="priority_share"):
            AdmissionController(engine, priority_share=1.5)
        with pytest.raises(ValueError, match="max_batch"):
            AdmissionController(engine, max_batch=0)

    def test_max_batch_adopts_engine_width(self):
        ctrl = AdmissionController(det_service(max_batch=7))
        assert ctrl.max_batch == 7

    def test_idle_stats_are_zero(self):
        stats = AdmissionStats()
        assert stats.shed_rate == 0.0
        assert stats.mean_batch_size == 0.0
        assert stats.mean_wait_seconds == 0.0
        assert stats.mean_latency_seconds == 0.0
        assert stats.wait_percentiles() == {"p50": 0.0, "p95": 0.0,
                                            "p99": 0.0}
        assert stats.latency_percentiles() == {"p50": 0.0, "p95": 0.0,
                                               "p99": 0.0}
        summary = stats.summary()
        assert summary["offered"] == 0 and summary["shed_rate"] == 0.0


class TestAdmissionOverEngine:
    def test_results_match_direct_retrieval(self, retriever, rng):
        """Admitted requests get the exact answers the engine would give."""
        engine = ServingEngine(retriever, max_batch_size=4)
        ctrl = AdmissionController(engine, max_batch=4, deadline_ms=1e6,
                                   keep_results=True, k=6)
        queries = rng.integers(100, size=12)
        preclicks = [list(rng.integers(40, size=2)) for _ in queries]
        for i, (query, items) in enumerate(zip(queries, preclicks)):
            ctrl.offer(0.001 * i, int(query), items)
        ctrl.drain()
        assert ctrl.stats.served == 12
        direct = retriever.retrieve_batch(queries, preclicks, k=6)
        by_request = {(int(q), tuple(p)): r
                      for q, p, r in zip(queries, preclicks, direct)}
        for request, result in ctrl.results:
            expected = by_request[(request.query,
                                   tuple(request.preclicks))]
            assert np.array_equal(result.ads, expected.ads)
            assert np.allclose(result.scores, expected.scores)

    def test_wait_grows_with_offered_load(self, retriever, daily_logs):
        engine = ServingEngine(retriever, max_batch_size=8, cache_size=512)
        traffic = TrafficGenerator(daily_logs[:1], seed=3)
        waits = []
        for rho, seed in ((0.2, 1), (0.95, 2)):
            ctrl = AdmissionController(engine, max_batch=1, deadline_ms=1e6,
                                       max_queue=10**6, num_workers=1)
            # the probe both warms the LRU and measures the service time
            probe = traffic.generate(qps=100.0, duration=0.5, seed=seed)
            service = self._mean_service(engine, probe)
            traffic.drive(ctrl, qps=rho / service, duration=200 * service,
                          seed=seed)
            waits.append(ctrl.stats.mean_wait_seconds)
        assert waits[0] < waits[1]

    @staticmethod
    def _mean_service(engine, requests):
        before_busy = engine.stats.total_busy_seconds
        before_n = engine.stats.requests
        for request in requests:
            engine.serve_batch([request.query], [request.preclicks])
        return ((engine.stats.total_busy_seconds - before_busy)
                / (engine.stats.requests - before_n))


class TestCalibration:
    """Simulator-vs-measured agreement — the capacity-planning contract."""

    #: documented tolerance: measured/predicted mean wait over a
    #: synthetic service, ~8k fixed-seed requests per load point
    SYNTHETIC_BAND = (0.65, 1.35)
    #: documented tolerance with the real engine in the loop at small
    #: request counts on shared hardware (tight gate: the async bench)
    ENGINE_BAND = (0.2, 5.0)
    LOADS = (0.5, 0.7, 0.85)

    def _measured_wait(self, daily_logs, service_model, qps, workers,
                       seed):
        ctrl = AdmissionController(service_model, max_queue=10**6,
                                   deadline_ms=1e9, max_batch=1,
                                   num_workers=workers)
        traffic = TrafficGenerator(daily_logs[:1], process="poisson",
                                   seed=seed)
        traffic.drive(ctrl, qps=qps, duration=8000.0 / qps)
        return ctrl.stats.mean_wait_seconds

    def test_mmc_agreement_with_erlang_c(self, daily_logs):
        """Exponential service at max_batch=1 is M/M/c: Erlang-C must hold."""
        service, workers = 0.01, 4
        for i, rho in enumerate(self.LOADS):
            qps = rho * workers / service
            svc = SyntheticService(service, "exponential", seed=40 + i)
            measured = self._measured_wait(daily_logs, svc, qps, workers,
                                           seed=50 + i)
            predicted = erlang_c_wait(qps, 1.0 / service, workers)
            ratio = measured / predicted
            assert self.SYNTHETIC_BAND[0] <= ratio <= self.SYNTHETIC_BAND[1], \
                "rho=%.2f: measured %.6fs vs Erlang-C %.6fs (ratio %.2f)" \
                % (rho, measured, predicted, ratio)

    def test_mdc_agreement_with_corrected_wait(self, daily_logs):
        """Deterministic service is M/D/c: the cs2=0 correction must hold."""
        service, workers = 0.01, 4
        for i, rho in enumerate(self.LOADS):
            qps = rho * workers / service
            svc = SyntheticService(service, "deterministic")
            measured = self._measured_wait(daily_logs, svc, qps, workers,
                                           seed=60 + i)
            predicted = allen_cunneen_wait(qps, 1.0 / service, workers,
                                           cs2=0.0)
            ratio = measured / predicted
            assert self.SYNTHETIC_BAND[0] <= ratio <= self.SYNTHETIC_BAND[1], \
                "rho=%.2f: measured %.6fs vs M/D/c %.6fs (ratio %.2f)" \
                % (rho, measured, predicted, ratio)
            # and the raw Erlang-C wait overpredicts a deterministic
            # service — the reason the correction exists
            assert measured < erlang_c_wait(qps, 1.0 / service, workers)

    def test_engine_backed_agreement(self, retriever, daily_logs):
        """Real engine in the loop at three sub-saturation loads.

        Wall-clock timing on a loaded host can push a single run
        outside the acceptance band, so each load gets up to three
        attempts over different arrival seeds — a real calibration bug
        fails all of them.
        """
        engine = ServingEngine(retriever, max_batch_size=4, cache_size=2048)
        traffic = TrafficGenerator(daily_logs[:1], process="poisson", seed=9)
        # warm the LRU so the service process is stationary-ish
        for request in traffic.generate(qps=100.0, duration=1.0):
            engine.serve_batch([request.query], [request.preclicks])
        workers = 2
        for i, rho in enumerate(self.LOADS):
            last_failure = None
            for attempt in range(3):
                ctrl = AdmissionController(engine, max_queue=10**6,
                                           deadline_ms=1e9, max_batch=1,
                                           num_workers=workers)
                probe = traffic.generate(qps=100.0, duration=0.5,
                                         seed=70 + i + 1000 * attempt)
                service = TestAdmissionOverEngine._mean_service(engine, probe)
                qps = rho * workers / service
                traffic.drive(ctrl, qps=qps, duration=300.0 / qps,
                              seed=80 + i + 1000 * attempt)
                samples = np.asarray(ctrl.stats.service_seconds)
                mean_service = float(samples.mean())
                cs2 = float(samples.var() / mean_service ** 2)
                predicted = allen_cunneen_wait(
                    ctrl.stats.served / (300.0 / qps), 1.0 / mean_service,
                    workers, cs2=cs2)
                ratio = ctrl.stats.mean_wait_seconds / predicted
                if self.ENGINE_BAND[0] <= ratio <= self.ENGINE_BAND[1]:
                    last_failure = None
                    break
                last_failure = (
                    "rho=%.2f: measured %.6fs vs corrected %.6fs (ratio "
                    "%.2f)" % (rho, ctrl.stats.mean_wait_seconds, predicted,
                               ratio))
            assert last_failure is None, last_failure
