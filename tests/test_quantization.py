"""Tests for the product-quantization ANN baseline."""

import numpy as np
import pytest

from repro.retrieval.quantization import (PQIndex, assign_to_centroids,
                                          recall_at_k, _kmeans)


class TestAssignToCentroids:
    def test_blocked_matches_full_broadcast(self):
        """Any block size gives bit-identical assignments to the naive
        full ``(n, k, dim)`` broadcast it replaces."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=(257, 6))
        centroids = rng.normal(size=(9, 6))
        d2 = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        full = np.argmin(d2, axis=1)
        for block_rows in (1, 7, 64, 257, 10_000):
            blocked = assign_to_centroids(data, centroids,
                                          block_rows=block_rows)
            assert np.array_equal(blocked, full)

    def test_default_block_bounds_memory(self):
        """The default block size caps the per-block tensor elements."""
        from repro.retrieval.quantization import _ASSIGN_BLOCK_ELEMENTS
        k, dim = 64, 16
        block_rows = max(1, _ASSIGN_BLOCK_ELEMENTS // (k * dim))
        assert block_rows * k * dim <= _ASSIGN_BLOCK_ELEMENTS


class TestKMeans:
    def test_centroids_shape(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 4))
        centroids = _kmeans(rng, data, k=8)
        assert centroids.shape == (8, 4)

    def test_k_capped_to_n(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(5, 3))
        centroids = _kmeans(rng, data, k=20)
        assert centroids.shape[0] == 5

    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal(loc=0.0, scale=0.05, size=(50, 2))
        b = rng.normal(loc=10.0, scale=0.05, size=(50, 2))
        centroids = _kmeans(rng, np.vstack([a, b]), k=2)
        norms = np.linalg.norm(centroids, axis=1)
        assert min(norms) < 1.0 and max(norms) > 13.0


class TestPQIndex:
    @pytest.fixture
    def db(self):
        rng = np.random.default_rng(2)
        return rng.normal(size=(300, 8))

    def test_requires_divisible_dim(self, db):
        with pytest.raises(ValueError):
            PQIndex(num_blocks=3).fit(db)

    def test_search_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PQIndex().search(np.zeros((1, 8)), k=3)

    def test_search_shapes_sorted(self, db):
        index = PQIndex(num_blocks=4, codebook_size=16, seed=0).fit(db)
        ids, dists = index.search(db[:5], k=7)
        assert ids.shape == (5, 7)
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_self_query_recalls_self(self, db):
        """A database vector's nearest neighbour should be itself (coded)."""
        index = PQIndex(num_blocks=4, codebook_size=32, seed=0).fit(db)
        ids, __ = index.search(db[:20], k=5)
        hits = sum(1 for i in range(20) if i in ids[i])
        assert hits >= 15

    def test_high_recall_on_euclidean_truth(self, db):
        rng = np.random.default_rng(3)
        queries = rng.normal(size=(20, 8))
        index = PQIndex(num_blocks=4, codebook_size=32, seed=0).fit(db)
        approx, __ = index.search(queries, k=10)
        d2 = ((queries[:, None, :] - db[None, :, :]) ** 2).sum(-1)
        exact = np.argsort(d2, axis=1)[:, :10]
        assert recall_at_k(approx, exact, 10) > 0.5

    def test_compression_ratio(self, db):
        index = PQIndex(num_blocks=4, codebook_size=16).fit(db)
        assert index.compression_ratio() == (8 * 8) / 4

    def test_k_capped(self, db):
        index = PQIndex(num_blocks=2, codebook_size=8, seed=0).fit(db)
        ids, __ = index.search(db[:2], k=10 ** 6)
        assert ids.shape[1] == db.shape[0]


class TestRecall:
    def test_recall_bounds(self):
        approx = np.array([[1, 2, 3]])
        exact = np.array([[1, 2, 3]])
        assert recall_at_k(approx, exact, 3) == 1.0
        assert recall_at_k(np.array([[7, 8, 9]]), exact, 3) == 0.0

    def test_partial_recall(self):
        approx = np.array([[1, 9, 8]])
        exact = np.array([[1, 2, 3]])
        assert recall_at_k(approx, exact, 3) == pytest.approx(1 / 3)
