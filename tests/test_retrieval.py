"""Tests for MNN search, inverted indices and two-layer retrieval."""

import numpy as np
import pytest

from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.retrieval import (
    IndexSet,
    MNNSearcher,
    RetrievalResult,
    TwoLayerRetriever,
)
from repro.retrieval.mnn import RelationSpace
from repro.serving import ServingSimulator, erlang_c_wait
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def model(train_graph):
    m = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                   seed=4)
    Trainer(m, TrainerConfig(steps=25, batch_size=32, seed=4)).train()
    return m


@pytest.fixture(scope="module")
def q2i_space(model):
    return RelationSpace.from_model(model, Relation.Q2I)


@pytest.fixture(scope="module")
def index_set(model):
    return IndexSet(model, top_k=20).build()


class TestRelationSpace:
    def test_shapes(self, q2i_space, train_graph):
        n_q = train_graph.num_nodes[NodeType.QUERY]
        n_i = train_graph.num_nodes[NodeType.ITEM]
        assert q2i_space.num_sources == n_q
        assert q2i_space.num_targets == n_i
        assert q2i_space.src_weights.shape == (n_q, 2)
        assert len(q2i_space.kappas) == 2

    def test_weights_normalised(self, q2i_space):
        assert np.allclose(q2i_space.src_weights.sum(axis=1), 1.0)
        assert np.allclose(q2i_space.dst_weights.sum(axis=1), 1.0)

    def test_same_type_relation_shares_arrays(self, model):
        space = RelationSpace.from_model(model, Relation.Q2Q)
        assert space.src_embeddings[0] is space.dst_embeddings[0]

    def test_pair_distance_nonnegative(self, q2i_space, rng):
        src = rng.integers(q2i_space.num_sources, size=20)
        dst = rng.integers(q2i_space.num_targets, size=20)
        d = q2i_space.pair_distance(src, dst)
        assert d.shape == (20,)
        assert np.all(d >= 0)


class TestMNNSearcher:
    def test_search_returns_sorted_topk(self, q2i_space):
        searcher = MNNSearcher(q2i_space)
        ids, dists = searcher.search(np.array([0, 1, 2]), k=5)
        assert ids.shape == (3, 5)
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_search_matches_exhaustive(self, q2i_space):
        """Top-1 from the searcher equals the argmin of pair distances."""
        searcher = MNNSearcher(q2i_space, block_size=64)
        src = np.array([3])
        ids, __ = searcher.search(src, k=1)
        all_d = q2i_space.pair_distance(
            np.full(q2i_space.num_targets, 3),
            np.arange(q2i_space.num_targets))
        assert ids[0, 0] == int(np.argmin(all_d))

    def test_threaded_matches_single(self, q2i_space):
        single = MNNSearcher(q2i_space, num_workers=1, block_size=50)
        multi = MNNSearcher(q2i_space, num_workers=4, block_size=50)
        src = np.arange(5)
        ids_a, dists_a = single.search(src, k=7)
        ids_b, dists_b = multi.search(src, k=7)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)

    def test_exclude_self_for_same_type(self, model):
        space = RelationSpace.from_model(model, Relation.Q2Q)
        searcher = MNNSearcher(space)
        src = np.arange(10)
        ids, __ = searcher.search(src, k=5, exclude_self=True)
        for row, query in enumerate(src):
            assert query not in ids[row]

    def test_k_capped_to_targets(self, q2i_space):
        searcher = MNNSearcher(q2i_space)
        ids, __ = searcher.search(np.array([0]), k=10 ** 6)
        assert ids.shape[1] == q2i_space.num_targets


class TestIndexSet:
    def test_builds_all_six(self, index_set):
        for relation in Relation:
            assert relation in index_set

    def test_lookup_shapes(self, index_set, train_graph):
        index = index_set[Relation.Q2A]
        ids, dists = index.lookup(0)
        assert ids.shape == dists.shape == (20,)
        ids5, __ = index.lookup(0, k=5)
        assert ids5.shape == (5,)

    def test_lookup_batch(self, index_set):
        ids, dists = index_set[Relation.Q2I].lookup_batch(np.array([0, 1]), 7)
        assert ids.shape == (2, 7)

    def test_results_within_target_range(self, index_set, train_graph):
        for relation in Relation:
            index = index_set[relation]
            n = train_graph.num_nodes[relation.target_type]
            assert index.ids.max() < n
            assert index.ids.min() >= 0

    def test_same_type_indices_exclude_self(self, index_set):
        for relation in (Relation.Q2Q, Relation.I2I):
            index = index_set[relation]
            keys = np.arange(index.num_keys)
            assert not np.any(index.ids == keys[:, None])

    def test_build_time_recorded(self, index_set):
        assert index_set.total_build_seconds > 0


class TestTwoLayerRetriever:
    @pytest.fixture(scope="class")
    def retriever(self, index_set):
        return TwoLayerRetriever(index_set, expansion_k=5, ads_per_key=5)

    def test_retrieval_returns_ranked_ads(self, retriever, train_graph):
        result = retriever.retrieve(0, [1, 2], k=10)
        assert isinstance(result, RetrievalResult)
        assert result.ads.size <= 10
        assert np.all(np.diff(result.scores) <= 1e-12)
        assert result.ads.max() < train_graph.num_nodes[NodeType.AD]

    def test_key_expansion_includes_original(self, retriever):
        query_keys, item_keys = retriever.expand_keys(3, [7])
        assert 3 in query_keys
        assert 7 in item_keys
        assert len(query_keys) > 1, "Q2Q expansion should add keys"

    def test_preclicks_extend_coverage(self, retriever):
        bare = retriever.retrieve(0, [], k=30)
        with_items = retriever.retrieve(0, [1, 2, 3], k=30)
        assert with_items.num_keys > bare.num_keys

    def test_no_duplicate_ads(self, retriever):
        result = retriever.retrieve(5, [4], k=40)
        assert len(set(result.ads.tolist())) == result.ads.size

    def test_retrieve_items_interface(self, retriever):
        items = retriever.retrieve_items(2, k=9)
        assert items.shape == (9,)


class TestServing:
    def test_erlang_zero_load(self):
        assert erlang_c_wait(0.0, 10.0, 4) == 0.0

    def test_erlang_unstable_is_infinite(self):
        assert erlang_c_wait(100.0, 10.0, 4) == float("inf")

    def test_erlang_wait_grows_with_load(self):
        waits = [erlang_c_wait(lam, 10.0, 4) for lam in (5.0, 20.0, 35.0)]
        assert waits[0] < waits[1] < waits[2]

    def test_simulator_sweep_shape(self, index_set):
        retriever = TwoLayerRetriever(index_set, expansion_k=3, ads_per_key=3)
        sim = ServingSimulator(retriever, num_workers=16)
        sim.measure_service_time([0, 1, 2], [[1], [2], [3]])
        assert sim.service_seconds > 0
        stats = sim.sweep([10, 100, 1000])
        assert len(stats) == 3
        times = [s.response_time_ms for s in stats]
        assert times[0] <= times[1] <= times[2]

    def test_service_time_required_before_sweep(self, index_set):
        retriever = TwoLayerRetriever(index_set)
        sim = ServingSimulator(retriever)
        with pytest.raises(RuntimeError):
            __ = sim.service_seconds

    def test_saturation_qps(self, index_set):
        retriever = TwoLayerRetriever(index_set, expansion_k=2, ads_per_key=2)
        sim = ServingSimulator(retriever, num_workers=8)
        sim.measure_service_time([0], [[1]])
        assert sim.saturation_qps() == pytest.approx(8 / sim.service_seconds)
