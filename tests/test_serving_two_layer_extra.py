"""Additional behavioural tests for the serving path.

These exercise scoring semantics the main retrieval tests don't cover:
score aggregation across multiple paths, Fermi-Dirac conversion in the
retriever, and configuration edges.
"""

import numpy as np
import pytest

from repro.graph.schema import Relation
from repro.retrieval.index import IndexSet, InvertedIndex
from repro.retrieval.two_layer import TwoLayerRetriever, _fermi


def _index(relation, ids, dists):
    return InvertedIndex(relation=relation, ids=np.asarray(ids),
                         distances=np.asarray(dists, dtype=float),
                         build_seconds=0.0)


class _StubIndexSet:
    """Hand-built index set with known contents."""

    def __init__(self, indices):
        self.indices = indices

    def __getitem__(self, relation):
        return self.indices[relation]

    def __contains__(self, relation):
        return relation in self.indices


@pytest.fixture
def stub_retriever():
    # Q2A: query 0 -> ads [1, 2]; I2A: item 5 -> ads [2, 3]
    indices = {
        Relation.Q2A: _index(Relation.Q2A, [[1, 2]], [[0.1, 0.5]]),
        Relation.I2A: _index(Relation.I2A,
                             [[9, 9]] * 5 + [[2, 3]],
                             [[9.0, 9.0]] * 5 + [[0.2, 0.4]]),
    }
    return TwoLayerRetriever(_StubIndexSet(indices), expansion_k=2,
                             ads_per_key=2)


class TestFermi:
    def test_fermi_monotone(self):
        d = np.linspace(0, 4, 9)
        s = _fermi(d)
        assert np.all(np.diff(s) < 0)

    def test_fermi_range(self):
        assert 0 < _fermi(np.array([10.0]))[0] < 1


class TestScoreAggregation:
    def test_ad_reachable_via_two_paths_scores_higher(self, stub_retriever):
        """Ad 2 is reachable from the query AND the pre-click item."""
        result = stub_retriever.retrieve(0, [5], k=4)
        ranked = result.ads.tolist()
        assert ranked[0] == 2, "multi-path ad should rank first, got %r" % ranked

    def test_without_preclicks_only_query_paths(self, stub_retriever):
        result = stub_retriever.retrieve(0, [], k=4)
        assert set(result.ads.tolist()) == {1, 2}

    def test_empty_index_set_returns_empty(self):
        retriever = TwoLayerRetriever(_StubIndexSet({}))
        result = retriever.retrieve(0, [1], k=5)
        assert result.ads.size == 0
        assert result.scores.size == 0

    def test_keep_original_query_flag(self, stub_retriever):
        stub_retriever.keep_original_query = False
        query_keys, __ = stub_retriever.expand_keys(0, [])
        assert 0 not in query_keys
        stub_retriever.keep_original_query = True
        query_keys, __ = stub_retriever.expand_keys(0, [])
        assert 0 in query_keys

    def test_k_truncates_results(self, stub_retriever):
        result = stub_retriever.retrieve(0, [5], k=1)
        assert result.ads.size == 1
