"""Tests for manifold objects and product (mixed-curvature) spaces."""

import numpy as np
import pytest

from repro.autodiff import Tensor, ops
from repro.geometry import (
    Euclidean,
    Hyperbolic,
    ProductManifold,
    Spherical,
    UnifiedManifold,
)


class TestUnifiedManifold:
    def test_space_type_labels(self):
        assert UnifiedManifold(3, -1.0, trainable=False).space_type == "hyperbolic"
        assert UnifiedManifold(3, 0.0, trainable=False).space_type == "euclidean"
        assert UnifiedManifold(3, 1.0, trainable=False).space_type == "spherical"

    def test_trainable_kappa_is_parameter(self):
        m = UnifiedManifold(3, -0.5, trainable=True)
        assert list(m.parameters())
        frozen = UnifiedManifold(3, -0.5, trainable=False)
        assert not list(frozen.parameters())

    def test_constrain_clamps_kappa(self):
        m = UnifiedManifold(3, 0.0, trainable=True, kappa_bounds=(-1.0, 1.0))
        m.kappa.data[...] = 9.0
        m.constrain()
        assert m.kappa_value == 1.0

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            UnifiedManifold(0)

    def test_factories_validate_sign(self):
        with pytest.raises(ValueError):
            Hyperbolic(3, kappa=1.0)
        with pytest.raises(ValueError):
            Spherical(3, kappa=-1.0)

    def test_random_point_inside_hyperbolic_ball(self):
        m = Hyperbolic(4)
        rng = np.random.default_rng(0)
        points = m.random_point(rng, 100, tangent_scale=2.0)
        norms = np.linalg.norm(points.data, axis=-1)
        assert np.all(norms <= 1.0)

    def test_dist_matches_exp_log_structure(self):
        m = Hyperbolic(3)
        rng = np.random.default_rng(1)
        v = Tensor(rng.normal(scale=0.2, size=(1, 3)))
        p = m.expmap0(v)
        origin = Tensor(np.zeros((1, 3)))
        # distance to origin equals tangent norm (exp is radial isometry)
        d = m.dist(origin, p).data[0, 0]
        assert np.isclose(d, 2 * np.arctanh(np.linalg.norm(
            p.data)), atol=1e-8)

    def test_activation_maps_between_manifolds(self):
        src = Hyperbolic(3)
        dst = Spherical(3)
        rng = np.random.default_rng(2)
        p = src.random_point(rng, 4)
        out = src.activation(p, ops.tanh, target=dst)
        assert out.shape == (4, 3)
        assert np.all(np.isfinite(out.data))

    def test_matvec_shapes(self):
        m = UnifiedManifold(3, -0.7, trainable=False)
        rng = np.random.default_rng(3)
        p = m.random_point(rng, 5)
        w = Tensor(rng.normal(size=(3, 2)))
        out = m.matvec(w, p)
        assert out.shape == (5, 2)

    def test_origin_shape(self):
        m = Euclidean(4)
        assert m.origin(2, 3).shape == (2, 3, 4)


class TestProductManifold:
    def test_requires_factors(self):
        with pytest.raises(ValueError):
            ProductManifold([])

    def test_split_concat_roundtrip(self):
        pm = ProductManifold([Hyperbolic(3), Spherical(2), Euclidean(4)])
        rng = np.random.default_rng(4)
        x = pm.random_point(rng, 6)
        assert x.shape == (6, 9)
        pieces = pm.split(x)
        assert [p.shape[-1] for p in pieces] == [3, 2, 4]
        back = pm.concat(pieces)
        assert np.allclose(back.data, x.data)

    def test_split_validates_dim(self):
        pm = ProductManifold([Hyperbolic(3)])
        with pytest.raises(ValueError):
            pm.split(Tensor(np.zeros((2, 5))))

    def test_dist_is_sum_of_subspace_distances(self):
        pm = ProductManifold([Hyperbolic(2), Spherical(2)])
        rng = np.random.default_rng(5)
        x = pm.random_point(rng, 4)
        y = pm.random_point(rng, 4)
        subs = pm.sub_distances(x, y).data
        total = pm.dist(x, y).data
        assert np.allclose(total[:, 0], subs.sum(axis=-1), atol=1e-10)

    def test_weighted_dist(self):
        pm = ProductManifold([Hyperbolic(2), Spherical(2)])
        rng = np.random.default_rng(6)
        x = pm.random_point(rng, 4)
        y = pm.random_point(rng, 4)
        weights = Tensor(np.array([[1.0, 0.0]] * 4))
        weighted = pm.dist(x, y, weights=weights).data[:, 0]
        subs = pm.sub_distances(x, y).data
        assert np.allclose(weighted, subs[:, 0], atol=1e-10)

    def test_exp_log_roundtrip(self):
        pm = ProductManifold.adaptive(3, 4)
        rng = np.random.default_rng(7)
        v = Tensor(rng.normal(scale=0.2, size=(5, 12)))
        back = pm.logmap0(pm.expmap0(v))
        assert np.allclose(back.data, v.data, atol=1e-7)

    def test_adaptive_spreads_curvatures(self):
        pm = ProductManifold.adaptive(3, 4)
        kappas = pm.kappas()
        assert kappas[0] < 0 < kappas[-1]
        assert len(set(kappas)) == 3

    def test_adaptive_single_space_starts_flat(self):
        pm = ProductManifold.adaptive(1, 4)
        assert pm.kappas() == [0.0]

    def test_signature_string(self):
        pm = ProductManifold([Hyperbolic(2), Euclidean(3), Spherical(2)])
        assert pm.signature == "H2 x E3 x S2"
        adaptive = ProductManifold.adaptive(2, 4)
        assert adaptive.signature == "U4 x U4"

    def test_parameters_only_from_trainable_factors(self):
        pm = ProductManifold([Hyperbolic(2),
                              UnifiedManifold(2, 0.0, trainable=True)])
        assert len(list(pm.parameters())) == 1

    def test_constrain_all(self):
        pm = ProductManifold.adaptive(2, 3)
        for factor in pm.factors:
            factor.kappa.data[...] = 99.0
        pm.constrain()
        assert all(k <= 2.5 for k in pm.kappas())
