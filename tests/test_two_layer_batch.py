"""Tests for the vectorised batch retrieval path and the Fermi fix."""

import warnings

import numpy as np
import pytest

from repro.graph.schema import Relation
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.retrieval.index import InvertedIndex
from repro.retrieval.two_layer import KeyExpansion, _fermi
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def retriever(train_graph):
    model = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                       seed=12)
    Trainer(model, TrainerConfig(steps=20, batch_size=32, seed=12)).train()
    index_set = IndexSet(model, top_k=20).build()
    return TwoLayerRetriever(index_set, expansion_k=5, ads_per_key=5)


@pytest.fixture
def requests(train_graph, rng):
    num_queries = train_graph.num_nodes[list(train_graph.num_nodes)[0]]
    queries = rng.integers(num_queries, size=64)
    preclicks = [list(rng.integers(50, size=rng.integers(0, 4)))
                 for _ in queries]
    return queries, preclicks


class TestFermi:
    def test_no_overflow_warning_at_large_distance(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = _fermi(np.array([1e3, 1e6, 1e12]))
        assert np.all(out >= 0.0) and np.all(out <= 1e-300)

    def test_matches_textbook_formula_in_safe_range(self):
        d = np.linspace(0.0, 10.0, 41)
        naive = 1.0 / (1.0 + np.exp(-5.0 * (1.0 - d)))
        assert np.allclose(_fermi(d), naive, rtol=1e-12)

    def test_monotone_decreasing_and_bounded(self):
        d = np.linspace(0, 50, 101)
        s = _fermi(d)
        assert np.all(np.diff(s) <= 0)
        assert np.all((s >= 0) & (s <= 1))


def _assert_same_topk(result, reference):
    """Identical ranking; id order may differ only inside exact score ties.

    The batch path sums per-ad path scores in a different order than
    the looped dict accumulation, so mathematically tied ads may
    permute across platforms — anything else must match exactly.
    """
    assert result.ads.size == reference.ads.size
    assert np.allclose(result.scores, reference.scores)
    if np.array_equal(result.ads, reference.ads):
        return
    scores = reference.scores
    boundaries = np.flatnonzero(~np.isclose(scores[1:], scores[:-1]))
    starts = np.concatenate([[0], boundaries + 1])
    stops = np.concatenate([boundaries + 1, [scores.size]])
    for a, b in zip(starts, stops):
        run_a = set(result.ads[a:b].tolist())
        run_b = set(reference.ads[a:b].tolist())
        # the last run may be truncated differently by k among ties
        assert run_a == run_b or b == scores.size, \
            "rankings differ outside a tied-score run"


class TestBatchParity:
    def test_retrieve_batch_matches_looped_reference(self, retriever,
                                                     requests):
        queries, preclicks = requests
        batch = retriever.retrieve_batch(queries, preclicks, k=10)
        assert len(batch) == len(queries)
        for query, items, result in zip(queries, preclicks, batch):
            reference = retriever.retrieve_looped(int(query), items, k=10)
            _assert_same_topk(result, reference)
            assert result.num_keys == reference.num_keys

    def test_retrieve_is_thin_wrapper(self, retriever, requests):
        queries, preclicks = requests
        single = retriever.retrieve(int(queries[0]), preclicks[0], k=10)
        batch = retriever.retrieve_batch(queries[:1], preclicks[:1], k=10)[0]
        assert np.array_equal(single.ads, batch.ads)
        assert np.allclose(single.scores, batch.scores)

    def test_expansion_matches_dict_reference(self, retriever, requests):
        queries, preclicks = requests
        expansions = retriever.expand_keys_batch(queries[:8], preclicks[:8])
        for query, items, expansion in zip(queries[:8], preclicks[:8],
                                           expansions):
            query_keys, item_keys = retriever.expand_keys(int(query), items)
            assert set(expansion.query_keys.tolist()) == set(query_keys)
            assert set(expansion.item_keys.tolist()) == set(item_keys)
            for key, score in zip(expansion.query_keys,
                                  expansion.query_scores):
                assert score == pytest.approx(query_keys[int(key)])
            for key, score in zip(expansion.item_keys,
                                  expansion.item_scores):
                assert score == pytest.approx(item_keys[int(key)])

    def test_default_preclicks(self, retriever, requests):
        queries, __ = requests
        bare = retriever.retrieve_batch(queries[:4], k=5)
        explicit = retriever.retrieve_batch(queries[:4], [()] * 4, k=5)
        for a, b in zip(bare, explicit):
            assert np.array_equal(a.ads, b.ads)

    def test_length_mismatch_raises(self, retriever):
        with pytest.raises(ValueError):
            retriever.retrieve_batch([0, 1], [[2]])

    def test_empty_batch(self, retriever):
        assert retriever.retrieve_batch([], []) == []


def _index(relation, ids, dists):
    return InvertedIndex(relation=relation, ids=np.asarray(ids),
                         distances=np.asarray(dists, dtype=float),
                         build_seconds=0.0)


class _StubIndexSet:
    def __init__(self, indices):
        self.indices = indices

    def __getitem__(self, relation):
        return self.indices[relation]

    def __contains__(self, relation):
        return relation in self.indices


class TestBatchSemantics:
    """Deterministic scoring checks on a hand-built index set."""

    @pytest.fixture
    def stub_retriever(self):
        indices = {
            Relation.Q2A: _index(Relation.Q2A, [[1, 2]], [[0.1, 0.5]]),
            Relation.I2A: _index(Relation.I2A,
                                 [[9, 9]] * 5 + [[2, 3]],
                                 [[9.0, 9.0]] * 5 + [[0.2, 0.4]]),
        }
        return TwoLayerRetriever(_StubIndexSet(indices), expansion_k=2,
                                 ads_per_key=2)

    def test_multi_path_ad_ranks_first_in_batch(self, stub_retriever):
        results = stub_retriever.retrieve_batch([0, 0], [[5], []], k=4)
        assert results[0].ads[0] == 2          # reachable via both hops
        assert set(results[1].ads.tolist()) == {1, 2}

    def test_scores_sum_over_paths(self, stub_retriever):
        result = stub_retriever.retrieve_batch([0], [[5]], k=4)[0]
        lookup = dict(zip(result.ads.tolist(), result.scores.tolist()))
        assert lookup[2] == pytest.approx(
            float(_fermi(np.array([0.5]))[0] + _fermi(np.array([0.2]))[0]))

    def test_empty_index_set(self):
        retriever = TwoLayerRetriever(_StubIndexSet({}))
        results = retriever.retrieve_batch([0, 1], [[1], []], k=5)
        for result in results:
            assert result.ads.size == 0
            assert result.scores.size == 0
        assert results[0].num_keys == 2        # query + pre-click seeds

    def test_duplicate_preclicks_counted_once(self, stub_retriever):
        once = stub_retriever.retrieve_batch([0], [[5]], k=4)[0]
        twice = stub_retriever.retrieve_batch([0], [[5, 5]], k=4)[0]
        assert np.array_equal(once.ads, twice.ads)
        assert np.allclose(once.scores, twice.scores)
        assert once.num_keys == twice.num_keys

    def test_key_expansion_dataclass(self, stub_retriever):
        expansion = stub_retriever.expand_keys_batch(
            np.array([0]), [[5]])[0]
        assert isinstance(expansion, KeyExpansion)
        assert expansion.num_keys == 2
        assert expansion.query_scores[0] == 1.0
        assert expansion.item_scores[0] == 1.0
