"""Tests for the optimiser, trainer and incremental training."""

import numpy as np
import pytest

from repro.autodiff import Parameter, ops
from repro.models import make_model
from repro.training import (
    AdaGrad,
    IncrementalTrainer,
    Trainer,
    TrainerConfig,
    WarmupSchedule,
    clip_gradients,
)


class TestClipGradients:
    def test_no_gradients_returns_zero(self):
        assert clip_gradients([Parameter(np.ones(3))], 1.0) == 0.0

    def test_returns_preclip_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 2.0)
        norm = clip_gradients([p], max_norm=1.0)
        assert np.isclose(norm, 4.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_under_threshold_untouched(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_gradients([p], max_norm=10.0)
        assert np.allclose(p.grad, 0.1)

    def test_zero_max_norm_disables(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 5.0)
        clip_gradients([p], max_norm=0.0)
        assert np.allclose(p.grad, 5.0)


class TestWarmup:
    def test_linear_rise(self):
        schedule = WarmupSchedule(1.0, 10)
        assert schedule.rate(0) == pytest.approx(0.1)
        assert schedule.rate(4) == pytest.approx(0.5)
        assert schedule.rate(9) == pytest.approx(1.0)
        assert schedule.rate(100) == 1.0

    def test_zero_warmup_constant(self):
        schedule = WarmupSchedule(0.3, 0)
        assert schedule.rate(0) == 0.3


class TestAdaGrad:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            AdaGrad([])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = AdaGrad([p], learning_rate=0.5, clip_norm=0.0)
        for _ in range(300):
            opt.zero_grad()
            loss = ops.sum(p * p)
            loss.backward()
            opt.step()
        assert np.abs(p.data).max() < 0.3

    def test_accumulator_shrinks_steps(self):
        p = Parameter(np.array([1.0]))
        opt = AdaGrad([p], learning_rate=0.1, clip_norm=0.0)
        deltas = []
        for _ in range(3):
            opt.zero_grad()
            p.grad = np.array([1.0])
            before = p.data.copy()
            opt.step()
            deltas.append(abs(p.data - before)[0])
        assert deltas[0] > deltas[1] > deltas[2]

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        q = Parameter(np.array([1.0]))
        opt = AdaGrad([p, q], learning_rate=0.1)
        p.grad = np.array([1.0])
        opt.step()
        assert q.data[0] == 1.0

    def test_num_parameters(self):
        opt = AdaGrad([Parameter(np.zeros((2, 3))), Parameter(np.zeros(4))])
        assert opt.num_parameters == 10


class TestTrainer:
    def test_loss_decreases(self, train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=2,
                           subspace_dim=4, seed=0)
        trainer = Trainer(model, TrainerConfig(steps=40, batch_size=32,
                                               learning_rate=0.05, seed=0))
        report = trainer.train()
        head = np.mean(report.losses[:8])
        tail = report.mean_tail_loss
        assert tail < head, "training loss should fall (%.3f -> %.3f)" % (
            head, tail)

    def test_report_fields(self, train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        trainer = Trainer(model, TrainerConfig(steps=5, batch_size=16))
        report = trainer.train()
        assert report.steps == 5
        assert len(report.losses) == 5
        assert report.wall_seconds > 0
        assert report.samples_seen == 5 * 16

    def test_relation_homogeneous_batches(self, train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        trainer = Trainer(model, TrainerConfig(steps=3, batch_size=16, seed=1))
        batch = trainer._next_batch()
        relations = {s.relation for s in batch}
        assert len(relations) == 1

    def test_curvatures_stay_in_bounds(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=2,
                           subspace_dim=4, seed=0)
        trainer = Trainer(model, TrainerConfig(steps=15, batch_size=32,
                                               learning_rate=0.5))
        trainer.train()
        for manifold in model.node_manifolds.values():
            for factor in manifold.factors:
                lo, hi = factor.kappa_bounds
                assert lo <= factor.kappa_value <= hi


class TestIncrementalTrainer:
    def test_runs_across_days(self, universe, daily_logs, train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        inc = IncrementalTrainer(model, universe, steps_per_day=3,
                                 lru_horizon_days=1)
        results = inc.train_days(daily_logs[1:3])
        assert len(results) == 2
        assert all(r.report.steps == 3 for r in results)
        assert results[0].day == daily_logs[1].day

    def test_model_rebinds_to_new_graph(self, universe, daily_logs,
                                        train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        inc = IncrementalTrainer(model, universe, steps_per_day=2)
        inc.train_day(daily_logs[1])
        assert model.graph is not train_graph
        assert model.encoder.graph is model.graph

    def test_feature_exit_eventually_evicts(self, universe, daily_logs,
                                            train_graph):
        model = make_model("amcad_e", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        inc = IncrementalTrainer(model, universe, steps_per_day=1,
                                 lru_horizon_days=1)
        # seed activity, then advance with empty days -> stale features
        inc.train_day(daily_logs[1])
        from repro.data.logs import BehaviorLog
        quiet = BehaviorLog(day=9, sessions=daily_logs[2].sessions[:5])
        results = [inc.train_day(quiet) for _ in range(3)]
        assert sum(r.evicted_features for r in results) > 0
