"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro.evaluation import (
    ABTestConfig,
    evaluate_ranking,
    ground_truth_from_log,
    next_auc,
    run_ab_test,
)
from repro.graph.schema import NodeType, Relation
from repro.models import make_baseline, make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def trained_model(train_graph):
    model = make_model("amcad", train_graph, num_subspaces=2, subspace_dim=4,
                       seed=0)
    Trainer(model, TrainerConfig(steps=60, batch_size=48,
                                 learning_rate=0.05, seed=0)).train()
    return model


class TestTrainingImprovesModel:
    def test_auc_above_random_after_training(self, trained_model, next_graph):
        auc = next_auc(trained_model.similarity, next_graph, num_samples=250)
        assert auc > 60.0, "trained AMCAD should clearly beat random (50)"

    def test_untrained_model_near_random(self, train_graph, next_graph):
        fresh = make_model("amcad", train_graph, num_subspaces=2,
                           subspace_dim=4, seed=9)
        auc = next_auc(fresh.similarity, next_graph, num_samples=250)
        assert 35.0 < auc < 65.0

    def test_curvatures_moved_from_init(self, trained_model):
        kappas = trained_model.node_manifolds[NodeType.QUERY].kappas()
        assert kappas != [-1.0, 1.0], "curvatures should adapt during training"


class TestIndexToRetrievalFlow:
    @pytest.fixture(scope="class")
    def retriever(self, trained_model):
        return TwoLayerRetriever(IndexSet(trained_model, top_k=30).build())

    def test_retrieved_ads_match_query_category(self, retriever, train_graph,
                                                universe):
        """Retrieved ads should be category-coherent with the query."""
        tree = universe.category_tree
        rng = np.random.default_rng(3)
        hits, total = 0, 0
        queries = rng.integers(train_graph.num_nodes[NodeType.QUERY], size=30)
        for query in queries:
            result = retriever.retrieve(int(query), [], k=5)
            q_cat = int(universe.queries.category[query])
            for ad in result.ads:
                ad_cat = int(universe.ads.category[ad])
                if tree.lowest_common_ancestor(q_cat, ad_cat) != 0:
                    hits += 1
                total += 1
        assert total > 0
        assert hits / total > 0.3, (
            "only %.0f%% of retrieved ads share a category branch"
            % (100 * hits / total))

    def test_ranking_metrics_beat_random_retrieval(self, trained_model,
                                                   daily_logs, train_graph):
        truth = ground_truth_from_log(daily_logs[1], NodeType.ITEM)
        index = IndexSet(trained_model, top_k=100).build([Relation.Q2I])
        model_metrics = evaluate_ranking(
            lambda q, k: index[Relation.Q2I].lookup_batch(q, k)[0],
            truth, ks=(100,), max_queries=60)
        rng = np.random.default_rng(0)
        n_items = train_graph.num_nodes[NodeType.ITEM]
        random_metrics = evaluate_ranking(
            lambda q, k: rng.integers(n_items, size=(len(q), k)),
            truth, ks=(100,), max_queries=60)
        assert model_metrics.hitrate[100] > 2 * random_metrics.hitrate[100]


class TestBaselineOrdering:
    def test_amcad_beats_deepwalk_on_ranking(self, trained_model, train_graph,
                                             daily_logs):
        truth = ground_truth_from_log(daily_logs[1], NodeType.ITEM)
        index = IndexSet(trained_model, top_k=100).build([Relation.Q2I])
        amcad_metrics = evaluate_ranking(
            lambda q, k: index[Relation.Q2I].lookup_batch(q, k)[0],
            truth, ks=(100,), max_queries=60)

        deepwalk = make_baseline("deepwalk", train_graph, dim=8, seed=0)
        deepwalk.train(12000)
        q_emb = deepwalk.embed(NodeType.QUERY)
        i_emb = deepwalk.embed(NodeType.ITEM)

        def retrieve(queries, k):
            scores = q_emb[np.asarray(queries)] @ i_emb.T
            return np.argsort(-scores, axis=1)[:, :k]

        dw_metrics = evaluate_ranking(retrieve, truth, ks=(100,),
                                      max_queries=60)
        assert amcad_metrics.hitrate[100] > dw_metrics.hitrate[100], (
            "amcad %.3f should beat deepwalk %.3f"
            % (amcad_metrics.hitrate[100], dw_metrics.hitrate[100]))


class TestABFlow:
    def test_ab_test_runs_on_trained_channels(self, trained_model, universe,
                                              train_graph):
        index = IndexSet(trained_model, top_k=30).build()
        channel = TwoLayerRetriever(index)
        result = run_ab_test(universe, channel, channel,
                             ABTestConfig(num_requests=40, seed=0))
        assert result.ctr_lift()["overall"] == pytest.approx(0.0)
        assert result.control.impressions.sum() > 0
