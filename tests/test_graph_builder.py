"""Tests for behaviour-log -> graph construction."""

import numpy as np
import pytest

from repro.data.logs import BehaviorLog, Session
from repro.graph import EdgeType, GraphBuilder, NodeType, build_graph
from repro.graph.schema import NodeRef


class TestEdgeChannels:
    def test_all_channels_present(self, train_graph):
        keys = {(s.value, e.value, d.value)
                for (s, e, d) in train_graph.adjacency_keys}
        assert ("query", "click", "item") in keys
        assert ("query", "click", "ad") in keys
        assert ("item", "co_click", "item") in keys
        assert ("query", "semantic", "query") in keys
        assert ("ad", "co_bid", "ad") in keys

    def test_click_edges_symmetric(self, train_graph):
        forward = train_graph.num_edges(NodeType.QUERY, EdgeType.CLICK,
                                        NodeType.ITEM)
        backward = train_graph.num_edges(NodeType.ITEM, EdgeType.CLICK,
                                         NodeType.QUERY)
        assert forward == backward > 0

    def test_click_weights_count_interactions(self, universe):
        log = BehaviorLog(day=0, sessions=[
            Session(user=0, query=1, clicks=[NodeRef(NodeType.ITEM, 2)]),
            Session(user=1, query=1, clicks=[NodeRef(NodeType.ITEM, 2)]),
        ])
        graph = build_graph(universe, [log])
        ids, weights, __ = graph.neighbors(NodeType.QUERY, 1,
                                           edge_type=EdgeType.CLICK,
                                           dst_type=NodeType.ITEM)
        assert ids.tolist() == [2]
        assert weights.tolist() == [2.0]

    def test_co_click_from_adjacent_clicks(self, universe):
        log = BehaviorLog(day=0, sessions=[
            Session(user=0, query=0, clicks=[NodeRef(NodeType.ITEM, 1),
                                             NodeRef(NodeType.AD, 2),
                                             NodeRef(NodeType.ITEM, 3)]),
        ])
        graph = build_graph(universe, [log])
        # adjacent pairs: (i1, a2) and (a2, i3); non-adjacent (i1, i3) absent
        ids, __w, __t = graph.neighbors(NodeType.ITEM, 1,
                                        edge_type=EdgeType.CO_CLICK)
        assert 2 in ids.tolist()
        ids13, __w2, __t2 = graph.neighbors(NodeType.ITEM, 1,
                                            edge_type=EdgeType.CO_CLICK,
                                            dst_type=NodeType.ITEM)
        assert 3 not in ids13.tolist()

    def test_query_cosearch_edges(self, universe):
        log = BehaviorLog(day=0, sessions=[
            Session(user=0, query=0, clicks=[NodeRef(NodeType.ITEM, 1)]),
            Session(user=0, query=5, clicks=[NodeRef(NodeType.ITEM, 2)]),
        ])
        graph = build_graph(universe, [log])
        ids, __w, __t = graph.neighbors(NodeType.QUERY, 0,
                                        edge_type=EdgeType.CO_CLICK,
                                        dst_type=NodeType.QUERY)
        assert ids.tolist() == [5]

    def test_same_query_sessions_do_not_self_link(self, universe):
        log = BehaviorLog(day=0, sessions=[
            Session(user=0, query=3, clicks=[NodeRef(NodeType.ITEM, 1)]),
            Session(user=0, query=3, clicks=[NodeRef(NodeType.ITEM, 2)]),
        ])
        graph = build_graph(universe, [log])
        ids, __w, __t = graph.neighbors(NodeType.QUERY, 3,
                                        edge_type=EdgeType.CO_CLICK,
                                        dst_type=NodeType.QUERY)
        assert 3 not in ids.tolist()


class TestSemanticEdges:
    def test_semantic_pairs_share_terms(self, universe, train_graph):
        terms = universe.queries.terms
        checked = 0
        for (s, e, d), csr in train_graph._adj.items():
            if e != EdgeType.SEMANTIC:
                continue
            src = np.repeat(np.arange(train_graph.num_nodes[s]),
                            np.diff(csr.indptr))
            for a, b in zip(src[:50], csr.indices[:50]):
                set_a = set(terms[a]) - {-1}
                set_b = set(terms[b]) - {-1}
                assert set_a & set_b, "semantic edge with no shared terms"
                checked += 1
        assert checked > 0

    def test_threshold_controls_density(self, universe, daily_logs):
        loose = GraphBuilder(universe, semantic_threshold=0.2)
        strict = GraphBuilder(universe, semantic_threshold=0.9)
        loose.add_log(daily_logs[0])
        strict.add_log(daily_logs[0])
        g_loose = loose.build()
        g_strict = strict.build()
        assert (g_loose.num_edges(edge_type=EdgeType.SEMANTIC)
                >= g_strict.num_edges(edge_type=EdgeType.SEMANTIC))


class TestCoBidEdges:
    def test_co_bid_pairs_share_keywords(self, universe, train_graph):
        bid_words = universe.ads.bid_words
        found = 0
        for (s, e, d), csr in train_graph._adj.items():
            if e != EdgeType.CO_BID:
                continue
            src = np.repeat(np.arange(train_graph.num_nodes[s]),
                            np.diff(csr.indptr))
            for a, b in zip(src[:50], csr.indices[:50]):
                shared = (set(bid_words[a]) - {-1}) & (set(bid_words[b]) - {-1})
                assert shared, "co-bid edge with no shared keyword"
                found += 1
        assert found > 0


class TestBuilderAccumulation:
    def test_multi_day_graph_has_more_edges(self, universe, daily_logs):
        one = build_graph(universe, daily_logs[:1])
        three = build_graph(universe, daily_logs[:3])
        assert three.num_edges() > one.num_edges()

    def test_builder_is_chainable(self, universe, daily_logs):
        graph = (GraphBuilder(universe).add_log(daily_logs[0])
                 .add_log(daily_logs[1]).build())
        assert graph.num_edges() > 0
