"""Parity suite for the geometry kernel dispatch layer.

Every registered primitive in :mod:`repro.geometry.kernels` carries a
pure-numpy reference and a loop implementation (njit-wrapped into the
``compiled`` target when numba is importable).  The contract is parity:
forward values and hand-derived VJP outputs agree across
implementations well within the 1e-8 loss/grad budget, over all three
curvature regimes including the κ≈0 branch boundary, for empty,
singleton and batched shapes.  The loop implementations are exercised
as plain Python everywhere, so the compiled logic is covered even on
hosts without numba; where numba is present the jitted versions are
checked too.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Parameter
from repro.geometry import fast, kernels
from repro.geometry.kernels import KIND_ARTAN, KIND_TAN
from repro.graph.schema import Relation
from repro.retrieval.ann import candidate_dist
from repro.retrieval.mnn import RelationSpace

_TOL = kernels._KAPPA_ZERO_TOL

# every regime plus both sides of the Taylor/trig branch boundary:
# ±_TOL itself takes the Taylor branch, the nextafter values are the
# first floats on the trig side
KAPPAS = (
    -2.0, -1.0, -0.4,
    -float(np.nextafter(_TOL, 1.0)), -_TOL, -1e-7,
    0.0,
    1e-7, _TOL, float(np.nextafter(_TOL, 1.0)),
    0.7, 2.0,
)

EXPECTED_KERNELS = {
    "tan_k", "artan_k", "radial_fwd", "radial_bwd",
    "pairwise_mobius_norm", "pairwise_dist", "rowwise_dist",
    "dist_fwd", "dist_bwd",
}


def _variants(name):
    """(label, impl) pairs to check against the numpy reference."""
    kern = kernels.REGISTRY[name]
    out = [("loop", kern.loop)]
    if kern.compiled is not None:
        out.append(("compiled", kern.compiled))
    return out


def _check(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_allclose(np.asarray(g, dtype=np.float64),
                                   np.asarray(w, dtype=np.float64),
                                   rtol=1e-9, atol=1e-9)


class TestRegistryAndModes:
    def test_registry_covers_expected_kernels(self):
        assert set(kernels.REGISTRY) == EXPECTED_KERNELS
        for kern in kernels.REGISTRY.values():
            assert kern.loop is not None
            assert (kern.compiled is not None) == kernels.HAVE_NUMBA

    def test_auto_resolution_matches_environment(self):
        expected = "compiled" if kernels.HAVE_NUMBA else "numpy"
        assert kernels.resolve_mode("auto") == expected
        assert kernels.resolve_mode("numpy") == "numpy"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="auto, numpy, compiled"):
            kernels.resolve_mode("fast")
        with pytest.raises(ValueError, match="auto, numpy, compiled"):
            kernels.set_mode("jit")

    def test_use_context_restores_mode(self):
        before = kernels.get_mode()
        with kernels.use("numpy"):
            assert kernels.get_mode() == "numpy"
            assert kernels.impl("tan_k") is kernels.REGISTRY["tan_k"].numpy
        assert kernels.get_mode() == before

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="numba installed")
    def test_compiled_without_numba_raises_naming_extra(self):
        with pytest.raises(ValueError, match=r"\[compiled\]"):
            kernels.resolve_mode("compiled")
        with pytest.raises(ValueError, match=r"\[compiled\]"):
            kernels.set_mode("compiled")

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="numba installed")
    def test_model_kernels_compiled_without_numba_raises(self, train_graph):
        from repro.models import make_model
        with pytest.raises(ValueError, match=r"\[compiled\]"):
            make_model("amcad", train_graph, num_subspaces=2,
                       subspace_dim=4, seed=0, kernels="compiled")

    def test_model_activates_requested_mode(self, train_graph):
        from repro.models import make_model
        with kernels.use("numpy"):
            model = make_model("amcad", train_graph, num_subspaces=2,
                               subspace_dim=4, seed=0, kernels="auto")
            expected = "compiled" if kernels.HAVE_NUMBA else "numpy"
            assert model.kernel_mode == expected
            assert kernels.get_mode() == expected

    def test_pipeline_config_validates_kernels(self):
        from repro.pipeline.config import ModelConfig
        assert ModelConfig(kernels="numpy").kernels == "numpy"
        with pytest.raises(ValueError, match="model.kernels"):
            ModelConfig(kernels="jit")
        with pytest.raises(ValueError, match="model.overrides"):
            ModelConfig(overrides={"kernels": "numpy"})


class TestElementwiseParity:
    @pytest.mark.parametrize("name", ["tan_k", "artan_k"])
    @settings(deadline=None, max_examples=30)
    @given(n=st.integers(0, 7), seed=st.integers(0, 999),
           kappa=st.sampled_from(KAPPAS))
    def test_parity(self, name, n, seed, kappa):
        rng = np.random.default_rng(seed)
        x = np.ascontiguousarray(rng.normal(scale=1.0, size=n))
        want = kernels.REGISTRY[name].numpy(x, kappa)
        for _, fn in _variants(name):
            _check([fn(x, kappa)], [want])


class TestRadialParity:
    @pytest.mark.parametrize("kind", [KIND_TAN, KIND_ARTAN])
    @settings(deadline=None, max_examples=30)
    @given(n=st.integers(0, 6), d=st.integers(1, 10),
           seed=st.integers(0, 999), kappa=st.sampled_from(KAPPAS))
    def test_forward_and_backward(self, kind, n, d, seed, kappa):
        rng = np.random.default_rng(seed)
        v = rng.normal(scale=0.3, size=(n, d))
        grad = rng.normal(size=(n, d))
        ref = kernels.REGISTRY["radial_fwd"].numpy(v, kappa, kind)
        ref_bwd = kernels.REGISTRY["radial_bwd"].numpy(
            grad, v, ref[1], ref[2], ref[3], kappa, kind)
        for _, fwd in _variants("radial_fwd"):
            got = fwd(v, kappa, kind)
            _check(got, ref)
        for _, bwd in _variants("radial_bwd"):
            got = bwd(grad, v, ref[1], ref[2], ref[3], kappa, kind)
            _check(got, ref_bwd)


class TestPairwiseParity:
    @pytest.mark.parametrize("name", ["pairwise_mobius_norm",
                                      "pairwise_dist"])
    @settings(deadline=None, max_examples=30)
    @given(b=st.integers(0, 5), n=st.integers(0, 6), d=st.integers(1, 10),
           seed=st.integers(0, 999), kappa=st.sampled_from(KAPPAS))
    def test_parity(self, name, b, n, d, seed, kappa):
        rng = np.random.default_rng(seed)
        x = rng.normal(scale=0.3, size=(b, d))
        y = rng.normal(scale=0.3, size=(n, d))
        want = kernels.REGISTRY[name].numpy(x, y, kappa)
        for _, fn in _variants(name):
            _check([fn(x, y, kappa)], [want])

    @settings(deadline=None, max_examples=30)
    @given(b=st.integers(0, 6), d=st.integers(1, 10),
           seed=st.integers(0, 999), kappa=st.sampled_from(KAPPAS))
    def test_rowwise_parity(self, b, d, seed, kappa):
        rng = np.random.default_rng(seed)
        x = rng.normal(scale=0.3, size=(b, d))
        y = rng.normal(scale=0.3, size=(b, d))
        want = kernels.REGISTRY["rowwise_dist"].numpy(x, y, kappa)
        for _, fn in _variants("rowwise_dist"):
            _check([fn(x, y, kappa)], [want])


class TestDistParity:
    @settings(deadline=None, max_examples=30)
    @given(n=st.integers(0, 6), d=st.integers(1, 10),
           seed=st.integers(0, 999), kappa=st.sampled_from(KAPPAS))
    def test_forward_and_backward(self, n, d, seed, kappa):
        rng = np.random.default_rng(seed)
        a = rng.normal(scale=0.3, size=(n, d))
        b = rng.normal(scale=0.3, size=(n, d))
        grad = rng.normal(size=n)
        ref = kernels.REGISTRY["dist_fwd"].numpy(a, b, kappa)
        ref_bwd = kernels.REGISTRY["dist_bwd"].numpy(
            grad, a, b, *ref[1:], kappa)
        for _, fwd in _variants("dist_fwd"):
            _check(fwd(a, b, kappa), ref)
        for _, bwd in _variants("dist_bwd"):
            _check(bwd(grad, a, b, *ref[1:], kappa), ref_bwd)


class TestPublicApi:
    """fast.py entry points: dtype coercion, blocking, mode equivalence."""

    @pytest.mark.parametrize("kappa", [-1.0, 0.0, 0.7])
    def test_float32_inputs_upcast_to_float64(self, kappa):
        rng = np.random.default_rng(5)
        x64 = rng.normal(scale=0.3, size=(4, 3))
        y64 = rng.normal(scale=0.3, size=(6, 3))
        x32 = x64.astype(np.float32)
        y32 = y64.astype(np.float32)
        got = fast.pairwise_dist(x32, y32, kappa)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(
            got, fast.pairwise_dist(x32.astype(np.float64),
                                    y32.astype(np.float64), kappa))
        assert fast.tan_k_numpy(x32, kappa).dtype == np.float64
        assert fast.rowwise_dist(x32, x32, kappa).dtype == np.float64

    @pytest.mark.parametrize("kappa", KAPPAS)
    @pytest.mark.parametrize("block_rows", [1, 2, 3, 100])
    def test_pairwise_dist_block_rows_identical(self, kappa, block_rows):
        rng = np.random.default_rng(7)
        x = rng.normal(scale=0.3, size=(9, 4))
        y = rng.normal(scale=0.3, size=(11, 4))
        full = fast.pairwise_dist(x, y, kappa)
        blocked = fast.pairwise_dist(x, y, kappa, block_rows=block_rows)
        # the numpy path's BLAS inner products may pick shape-dependent
        # accumulation orders, so equality is up-to-ulp, not bitwise
        np.testing.assert_allclose(blocked, full, rtol=1e-13, atol=1e-13)

    def test_candidate_dist_block_rows_identical(self):
        rng = np.random.default_rng(11)
        n_src, n_dst, d, rr = 9, 20, 4, 5
        space = RelationSpace(
            relation=Relation.Q2I,
            src_embeddings=[rng.normal(scale=0.3, size=(n_src, d)),
                            rng.normal(scale=0.3, size=(n_src, d))],
            dst_embeddings=[rng.normal(scale=0.3, size=(n_dst, d)),
                            rng.normal(scale=0.3, size=(n_dst, d))],
            src_weights=rng.uniform(size=(n_src, 2)),
            dst_weights=rng.uniform(size=(n_dst, 2)),
            kappas=[-0.8, 0.6])
        src = np.arange(n_src, dtype=np.int64)
        cand = rng.integers(0, n_dst, size=(n_src, rr))
        valid = rng.uniform(size=(n_src, rr)) > 0.2
        full = candidate_dist(space, src, cand, valid)
        for block_rows in (1, 2, 4, 100):
            blocked = candidate_dist(space, src, cand, valid,
                                     block_rows=block_rows)
            np.testing.assert_array_equal(full, blocked)
        assert np.all(np.isinf(full[~valid]))

    @pytest.mark.parametrize("kappa", [-1.0, 0.0, 0.7])
    def test_fused_ops_parity_across_modes(self, kappa):
        """Loss-level contract: tape ops agree across kernel modes."""
        modes = ["numpy"]
        if kernels.HAVE_NUMBA:
            modes.append("compiled")
        rng = np.random.default_rng(3)
        x = rng.normal(scale=0.25, size=(6, 4))
        y = rng.normal(scale=0.25, size=(6, 4))
        upstream = rng.normal(size=(6, 1))
        results = {}
        for mode in modes:
            with kernels.use(mode):
                xa, ya = Parameter(x.copy()), Parameter(y.copy())
                ka = Parameter(np.asarray(kappa))
                out = fast.fused_dist(xa, ya, ka)
                out.backward(upstream)
                results[mode] = (out.data.copy(), xa.grad.copy(),
                                 ya.grad.copy(), ka.grad.copy())
        for mode in modes[1:]:
            for got, want in zip(results[mode], results["numpy"]):
                np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


class TestForwardCaching:
    """Satellite regression: the fused vjps evaluate the forward trig
    exactly once per op — the backward reuses the cached value."""

    def _count(self, monkeypatch, attr):
        calls = {"n": 0}
        original = getattr(kernels, attr)

        def counting(r, kappa):
            calls["n"] += 1
            return original(r, kappa)

        monkeypatch.setattr(kernels, attr, counting)
        return calls

    def test_expmap0_evaluates_tan_once(self, monkeypatch):
        calls = self._count(monkeypatch, "tan_k_fwd_numpy")
        rng = np.random.default_rng(0)
        with kernels.use("numpy"):
            v = Parameter(rng.normal(scale=0.3, size=(5, 4)))
            k = Parameter(np.asarray(-0.9))
            out = fast.fused_expmap0(v, k)
            out.backward(rng.normal(size=(5, 4)))
        assert calls["n"] == 1

    def test_logmap0_evaluates_artan_once(self, monkeypatch):
        calls = self._count(monkeypatch, "artan_k_fwd_numpy")
        rng = np.random.default_rng(1)
        with kernels.use("numpy"):
            x = Parameter(rng.normal(scale=0.2, size=(5, 4)))
            k = Parameter(np.asarray(-0.9))
            out = fast.fused_logmap0(x, k)
            out.backward(rng.normal(size=(5, 4)))
        assert calls["n"] == 1

    def test_fused_dist_evaluates_artan_once(self, monkeypatch):
        calls = self._count(monkeypatch, "artan_k_fwd_numpy")
        rng = np.random.default_rng(2)
        with kernels.use("numpy"):
            x = Parameter(rng.normal(scale=0.25, size=(6, 4)))
            y = Parameter(rng.normal(scale=0.25, size=(6, 4)))
            k = Parameter(np.asarray(0.7))
            out = fast.fused_dist(x, y, k)
            out.backward(rng.normal(size=(6, 1)))
        assert calls["n"] == 1

    def test_compat_vjp_wrappers_match_split_helpers(self):
        r = np.linspace(0.05, 1.2, 9)
        for kappa in KAPPAS:
            for vjp, fwd, bwd in [
                    (fast._tan_k_vjp, kernels.tan_k_fwd_numpy,
                     kernels.tan_k_bwd_numpy),
                    (fast._artan_k_vjp, kernels.artan_k_fwd_numpy,
                     kernels.artan_k_bwd_numpy)]:
                f, df_dr, df_dk = vjp(r, kappa)
                f2, aux = fwd(r, kappa)
                df_dr2, df_dk2 = bwd(r, aux, kappa)
                np.testing.assert_array_equal(f, f2)
                np.testing.assert_array_equal(
                    np.broadcast_to(df_dr, r.shape),
                    np.broadcast_to(df_dr2, r.shape))
                np.testing.assert_array_equal(
                    np.broadcast_to(df_dk, r.shape),
                    np.broadcast_to(df_dk2, r.shape))


@pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba not installed")
class TestCompiledOnly:
    def test_warmup_compiles_every_kernel(self):
        seconds = kernels.warmup()
        assert seconds >= 0.0

    def test_auto_selects_compiled(self):
        with kernels.use("auto"):
            assert kernels.get_mode() == "compiled"
            kern = kernels.REGISTRY["pairwise_dist"]
            assert kernels.impl("pairwise_dist") is kern.compiled
