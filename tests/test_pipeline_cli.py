"""The `python -m repro` CLI: run / serve / eval / models subcommands."""

import json

import pytest

from repro.pipeline import cli


TINY_CLI = {
    "name": "cli-tiny",
    "data": {
        "days": 2, "train_days": 1, "seed": 11,
        "simulator": {"num_queries": 120, "num_items": 180, "num_ads": 60,
                      "num_users": 90, "tree_depth": 3, "tree_branching": 2},
    },
    "model": {"name": "amcad", "num_subspaces": 2, "subspace_dim": 4},
    "training": {"steps": 8, "batch_size": 32},
    "index": {"top_k": 8},
    "serving": {"measure_requests": 6, "measure_repeats": 1,
                "qps_sweep": [1000.0]},
    "eval": {"auc_samples": 40, "ranking_ks": [5], "max_queries": 20},
}


@pytest.fixture(scope="module")
def cli_artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    config_path = root / "config.json"
    config_path.write_text(json.dumps(TINY_CLI))
    artifact_dir = root / "artifacts"
    code = cli.main(["run", "--config", str(config_path),
                     "--artifacts", str(artifact_dir),
                     "--set", "training.steps=6", "--quiet"])
    assert code == 0
    return artifact_dir


def test_run_writes_artifacts(cli_artifacts, capsys):
    names = {p.name for p in cli_artifacts.iterdir()}
    assert {"config.json", "model.npz", "indices.npz",
            "report.json"} <= names
    # the --set override reached the persisted config and the run
    config = json.loads((cli_artifacts / "config.json").read_text())
    assert config["training"]["steps"] == 6
    report = json.loads((cli_artifacts / "report.json").read_text())
    train = [s for s in report["stages"] if s["name"] == "train"][0]
    assert train["info"]["steps"] == 6


def test_serve_explicit_queries(cli_artifacts, capsys):
    assert cli.main(["serve", "--artifacts", str(cli_artifacts),
                     "--queries", "3,14", "--preclicks", "10,42;",
                     "--k", "5"]) == 0
    out = capsys.readouterr().out
    assert "query 3" in out and "query 14" in out
    assert "served 2 request(s)" in out


def test_serve_random_requests(cli_artifacts, capsys):
    assert cli.main(["serve", "--artifacts", str(cli_artifacts),
                     "--requests", "4"]) == 0
    assert "served 4 request(s)" in capsys.readouterr().out


def test_serve_rejects_out_of_range_query(cli_artifacts):
    with pytest.raises(SystemExit, match="out of range"):
        cli.main(["serve", "--artifacts", str(cli_artifacts),
                  "--queries", "100000"])


def test_serve_rejects_out_of_range_preclicks(cli_artifacts):
    with pytest.raises(SystemExit, match="out of range"):
        cli.main(["serve", "--artifacts", str(cli_artifacts),
                  "--queries", "3", "--preclicks", "99999"])


def test_serve_rejects_preclicks_without_queries(cli_artifacts):
    with pytest.raises(SystemExit, match="requires --queries"):
        cli.main(["serve", "--artifacts", str(cli_artifacts),
                  "--preclicks", "1,2"])


def test_serve_qps_routes_through_admission(cli_artifacts, capsys):
    assert cli.main(["serve", "--artifacts", str(cli_artifacts),
                     "--requests", "5", "--qps", "200",
                     "--set", "serving.admission_deadline_ms=20"]) == 0
    out = capsys.readouterr().out
    assert "admitted 5/5 request(s) at 200 qps" in out
    assert "latency p50/p95/p99" in out
    assert "queue deadline 20 ms" in out


def test_serve_qps_rejects_nonpositive(cli_artifacts):
    with pytest.raises(SystemExit, match="--qps"):
        cli.main(["serve", "--artifacts", str(cli_artifacts),
                  "--requests", "2", "--qps", "0"])


def test_serve_rejects_non_serving_overrides(cli_artifacts):
    with pytest.raises(SystemExit, match="serving.* overrides"):
        cli.main(["serve", "--artifacts", str(cli_artifacts),
                  "--set", "training.steps=1"])


def test_index_rebuilds_and_reshards(cli_artifacts, capsys):
    try:
        assert cli.main(["index", "--artifacts", str(cli_artifacts),
                         "--set", "index.backend=sharded",
                         "--set", "index.num_shards=3"]) == 0
        out = capsys.readouterr().out
        info = json.loads(out[:out.rindex("}") + 1])
        assert info["backend"] == "sharded"
        assert info["num_shards"] == 3
        # the persisted config was updated alongside the fresh indices
        config = json.loads((cli_artifacts / "config.json").read_text())
        assert config["index"]["backend"] == "sharded"
        # and serving from the re-sharded artifacts still works
        assert cli.main(["serve", "--artifacts", str(cli_artifacts),
                         "--requests", "3"]) == 0
        assert "served 3 request(s)" in capsys.readouterr().out
    finally:
        # restore the exact layout for the other module-scoped tests
        assert cli.main(["index", "--artifacts", str(cli_artifacts),
                         "--set", "index.backend=exact"]) == 0


def test_index_rebuilds_with_ivf_backend(cli_artifacts, capsys):
    """`index --set index.backend=ivf` rebuilds without retraining and
    the reloaded artifact carries the ANN dials in its npz header."""
    from repro.io import load_index_set
    try:
        assert cli.main(["index", "--artifacts", str(cli_artifacts),
                         "--set", "index.backend=ivf",
                         "--set", "index.nprobe=4",
                         "--set", "index.rerank_k=32"]) == 0
        out = capsys.readouterr().out
        info = json.loads(out[:out.rindex("}") + 1])
        assert info["backend"] == "ivf"
        assert info["nprobe"] == 4
        assert info["rerank_k"] == 32
        stored = load_index_set(cli_artifacts / "indices.npz")
        assert stored.backend == "ivf"
        assert stored.backend_params["nprobe"] == 4
        assert stored.backend_params["rerank_k"] == 32
        # serving from the reloaded ANN artifacts still works
        assert cli.main(["serve", "--artifacts", str(cli_artifacts),
                         "--requests", "3"]) == 0
        assert "served 3 request(s)" in capsys.readouterr().out
    finally:
        assert cli.main(["index", "--artifacts", str(cli_artifacts),
                         "--set", "index.backend=exact"]) == 0


def test_index_rebuilds_sharded_over_ivf(cli_artifacts, capsys):
    """Sharded composition from the CLI: `index.backend=sharded` with
    `index.inner_backend=ivf` round-trips shard layout AND ANN dials."""
    from repro.io import load_index_set
    try:
        assert cli.main(["index", "--artifacts", str(cli_artifacts),
                         "--set", "index.backend=sharded",
                         "--set", "index.inner_backend=ivf",
                         "--set", "index.num_shards=2",
                         "--set", "index.nprobe=3"]) == 0
        out = capsys.readouterr().out
        info = json.loads(out[:out.rindex("}") + 1])
        assert info["backend"] == "sharded"
        assert info["inner_backend"] == "ivf"
        assert info["nprobe"] == 3
        stored = load_index_set(cli_artifacts / "indices.npz")
        assert stored.backend == "sharded"
        assert stored.backend_params["inner_backend"] == "ivf"
        assert stored.backend_params["num_shards"] == 2
        assert stored.backend_params["inner_kwargs"]["nprobe"] == 3
        assert cli.main(["serve", "--artifacts", str(cli_artifacts),
                         "--requests", "2"]) == 0
        assert "served 2 request(s)" in capsys.readouterr().out
    finally:
        assert cli.main(["index", "--artifacts", str(cli_artifacts),
                         "--set", "index.backend=exact"]) == 0


def test_index_rejects_non_index_overrides(cli_artifacts):
    with pytest.raises(SystemExit, match="index.* overrides"):
        cli.main(["index", "--artifacts", str(cli_artifacts),
                  "--set", "training.steps=1"])


def test_eval_rejects_non_eval_overrides(cli_artifacts):
    with pytest.raises(SystemExit, match="eval.* overrides"):
        cli.main(["eval", "--artifacts", str(cli_artifacts),
                  "--set", "data.seed=99"])


def test_eval_from_artifacts(cli_artifacts, capsys):
    assert cli.main(["eval", "--artifacts", str(cli_artifacts),
                     "--set", "eval.auc_samples=30"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert 0.0 <= info["next_auc"] <= 100.0


def test_run_accepts_prefetch_workers_override(tmp_path, capsys):
    """`--set training.prefetch_workers=2` trains through the producer
    pool end to end and surfaces the overlap stats in the report."""
    config_path = tmp_path / "config.json"
    config_path.write_text(json.dumps(TINY_CLI))
    artifact_dir = tmp_path / "artifacts"
    code = cli.main(["run", "--config", str(config_path),
                     "--artifacts", str(artifact_dir),
                     "--set", "training.steps=4",
                     "--set", "training.prefetch_workers=2", "--quiet"])
    assert code == 0
    config = json.loads((artifact_dir / "config.json").read_text())
    assert config["training"]["prefetch_workers"] == 2
    report = json.loads((artifact_dir / "report.json").read_text())
    train = [s for s in report["stages"] if s["name"] == "train"][0]
    assert train["info"]["prefetch_workers"] == 2
    assert 0.0 <= train["info"]["prefetch_overlap_fraction"] <= 1.0


def test_run_admission_overrides_smoke(tmp_path, capsys):
    """`run --set serving.admission_*` reaches the persisted config and
    the serve stage's closed-loop admission probe."""
    config_path = tmp_path / "config.json"
    config_path.write_text(json.dumps(TINY_CLI))
    artifact_dir = tmp_path / "artifacts"
    code = cli.main(["run", "--config", str(config_path),
                     "--artifacts", str(artifact_dir),
                     "--set", "serving.admission_deadline_ms=50",
                     "--set", "serving.admission_max_queue=64", "--quiet"])
    assert code == 0
    config = json.loads((artifact_dir / "config.json").read_text())
    assert config["serving"]["admission_deadline_ms"] == 50
    assert config["serving"]["admission_max_queue"] == 64
    report = json.loads((artifact_dir / "report.json").read_text())
    serve = [s for s in report["stages"] if s["name"] == "serve"][0]
    admission = serve["info"]["admission"]
    assert admission["deadline_ms"] == 50.0
    assert admission["max_queue"] == 64
    assert admission["served"] > 0
    assert admission["shed_rate"] <= 1.0
    # served requests met the queue-wait SLO by construction
    assert admission["wait_ms"]["p99"] <= 50.0 + 1e-9
    assert "admission p99" in serve["info"]["summary"]


def test_models_listing(capsys):
    assert cli.main(["models"]) == 0
    out = capsys.readouterr().out
    assert "amcad" in out and "product:<SIG>" in out
