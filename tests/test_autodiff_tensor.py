"""Unit tests for the autodiff Tensor core."""

import numpy as np
import pytest

from repro.autodiff import Tensor, Parameter, no_grad, ops
from repro.autodiff.tensor import collect_parameters, ensure_tensor, is_grad_enabled


class TestTensorBasics:
    def test_construction_coerces_to_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_plain_tensor_does_not_require_grad(self):
        assert not Tensor(np.zeros(3)).requires_grad

    def test_detach_cuts_graph(self):
        p = Parameter(np.ones(3))
        d = (p * 2.0).detach()
        assert not d.requires_grad
        assert np.allclose(d.data, 2.0)

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_backward_requires_scalar(self):
        p = Parameter(np.ones(3))
        out = p * 2.0
        with pytest.raises(ValueError):
            out.backward()

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Parameter(np.ones(2)))

    def test_ensure_tensor_passthrough(self):
        t = Tensor(1.0)
        assert ensure_tensor(t) is t
        assert isinstance(ensure_tensor(2.0), Tensor)


class TestBackward:
    def test_simple_chain(self):
        x = Parameter(np.array(3.0))
        y = x * x + x
        y.backward()
        assert np.isclose(x.grad, 7.0)  # 2x + 1

    def test_grad_accumulates_across_backward_calls(self):
        x = Parameter(np.array(2.0))
        (x * x).backward()
        (x * x).backward()
        assert np.isclose(x.grad, 8.0)

    def test_zero_grad(self):
        x = Parameter(np.array(2.0))
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates(self):
        # y = a*b + a*c shares `a` between two products
        a = Parameter(np.array(2.0))
        b, c = Tensor(3.0), Tensor(4.0)
        (a * b + a * c).backward()
        assert np.isclose(a.grad, 7.0)

    def test_reused_tensor_in_same_op(self):
        x = Parameter(np.array(3.0))
        (x * x).backward()
        assert np.isclose(x.grad, 6.0)

    def test_deep_chain(self):
        x = Parameter(np.array(1.0))
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward()
        assert np.isclose(x.grad, 1.1 ** 50)

    def test_branch_not_on_path_gets_no_grad(self):
        x = Parameter(np.array(1.0))
        z = Parameter(np.array(1.0))
        __ = z * 5.0  # dead branch
        (x * 2.0).backward()
        assert z.grad is None


class TestNoGrad:
    def test_no_grad_disables_tape(self):
        p = Parameter(np.ones(3))
        with no_grad():
            out = p * 2.0
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestCollectParameters:
    def test_collects_from_nested_containers(self):
        p1, p2 = Parameter(np.ones(1)), Parameter(np.ones(1))
        found = list(collect_parameters({"a": [p1, (p2,)], "b": 3}))
        assert set(map(id, found)) == {id(p1), id(p2)}

    def test_deduplicates_by_identity(self):
        p = Parameter(np.ones(1))
        found = list(collect_parameters([p, p, {"again": p}]))
        assert len(found) == 1

    def test_collects_from_objects_with_parameters_method(self):
        p = Parameter(np.ones(1))

        class Holder:
            def parameters(self):
                return [p]

        assert list(collect_parameters(Holder())) == [p]
