"""Frontier vs recursive encoder compute plane: parity, plans, kernels.

The frontier plane must compute *exactly* the same function as the
recursive reference when both replay the neighbour draws captured in an
:class:`~repro.models.plan.EncodePlan` — identical loss, gradients equal
on every parameter — while recording a strictly smaller tape.  The
fused geometry kernels are gradchecked term-by-term against the
composed micro-op chains they replace.
"""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter, Tensor
from repro.geometry import fast, kernels
from repro.geometry import stereographic as st
from repro.graph.sampling import SampleBatch
from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.models.encoder import COMPUTE_PLANES, NodeEncoder
from repro.models.plan import NeighborDrawCache, build_encode_plan
from repro.pipeline.config import PipelineConfig
from repro.training import Trainer, TrainerConfig


def _models_pair(graph, **overrides):
    """The same model twice, one per compute plane (identical seeds)."""
    kwargs = dict(num_subspaces=2, subspace_dim=4, seed=0, gcn_layers=2)
    kwargs.update(overrides)
    frontier = make_model("amcad", graph, compute_plane="frontier", **kwargs)
    recursive = make_model("amcad", graph, compute_plane="recursive", **kwargs)
    return frontier, recursive


def _shared_plans(model, batch):
    """Per-node-type plans over the union of the batch's index sets."""
    rel = batch.relation
    per_type = {}
    per_type.setdefault(rel.source_type, []).append(batch.src_idx)
    per_type.setdefault(rel.target_type, []).extend(
        [batch.pos_idx, batch.neg_idx.ravel()])
    return {t: model.encoder.build_plan(t, np.unique(np.concatenate(parts)),
                                        np.random.default_rng(7))
            for t, parts in per_type.items()}


def _batch(relation, rng, n_src, n_tgt, batch=24, k=5):
    return SampleBatch(relation,
                       rng.integers(0, n_src, size=batch),
                       rng.integers(0, n_tgt, size=batch),
                       rng.integers(0, n_tgt, size=(batch, k)))


class TestPlaneParity:
    @pytest.mark.parametrize("relation", [Relation.Q2Q, Relation.Q2A])
    def test_loss_and_gradients_match_with_shared_plan(self, train_graph,
                                                       relation):
        frontier, recursive = _models_pair(train_graph)
        rng = np.random.default_rng(3)
        batch = _batch(relation, rng,
                       train_graph.num_nodes[relation.source_type],
                       train_graph.num_nodes[relation.target_type])
        plans = _shared_plans(frontier, batch)

        loss_f = frontier.loss(batch, rng=np.random.default_rng(9),
                               plans=plans)
        loss_r = recursive.loss(batch, rng=np.random.default_rng(9),
                                plans=plans)
        assert loss_f.item() == pytest.approx(loss_r.item(), abs=1e-12)

        loss_f.backward()
        loss_r.backward()
        params_f = list(frontier.parameters())
        params_r = list(recursive.parameters())
        assert len(params_f) == len(params_r)
        touched = 0
        for pf, pr in zip(params_f, params_r):
            if pf.grad is None and pr.grad is None:
                continue
            assert pf.grad is not None and pr.grad is not None
            np.testing.assert_allclose(pf.grad, pr.grad, atol=1e-8)
            touched += 1
        assert touched > 0

    def test_encode_matches_with_shared_plan(self, train_graph):
        frontier, recursive = _models_pair(train_graph)
        indices = np.array([0, 5, 3, 5, 0, 7])     # duplicates on purpose
        plan = frontier.encoder.build_plan(NodeType.QUERY, indices,
                                           np.random.default_rng(42))
        a = frontier.encode(NodeType.QUERY, indices, plan=plan)
        b = recursive.encode(NodeType.QUERY, indices, plan=plan)
        for pa, pb in zip(a, b):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)

    def test_frontier_tape_strictly_smaller(self, train_graph):
        frontier, recursive = _models_pair(train_graph)
        rng = np.random.default_rng(5)
        batch = _batch(Relation.Q2I, rng,
                       train_graph.num_nodes[NodeType.QUERY],
                       train_graph.num_nodes[NodeType.ITEM])
        plans = _shared_plans(frontier, batch)
        loss_f = frontier.loss(batch, rng=np.random.default_rng(1),
                               plans=plans)
        loss_r = recursive.loss(batch, rng=np.random.default_rng(1),
                                plans=plans)
        assert loss_f.graph_size() < loss_r.graph_size()

    def test_frontier_plane_is_deterministic(self, train_graph):
        def run():
            model = make_model("amcad", train_graph, num_subspaces=2,
                               subspace_dim=4, seed=0, gcn_layers=1)
            config = TrainerConfig(steps=4, batch_size=16, seed=3)
            return Trainer(model, config).train().losses

        assert run() == run()


class TestGraphSize:
    def test_counts_distinct_tape_nodes(self):
        a = Parameter(np.ones(3))
        b = Parameter(np.ones(3))
        out = ops.sum(a * b + a)
        # nodes: a, b, a*b, (a*b)+a, sum -> 5 (a counted once)
        assert out.graph_size() == 5

    def test_leaf_graph_is_one(self):
        assert Parameter(np.ones(2)).graph_size() == 1


class TestEncodePlan:
    @pytest.fixture(scope="class")
    def plan(self, train_graph):
        return build_encode_plan(train_graph, NodeType.QUERY,
                                 np.array([3, 1, 3, 8]), layers=2,
                                 neighbor_samples=4,
                                 rng=np.random.default_rng(0))

    def test_frontiers_are_sorted_unique(self, plan):
        for level in plan.levels:
            for frontier in level.frontiers.values():
                assert np.array_equal(frontier, np.unique(frontier))

    def test_gather_maps_resolve_to_neighbor_ids(self, plan):
        for l in range(1, plan.layers + 1):
            level = plan.levels[l]
            below = plan.levels[l - 1]
            for t, frontier in level.frontiers.items():
                self_map = level.self_maps[t]
                assert np.array_equal(below.frontiers[t][self_map], frontier)
                for block in level.blocks[t]:
                    if block.gather is None:
                        assert block.mask.sum() == 0
                        continue
                    resolved = below.frontiers[block.dst_type][block.gather]
                    assert np.array_equal(resolved,
                                          block.neigh_ids.ravel())

    def test_output_map_covers_duplicates(self, plan):
        top = plan.levels[plan.layers].frontiers[NodeType.QUERY]
        assert np.array_equal(top[plan.output_map()], plan.indices)

    def test_output_map_rejects_uncovered_indices(self, plan):
        with pytest.raises(ValueError):
            plan.output_map(np.array([9999]))

    def test_lookup_replays_block_draws(self, plan):
        level = plan.levels[plan.layers]
        block = level.blocks[NodeType.QUERY][0]
        ids, mask = plan.lookup(plan.layers - 1, NodeType.QUERY,
                                np.array([3, 8, 3]), block.dst_type)
        frontier = level.frontiers[NodeType.QUERY]
        rows = [int(np.searchsorted(frontier, v)) for v in (3, 8, 3)]
        assert np.array_equal(ids, block.neigh_ids[rows])
        assert np.array_equal(mask, block.mask[rows])

    def test_num_encoded_below_recursive_blowup(self, train_graph, plan):
        # the recursive plane touches (1 + |types|·k)^L per node; the
        # dedup frontier must stay below that on a multi-layer plan
        per_node = (1 + 3 * plan.neighbor_samples) ** plan.layers
        assert plan.num_encoded() < 3 * per_node


class TestDrawCache:
    def test_draws_are_reused_until_cleared(self, train_graph):
        cache = NeighborDrawCache()
        indices = np.arange(10)
        first = cache.sample(np.random.default_rng(0), train_graph, 0,
                             NodeType.QUERY, indices, NodeType.ITEM, 4)
        second = cache.sample(np.random.default_rng(99), train_graph, 0,
                              NodeType.QUERY, indices, NodeType.ITEM, 4)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        cache.clear()
        third = cache.sample(np.random.default_rng(99), train_graph, 0,
                             NodeType.QUERY, indices, NodeType.ITEM, 4)
        assert not np.array_equal(first[0], third[0])

    def test_trainer_plan_refresh_scopes_cache_to_the_loop(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        trainer = Trainer(model, TrainerConfig(steps=3, batch_size=8, seed=0,
                                               plan_refresh=2))
        seen = []
        original = trainer.model.loss
        trainer.model.loss = lambda *a, **k: (
            seen.append(model.encoder.draw_cache), original(*a, **k))[1]
        report = trainer.train()
        assert len(report.losses) == 3
        assert np.isfinite(report.losses).all()
        # attached during every step, detached once the loop returns
        assert all(cache is not None for cache in seen)
        assert model.encoder.draw_cache is None

    def test_plan_refresh_validated(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        with pytest.raises(ValueError, match="plan_refresh"):
            Trainer(model, TrainerConfig(plan_refresh=0))

    def test_plan_refresh_rejected_on_recursive_plane(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0,
                           compute_plane="recursive")
        with pytest.raises(ValueError, match="frontier"):
            Trainer(model, TrainerConfig(plan_refresh=2))

    def test_trainer_detaches_stale_cache(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        model.encoder.draw_cache = NeighborDrawCache()   # leftover state
        Trainer(model, TrainerConfig(plan_refresh=1))
        assert model.encoder.draw_cache is None

    def test_source_role_bypasses_cache(self, train_graph):
        model = make_model("amcad", train_graph, num_subspaces=1,
                           subspace_dim=4, seed=0)
        model.encoder.draw_cache = NeighborDrawCache()
        indices = np.arange(6)
        plan_a = model.encoder.build_plan(NodeType.QUERY, indices,
                                          np.random.default_rng(0))
        plan_b = model.encoder.build_plan(NodeType.QUERY, indices,
                                          np.random.default_rng(1),
                                          use_draw_cache=False)
        level = plan_a.layers
        block_a = plan_a.levels[level].blocks[NodeType.QUERY][0]
        block_b = plan_b.levels[level].blocks[NodeType.QUERY][0]
        assert not np.array_equal(block_a.neigh_ids, block_b.neigh_ids)


class TestGatherGradcheck:
    def test_matches_numerical_gradient(self):
        rng = np.random.default_rng(0)
        table = rng.normal(size=(6, 3))
        index = np.array([0, 2, 2, 5, 0])
        upstream = rng.normal(size=(5, 3))

        param = Parameter(table.copy())
        out = ops.gather(param, index)
        out.backward(upstream)

        eps = 1e-6
        numeric = np.zeros_like(table)
        for i in np.ndindex(*table.shape):
            bumped = table.copy()
            bumped[i] += eps
            plus = np.sum(bumped[index] * upstream)
            bumped[i] -= 2 * eps
            minus = np.sum(bumped[index] * upstream)
            numeric[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(param.grad, numeric, atol=1e-8)

    def test_repeated_rows_accumulate(self):
        param = Parameter(np.zeros((3, 2)))
        out = ops.gather(param, np.array([1, 1, 1]))
        out.backward(np.ones((3, 2)))
        np.testing.assert_array_equal(param.grad,
                                      [[0, 0], [3, 3], [0, 0]])


KAPPAS = (-1.3, -0.4, 0.0, 1e-6, 0.7, 2.0)


class TestFusedKernelGradcheck:
    """Each fused kernel against its composed micro-op reference.

    Pinned to the numpy kernels: this class verifies the numpy
    reference against the composed chain at 1e-12, while compiled-vs-
    numpy parity has its own budget in ``tests/test_kernels.py``.
    """

    @pytest.fixture(autouse=True)
    def _numpy_kernels(self):
        with kernels.use("numpy"):
            yield

    @pytest.mark.parametrize("kappa", KAPPAS)
    @pytest.mark.parametrize("name,fused,composed", [
        ("expmap0", fast.fused_expmap0, st.expmap0),
        ("logmap0", fast.fused_logmap0, st.logmap0),
    ])
    def test_radial_maps(self, kappa, name, fused, composed):
        rng = np.random.default_rng(17)
        x = rng.normal(scale=0.3, size=(5, 4))
        if name == "logmap0" and kappa < 0:
            x = x * 0.4        # keep points inside the ball
        upstream = rng.normal(size=(5, 4))

        xa, ka = Parameter(x.copy()), Parameter(np.asarray(kappa))
        xb, kb = Parameter(x.copy()), Parameter(np.asarray(kappa))
        out_f, out_c = fused(xa, ka), composed(xb, kb)
        np.testing.assert_allclose(out_f.data, out_c.data, atol=1e-12)
        assert out_f.graph_size() < out_c.graph_size()

        out_f.backward(upstream)
        out_c.backward(upstream)
        np.testing.assert_allclose(xa.grad, xb.grad, atol=1e-10)
        np.testing.assert_allclose(ka.grad, kb.grad, atol=1e-10)

    @pytest.mark.parametrize("kappa", KAPPAS)
    def test_dist(self, kappa):
        rng = np.random.default_rng(23)
        x = rng.normal(scale=0.25, size=(6, 4))
        y = rng.normal(scale=0.25, size=(6, 4))
        upstream = rng.normal(size=(6, 1))

        xa, ya, ka = (Parameter(x.copy()), Parameter(y.copy()),
                      Parameter(np.asarray(kappa)))
        xb, yb, kb = (Parameter(x.copy()), Parameter(y.copy()),
                      Parameter(np.asarray(kappa)))
        out_f = fast.fused_dist(xa, ya, ka)
        out_c = st.dist_k(xb, yb, kb)
        assert out_f.shape == out_c.shape == (6, 1)
        np.testing.assert_allclose(out_f.data, out_c.data, atol=1e-12)
        assert out_f.graph_size() < out_c.graph_size()

        out_f.backward(upstream)
        out_c.backward(upstream)
        np.testing.assert_allclose(xa.grad, xb.grad, atol=1e-9)
        np.testing.assert_allclose(ya.grad, yb.grad, atol=1e-9)
        np.testing.assert_allclose(ka.grad, kb.grad, atol=1e-9)

    @pytest.mark.parametrize("kappa,scale", [
        (-1.0, 0.999),     # arctanh clamp region: ‖x‖·√-κ ≥ 1 - 1e-7
        (2.0, 1.2),        # tan clamp region: ‖x‖·√κ beyond ±1.51
    ])
    def test_saturation_branches_match(self, kappa, scale):
        # drive the clip masks so the hand-written `inside` gradient
        # terms are exercised, not just the smooth interior
        rng = np.random.default_rng(31)
        raw = rng.normal(size=(5, 4))
        x = raw / np.linalg.norm(raw, axis=-1, keepdims=True) * scale
        x[0] *= 0.2                       # keep one row in the interior
        upstream = rng.normal(size=(5, 4))
        for fused, composed in ((fast.fused_expmap0, st.expmap0),
                                (fast.fused_logmap0, st.logmap0)):
            xa, ka = Parameter(x.copy()), Parameter(np.asarray(kappa))
            xb, kb = Parameter(x.copy()), Parameter(np.asarray(kappa))
            out_f, out_c = fused(xa, ka), composed(xb, kb)
            np.testing.assert_allclose(out_f.data, out_c.data, atol=1e-12)
            out_f.backward(upstream)
            out_c.backward(upstream)
            np.testing.assert_allclose(xa.grad, xb.grad, atol=1e-9)
            np.testing.assert_allclose(ka.grad, kb.grad, atol=1e-9)

    def test_dist_saturation_branch_matches(self):
        # near-boundary hyperbolic points saturate the arctanh clamp
        rng = np.random.default_rng(37)
        raw = rng.normal(size=(4, 3))
        x = raw / np.linalg.norm(raw, axis=-1, keepdims=True) * 0.995
        y = -x * 0.99
        upstream = rng.normal(size=(4, 1))
        xa, ya, ka = (Parameter(x.copy()), Parameter(y.copy()),
                      Parameter(np.asarray(-1.0)))
        xb, yb, kb = (Parameter(x.copy()), Parameter(y.copy()),
                      Parameter(np.asarray(-1.0)))
        out_f = fast.fused_dist(xa, ya, ka)
        out_c = st.dist_k(xb, yb, kb)
        np.testing.assert_allclose(out_f.data, out_c.data, atol=1e-12)
        out_f.backward(upstream)
        out_c.backward(upstream)
        np.testing.assert_allclose(xa.grad, xb.grad, atol=1e-9)
        np.testing.assert_allclose(ya.grad, yb.grad, atol=1e-9)
        np.testing.assert_allclose(ka.grad, kb.grad, atol=1e-9)

    def test_dist_broadcasts_origin(self):
        # the Eq. 16 regulariser measures distance to a same-shape zero
        # tensor; also cover genuine broadcasting of a single row
        rng = np.random.default_rng(5)
        x = rng.normal(scale=0.2, size=(4, 3))
        y = rng.normal(scale=0.2, size=(1, 3))
        xa, ya, ka = (Parameter(x.copy()), Parameter(y.copy()),
                      Parameter(np.asarray(-0.9)))
        xb, yb, kb = (Parameter(x.copy()), Parameter(y.copy()),
                      Parameter(np.asarray(-0.9)))
        out_f = fast.fused_dist(xa, ya, ka)
        out_c = st.dist_k(xb, yb, kb)
        np.testing.assert_allclose(out_f.data, out_c.data, atol=1e-12)
        upstream = rng.normal(size=out_f.shape)
        out_f.backward(upstream)
        out_c.backward(upstream)
        np.testing.assert_allclose(ya.grad, yb.grad, atol=1e-10)
        np.testing.assert_allclose(xa.grad, xb.grad, atol=1e-10)


class TestValidationAndConfig:
    def test_unknown_compute_plane_rejected(self, train_graph):
        with pytest.raises(ValueError, match="compute_plane"):
            make_model("amcad", train_graph, num_subspaces=1, subspace_dim=4,
                       compute_plane="quantum")

    def test_vocab_sizes_rejects_empty_feature(self, train_graph):
        class Stub:
            features = {NodeType.AD: {"brand": np.empty((0,), dtype=np.int64)}}

        with pytest.raises(ValueError, match="brand.*ad|ad.*brand"):
            NodeEncoder._vocab_sizes(Stub())

    def test_model_compute_plane_round_trips_and_overrides(self):
        config = PipelineConfig()
        assert config.model.compute_plane == "frontier"
        rebuilt = PipelineConfig.from_json(config.to_json())
        assert rebuilt.model.compute_plane == "frontier"
        flipped = config.with_overrides(["model.compute_plane=recursive",
                                         "training.plan_refresh=4"])
        assert flipped.model.compute_plane == "recursive"
        assert flipped.training.plan_refresh == 4
        assert flipped.training.trainer_config().plan_refresh == 4

    def test_model_compute_plane_validated(self):
        with pytest.raises(ValueError, match="compute_plane"):
            PipelineConfig().with_overrides(["model.compute_plane=warp"])
        with pytest.raises(ValueError, match="plan_refresh"):
            PipelineConfig().with_overrides(["training.plan_refresh=0"])

    def test_compute_plane_reserved_in_overrides(self):
        with pytest.raises(ValueError, match="compute_plane"):
            PipelineConfig.from_dict(
                {"model": {"overrides": {"compute_plane": "recursive"}}})

    def test_planes_registry(self):
        assert COMPUTE_PLANES == ("frontier", "recursive")
