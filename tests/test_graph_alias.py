"""Tests for the alias-method sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.alias import AliasSampler, CSRAliasTables, build_alias_tables


def implied_distribution(prob, alias):
    """The distribution a (prob, alias) table actually samples."""
    n = prob.size
    out = prob / n
    np.add.at(out, alias, (1.0 - prob) / n)
    return out


class TestAliasSampler:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasSampler([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, -1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasSampler(np.ones((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            AliasSampler([1.0, float("nan"), 2.0])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            AliasSampler([1.0, float("inf")])

    def test_single_outcome(self):
        sampler = AliasSampler([5.0])
        rng = np.random.default_rng(0)
        assert sampler.sample(rng) == 0
        assert np.all(sampler.sample(rng, size=10) == 0)

    def test_scalar_and_array_forms(self):
        sampler = AliasSampler([1.0, 1.0, 2.0])
        rng = np.random.default_rng(0)
        assert isinstance(sampler.sample(rng), int)
        batch = sampler.sample(rng, size=(3, 4))
        assert batch.shape == (3, 4)

    def test_zero_weight_outcome_never_sampled(self):
        sampler = AliasSampler([1.0, 0.0, 1.0])
        rng = np.random.default_rng(0)
        draws = sampler.sample(rng, size=5000)
        assert not np.any(draws == 1)

    def test_empirical_distribution_matches_weights(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        sampler = AliasSampler(weights)
        rng = np.random.default_rng(42)
        draws = sampler.sample(rng, size=200_000)
        counts = np.bincount(draws, minlength=4) / draws.size
        expected = weights / weights.sum()
        assert np.allclose(counts, expected, atol=0.01)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2,
                    max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_well_formed(self, weights):
        sampler = AliasSampler(weights)
        assert np.all(sampler.prob >= 0)
        assert np.all(sampler.prob <= 1.0 + 1e-12)
        assert np.all(sampler.alias >= 0)
        assert np.all(sampler.alias < len(weights))

    def test_deterministic_given_seed(self):
        sampler = AliasSampler([1.0, 2.0, 3.0])
        a = sampler.sample(np.random.default_rng(7), size=50)
        b = sampler.sample(np.random.default_rng(7), size=50)
        assert np.array_equal(a, b)


class TestVectorisedConstruction:
    """The batched builder must encode the input distribution exactly."""

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_implied_distribution_is_exact(self, weights):
        weights = np.asarray(weights)
        if weights.sum() <= 0:
            weights[0] = 1.0
        prob, alias = build_alias_tables(weights)
        assert np.allclose(implied_distribution(prob, alias),
                           weights / weights.sum(), atol=1e-9)

    def test_multi_row_tables_are_exact_per_row(self):
        rng = np.random.default_rng(5)
        lens = rng.integers(0, 15, size=40)  # includes empty rows
        indptr = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
        weights = rng.random(indptr[-1]) + 0.01
        prob, alias = build_alias_tables(weights, indptr)
        for row in range(lens.size):
            lo, hi = indptr[row], indptr[row + 1]
            if hi == lo:
                continue
            assert np.all(alias[lo:hi] < hi - lo), "alias must stay row-local"
            assert np.allclose(
                implied_distribution(prob[lo:hi], alias[lo:hi]),
                weights[lo:hi] / weights[lo:hi].sum(), atol=1e-9)

    def test_sequential_fallback_matches(self):
        """max_rounds=0 forces the cleanup path; same distribution."""
        weights = np.array([0.1, 5.0, 0.2, 1.0, 3.0])
        prob, alias = build_alias_tables(weights, max_rounds=0)
        assert np.allclose(implied_distribution(prob, alias),
                           weights / weights.sum(), atol=1e-12)

    def test_pathological_chain(self):
        """One huge weight among many tiny ones stays exact."""
        weights = np.concatenate([[900.0], np.full(99, 1.0)])
        prob, alias = build_alias_tables(weights)
        assert np.allclose(implied_distribution(prob, alias),
                           weights / weights.sum(), atol=1e-9)

    def test_rejects_nan_and_zero_rows(self):
        with pytest.raises(ValueError, match="finite"):
            build_alias_tables(np.array([1.0, float("nan")]))
        with pytest.raises(ValueError, match="positive total"):
            build_alias_tables(np.array([0.0, 0.0, 1.0]),
                               indptr=np.array([0, 2, 3]))


class TestCSRAliasTables:
    @pytest.fixture(scope="class")
    def tables(self):
        indptr = np.array([0, 3, 3, 5])
        indices = np.array([10, 11, 12, 20, 21])
        weights = np.array([1.0, 2.0, 1.0, 3.0, 1.0])
        return CSRAliasTables(indptr, indices, weights)

    def test_empty_row_draws_minus_one(self, tables):
        rng = np.random.default_rng(0)
        out = tables.draw(rng, np.array([1, 1, 1]))
        assert np.all(out == -1)

    def test_draws_are_neighbours(self, tables):
        rng = np.random.default_rng(0)
        out = tables.draw(rng, np.zeros(200, dtype=np.int64))
        assert set(out.tolist()) <= {10, 11, 12}

    def test_draw_marginals_match_weights(self, tables):
        rng = np.random.default_rng(1)
        out = tables.draw(rng, np.full(60_000, 2, dtype=np.int64))
        freq = np.bincount(out, minlength=22)[[20, 21]] / out.size
        assert np.allclose(freq, [0.75, 0.25], atol=0.01)

    def test_deterministic_given_seed(self, tables):
        rows = np.array([0, 2, 0, 1, 2])
        a = tables.draw(np.random.default_rng(3), rows)
        b = tables.draw(np.random.default_rng(3), rows)
        assert np.array_equal(a, b)
