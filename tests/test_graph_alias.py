"""Tests for the alias-method sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.alias import AliasSampler


class TestAliasSampler:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasSampler([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, -1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasSampler(np.ones((2, 2)))

    def test_single_outcome(self):
        sampler = AliasSampler([5.0])
        rng = np.random.default_rng(0)
        assert sampler.sample(rng) == 0
        assert np.all(sampler.sample(rng, size=10) == 0)

    def test_scalar_and_array_forms(self):
        sampler = AliasSampler([1.0, 1.0, 2.0])
        rng = np.random.default_rng(0)
        assert isinstance(sampler.sample(rng), int)
        batch = sampler.sample(rng, size=(3, 4))
        assert batch.shape == (3, 4)

    def test_zero_weight_outcome_never_sampled(self):
        sampler = AliasSampler([1.0, 0.0, 1.0])
        rng = np.random.default_rng(0)
        draws = sampler.sample(rng, size=5000)
        assert not np.any(draws == 1)

    def test_empirical_distribution_matches_weights(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        sampler = AliasSampler(weights)
        rng = np.random.default_rng(42)
        draws = sampler.sample(rng, size=200_000)
        counts = np.bincount(draws, minlength=4) / draws.size
        expected = weights / weights.sum()
        assert np.allclose(counts, expected, atol=0.01)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2,
                    max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_well_formed(self, weights):
        sampler = AliasSampler(weights)
        assert np.all(sampler.prob >= 0)
        assert np.all(sampler.prob <= 1.0 + 1e-12)
        assert np.all(sampler.alias >= 0)
        assert np.all(sampler.alias < len(weights))

    def test_deterministic_given_seed(self):
        sampler = AliasSampler([1.0, 2.0, 3.0])
        a = sampler.sample(np.random.default_rng(7), size=50)
        b = sampler.sample(np.random.default_rng(7), size=50)
        assert np.array_equal(a, b)
