"""Gradient correctness tests for every autodiff op (vs finite differences)."""

import numpy as np
import pytest

from repro.autodiff import Parameter, Tensor, ops


def finite_difference_check(fn, params, eps=1e-6, tol=2e-4):
    """Compare autodiff gradients of scalar fn() against central differences."""
    out = fn()
    out.backward()
    analytic = [p.grad.copy() for p in params]
    for p, grad in zip(params, analytic):
        numeric = np.zeros_like(p.data)
        it = np.nditer(p.data, flags=["multi_index"])
        for _ in it:
            idx = it.multi_index
            original = p.data[idx]
            p.data[idx] = original + eps
            up = fn().item()
            p.data[idx] = original - eps
            down = fn().item()
            p.data[idx] = original
            numeric[idx] = (up - down) / (2 * eps)
        assert np.max(np.abs(numeric - grad)) < tol, (
            "gradient mismatch: analytic %r vs numeric %r" % (grad, numeric))
        p.zero_grad()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4,)))
        finite_difference_check(lambda: ops.sum(a + b), [a, b])

    def test_sub_scalar_left(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        finite_difference_check(lambda: ops.sum(1.5 - a), [a])

    def test_mul_broadcast(self, rng):
        a = Parameter(rng.normal(size=(2, 3)))
        b = Parameter(rng.normal(size=(1, 3)))
        finite_difference_check(lambda: ops.sum(a * b), [a, b])

    def test_div(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        b = Parameter(rng.normal(size=(3,)) + 3.0)
        finite_difference_check(lambda: ops.sum(a / b), [a, b])

    def test_power(self, rng):
        a = Parameter(np.abs(rng.normal(size=(3,))) + 0.5)
        finite_difference_check(lambda: ops.sum(a ** 3.0), [a])

    def test_neg(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        finite_difference_check(lambda: ops.sum(-a), [a])


class TestMatmulGradients:
    def test_2d_2d(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4, 2)))
        finite_difference_check(lambda: ops.sum(a @ b), [a, b])

    def test_1d_2d(self, rng):
        a = Parameter(rng.normal(size=(4,)))
        b = Parameter(rng.normal(size=(4, 2)))
        finite_difference_check(lambda: ops.sum(a @ b), [a, b])

    def test_2d_1d(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4,)))
        finite_difference_check(lambda: ops.sum(a @ b), [a, b])

    def test_batched(self, rng):
        a = Parameter(rng.normal(size=(2, 3, 4)))
        b = Parameter(rng.normal(size=(2, 4, 2)))
        finite_difference_check(lambda: ops.sum(a @ b), [a, b])


class TestReductionGradients:
    def test_sum_axis_keepdims(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        finite_difference_check(
            lambda: ops.sum(ops.sum(a, axis=1, keepdims=True) * 2.0), [a])

    def test_mean_axis(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        finite_difference_check(lambda: ops.sum(ops.mean(a, axis=0)), [a])

    def test_mean_global(self, rng):
        a = Parameter(rng.normal(size=(5,)))
        finite_difference_check(lambda: ops.mean(a), [a])


class TestNonlinearityGradients:
    @pytest.mark.parametrize("op", [ops.exp, ops.tanh, ops.sigmoid, ops.arctan])
    def test_unbounded_domain(self, rng, op):
        a = Parameter(rng.normal(size=(4,)))
        finite_difference_check(lambda: ops.sum(op(a)), [a])

    def test_log(self, rng):
        a = Parameter(np.abs(rng.normal(size=(4,))) + 0.5)
        finite_difference_check(lambda: ops.sum(ops.log(a)), [a])

    def test_sqrt(self, rng):
        a = Parameter(np.abs(rng.normal(size=(4,))) + 0.5)
        finite_difference_check(lambda: ops.sum(ops.sqrt(a)), [a])

    def test_tan_within_domain(self, rng):
        a = Parameter(rng.uniform(-1.0, 1.0, size=(4,)))
        finite_difference_check(lambda: ops.sum(ops.tan(a)), [a])

    def test_arctanh_within_domain(self, rng):
        a = Parameter(rng.uniform(-0.8, 0.8, size=(4,)))
        finite_difference_check(lambda: ops.sum(ops.arctanh(a)), [a])

    def test_relu_gradient_masked(self):
        a = Parameter(np.array([-1.0, 2.0, -3.0, 4.0]))
        ops.sum(ops.relu(a)).backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0, 1.0])

    def test_abs(self, rng):
        a = Parameter(rng.normal(size=(4,)) + 2.0)
        finite_difference_check(lambda: ops.sum(ops.abs_(a)), [a])


class TestClipWhereMaximum:
    def test_clip_masks_gradient_outside(self):
        a = Parameter(np.array([-2.0, 0.5, 2.0]))
        ops.sum(ops.clip(a, -1.0, 1.0)).backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_clip_values(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]))
        assert np.allclose(ops.clip(a, -1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_where_routes_gradient(self):
        a = Parameter(np.array([1.0, 2.0]))
        b = Parameter(np.array([3.0, 4.0]))
        cond = np.array([True, False])
        ops.sum(ops.where(cond, a, b)).backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_maximum_routes_gradient(self):
        a = Parameter(np.array([1.0, 5.0]))
        b = Parameter(np.array([3.0, 4.0]))
        ops.sum(ops.maximum(a, b)).backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])


class TestSoftmaxNorm:
    def test_softmax_rows_sum_to_one(self, rng):
        a = Tensor(rng.normal(size=(5, 7)))
        s = ops.softmax(a, axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self, rng):
        a = Parameter(rng.normal(size=(2, 3)))
        mask = rng.normal(size=(2, 3))
        finite_difference_check(
            lambda: ops.sum(ops.softmax(a, axis=-1) * Tensor(mask)), [a])

    def test_softmax_stable_for_large_logits(self):
        a = Tensor(np.array([[1000.0, 1000.0]]))
        s = ops.softmax(a, axis=-1)
        assert np.allclose(s.data, 0.5)

    def test_norm_value(self, rng):
        a = Tensor(rng.normal(size=(4, 3)))
        n = ops.norm(a, axis=-1)
        assert np.allclose(n.data[:, 0],
                           np.linalg.norm(a.data, axis=-1), atol=1e-6)

    def test_norm_gradient_finite_at_zero(self):
        a = Parameter(np.zeros((2, 3)))
        ops.sum(ops.norm(a, axis=-1)).backward()
        assert np.all(np.isfinite(a.grad))


class TestIndexingShapes:
    def test_gather_accumulates_duplicates(self, rng):
        table = Parameter(rng.normal(size=(6, 3)))
        idx = np.array([2, 2, 5])
        ops.sum(ops.gather(table, idx)).backward()
        assert np.allclose(table.grad[2], 2.0)
        assert np.allclose(table.grad[5], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_gather_2d_index(self, rng):
        table = Parameter(rng.normal(size=(6, 3)))
        idx = np.array([[0, 1], [1, 2]])
        out = ops.gather(table, idx)
        assert out.shape == (2, 2, 3)
        ops.sum(out).backward()
        assert np.allclose(table.grad[1], 2.0)

    def test_getitem_slice(self, rng):
        a = Parameter(rng.normal(size=(5, 3)))
        ops.sum(a[1:3]).backward()
        assert np.allclose(a.grad[1:3], 1.0)
        assert np.allclose(a.grad[0], 0.0)

    def test_getitem_fancy(self, rng):
        a = Parameter(rng.normal(size=(5, 3)))
        ops.sum(a[np.array([0, 0, 4])]).backward()
        assert np.allclose(a.grad[0], 2.0)

    def test_reshape_roundtrip_gradient(self, rng):
        a = Parameter(rng.normal(size=(2, 6)))
        finite_difference_check(
            lambda: ops.sum(ops.reshape(a, (3, 4)) * 2.0), [a])

    def test_transpose_gradient(self, rng):
        a = Parameter(rng.normal(size=(2, 3)))
        mask = rng.normal(size=(3, 2))
        finite_difference_check(
            lambda: ops.sum(ops.transpose(a) * Tensor(mask)), [a])

    def test_concatenate_gradient(self, rng):
        a = Parameter(rng.normal(size=(2, 2)))
        b = Parameter(rng.normal(size=(2, 3)))
        mask = rng.normal(size=(2, 5))
        finite_difference_check(
            lambda: ops.sum(ops.concatenate([a, b], axis=-1) * Tensor(mask)),
            [a, b])

    def test_stack_gradient(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        b = Parameter(rng.normal(size=(3,)))
        mask = rng.normal(size=(2, 3))
        finite_difference_check(
            lambda: ops.sum(ops.stack([a, b], axis=0) * Tensor(mask)), [a, b])

    def test_expand_dims(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        out = ops.expand_dims(a, 0)
        assert out.shape == (1, 3)
        ops.sum(out).backward()
        assert np.allclose(a.grad, 1.0)


class TestDropout:
    def test_identity_when_not_training(self, rng):
        a = Tensor(rng.normal(size=(4,)))
        out = ops.dropout(a, 0.5, rng, training=False)
        assert np.allclose(out.data, a.data)

    def test_scales_kept_values(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones(1000))
        out = ops.dropout(a, 0.5, rng, training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        # roughly half survive
        assert 300 < kept.size < 700


class TestLogsumexp:
    def test_matches_naive(self, rng):
        a = Tensor(rng.normal(size=(4, 5)))
        out = ops.logsumexp(a, axis=-1, keepdims=True)
        naive = np.log(np.exp(a.data).sum(axis=-1, keepdims=True))
        assert np.allclose(out.data, naive, atol=1e-10)

    def test_stable_for_large_values(self):
        a = Tensor(np.array([[1000.0, 999.0]]))
        out = ops.logsumexp(a, axis=-1, keepdims=True)
        assert np.isfinite(out.data).all()
