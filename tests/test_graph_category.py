"""Tests for the category tree."""

import numpy as np
import pytest

from repro.graph.category import CategoryTree


@pytest.fixture
def tree():
    return CategoryTree.balanced(depth=3, branching=2)


class TestConstruction:
    def test_balanced_counts(self, tree):
        # 1 + 2 + 4 + 8
        assert len(tree) == 15
        assert len(tree.leaves) == 8

    def test_add_child_validates_parent(self):
        tree = CategoryTree()
        with pytest.raises(ValueError):
            tree.add_child(99)

    def test_depths(self, tree):
        assert tree.depth[0] == 0
        assert all(tree.depth[leaf] == 3 for leaf in tree.leaves)

    def test_custom_namer(self):
        tree = CategoryTree.balanced(1, 2, namer=lambda p, r: "%s-%d" % (p, r))
        assert tree.name[1] == "root-0"

    def test_manual_growth(self):
        tree = CategoryTree()
        a = tree.add_child(0, "shoes")
        b = tree.add_child(a, "canvas shoes")
        assert tree.parent[b] == a
        assert tree.depth[b] == 2
        assert tree.is_leaf(b)
        assert not tree.is_leaf(a)


class TestQueries:
    def test_path_from_root(self, tree):
        leaf = tree.leaves[0]
        path = tree.path(leaf)
        assert path[0] == 0
        assert path[-1] == leaf
        assert len(path) == 4

    def test_ancestor_at_depth(self, tree):
        leaf = tree.leaves[-1]
        assert tree.ancestor_at_depth(leaf, 0) == 0
        assert tree.ancestor_at_depth(leaf, 3) == leaf
        anc = tree.ancestor_at_depth(leaf, 1)
        assert tree.depth[anc] == 1

    def test_lca_of_siblings_is_parent(self, tree):
        parent = tree.children[0][0]
        kids = tree.children[parent]
        assert tree.lowest_common_ancestor(kids[0], kids[1]) == parent

    def test_lca_with_ancestor(self, tree):
        leaf = tree.leaves[0]
        anc = tree.ancestor_at_depth(leaf, 1)
        assert tree.lowest_common_ancestor(leaf, anc) == anc

    def test_tree_distance_symmetric(self, tree):
        a, b = tree.leaves[0], tree.leaves[-1]
        assert tree.tree_distance(a, b) == tree.tree_distance(b, a)

    def test_tree_distance_values(self, tree):
        a = tree.leaves[0]
        assert tree.tree_distance(a, a) == 0
        # sibling leaves are distance 2
        parent = tree.parent[a]
        sibling = [c for c in tree.children[parent] if c != a][0]
        assert tree.tree_distance(a, sibling) == 2
        # opposite ends of a depth-3 tree are distance 6
        assert tree.tree_distance(tree.leaves[0], tree.leaves[-1]) == 6

    def test_siblings(self, tree):
        a = tree.leaves[0]
        sibs = tree.siblings(a)
        assert len(sibs) == 1
        assert tree.parent[sibs[0]] == tree.parent[a]
        assert tree.siblings(0) == []

    def test_sample_leaf_is_leaf(self, tree):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert tree.is_leaf(tree.sample_leaf(rng))

    def test_leaf_groups_by_parent(self, tree):
        groups = tree.leaf_groups_by_parent()
        assert sum(len(v) for v in groups.values()) == len(tree.leaves)
        for parent, leaves in groups.items():
            for leaf in leaves:
                assert tree.parent[leaf] == parent
