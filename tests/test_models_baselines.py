"""Tests for the skip-gram baseline family."""

import numpy as np
import pytest

from repro.graph.schema import NodeType, Relation
from repro.models import SKIPGRAM_BASELINES, make_baseline
from repro.models.baselines.walks import GlobalIdSpace, _flat_adjacency


class TestGlobalIdSpace:
    def test_offsets_partition_id_space(self, train_graph):
        ids = GlobalIdSpace(train_graph)
        n_q = train_graph.num_nodes[NodeType.QUERY]
        n_i = train_graph.num_nodes[NodeType.ITEM]
        n_a = train_graph.num_nodes[NodeType.AD]
        assert ids.total == n_q + n_i + n_a
        assert ids.to_global(NodeType.QUERY, 0) == 0
        assert ids.to_global(NodeType.ITEM, 0) == n_q
        assert ids.to_global(NodeType.AD, 0) == n_q + n_i

    def test_flat_adjacency_preserves_edges(self, train_graph):
        indptr, indices, weights = _flat_adjacency(train_graph)
        assert indptr[-1] == train_graph.num_edges()
        assert indices.size == weights.size == train_graph.num_edges()


class TestGenerators:
    @pytest.mark.parametrize("name", SKIPGRAM_BASELINES)
    def test_pairs_within_id_space(self, train_graph, name):
        model = make_baseline(name, train_graph, dim=8, seed=0)
        pairs = list(model.generator.pairs(50))
        assert pairs
        for center, context in pairs:
            assert 0 <= center < model.ids.total
            assert 0 <= context < model.ids.total

    def test_deepwalk_pairs_connected(self, train_graph):
        """DeepWalk window pairs must be within walk distance."""
        model = make_baseline("deepwalk", train_graph, dim=8, seed=0)
        pairs = list(model.generator.pairs(30))
        assert all(c != ctx or True for c, ctx in pairs)

    def test_line_pairs_are_edges(self, train_graph):
        model = make_baseline("line1", train_graph, dim=8, seed=0)
        indptr, indices, __ = _flat_adjacency(train_graph)
        for center, context in model.generator.pairs(40):
            row = indices[indptr[center]:indptr[center + 1]]
            assert context in row

    def test_node2vec_bias_parameters(self, train_graph):
        model = make_baseline("node2vec", train_graph, dim=8, seed=0,
                              p=2.0, q=0.25)
        assert model.generator.p == 2.0
        assert model.generator.q == 0.25
        assert list(model.generator.pairs(20))

    def test_metapath2vec_respects_types(self, train_graph):
        model = make_baseline("metapath2vec", train_graph, dim=8, seed=0)
        ids = model.ids
        n_q = train_graph.num_nodes[NodeType.QUERY]
        for center, context in model.generator.pairs(40):
            # sources of Table III meta-paths are queries or items
            assert center < n_q + train_graph.num_nodes[NodeType.ITEM]

    def test_unknown_baseline_rejected(self, train_graph):
        with pytest.raises(ValueError):
            make_baseline("sgc", train_graph)


class TestSkipGramTraining:
    def test_training_reduces_loss(self, train_graph):
        model = make_baseline("deepwalk", train_graph, dim=16, seed=1)
        first = model.train(2000)
        later = model.train(8000)
        assert later < first

    def test_line2_uses_separate_contexts(self, train_graph):
        model = make_baseline("line2", train_graph, dim=8, seed=0)
        assert model.contexts is not model.embeddings
        one = make_baseline("line1", train_graph, dim=8, seed=0)
        assert one.contexts is one.embeddings

    def test_similarity_interface(self, train_graph):
        model = make_baseline("deepwalk", train_graph, dim=8, seed=0)
        model.train(1000)
        src = np.array([0, 1, 2])
        dst = np.array([0, 1, 2])
        sim = model.similarity(Relation.Q2I, src, dst)
        assert sim.shape == (3,)
        assert np.isfinite(sim).all()

    def test_embed_returns_per_type_slices(self, train_graph):
        model = make_baseline("deepwalk", train_graph, dim=8, seed=0)
        ads = model.embed(NodeType.AD)
        assert ads.shape == (train_graph.num_nodes[NodeType.AD], 8)
        sub = model.embed(NodeType.AD, np.array([1, 2]))
        assert np.allclose(sub, ads[[1, 2]])

    def test_training_separates_edge_pairs_from_random(self, train_graph):
        """After training, linked pairs score above random pairs."""
        model = make_baseline("line1", train_graph, dim=16, seed=2)
        model.train(30000)
        from repro.models.baselines.walks import _flat_adjacency
        indptr, indices, __w = _flat_adjacency(train_graph)
        rng = np.random.default_rng(0)
        src = np.repeat(np.arange(model.ids.total), np.diff(indptr))
        picks = rng.choice(src.size, size=200, replace=False)
        pos = np.einsum("bd,bd->b", model.embeddings[src[picks]],
                        model.embeddings[indices[picks]])
        rand = rng.integers(model.ids.total, size=200)
        neg = np.einsum("bd,bd->b", model.embeddings[src[picks]],
                        model.embeddings[rand])
        assert pos.mean() > neg.mean()
