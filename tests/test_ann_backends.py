"""Tests for the tangent-prune ANN backends (IVF and NSW).

Covers the contract every registered backend owes (`SearchBackend`
shapes, sorted metric-true distances, self-exclusion), the exactness
escape hatch (IVF at the full-coverage dial delegates to the MNN
searcher and is bit-identical to ExactBackend), composition with
ShardedBackend including degraded search under injected shard faults,
and IndexSet build/persist round-trips that carry the backend dials.
"""

import numpy as np
import pytest

from repro.graph.schema import Relation
from repro.retrieval import (
    BACKENDS,
    ExactBackend,
    IndexSet,
    IVFBackend,
    NSWBackend,
    make_backend,
)
from repro.retrieval.ann import candidate_dist, tangent_projection
from repro.retrieval.mnn import RelationSpace
from repro.retrieval.quantization import recall_at_k
from repro.testing.faults import FaultSpec, install, reset


@pytest.fixture(autouse=True)
def clean_injector():
    reset()
    yield
    reset()


def _space(num_sources=16, num_targets=900, dim=6, seed=0, same_type=False):
    rng = np.random.default_rng(seed)
    scale = 0.3
    relation = Relation.Q2Q if same_type else Relation.Q2A
    num_targets = num_sources if same_type else num_targets
    return RelationSpace(
        relation=relation,
        src_embeddings=[scale * rng.standard_normal((num_sources, dim)),
                        scale * rng.standard_normal((num_sources, dim))],
        dst_embeddings=[scale * rng.standard_normal((num_targets, dim)),
                        scale * rng.standard_normal((num_targets, dim))],
        src_weights=rng.uniform(0.4, 0.6, size=(num_sources, 2)),
        dst_weights=rng.uniform(0.4, 0.6, size=(num_targets, 2)),
        kappas=[-0.5, 0.4],
    )


@pytest.fixture(scope="module")
def space():
    return _space()


@pytest.fixture(scope="module")
def same_type_space():
    rng_space = _space(num_sources=60, same_type=True)
    # same node set on both sides so exclude_self is meaningful
    return RelationSpace(
        relation=Relation.Q2Q,
        src_embeddings=rng_space.src_embeddings,
        dst_embeddings=rng_space.src_embeddings,
        src_weights=rng_space.src_weights,
        dst_weights=rng_space.src_weights,
        kappas=rng_space.kappas,
    )


SRC = np.array([0, 2, 5, 11, 15])


def _assert_contract(ids, dists, k, num_targets):
    """Shape, dtype, id-range, uniqueness, and ascending distances."""
    assert ids.shape == dists.shape == (SRC.size, k)
    assert ids.dtype == np.int64
    assert ids.min() >= 0 and ids.max() < num_targets
    for row in ids:
        assert np.unique(row).size == row.size
    assert np.all(np.diff(dists, axis=1) >= -1e-12)
    assert np.all(np.isfinite(dists))


class TestTangentProjection:
    def test_concatenates_per_subspace_logmaps(self, space):
        flat = tangent_projection(space.dst_embeddings, space.kappas)
        assert flat.shape == (space.num_targets,
                              sum(e.shape[1] for e in space.dst_embeddings))
        # kappa=0 subspaces are already flat: logmap0 is the identity
        euclid = tangent_projection(space.dst_embeddings, [0.0, 0.0])
        assert np.allclose(euclid,
                           np.concatenate(space.dst_embeddings, axis=1))

    def test_candidate_dist_matches_pair_distance(self, space):
        cand = np.array([[3, 7, 100], [0, 1, 2]])
        valid = np.array([[True, True, False], [True, True, True]])
        got = candidate_dist(space, np.array([0, 4]), cand, valid)
        assert np.isinf(got[0, 2])
        for b, src in enumerate((0, 4)):
            for j in range(3):
                if not valid[b, j]:
                    continue
                ref = space.pair_distance(np.array([src]),
                                          np.array([cand[b, j]]))[0]
                assert got[b, j] == pytest.approx(ref, rel=1e-10)


class TestIVFBackend:
    def test_contract_and_recall(self, space):
        backend = IVFBackend(num_lists=16, nprobe=8,
                             rerank_k=200).build(space)
        ids, dists = backend.search(SRC, k=10)
        _assert_contract(ids, dists, 10, space.num_targets)
        exact_ids, __ = ExactBackend().build(space).search(SRC, k=10)
        assert recall_at_k(ids, exact_ids, 10) >= 0.8

    def test_full_probe_bit_identical_to_exact(self, space):
        """nprobe >= num_lists with uncapped re-rank IS exact search."""
        backend = IVFBackend(num_lists=8, nprobe=8).build(space)
        assert backend.is_exact_dial
        exact = ExactBackend().build(space)
        ids_a, dists_a = backend.search(SRC, k=12)
        ids_b, dists_b = exact.search(SRC, k=12)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(dists_a, dists_b)

    def test_nprobe_expands_until_k_candidates(self, space):
        """A starved nprobe still returns a full, finite top-k."""
        backend = IVFBackend(num_lists=64, nprobe=1).build(space)
        ids, dists = backend.search(SRC, k=50)
        _assert_contract(ids, dists, 50, space.num_targets)

    def test_exclude_self(self, same_type_space):
        backend = IVFBackend(num_lists=8, nprobe=8).build(same_type_space)
        src = np.arange(20)
        ids, __ = backend.search(src, k=5, exclude_self=True)
        assert not np.any(ids == src[:, None])

    def test_more_probes_never_lower_recall_much(self, space):
        exact_ids, __ = ExactBackend().build(space).search(SRC, k=10)
        backend = IVFBackend(num_lists=32, nprobe=1).build(space)
        recalls = []
        for nprobe in (1, 4, 16, 32):
            backend.nprobe = nprobe
            ids, __ = backend.search(SRC, k=10)
            recalls.append(recall_at_k(ids, exact_ids, 10))
        assert recalls[-1] == 1.0
        assert recalls[0] <= recalls[-1]

    def test_tangent_only_mode(self, space):
        """manifold_rerank=False ranks by tangent distance only."""
        backend = IVFBackend(num_lists=8, nprobe=8,
                             manifold_rerank=False).build(space)
        assert not backend.is_exact_dial
        ids, dists = backend.search(SRC, k=10)
        _assert_contract(ids, dists, 10, space.num_targets)

    def test_sqrt_heuristic_list_count(self, space):
        backend = IVFBackend().build(space)
        assert backend.resolved_lists == int(round(np.sqrt(
            space.num_targets)))

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError, match="num_lists"):
            IVFBackend(num_lists=-1)
        with pytest.raises(ValueError, match="nprobe"):
            IVFBackend(nprobe=0)
        with pytest.raises(ValueError, match="rerank_k"):
            IVFBackend(rerank_k=-2)
        with pytest.raises(ValueError, match="kmeans_iters"):
            IVFBackend(kmeans_iters=0)

    def test_search_before_build_raises(self):
        with pytest.raises(RuntimeError):
            IVFBackend().search(SRC, k=3)


class TestNSWBackend:
    def test_contract_and_recall(self, space):
        backend = NSWBackend(ef_search=48).build(space)
        ids, dists = backend.search(SRC, k=10)
        _assert_contract(ids, dists, 10, space.num_targets)
        exact_ids, __ = ExactBackend().build(space).search(SRC, k=10)
        assert recall_at_k(ids, exact_ids, 10) >= 0.8

    def test_widening_beats_bare_beam(self, space):
        exact_ids, __ = ExactBackend().build(space).search(SRC, k=10)
        backend = NSWBackend(ef_search=16).build(space)
        bare_ids, __ = backend.search(SRC, k=10)
        backend.rerank_k = 150
        backend.expand_hops = 2
        wide_ids, wide_dists = backend.search(SRC, k=10)
        _assert_contract(wide_ids, wide_dists, 10, space.num_targets)
        assert (recall_at_k(wide_ids, exact_ids, 10)
                >= recall_at_k(bare_ids, exact_ids, 10))
        assert recall_at_k(wide_ids, exact_ids, 10) >= 0.9

    def test_expand_hops_zero_reranks_bare_beam(self, space):
        """rerank_k > 0 with expand_hops=0 must not widen."""
        backend = NSWBackend(ef_search=32, rerank_k=150,
                             expand_hops=0).build(space)
        ids, dists = backend.search(SRC, k=10)
        _assert_contract(ids, dists, 10, space.num_targets)

    def test_exclude_self(self, same_type_space):
        backend = NSWBackend(ef_search=32).build(same_type_space)
        src = np.arange(20)
        ids, __ = backend.search(src, k=5, exclude_self=True)
        assert not np.any(ids == src[:, None])

    def test_severed_graph_falls_back_to_full_scan(self, space):
        """The disconnected-component safety net serves exact results."""
        backend = NSWBackend(ef_search=space.num_targets).build(space)
        backend._adj[:] = -1
        backend._deg[:] = 0
        ids, dists = backend.search(SRC, k=10)
        exact_ids, exact_dists = ExactBackend().build(space).search(
            SRC, k=10)
        assert np.array_equal(ids, exact_ids)
        assert np.allclose(dists, exact_dists)

    def test_build_is_deterministic(self, space):
        a = NSWBackend(ef_search=32, seed=5).build(space)
        b = NSWBackend(ef_search=32, seed=5).build(space)
        assert np.array_equal(a._adj, b._adj)
        ids_a, dists_a = a.search(SRC, k=10)
        ids_b, dists_b = b.search(SRC, k=10)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(dists_a, dists_b)

    def test_tiny_catalogs(self):
        for n in (1, 2, 5):
            tiny = _space(num_targets=n)
            backend = NSWBackend(max_degree=2, ef_search=4).build(tiny)
            ids, dists = backend.search(SRC, k=min(3, n))
            assert ids.shape == (SRC.size, min(3, n))
            assert np.all(np.isfinite(dists))

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError, match="max_degree"):
            NSWBackend(max_degree=0)
        with pytest.raises(ValueError, match="ef_construction"):
            NSWBackend(ef_construction=0)
        with pytest.raises(ValueError, match="ef_search"):
            NSWBackend(ef_search=0)
        with pytest.raises(ValueError, match="expand_hops"):
            NSWBackend(expand_hops=-1)

    def test_search_before_build_raises(self):
        with pytest.raises(RuntimeError):
            NSWBackend().search(SRC, k=3)


class TestShardedComposition:
    FULL = {"nprobe": 10 ** 9, "rerank_k": 0}

    def test_sharded_ivf_full_dial_matches_sharded_exact(self, space):
        """Swapping the inner backend exact -> ivf at the full-coverage
        dial must change nothing, bit for bit."""
        ivf = make_backend("sharded", num_shards=3, inner_backend="ivf",
                           inner_kwargs=dict(self.FULL)).build(space)
        exact = make_backend("sharded", num_shards=3).build(space)
        ids_a, dists_a = ivf.search(SRC, k=10)
        ids_b, dists_b = exact.search(SRC, k=10)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(dists_a, dists_b)

    def test_sharded_ivf_full_dial_matches_unsharded(self, space):
        """Same ids as the unsharded backend; distances to ~1 ulp (BLAS
        summation order differs between shard slices and full arrays)."""
        sharded = make_backend("sharded", num_shards=3,
                               inner_backend="ivf",
                               inner_kwargs=dict(self.FULL)).build(space)
        unsharded = IVFBackend(**self.FULL).build(space)
        ids_a, dists_a = sharded.search(SRC, k=10)
        ids_b, dists_b = unsharded.search(SRC, k=10)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b, rtol=1e-9, atol=1e-12)

    def test_sharded_nsw_contract(self, space):
        backend = make_backend(
            "sharded", num_shards=3, inner_backend="nsw",
            inner_kwargs={"ef_search": 32, "max_degree": 8}).build(space)
        assert all(isinstance(s, NSWBackend) for s in backend.shards)
        ids, dists = backend.search(SRC, k=10)
        _assert_contract(ids, dists, 10, space.num_targets)

    def test_dead_shard_degrades_like_exact_inner(self, space):
        """A faulted ivf shard degrades identically to a faulted exact
        shard: healthy-shard merge, search flagged degraded."""
        ivf = make_backend("sharded", num_shards=4, inner_backend="ivf",
                           inner_kwargs=dict(self.FULL)).build(space)
        exact = make_backend("sharded", num_shards=4).build(space)
        install(FaultSpec(site="shard.search", match={"shard": 2}))
        ids_a, dists_a = ivf.search(SRC, k=10)
        assert ivf.last_failed_shards == [2]
        ids_b, dists_b = exact.search(SRC, k=10)
        assert exact.last_failed_shards == [2]
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(dists_a, dists_b)
        lo, hi = ivf.shard_bounds[2]
        assert not np.any((ids_a >= lo) & (ids_a < hi))


class TestIndexSetANN:
    @pytest.fixture(scope="class")
    def model(self, train_graph):
        from repro.models import make_model
        from repro.training import Trainer, TrainerConfig
        m = make_model("amcad", train_graph, num_subspaces=2,
                       subspace_dim=4, seed=9)
        Trainer(m, TrainerConfig(steps=10, batch_size=32, seed=9)).train()
        return m

    def test_backend_params_survive_roundtrip(self, model, tmp_path):
        kwargs = {"num_lists": 4, "nprobe": 2, "rerank_k": 32}
        built = IndexSet(model, top_k=6, backend="ivf",
                         backend_kwargs=kwargs).build([Relation.Q2A])
        assert built.backend_params == kwargs
        loaded = IndexSet.load(built.save(tmp_path / "ivf.npz"))
        assert loaded.backend_name == "ivf"
        assert loaded.backend_params == kwargs
        ids_a, dists_a = built[Relation.Q2A].lookup_batch(np.arange(8))
        ids_b, dists_b = loaded[Relation.Q2A].lookup_batch(np.arange(8))
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)

    def test_sharded_inner_ivf_roundtrip(self, model, tmp_path):
        kwargs = {"num_shards": 2, "inner_backend": "ivf",
                  "inner_kwargs": {"num_lists": 4, "nprobe": 4}}
        built = IndexSet(model, top_k=5, backend="sharded",
                         backend_kwargs=kwargs).build([Relation.Q2A])
        loaded = IndexSet.load(built.save(tmp_path / "sharded_ivf.npz"))
        assert loaded.backend_name == "sharded"
        assert loaded.backend_params == kwargs
        assert loaded.shard_bounds[Relation.Q2A] == \
            built.shard_bounds[Relation.Q2A]

    def test_ivf_backend_instances_built(self, model):
        built = IndexSet(model, top_k=5, backend="nsw",
                         backend_kwargs={"ef_search": 16,
                                         "max_degree": 4}).build(
            [Relation.Q2A])
        assert isinstance(built.backends[Relation.Q2A], NSWBackend)
        assert built.backends[Relation.Q2A].ef_search == 16
