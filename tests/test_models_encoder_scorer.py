"""Tests for the node encoder and edge scorer."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.tensor import no_grad
from repro.geometry.product import ProductManifold
from repro.graph.schema import NodeType, Relation
from repro.models.amcad import AMCAD, AMCADConfig
from repro.models.encoder import NodeEncoder
from repro.models.scorer import EdgeScorer


@pytest.fixture(scope="module")
def model(train_graph):
    return AMCAD(train_graph, AMCADConfig(num_subspaces=2, subspace_dim=4,
                                          feature_dim=4, seed=0))


class TestNodeEncoder:
    def test_encode_shapes(self, model, rng):
        points = model.encode(NodeType.QUERY, np.array([0, 1, 2]), rng)
        assert len(points) == 2
        assert all(p.shape == (3, 4) for p in points)

    def test_inductive_points_on_manifold(self, model):
        points = model.encoder.inductive(NodeType.ITEM, np.array([0, 1]))
        for factor, point in zip(
                model.node_manifolds[NodeType.ITEM].factors, points):
            if factor.kappa_value < 0:
                radius = 1.0 / np.sqrt(-factor.kappa_value)
                assert np.all(np.linalg.norm(point.data, axis=-1) <= radius)

    def test_gcn_uses_neighbors(self, train_graph, rng):
        """Zeroing GCN weights changes encoding vs inductive-only."""
        cfg = AMCADConfig(num_subspaces=1, subspace_dim=4, gcn_layers=1, seed=0)
        m = AMCAD(train_graph, cfg)
        idx = np.array([0, 1, 2, 3])
        with_gcn = m.encode(NodeType.QUERY, idx, np.random.default_rng(0))
        inductive = m.encoder.inductive(NodeType.QUERY, idx)
        assert not np.allclose(with_gcn[0].data, inductive[0].data)

    def test_zero_gcn_layers_is_inductive_plus_fusion(self, train_graph):
        cfg = AMCADConfig(num_subspaces=1, subspace_dim=4, gcn_layers=0,
                          use_fusion=False, seed=0)
        m = AMCAD(train_graph, cfg)
        idx = np.array([5, 6])
        out = m.encode(NodeType.AD, idx, np.random.default_rng(0))
        ind = m.encoder.inductive(NodeType.AD, idx)
        assert np.allclose(out[0].data, ind[0].data)

    def test_fusion_mixes_subspaces(self, train_graph):
        base = AMCADConfig(num_subspaces=2, subspace_dim=4, seed=0)
        with_fusion = AMCAD(train_graph, base)
        without = AMCAD(train_graph,
                        AMCADConfig(num_subspaces=2, subspace_dim=4,
                                    use_fusion=False, seed=0))
        idx = np.array([0, 1])
        a = with_fusion.encode(NodeType.QUERY, idx, np.random.default_rng(0))
        b = without.encode(NodeType.QUERY, idx, np.random.default_rng(0))
        assert not np.allclose(a[0].data, b[0].data)

    def test_determinism_given_rng(self, model):
        a = model.encode(NodeType.ITEM, np.array([0, 1]),
                         np.random.default_rng(7))
        b = model.encode(NodeType.ITEM, np.array([0, 1]),
                         np.random.default_rng(7))
        assert np.allclose(a[0].data, b[0].data)

    def test_mismatched_subspace_counts_rejected(self, train_graph, rng):
        manifolds = {
            NodeType.QUERY: ProductManifold.adaptive(2, 4),
            NodeType.ITEM: ProductManifold.adaptive(3, 4),
            NodeType.AD: ProductManifold.adaptive(2, 4),
        }
        with pytest.raises(ValueError):
            NodeEncoder(train_graph, manifolds, rng=rng)


class TestEdgeScorer:
    def test_distance_shape_and_sign(self, model, rng):
        src = model.encode(NodeType.QUERY, np.array([0, 1, 2]), rng)
        dst = model.encode(NodeType.ITEM, np.array([3, 4, 5]), rng)
        d = model.scorer.distance(Relation.Q2I, src, NodeType.QUERY,
                                  dst, NodeType.ITEM)
        assert d.shape == (3,)
        assert np.all(d.data >= 0)

    def test_pair_attention_weights_sum_to_one(self, model, rng):
        points = model.encode(NodeType.QUERY, np.array([0, 1]), rng)
        projected = model.scorer.project(Relation.Q2I, NodeType.QUERY, points)
        weights = model.scorer.node_weights(Relation.Q2I, NodeType.QUERY,
                                            projected)
        assert weights.shape == (2, 2)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)

    def test_uniform_attention(self, train_graph, rng):
        m = AMCAD(train_graph, AMCADConfig(num_subspaces=2, subspace_dim=4,
                                           attention="uniform", seed=0))
        points = m.encode(NodeType.QUERY, np.array([0, 1, 2]), rng)
        projected = m.scorer.project(Relation.Q2I, NodeType.QUERY, points)
        weights = m.scorer.node_weights(Relation.Q2I, NodeType.QUERY, projected)
        assert np.allclose(weights.data, 0.5)

    def test_global_attention_same_for_all_nodes(self, train_graph, rng):
        m = AMCAD(train_graph, AMCADConfig(num_subspaces=2, subspace_dim=4,
                                           attention="global",
                                           share_edge_space=True, seed=0))
        points = m.encode(NodeType.QUERY, np.array([0, 1, 2]), rng)
        projected = m.scorer.project(Relation.Q2I, NodeType.QUERY, points)
        weights = m.scorer.node_weights(Relation.Q2I, NodeType.QUERY, projected)
        assert np.allclose(weights.data[0], weights.data[1])

    def test_unknown_attention_mode_rejected(self, model):
        with pytest.raises(ValueError):
            EdgeScorer(model.node_manifolds, attention="nonsense")

    def test_shared_edge_space_uses_one_manifold(self, train_graph):
        m = AMCAD(train_graph, AMCADConfig(num_subspaces=2, subspace_dim=4,
                                           share_edge_space=True, seed=0))
        assert len(m.scorer.edge_manifolds) == 1
        full = AMCAD(train_graph, AMCADConfig(num_subspaces=2, subspace_dim=4,
                                              seed=0))
        assert len(full.scorer.edge_manifolds) == 6

    def test_relation_specific_projection_differs(self, model, rng):
        points = model.encode(NodeType.QUERY, np.array([0, 1]), rng)
        p_q2i = model.scorer.project(Relation.Q2I, NodeType.QUERY, points)
        p_q2a = model.scorer.project(Relation.Q2A, NodeType.QUERY, points)
        assert not np.allclose(p_q2i[0].data, p_q2a[0].data)

    def test_distance_symmetric_same_type(self, model, rng):
        x = model.encode(NodeType.QUERY, np.array([0, 1]), rng)
        y = model.encode(NodeType.QUERY, np.array([2, 3]), rng)
        dxy = model.scorer.distance(Relation.Q2Q, x, NodeType.QUERY,
                                    y, NodeType.QUERY)
        dyx = model.scorer.distance(Relation.Q2Q, y, NodeType.QUERY,
                                    x, NodeType.QUERY)
        assert np.allclose(dxy.data, dyx.data, atol=1e-9)


class TestGradientFlow:
    def test_all_parameter_groups_receive_gradients(self, train_graph):
        from repro.graph import MetaPathWalker, NegativeSampler
        model = AMCAD(train_graph, AMCADConfig(num_subspaces=2, subspace_dim=4,
                                               seed=3))
        rng = np.random.default_rng(0)
        walker = MetaPathWalker(train_graph)
        sampler = NegativeSampler(train_graph)
        pairs = walker.sample_pairs(rng, 400)
        samples = sampler.sample_batch(rng, pairs[:64])
        loss = model.loss(samples, rng=rng)
        loss.backward()
        groups = {
            "feature tables": list(model.encoder.embeddings[NodeType.QUERY]
                                   .tables.values()),
            "gcn weights": list(model.encoder.gcn_weights.values()),
            "fusion weights": list(model.encoder.fusion_weights.values()),
            "proj weights": list(model.scorer.proj_weights.values()),
            "attention": list(model.scorer.att_weights.values()),
            "node curvatures": [f.kappa for m in model.node_manifolds.values()
                                for f in m.factors],
            "edge curvatures": [f.kappa
                                for m in model.scorer.edge_manifolds.values()
                                for f in m.factors],
        }
        for name, params in groups.items():
            got = any(p.grad is not None and np.abs(p.grad).max() > 0
                      for p in params)
            assert got, "no gradient reached %s" % name

    def test_loss_is_finite_scalar(self, model, train_graph):
        from repro.graph import MetaPathWalker, NegativeSampler
        rng = np.random.default_rng(1)
        walker = MetaPathWalker(train_graph)
        sampler = NegativeSampler(train_graph)
        pairs = walker.sample_pairs(rng, 100)
        samples = sampler.sample_batch(rng, pairs[:16])
        loss = model.loss(samples, rng=rng)
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_empty_sample_list_gives_zero_loss(self, model):
        loss = model.loss([])
        assert loss.item() == 0.0


class TestEmbedAll:
    def test_embed_all_shapes(self, model):
        arrays = model.embed_all(NodeType.AD, batch_size=32)
        assert len(arrays) == 2
        n = model.graph.num_nodes[NodeType.AD]
        assert all(a.shape == (n, 4) for a in arrays)

    def test_embed_all_no_tape(self, model):
        with no_grad():
            arrays = model.embed_all(NodeType.AD, batch_size=64)
        assert all(np.isfinite(a).all() for a in arrays)
