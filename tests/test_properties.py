"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autodiff import Parameter, Tensor, ops
from repro.evaluation.metrics import auc_from_scores
from repro.geometry import ProductManifold, UnifiedManifold
from repro.geometry import stereographic as stereo
from repro.geometry.fast import pairwise_dist
from repro.graph.alias import AliasSampler
from repro.serving import erlang_c_wait

curvature = st.floats(min_value=-1.5, max_value=1.5, allow_nan=False)
small_vec = st.lists(st.floats(-0.35, 0.35, allow_nan=False), min_size=2,
                     max_size=2)


class TestGeometryProperties:
    @given(small_vec, small_vec, curvature)
    @settings(max_examples=50, deadline=None)
    def test_distance_identity_of_indiscernibles(self, xs, ys, kappa):
        x = Tensor(np.asarray([xs]))
        y = Tensor(np.asarray([ys]))
        d = float(stereo.dist_k(x, y, kappa).data[0, 0])
        if np.allclose(xs, ys):
            assert d < 1e-6
        else:
            assert d > 0

    @given(small_vec, curvature, curvature)
    @settings(max_examples=50, deadline=None)
    def test_activation_between_spaces_finite(self, vs, k1, k2):
        src = UnifiedManifold(2, k1, trainable=False)
        dst = UnifiedManifold(2, k2, trainable=False)
        point = src.project(src.expmap0(Tensor(np.asarray([vs]))))
        out = src.activation(point, ops.tanh, target=dst)
        assert np.all(np.isfinite(out.data))

    @given(st.integers(1, 4), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_product_split_concat_identity(self, m, d):
        pm = ProductManifold.adaptive(m, d)
        rng = np.random.default_rng(0)
        x = pm.random_point(rng, 3)
        assert np.allclose(pm.concat(pm.split(x)).data, x.data)

    @given(curvature)
    @settings(max_examples=30, deadline=None)
    def test_pairwise_dist_symmetric_matrix(self, kappa):
        rng = np.random.default_rng(1)
        x = rng.normal(scale=0.2, size=(5, 3))
        d_xy = pairwise_dist(x, x, kappa)
        assert np.allclose(d_xy, d_xy.T, atol=1e-9)
        assert np.allclose(np.diag(d_xy), 0.0, atol=1e-6)


class TestAutodiffProperties:
    @given(st.lists(st.floats(-3, 3, allow_nan=False), min_size=1,
                    max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        p = Parameter(np.asarray(values))
        ops.sum(p).backward()
        assert np.allclose(p.grad, 1.0)

    @given(st.lists(st.floats(-2, 2, allow_nan=False), min_size=2,
                    max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex(self, values):
        out = ops.softmax(Tensor(np.asarray([values])), axis=-1).data
        assert np.all(out >= 0)
        assert np.isclose(out.sum(), 1.0)

    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=1,
                    max_size=5),
           st.floats(0.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_clip_bounds_respected(self, values, bound):
        out = ops.clip(Tensor(np.asarray(values)), -bound, bound).data
        assert np.all(out <= bound) and np.all(out >= -bound)


class TestSamplingProperties:
    @given(st.lists(st.floats(0.01, 50.0), min_size=1, max_size=30),
           st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_alias_samples_in_range(self, weights, seed):
        sampler = AliasSampler(weights)
        rng = np.random.default_rng(seed)
        draws = sampler.sample(rng, size=64)
        assert np.all(draws >= 0)
        assert np.all(draws < len(weights))


class TestMetricProperties:
    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=1,
                    max_size=30),
           st.lists(st.floats(-5, 5, allow_nan=False), min_size=1,
                    max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_auc_bounded_and_antisymmetric(self, pos, neg):
        pos_arr, neg_arr = np.asarray(pos), np.asarray(neg)
        auc = auc_from_scores(pos_arr, neg_arr)
        assert 0.0 <= auc <= 1.0
        flipped = auc_from_scores(neg_arr, pos_arr)
        assert np.isclose(auc + flipped, 1.0, atol=1e-9)

    @given(st.floats(0.1, 50.0), st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_erlang_wait_nonnegative(self, service_rate, servers):
        lam = 0.5 * servers * service_rate  # 50% utilisation
        wait = erlang_c_wait(lam, service_rate, servers)
        assert wait >= 0.0
        assert np.isfinite(wait)
