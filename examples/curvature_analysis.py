"""Curvature analysis: what geometry does each entity type learn?

Reproduces the analysis behind paper Fig. 7 numerically:

- trains the full model with 2 subspaces of 2 dims (as the paper's
  visualisation does),
- reports learned curvatures per node type and per relation space,
- measures the radial-hierarchy effect in the most hyperbolic subspace
  (broad queries near the origin, specific queries near the boundary),
- reports the mean subspace attention weights for the Q2Q relation.

Usage::

    python examples/curvature_analysis.py
"""

import numpy as np
from scipy import stats

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.graph import build_graph
from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.retrieval.mnn import RelationSpace
from repro.training import Trainer, TrainerConfig


def main():
    simulator = SponsoredSearchSimulator(SimulatorConfig(seed=13))
    logs = simulator.simulate_days(1)
    graph = build_graph(simulator.universe, logs)
    print("graph: %r" % graph)

    model = make_model("amcad", graph, num_subspaces=2, subspace_dim=2,
                       seed=5)
    print("training (2 subspaces x 2 dims, as in paper Fig. 7)...")
    Trainer(model, TrainerConfig(steps=250, batch_size=64,
                                 learning_rate=0.05)).train()

    print("\nlearned curvatures:")
    for name, kappas in sorted(model.curvature_report().items()):
        labels = ["hyperbolic" if k < -1e-3 else
                  "spherical" if k > 1e-3 else "flat" for k in kappas]
        print("  %-18s %s  (%s)" % (name, ["%+.3f" % k for k in kappas],
                                    ", ".join(labels)))

    # radial hierarchy in the most hyperbolic query subspace
    kappas = model.node_manifolds[NodeType.QUERY].kappas()
    hyper = int(np.argmin(kappas))
    embeddings = model.embed_all(NodeType.QUERY)
    radii = np.linalg.norm(embeddings[hyper], axis=-1)
    tree = simulator.universe.category_tree
    depths = np.array([tree.depth[c]
                       for c in simulator.universe.queries.category])
    corr, p = stats.spearmanr(depths, radii)
    print("\nradial hierarchy (subspace %d, kappa=%.3f):" % (hyper,
                                                             kappas[hyper]))
    for depth in sorted(set(depths.tolist())):
        mask = depths == depth
        print("  category depth %d: mean radius %.4f (n=%d)"
              % (depth, radii[mask].mean(), int(mask.sum())))
    print("  spearman(depth, radius) = %.3f (p=%.2g)" % (corr, p))
    print("  paper Fig. 7: 'women shoes' nearer origin than "
          "'catwalk leather shoes'")

    # attention mass per subspace for Q2Q
    space = RelationSpace.from_model(model, Relation.Q2Q)
    weights = space.src_weights.mean(axis=0)
    print("\nmean Q2Q attention per subspace: %s"
          % ["%.3f" % w for w in weights])
    print("paper: hyperbolic weight > spherical weight for Q2Q "
          "(hierarchy dominates query-query similarity)")


if __name__ == "__main__":
    main()
