"""Day-level incremental training with LRU feature exit (paper §V-C).

Trains a model from scratch on day 0, then continues it incrementally
on days 1-4 at a fraction of the step budget, reporting per-day
training cost, next-day AUC stability and feature-exit statistics.

Usage::

    python examples/incremental_training.py
"""

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.evaluation import next_auc
from repro.graph import build_graph
from repro.models import make_model
from repro.training import IncrementalTrainer, Trainer, TrainerConfig


def main():
    simulator = SponsoredSearchSimulator(SimulatorConfig(seed=31))
    logs = simulator.simulate_days(6)

    graph0 = build_graph(simulator.universe, logs[:1])
    model = make_model("amcad", graph0, num_subspaces=2, subspace_dim=4,
                       seed=0)
    print("day 0: training from scratch on %r" % graph0)
    scratch = Trainer(model, TrainerConfig(steps=240, batch_size=64,
                                           learning_rate=0.05)).train()
    eval_graph = build_graph(simulator.universe, logs[1:2])
    print("  %.1fs, next-day AUC %.2f"
          % (scratch.wall_seconds,
             next_auc(model.similarity, eval_graph, num_samples=300)))

    incremental = IncrementalTrainer(
        model, simulator.universe, steps_per_day=40, lru_horizon_days=2,
        trainer_config=TrainerConfig(batch_size=64, learning_rate=0.05))

    for day in range(1, 5):
        result = incremental.train_day(logs[day])
        eval_graph = build_graph(simulator.universe, logs[day + 1:day + 2])
        auc = next_auc(model.similarity, eval_graph, num_samples=300)
        print("day %d: incremental %.1fs (%.0f%% of scratch), "
              "next-day AUC %.2f, evicted %d stale features "
              "(%d active rows)"
              % (day, result.report.wall_seconds,
                 100 * result.report.wall_seconds / scratch.wall_seconds,
                 auc, result.evicted_features, result.active_features))

    print("\npaper: metrics stay 'relatively smooth every day' under "
          "day-level incremental training; the LRU feature exit keeps "
          "the model from growing without bound.")


if __name__ == "__main__":
    main()
