"""Production-style serving pipeline: two channels behind an A/B test.

Mirrors the deployment story of paper §IV-C / §VI-F on the declarative
pipeline API:

1. one :class:`~repro.pipeline.PipelineConfig` trains both retrieval
   channels on a multi-day window — the Euclidean control (AMCAD_E via
   ``eval.ab_control``) and the adaptive mixed-curvature treatment;
2. the run builds the six inverted indices per channel and persists
   everything into an artifact directory (the ship-to-serving step of
   paper Fig. 3);
3. the serve stage measures batched service latency through the
   micro-batching engine, sizes the worker fleet for the target QPS
   via ``ServingSimulator.size_fleet`` and sweeps the Fig. 9 curve;
4. the eval stage runs the simulated A/B test and reports CTR / RPM
   lift per page (Table X's layout);
5. finally ``Pipeline.from_artifacts`` reloads the artifacts with *no
   model in scope* — exactly what a serving process does — and answers
   the same requests as the in-memory retriever.

Usage::

    python examples/serving_pipeline.py
"""

import tempfile

import numpy as np

from repro.pipeline import Pipeline, PipelineConfig

CONFIG = {
    "name": "serving-ab",
    "data": {"days": 3, "train_days": 3, "seed": 21},
    "model": {"name": "amcad", "num_subspaces": 2, "subspace_dim": 4,
              "seed": 0},
    "training": {"steps": 250, "batch_size": 64, "learning_rate": 0.05},
    "index": {"top_k": 50},
    "serving": {"max_batch_size": 16, "cache_size": 256,
                "measure_requests": 40, "measure_repeats": 2,
                "target_qps": 50000, "target_utilisation": 0.8,
                "qps_sweep": [1000, 5000, 10000, 30000, 50000]},
    "eval": {"auc_samples": 0, "ranking_ks": [],
             "ab_control": "amcad_e", "ab_requests": 400, "seed": 9},
}


def main():
    config = PipelineConfig.from_dict(CONFIG)
    with tempfile.TemporaryDirectory() as artifact_dir:
        print("== offline run (trains control + treatment channels)")
        pipeline = Pipeline(config, artifact_dir=artifact_dir)
        report = pipeline.run(verbose=True)

        serve = report["serve"].info
        print("\n== serving latency (Fig. 9)")
        print("  batched service time %.3f ms (cache hit rate %.0f%%); "
              "fleet of %d workers for %.0f qps at %.0f%% utilisation"
              % (serve["service_ms"], 100 * serve["cache_hit_rate"],
                 serve["fleet_workers"], serve["target_qps"],
                 100 * serve["target_utilisation"]))
        for point in serve["qps_sweep"]:
            print("  qps %6.0f -> %.3f ms (utilisation %.2f)"
                  % (point["qps"], point["response_time_ms"],
                     point["utilisation"]))

        ctr, rpm = report.ab_ctr_lift, report.ab_rpm_lift
        print("\n== A/B test (Table X): AMCAD vs AMCAD_E channel")
        print("  %-10s %8s %8s" % ("page", "CTR", "RPM"))
        for page in sorted(k for k in ctr if k != "overall"):
            print("  %-10s %+7.2f%% %+7.2f%%" % (page, ctr[page], rpm[page]))
        print("  %-10s %+7.2f%% %+7.2f%%"
              % ("overall", ctr["overall"], rpm["overall"]))

        print("\n== ship-to-serving: reload artifacts without the model")
        served = Pipeline.from_artifacts(artifact_dir)
        rng = np.random.default_rng(0)
        queries = rng.integers(500, size=5)
        preclicks = [list(rng.integers(200, size=2)) for _ in queries]
        fresh = pipeline.retriever.retrieve_batch(queries, preclicks, k=8)
        reloaded = served.serve(queries, preclicks, k=8)
        agree = all(np.array_equal(a.ads, b.ads)
                    for a, b in zip(fresh, reloaded))
        print("  reloaded engine serves %d requests; ads identical to the "
              "in-memory retriever: %s" % (len(reloaded), agree))


if __name__ == "__main__":
    main()
