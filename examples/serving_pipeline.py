"""Production-style serving pipeline: two channels behind an A/B test.

Mirrors the deployment story of paper §IV-C / §VI-F:

1. train two retrieval channels on a multi-day window — the Euclidean
   control (AMCAD_E) and the adaptive mixed-curvature treatment (AMCAD);
2. build the six inverted indices for each through the exact search
   backend, persist them, and reload for model-free serving;
3. stand up two-layer retrievers behind the micro-batching
   ``ServingEngine`` and measure batched serving latency across a QPS
   sweep (Fig. 9's curve);
4. run a simulated A/B test and report CTR / RPM lift per page
   (Table X's layout).

Usage::

    python examples/serving_pipeline.py
"""

import tempfile

import numpy as np

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.evaluation import ABTestConfig, run_ab_test
from repro.graph import build_graph
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.serving import ServingEngine, ServingSimulator
from repro.training import Trainer, TrainerConfig


def build_channel(name, graph, seed=0):
    print("  training channel %r..." % name)
    model = make_model(name, graph, num_subspaces=2, subspace_dim=4,
                       seed=seed)
    Trainer(model, TrainerConfig(steps=250, batch_size=64,
                                 learning_rate=0.05, seed=seed)).train()
    print("  building the six inverted indices...")
    index_set = IndexSet(model, top_k=50).build()
    print("    built in %.2fs" % index_set.total_build_seconds)
    # ship-to-serving step: persist, then reload without the model —
    # exactly what a serving process does (paper Fig. 3)
    with tempfile.TemporaryDirectory() as tmp_dir:
        path = index_set.save(tmp_dir + "/indices.npz")
        served = IndexSet.load(path)
    print("    persisted + reloaded for model-free serving")
    return TwoLayerRetriever(served)


def main():
    simulator = SponsoredSearchSimulator(SimulatorConfig(seed=21))
    logs = simulator.simulate_days(3)
    graph = build_graph(simulator.universe, logs)
    print("3-day graph: %r" % graph)

    print("\n== channels")
    control = build_channel("amcad_e", graph)
    treatment = build_channel("amcad", graph)

    print("\n== serving latency (Fig. 9)")
    rng = np.random.default_rng(0)
    queries = rng.integers(500, size=40)
    preclicks = [list(rng.integers(200, size=2)) for _ in queries]
    engine = ServingEngine(treatment, max_batch_size=16, cache_size=256)
    sim = ServingSimulator(treatment, num_workers=1)
    service = sim.measure_batched_service_time(engine, queries, preclicks,
                                               repeats=2)
    sim.num_workers = int(np.ceil(50000 * service / 0.8))
    print("  batched service time %.3f ms (%d micro-batches, cache hit "
          "rate %.0f%%); fleet of %d workers"
          % (1000 * service, engine.stats.batches,
             100 * engine.stats.cache_hit_rate, sim.num_workers))
    for stat in sim.sweep([1000, 5000, 10000, 30000, 50000]):
        print("  qps %6d -> %.3f ms (utilisation %.2f)"
              % (stat.qps, stat.response_time_ms, stat.utilisation))

    print("\n== A/B test (Table X): AMCAD vs AMCAD_E channel")
    result = run_ab_test(simulator.universe, control, treatment,
                         ABTestConfig(num_requests=400, seed=9))
    ctr = result.ctr_lift()
    rpm = result.rpm_lift()
    print("  %-10s %8s %8s" % ("page", "CTR", "RPM"))
    for page in sorted(k for k in ctr if k != "overall"):
        print("  %-10s %+7.2f%% %+7.2f%%" % (page, ctr[page], rpm[page]))
    print("  %-10s %+7.2f%% %+7.2f%%"
          % ("overall", ctr["overall"], rpm["overall"]))


if __name__ == "__main__":
    main()
