"""Quickstart: train AMCAD on a simulated sponsored-search platform.

Runs the whole pipeline end to end in about a minute:

1. simulate two days of user behaviour logs,
2. build the heterogeneous query-item-ad graph from day 0,
3. train the adaptive mixed-curvature model,
4. evaluate next-day link-prediction AUC on day 1,
5. retrieve ads for a sample query.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.evaluation import next_auc
from repro.graph import build_graph
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.training import Trainer, TrainerConfig


def main():
    print("== 1. simulating the platform")
    simulator = SponsoredSearchSimulator(SimulatorConfig(
        num_queries=500, num_items=800, num_ads=200, num_users=300, seed=7))
    logs = simulator.simulate_days(2)
    print("   day 0: %d sessions, day 1: %d sessions"
          % (len(logs[0]), len(logs[1])))

    print("== 2. building the heterogeneous graph")
    graph = build_graph(simulator.universe, logs[:1])
    print("   %r" % graph)

    print("== 3. training AMCAD (adaptive mixed-curvature)")
    model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                       seed=0)
    trainer = Trainer(model, TrainerConfig(steps=120, batch_size=64,
                                           learning_rate=0.05))
    report = trainer.train(log_every=40)
    print("   trained %d steps in %.1fs, final loss %.3f"
          % (report.steps, report.wall_seconds, report.mean_tail_loss))
    print("   learned curvatures:")
    for name, kappas in model.curvature_report().items():
        if name.startswith("node"):
            print("     %-12s %s" % (name, ["%.3f" % k for k in kappas]))

    print("== 4. next-day evaluation")
    next_graph = build_graph(simulator.universe, logs[1:])
    auc = next_auc(model.similarity, next_graph, num_samples=300)
    print("   next-day AUC: %.2f (random = 50)" % auc)

    print("== 5. two-layer ad retrieval")
    index_set = IndexSet(model, top_k=30).build()
    retriever = TwoLayerRetriever(index_set)
    query = 3
    result = retriever.retrieve(query, preclick_items=[10, 42], k=8)
    tree = simulator.universe.category_tree
    q_cat = tree.name[simulator.universe.queries.category[query]]
    print("   query %d (category %s) -> top ads:" % (query, q_cat))
    for ad, score in zip(result.ads, result.scores):
        ad_cat = tree.name[simulator.universe.ads.category[ad]]
        print("     ad %-4d score %.3f  category %s" % (ad, score, ad_cat))


if __name__ == "__main__":
    main()
