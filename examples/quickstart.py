"""Quickstart: the declarative pipeline API, end to end in about a minute.

One :class:`~repro.pipeline.PipelineConfig` describes the whole
lifecycle — simulate two days of user behaviour, build the day-0
heterogeneous graph, train the adaptive mixed-curvature model, build
the six inverted indices, stand up batched serving and evaluate
next-day AUC — and ``Pipeline.run()`` executes it.  The same config,
saved as JSON, runs through ``python -m repro run --config ...``.

Usage::

    python examples/quickstart.py
"""

from repro.pipeline import Pipeline, PipelineConfig

CONFIG = {
    "name": "quickstart",
    "data": {
        "days": 2, "train_days": 1, "seed": 7,
        "simulator": {"num_queries": 500, "num_items": 800,
                      "num_ads": 200, "num_users": 300},
    },
    "model": {"name": "amcad", "num_subspaces": 2, "subspace_dim": 4,
              "seed": 0},
    "training": {"steps": 120, "batch_size": 64, "learning_rate": 0.05},
    "index": {"top_k": 30},
    "serving": {"measure_requests": 20, "measure_repeats": 1},
    "eval": {"auc_samples": 300, "ranking_ks": [10]},
}


def main():
    config = PipelineConfig.from_dict(CONFIG)
    print("== running the %r pipeline (simulate -> graph -> train -> "
          "index -> serve -> eval)" % config.name)
    pipeline = Pipeline(config)
    pipeline.run(verbose=True)

    print("\n== learned curvatures")
    for name, kappas in pipeline.ctx.model.curvature_report().items():
        if name.startswith("node"):
            print("   %-12s %s" % (name, ["%.3f" % k for k in kappas]))

    print("\n== two-layer ad retrieval")
    universe = pipeline.ctx.simulator.universe
    tree = universe.category_tree
    query = 3
    result = pipeline.retriever.retrieve(query, preclick_items=[10, 42], k=8)
    q_cat = tree.name[universe.queries.category[query]]
    print("   query %d (category %s) -> top ads:" % (query, q_cat))
    for ad, score in zip(result.ads, result.scores):
        ad_cat = tree.name[universe.ads.category[ad]]
        print("     ad %-4d score %.3f  category %s" % (ad, score, ad_cat))


if __name__ == "__main__":
    main()
