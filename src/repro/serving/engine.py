"""Micro-batching serving engine for the two-layer retriever.

The deployed system (paper §IV-C, Fig. 6) answers tens of thousands of
QPS by batching index lookups and caching hot key expansions inside the
iGraph engine.  :class:`ServingEngine` is the laptop-scale analogue:

- **micro-batching** — incoming requests are grouped into batches of at
  most ``max_batch_size`` and served through the vectorised
  :meth:`~repro.retrieval.two_layer.TwoLayerRetriever.retrieve_batch`
  path, amortising the per-call numpy overhead;
- **expansion cache** — layer-1 key expansions are memoised per
  ``(query, pre-clicks)`` signature in an LRU cache, so repeat traffic
  (head queries) skips the expansion lookups entirely;
- **per-worker timing** — each micro-batch is timed and attributed to
  the least-loaded worker of a simulated fleet, producing the measured
  *batched* service times the Erlang-C
  :class:`~repro.serving.simulator.ServingSimulator` consumes;
- **shard-parallel search** — with ``num_shards > 1`` each micro-batch
  is fanned out across shard slices (the serving analogue of the
  sharded index fleet), each slice is timed as one unit of fleet work,
  and the batch's *wall* latency is the slowest shard — so the measured
  service times reflect a sharded fleet rather than one monolithic
  worker.  ``shard_parallelism > 1`` additionally runs the slices on a
  real thread pool.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.breaker import CircuitBreaker
from repro.testing.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.retrieval.two_layer import (
        KeyExpansion,
        RetrievalResult,
        TwoLayerRetriever,
    )


class LRUCache:
    """Small ordered-dict LRU used for layer-1 key expansions."""

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        if key not in self._store:
            return None
        self._store.move_to_end(key)
        return self._store[key]

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()


def percentiles(samples: Sequence[float],
                points: Sequence[float] = (50.0, 95.0, 99.0)) -> dict:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over latency samples.

    The shared summary shape of :class:`EngineStats` and the admission
    layer's :class:`~repro.serving.admission.AdmissionStats`, so the
    bare engine and the admitted path report comparable numbers.
    Empty samples yield all-zero percentiles (idle system).
    """
    keys = ["p%g" % p for p in points]
    if len(samples) == 0:
        return {key: 0.0 for key in keys}
    values = np.percentile(np.asarray(samples, dtype=np.float64),
                           list(points))
    return {key: float(value) for key, value in zip(keys, values)}


@dataclasses.dataclass
class EngineStats:
    """Counters and timings accumulated by a :class:`ServingEngine`."""

    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Busy seconds per simulated worker (least-loaded dispatch).  With
    #: sharding every shard slice is one unit of fleet work.
    worker_busy_seconds: List[float] = dataclasses.field(default_factory=list)
    batch_sizes: List[int] = dataclasses.field(default_factory=list)
    #: Wall latency per micro-batch: the slowest shard slice when the
    #: batch fans out, the full batch time otherwise.
    batch_wall_seconds: List[float] = dataclasses.field(default_factory=list)
    #: Wall latency per *request*: time from its arrival (``submit``
    #: timestamp, or the start of its micro-batch on the bulk paths) to
    #: the end of the micro-batch that served it.
    request_wall_seconds: List[float] = dataclasses.field(default_factory=list)
    #: fault-path counters: slice attempts that raised, requests served
    #: with an empty degraded result after retries ran out, and hot
    #: generation swaps applied to the running engine
    slice_errors: int = 0
    degraded_requests: int = 0
    degraded_batches: int = 0
    swaps: int = 0

    @property
    def total_busy_seconds(self) -> float:
        return float(sum(self.worker_busy_seconds))

    @property
    def service_seconds(self) -> float:
        """Amortised per-request service time under batching."""
        if self.requests == 0:
            return 0.0
        return self.total_busy_seconds / self.requests

    @property
    def mean_batch_size(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.requests / self.batches

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        if looked_up == 0:
            return 0.0
        return self.cache_hits / looked_up

    @property
    def throughput_rps(self) -> float:
        """Requests per busy-second of the whole fleet."""
        busy = self.total_busy_seconds
        return self.requests / busy if busy > 0 else 0.0

    @property
    def mean_batch_wall_seconds(self) -> float:
        """Mean micro-batch wall latency under shard-parallel serving."""
        if not self.batch_wall_seconds:
            return 0.0
        return float(np.mean(self.batch_wall_seconds))

    def latency_percentiles(self) -> dict:
        """p50/p95/p99 of the per-request wall latencies (ms-free: seconds)."""
        return percentiles(self.request_wall_seconds)

    @property
    def degraded(self) -> bool:
        """Whether any request was served degraded (empty after retries)."""
        return self.degraded_requests > 0


def _signature(generation: int, query: int, preclicks: Sequence[int]) -> Tuple:
    # generation-tagged: an in-flight slice finishing after a hot swap
    # writes under the old generation's keys, which post-swap lookups
    # can never hit
    return (int(generation), int(query),
            tuple(int(item) for item in preclicks))


class ServingEngine:
    """Serves retrieval requests in micro-batches with expansion caching.

    Parameters
    ----------
    retriever:
        The :class:`TwoLayerRetriever` to serve from.
    max_batch_size:
        Requests per micro-batch; incoming traffic is sliced into
        batches of at most this size.
    cache_size:
        LRU capacity for layer-1 key expansions (0 disables caching).
    num_workers:
        Simulated fleet width for per-worker busy-time accounting; each
        unit of fleet work (a micro-batch, or one shard slice of it)
        is dispatched to the currently least-loaded worker.
    num_shards:
        Shard fan-out per micro-batch: requests are split into this
        many contiguous slices, each served (and timed) independently,
        and the batch wall latency is the slowest slice.  Results are
        identical to unsharded serving — requests are independent — so
        this is purely a fleet-shape knob.
    shard_parallelism:
        Thread-pool width for running shard slices concurrently
        (1 keeps the fan-out sequential but still per-slice timed).
    slice_retries:
        Retries per shard slice when serving it raises (or an
        ``"engine.slice"`` fault fires); a slice that exhausts them is
        served *degraded* — empty results for its requests, counted on
        :class:`EngineStats` — instead of failing the batch.
    breaker:
        Optional :class:`~repro.serving.breaker.CircuitBreaker` fed one
        outcome per slice attempt; the admission layer consults it to
        shed at the door while error rates spike.
    generation:
        Artifact generation the initial retriever came from (tags the
        expansion-cache keys; see :meth:`swap_retriever`).
    """

    def __init__(self, retriever: "TwoLayerRetriever",
                 max_batch_size: int = 32, cache_size: int = 1024,
                 num_workers: int = 1, num_shards: int = 1,
                 shard_parallelism: int = 1, slice_retries: int = 0,
                 breaker: Optional[CircuitBreaker] = None,
                 generation: int = 0):
        self.retriever = retriever
        self.max_batch_size = max(int(max_batch_size), 1)
        self.cache = LRUCache(cache_size)
        self.num_workers = max(int(num_workers), 1)
        self.num_shards = max(int(num_shards), 1)
        self.shard_parallelism = max(int(shard_parallelism), 1)
        self.slice_retries = max(int(slice_retries), 0)
        self.breaker = breaker
        self.generation = int(generation)
        self.stats = EngineStats(
            worker_busy_seconds=[0.0] * self.num_workers)
        self._pending: List[Tuple[int, Sequence[int], float]] = []
        # the LRU is shared across shard slices; a lock keeps its
        # bookkeeping consistent when slices run on the thread pool,
        # and also guards the (retriever, generation) pair so a hot
        # swap is one atomic pointer flip
        self._cache_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- hot swap -------------------------------------------------------------

    def swap_retriever(self, retriever: "TwoLayerRetriever",
                       generation: Optional[int] = None) -> int:
        """Atomically swap to a new retriever (a published generation).

        In-flight micro-batches finish on the retriever they snapshotted
        at batch start; new batches see the new one.  The expansion
        cache is cleared under the same lock (and keys are generation-
        tagged, so a straggler slice writing after the clear can never
        poison the new generation).  Returns the new generation id.
        """
        with self._cache_lock:
            self.retriever = retriever
            if generation is None:
                generation = self.generation + 1
            self.generation = int(generation)
            self.cache.clear()
            self.stats.swaps += 1
            return self.generation

    def _snapshot(self) -> Tuple["TwoLayerRetriever", int]:
        """The (retriever, generation) pair one micro-batch serves from."""
        with self._cache_lock:
            return self.retriever, self.generation

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.shard_parallelism,
                thread_name_prefix="serve-shard")
        return self._executor

    def close(self) -> None:
        """Shut down the shard thread pool (no-op when unused)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # the engine is also a context manager, so callers that stand one up
    # with shard_parallelism > 1 for a bounded workload do not leak the
    # pool; long-lived owners (the pipeline) rely on the __del__ fallback
    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=False)

    # -- bulk serving --------------------------------------------------------

    def serve(self, queries: Sequence[int],
              preclicks: Optional[Sequence[Sequence[int]]] = None,
              k: int = 20) -> List["RetrievalResult"]:
        """Serve a request stream, slicing it into micro-batches."""
        queries = np.asarray(queries, dtype=np.int64).ravel()
        if preclicks is None:
            preclicks = [()] * queries.size
        if len(preclicks) != queries.size:
            raise ValueError("got %d queries but %d pre-click lists"
                             % (queries.size, len(preclicks)))
        results: List["RetrievalResult"] = []
        for start in range(0, queries.size, self.max_batch_size):
            stop = min(start + self.max_batch_size, queries.size)
            results.extend(self._serve_batch(queries[start:stop],
                                             preclicks[start:stop], k))
        return results

    # -- incremental submission ---------------------------------------------

    def submit(self, query: int, preclicks: Sequence[int] = (),
               k: int = 20) -> List["RetrievalResult"]:
        """Queue one request; auto-flushes when a micro-batch fills.

        Each submission is arrival-timestamped, so the per-request wall
        latency recorded at flush time includes the time the request
        spent pending — the bare-engine analogue of the admission
        layer's queue+service latency.  Returns the flushed batch's
        results (empty while accumulating).
        """
        self._pending.append((int(query), tuple(preclicks),
                              time.perf_counter()))
        if len(self._pending) >= self.max_batch_size:
            return self.flush(k)
        return []

    def flush(self, k: int = 20) -> List["RetrievalResult"]:
        """Serve whatever is pending as one micro-batch."""
        if not self._pending:
            return []
        queries = np.array([q for q, _, _ in self._pending], dtype=np.int64)
        preclicks = [p for _, p, _ in self._pending]
        arrivals = [t for _, _, t in self._pending]
        self._pending = []
        return self._serve_batch(queries, preclicks, k, arrivals=arrivals)

    # -- pre-formed batches (the admission layer's entry point) --------------

    def serve_batch(self, queries: Sequence[int],
                    preclicks: Sequence[Sequence[int]],
                    k: int = 20) -> Tuple[List["RetrievalResult"], float]:
        """Serve one pre-formed micro-batch; returns ``(results, wall)``.

        Unlike :meth:`serve` this never re-slices: the caller (e.g. the
        :class:`~repro.serving.admission.AdmissionController`, which
        sizes batches by fill-or-deadline) has already decided the batch
        boundary.  ``wall`` is the measured batch wall latency in
        seconds — the service-time sample the admission layer charges
        to its virtual worker.
        """
        queries = np.asarray(queries, dtype=np.int64).ravel()
        if len(preclicks) != queries.size:
            raise ValueError("got %d queries but %d pre-click lists"
                             % (queries.size, len(preclicks)))
        results = self._serve_batch(queries, list(preclicks), k)
        return results, self.stats.batch_wall_seconds[-1]

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    # -- internals -----------------------------------------------------------

    def _shard_slices(self, size: int) -> List[Tuple[int, int]]:
        """Contiguous near-equal request slices for one micro-batch."""
        shards = min(self.num_shards, size)
        edges = np.linspace(0, size, shards + 1).astype(np.int64)
        return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:])
                if b > a]

    def _expand_and_gather(self, retriever: "TwoLayerRetriever",
                           generation: int, queries: np.ndarray,
                           preclicks: Sequence[Sequence[int]],
                           k: int) -> List["RetrievalResult"]:
        """One slice attempt against a snapshotted retriever/generation."""
        expansions: List[Optional["KeyExpansion"]] = [None] * queries.size
        miss_indices: List[int] = []
        with self._cache_lock:
            for i in range(queries.size):
                cached = self.cache.get(
                    _signature(generation, queries[i], preclicks[i]))
                if cached is not None:
                    expansions[i] = cached
                    self.stats.cache_hits += 1
                else:
                    miss_indices.append(i)
                    self.stats.cache_misses += 1
        if miss_indices:
            fresh = retriever.expand_keys_batch(
                queries[miss_indices],
                [preclicks[i] for i in miss_indices])
            with self._cache_lock:
                for i, expansion in zip(miss_indices, fresh):
                    expansions[i] = expansion
                    self.cache.put(
                        _signature(generation, queries[i], preclicks[i]),
                        expansion)
        return retriever.gather_batch(expansions, k=k)

    def _degraded_results(self, count: int) -> List["RetrievalResult"]:
        """Empty per-request results for a slice that ran out of retries."""
        from repro.retrieval.two_layer import RetrievalResult
        return [RetrievalResult(ads=np.zeros(0, dtype=np.int64),
                                scores=np.zeros(0), num_keys=0)
                for _ in range(count)]

    def _serve_slice(self, retriever: "TwoLayerRetriever", generation: int,
                     slice_index: int, queries: np.ndarray,
                     preclicks: Sequence[Sequence[int]],
                     k: int) -> Tuple[List["RetrievalResult"], float]:
        """Serve one shard slice; returns its results and its busy time.

        A raising attempt (real, or the ``"engine.slice"`` fault point)
        is retried up to ``slice_retries`` times; exhaustion degrades
        the slice to empty results rather than failing the batch.
        Every attempt's outcome feeds the circuit breaker.
        """
        start = time.perf_counter()
        for attempt in range(self.slice_retries + 1):
            try:
                fault_point("engine.slice", slice=slice_index,
                            attempt=attempt)
                results = self._expand_and_gather(retriever, generation,
                                                  queries, preclicks, k)
            except Exception:
                self.stats.slice_errors += 1
                if self.breaker is not None:
                    self.breaker.record(False)
                continue
            if self.breaker is not None:
                self.breaker.record(True)
            return results, time.perf_counter() - start
        self.stats.degraded_requests += int(queries.size)
        return self._degraded_results(queries.size), \
            time.perf_counter() - start

    def _serve_batch(self, queries: np.ndarray,
                     preclicks: Sequence[Sequence[int]],
                     k: int,
                     arrivals: Optional[Sequence[float]] = None
                     ) -> List["RetrievalResult"]:
        batch_start = time.perf_counter()
        retriever, generation = self._snapshot()
        before_degraded = self.stats.degraded_requests
        slices = self._shard_slices(queries.size)
        if len(slices) <= 1:
            results, elapsed = self._serve_slice(retriever, generation, 0,
                                                 queries, preclicks, k)
            slice_times = [elapsed]
        else:
            jobs = [(retriever, generation, index,
                     queries[a:b], preclicks[a:b], k)
                    for index, (a, b) in enumerate(slices)]
            if self.shard_parallelism > 1:
                outs = list(self._pool().map(
                    lambda job: self._serve_slice(*job), jobs))
            else:
                outs = [self._serve_slice(*job) for job in jobs]
            results = [r for slice_results, _ in outs for r in slice_results]
            slice_times = [elapsed for _, elapsed in outs]
        if self.stats.degraded_requests > before_degraded:
            self.stats.degraded_batches += 1

        # every shard slice is one unit of fleet work; the micro-batch
        # is done when its slowest shard is (parallel-fleet wall time)
        for elapsed in slice_times:
            worker = int(np.argmin(self.stats.worker_busy_seconds))
            self.stats.worker_busy_seconds[worker] += elapsed
        self.stats.batch_wall_seconds.append(max(slice_times))
        self.stats.batches += 1
        self.stats.requests += queries.size
        self.stats.batch_sizes.append(int(queries.size))
        # per-request wall latency: from arrival (submit timestamp when
        # known, the batch start otherwise) to the end of the batch
        end = time.perf_counter()
        if arrivals is None:
            arrivals = [batch_start] * int(queries.size)
        self.stats.request_wall_seconds.extend(end - t for t in arrivals)
        return results
