"""SLO-aware admission control in front of the serving engine.

The deployed system (paper Table V: 40M queries/day) does not die at
the saturation point of its fleet — an admission layer in front of the
retrieval engine decides, per request, whether to queue, serve, or
shed.  :class:`AdmissionController` is that layer for the reproduction:

- **arrival-timestamped bounded queue** — requests are offered with an
  arrival time on a *virtual* clock (seconds); when the queue depth
  would exceed ``max_queue`` the request is shed immediately
  (backpressure: the caller learns synchronously that the fleet is
  saturated);
- **priority lanes** — ``"paid"`` (sponsored placements) vs
  ``"organic"`` traffic.  Dequeue is strict-priority (paid drains
  first) and ``priority_share`` of the queue capacity is *reserved* for
  the paid lane, so organic traffic sheds earlier under overload;
- **fill-or-deadline micro-batching** — a batch dispatches as soon as
  ``max_batch`` requests are pending, or when the oldest pending
  request's deadline budget (``deadline_ms``) is about to be spent,
  whichever comes first; low-traffic requests therefore never wait
  longer than the deadline just to fill a batch;
- **deadline shedding** — when every worker is busy past a request's
  deadline, the request is dropped at dispatch time instead of being
  served uselessly late.  Served requests consequently have queue wait
  ``<= deadline`` *by construction*; the end-to-end latency of an
  admitted request is bounded by ``deadline + its batch's service
  time``;
- **measured service, virtual waiting** — time spent queueing is
  tracked on the virtual clock (so a 300-second traffic trace replays
  in milliseconds), but each dispatched batch is *really served*
  through the engine and its measured wall time is what occupies a
  virtual worker.  The controller is therefore a discrete-event
  queueing simulation whose service process is the actual engine —
  exactly the object the Erlang-C
  :class:`~repro.serving.simulator.ServingSimulator` needs to be
  calibrated against (see ``tests/test_serving_admission.py`` and
  ``benchmarks/bench_serving_async.py``).

The engine contract is one method: ``serve_batch(queries, preclicks,
k) -> (results, wall_seconds)`` — satisfied by the real
:class:`~repro.serving.engine.ServingEngine` and by the synthetic
:class:`~repro.serving.traffic.SyntheticService` used for pure-virtual
calibration runs.
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.serving.engine import percentiles

#: Priority lanes, in strict dequeue order.
LANES = ("paid", "organic")


@dataclasses.dataclass
class AdmissionRequest:
    """One offered request on the admission queue's virtual timeline."""

    arrival: float
    query: int
    preclicks: Tuple[int, ...] = ()
    lane: str = "organic"

    def __post_init__(self):
        if self.lane not in LANES:
            raise ValueError("lane must be one of %s, got %r"
                             % ("/".join(LANES), self.lane))


def _lane_counter() -> Dict[str, int]:
    return {lane: 0 for lane in LANES}


@dataclasses.dataclass
class AdmissionStats:
    """Counters and per-request latency samples of one controller.

    All times are seconds on the controller's virtual clock; service
    samples are the engine's *measured* batch wall times.
    """

    offered: int = 0
    admitted: int = 0
    served: int = 0
    #: shed at arrival: queue depth at the watermark (backpressure)
    shed_queue: int = 0
    #: shed at dispatch: every worker busy past the request's deadline
    shed_deadline: int = 0
    #: shed at arrival: the circuit breaker is open (downstream faulty)
    shed_breaker: int = 0
    offered_by_lane: Dict[str, int] = dataclasses.field(
        default_factory=_lane_counter)
    shed_by_lane: Dict[str, int] = dataclasses.field(
        default_factory=_lane_counter)
    batch_sizes: List[int] = dataclasses.field(default_factory=list)
    #: virtual seconds each served request spent queued (<= deadline)
    queue_wait_seconds: List[float] = dataclasses.field(default_factory=list)
    #: measured engine wall seconds of the batch that served the request
    service_seconds: List[float] = dataclasses.field(default_factory=list)
    #: queue wait + service: the request's end-to-end latency
    latency_seconds: List[float] = dataclasses.field(default_factory=list)
    max_depth_seen: int = 0

    @property
    def shed(self) -> int:
        return self.shed_queue + self.shed_deadline + self.shed_breaker

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def mean_wait_seconds(self) -> float:
        if not self.queue_wait_seconds:
            return 0.0
        return sum(self.queue_wait_seconds) / len(self.queue_wait_seconds)

    @property
    def mean_latency_seconds(self) -> float:
        if not self.latency_seconds:
            return 0.0
        return sum(self.latency_seconds) / len(self.latency_seconds)

    def wait_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of the served requests' queue waits (seconds)."""
        return percentiles(self.queue_wait_seconds)

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of the served requests' queue+service latency."""
        return percentiles(self.latency_seconds)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe digest for stage reports and benches."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "served": self.served,
            "shed": self.shed,
            "shed_queue": self.shed_queue,
            "shed_deadline": self.shed_deadline,
            "shed_breaker": self.shed_breaker,
            "shed_rate": self.shed_rate,
            "shed_by_lane": dict(self.shed_by_lane),
            "mean_batch_size": self.mean_batch_size,
            "mean_wait_ms": 1000.0 * self.mean_wait_seconds,
            "wait_ms": {key: 1000.0 * value
                        for key, value in self.wait_percentiles().items()},
            "latency_ms": {key: 1000.0 * value
                           for key, value in self.latency_percentiles().items()},
            "max_depth_seen": self.max_depth_seen,
        }


class AdmissionController:
    """Bounded, deadline-aware admission queue over a serving engine.

    Parameters
    ----------
    engine:
        Anything with ``serve_batch(queries, preclicks, k) ->
        (results, wall_seconds)`` — a
        :class:`~repro.serving.engine.ServingEngine` in production, a
        :class:`~repro.serving.traffic.SyntheticService` in
        pure-virtual calibration runs.
    max_queue:
        Queue-depth watermark; arrivals beyond it are shed
        (backpressure).
    deadline_ms:
        Per-request queueing budget.  A partial batch dispatches when
        the oldest pending request has spent it, and a request whose
        wait would exceed it (all workers busy) is shed at dispatch.
    max_batch:
        Fill target per micro-batch; ``None`` adopts the engine's
        ``max_batch_size``.
    num_workers:
        Virtual fleet width: how many measured-service batches may be
        in flight at once on the virtual timeline.
    priority_share:
        Fraction of ``max_queue`` reserved for the paid lane; organic
        arrivals shed once depth reaches ``max_queue * (1 -
        priority_share)``.
    k:
        Ads returned per request.
    keep_results:
        Retain ``(request, result)`` pairs in dispatch order on
        ``self.results`` (off by default: the traffic harness only
        needs the stats).
    """

    def __init__(self, engine, max_queue: int = 256,
                 deadline_ms: float = 50.0,
                 max_batch: Optional[int] = None,
                 num_workers: int = 1,
                 priority_share: float = 0.0,
                 k: int = 20,
                 keep_results: bool = False,
                 breaker=None):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1, got %d" % max_queue)
        if not deadline_ms > 0:
            raise ValueError("deadline_ms must be > 0, got %r" % deadline_ms)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1, got %d" % num_workers)
        if not 0.0 <= priority_share <= 1.0:
            raise ValueError("priority_share must be in [0, 1], got %r"
                             % priority_share)
        if max_batch is None:
            max_batch = getattr(engine, "max_batch_size", 32)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got %d" % max_batch)
        self.engine = engine
        self.max_queue = int(max_queue)
        self.deadline = float(deadline_ms) / 1000.0
        self.max_batch = int(max_batch)
        self.num_workers = int(num_workers)
        self.priority_share = float(priority_share)
        self.k = int(k)
        # defaults to the engine's breaker so the loop closes by itself:
        # engine slice failures trip it, admission sheds on it
        self.breaker = breaker if breaker is not None \
            else getattr(engine, "breaker", None)
        self.stats = AdmissionStats()
        self.results: List[Tuple[AdmissionRequest, Any]] = []
        self._keep_results = bool(keep_results)
        self._queues: Dict[str, Deque[AdmissionRequest]] = {
            lane: deque() for lane in LANES}
        self._worker_free = [0.0] * self.num_workers
        self._clock = 0.0
        # organic arrivals stop at the unreserved share of the queue
        self._organic_cap = self.max_queue - int(
            round(self.priority_share * self.max_queue))

    # -- queue state ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently queued (all lanes)."""
        return sum(len(q) for q in self._queues.values())

    def lane_depth(self, lane: str) -> int:
        return len(self._queues[lane])

    @property
    def virtual_time(self) -> float:
        """High-water mark of the virtual clock (latest arrival seen)."""
        return self._clock

    # -- offering traffic ----------------------------------------------------

    def offer(self, arrival: float, query: int,
              preclicks: Sequence[int] = (),
              lane: str = "organic") -> bool:
        """Offer one request at virtual time ``arrival``; ``True`` = admitted.

        Arrivals must be non-decreasing — the controller advances its
        virtual clock to each arrival, dispatching every batch that
        became due in between.
        """
        if arrival < self._clock:
            raise ValueError(
                "arrivals must be non-decreasing: got %.6f after %.6f"
                % (arrival, self._clock))
        request = AdmissionRequest(arrival=float(arrival), query=int(query),
                                   preclicks=tuple(int(p) for p in preclicks),
                                   lane=lane)
        self._advance(request.arrival)
        self._clock = request.arrival
        self.stats.offered += 1
        self.stats.offered_by_lane[request.lane] += 1
        if self.breaker is not None and not self.breaker.allow():
            # downstream is tripped: shed at the door (half-open probes
            # pass through so recovery is observed)
            self.stats.shed_breaker += 1
            self.stats.shed_by_lane[request.lane] += 1
            return False
        cap = (self.max_queue if request.lane == "paid"
               else self._organic_cap)
        if self.depth >= cap:
            self.stats.shed_queue += 1
            self.stats.shed_by_lane[request.lane] += 1
            return False
        self._queues[request.lane].append(request)
        self.stats.admitted += 1
        self.stats.max_depth_seen = max(self.stats.max_depth_seen, self.depth)
        return True

    def drain(self) -> float:
        """Dispatch everything still queued; returns the virtual makespan.

        The makespan is the virtual time the last worker goes idle —
        the denominator for achieved-QPS accounting.
        """
        self._advance(math.inf)
        return max(max(self._worker_free), self._clock)

    # -- the discrete-event core ---------------------------------------------

    def _fill_time(self) -> float:
        """Virtual time the queue depth reached ``max_batch`` (inf if not)."""
        if self.depth < self.max_batch:
            return math.inf
        # the fill condition became true when the max_batch-th oldest
        # queued request arrived; lanes are individually arrival-sorted,
        # so a two-pointer merge finds that arrival
        arrivals = sorted(r.arrival
                          for lane in LANES for r in self._queues[lane])
        return arrivals[self.max_batch - 1]

    def _oldest(self) -> AdmissionRequest:
        candidates = [q[0] for q in self._queues.values() if q]
        return min(candidates, key=lambda r: r.arrival)

    def _advance(self, now: float) -> None:
        """Dispatch every batch whose dispatch time falls before ``now``."""
        while self.depth > 0:
            worker = min(range(self.num_workers),
                         key=self._worker_free.__getitem__)
            free_at = self._worker_free[worker]
            ready_at = min(self._fill_time(),
                           self._oldest().arrival + self.deadline)
            dispatch_at = max(ready_at, free_at)
            if dispatch_at > now:
                break
            if self._shed_expired(dispatch_at):
                continue    # queue changed; recompute the dispatch time
            batch = self._next_batch()
            queries = [r.query for r in batch]
            preclicks = [r.preclicks for r in batch]
            results, service = self.engine.serve_batch(queries, preclicks,
                                                       k=self.k)
            self._worker_free[worker] = dispatch_at + service
            self.stats.batch_sizes.append(len(batch))
            for i, request in enumerate(batch):
                wait = dispatch_at - request.arrival
                self.stats.queue_wait_seconds.append(wait)
                self.stats.service_seconds.append(service)
                self.stats.latency_seconds.append(wait + service)
                self.stats.served += 1
                if self._keep_results:
                    self.results.append(
                        (request, results[i] if results else None))

    def _shed_expired(self, dispatch_at: float) -> bool:
        """Drop requests whose wait would already exceed the deadline."""
        dropped = False
        for lane in LANES:
            queue = self._queues[lane]
            while queue and queue[0].arrival + self.deadline < dispatch_at:
                request = queue.popleft()
                self.stats.shed_deadline += 1
                self.stats.shed_by_lane[request.lane] += 1
                dropped = True
        return dropped

    def _next_batch(self) -> List[AdmissionRequest]:
        """Pop up to ``max_batch`` requests, paid lane strictly first."""
        batch: List[AdmissionRequest] = []
        for lane in LANES:
            queue = self._queues[lane]
            while queue and len(batch) < self.max_batch:
                batch.append(queue.popleft())
        return batch
