"""Closed-loop traffic harness: replayed sessions, skewed arrivals.

Turns the admission layer into a measurable system.  A
:class:`TrafficGenerator` builds its request population from real
:mod:`repro.data.logs` sessions — the query marginal is re-shaped into
a Zipf head-skew over the empirically most-searched queries, and each
request carries the pre-click items of an actual session posing that
query — then lays the requests on a virtual arrival timeline:

- ``"poisson"`` — homogeneous Poisson at the target offered QPS;
- ``"bursty"``  — a two-state Markov-modulated Poisson process: calm
  phases interrupted by bursts at ``burstiness`` times the base rate,
  time-shares chosen so the *mean* offered rate stays on target;
- ``"diurnal"`` — sinusoidally modulated Poisson (Lewis thinning),
  the scaled-down analogue of the platform's daily traffic curve.

:meth:`TrafficGenerator.drive` closes the loop: it offers the stream
to an :class:`~repro.serving.admission.AdmissionController`, drains
it, and reports achieved QPS, shed rate and latency percentiles — the
numbers a capacity plan is made of.  Request streams are a pure
function of the seed, so experiments replay exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.logs import BehaviorLog, Session
from repro.graph.schema import NodeType
from repro.serving.admission import AdmissionController

#: Registered arrival processes.
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


@dataclasses.dataclass
class TrafficRequest:
    """One request on the offered timeline."""

    arrival: float
    query: int
    preclicks: Tuple[int, ...]
    lane: str


@dataclasses.dataclass
class TrafficReport:
    """What one closed-loop drive measured."""

    process: str
    target_qps: float
    duration: float
    offered: int
    offered_qps: float
    served: int
    achieved_qps: float
    shed: int
    shed_rate: float
    mean_wait_ms: float
    wait_ms: Dict[str, float]
    latency_ms: Dict[str, float]
    mean_batch_size: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class SyntheticService:
    """Drop-in engine stub drawing service times instead of retrieving.

    Implements the admission layer's engine contract
    (``serve_batch -> (results, seconds)``) with seeded draws: one
    service sample per request, summed over the batch.  With
    ``distribution="exponential"`` an ``AdmissionController`` over this
    stub *is* an M/M/c queue (at ``max_batch=1``), which is what the
    Erlang-C calibration test exercises without paying for real
    retrievals; ``"deterministic"`` gives the M/D/c reference point.
    """

    DISTRIBUTIONS = ("exponential", "deterministic")

    def __init__(self, mean_seconds: float,
                 distribution: str = "exponential", seed: int = 0,
                 max_batch_size: int = 1):
        if not mean_seconds > 0:
            raise ValueError("mean_seconds must be > 0, got %r"
                             % mean_seconds)
        if distribution not in self.DISTRIBUTIONS:
            raise ValueError("distribution must be one of %s, got %r"
                             % ("/".join(self.DISTRIBUTIONS), distribution))
        self.mean_seconds = float(mean_seconds)
        self.distribution = distribution
        self.max_batch_size = int(max_batch_size)
        self._rng = np.random.default_rng(seed)
        self.batches_served = 0

    def serve_batch(self, queries: Sequence[int],
                    preclicks: Sequence[Sequence[int]],
                    k: int = 20) -> Tuple[List[None], float]:
        n = len(queries)
        if self.distribution == "exponential":
            service = float(self._rng.exponential(self.mean_seconds, size=n)
                            .sum())
        else:
            service = self.mean_seconds * n
        self.batches_served += 1
        return [None] * n, service


def _as_sessions(logs) -> List[Session]:
    """Accept a BehaviorLog, a list of logs, or a bare session list."""
    if isinstance(logs, BehaviorLog):
        return list(logs.sessions)
    sessions: List[Session] = []
    for entry in logs:
        if isinstance(entry, BehaviorLog):
            sessions.extend(entry.sessions)
        elif isinstance(entry, Session):
            sessions.append(entry)
        else:
            raise TypeError("expected BehaviorLog or Session entries, got %r"
                            % type(entry).__name__)
    return sessions


class TrafficGenerator:
    """Session-grounded request streams with a Zipf head and skewed arrivals.

    Parameters
    ----------
    logs:
        A :class:`~repro.data.logs.BehaviorLog` (or list of logs /
        sessions) whose sessions form the request population.  Queries
        are ranked by how many sessions posed them; the replayed
        marginal assigns rank ``r`` probability ``∝ (r+1)^-zipf_exponent``
        — the head queries of the log dominate, as on the real platform.
    zipf_exponent:
        Head skew (0 = replay the ranked queries uniformly).
    paid_share:
        Probability a request rides the ``"paid"`` priority lane.
    max_preclicks:
        Pre-click items carried per request, taken from the sampled
        session's actual item clicks.
    process:
        Arrival process (``"poisson"`` / ``"bursty"`` / ``"diurnal"``).
    burstiness, burst_fraction, burst_cycle_seconds:
        Bursty process shape: bursts run at ``burstiness ×`` the base
        rate for ``burst_fraction`` of the time (mean phase cycle
        ``burst_cycle_seconds``), calm phases are slowed so the mean
        offered rate stays on target — requires
        ``burstiness * burst_fraction < 1``.
    diurnal_amplitude, diurnal_period_seconds:
        Diurnal modulation depth (0..1) and period.
    seed:
        Streams are a pure function of ``(seed, qps, duration)``.
    """

    def __init__(self, logs, zipf_exponent: float = 1.1,
                 paid_share: float = 0.2, max_preclicks: int = 2,
                 process: str = "poisson",
                 burstiness: float = 4.0, burst_fraction: float = 0.1,
                 burst_cycle_seconds: float = 2.0,
                 diurnal_amplitude: float = 0.5,
                 diurnal_period_seconds: float = 60.0,
                 seed: int = 0):
        sessions = _as_sessions(logs)
        if not sessions:
            raise ValueError("traffic needs at least one session to replay")
        if zipf_exponent < 0:
            raise ValueError("zipf_exponent must be >= 0, got %r"
                             % zipf_exponent)
        if not 0.0 <= paid_share <= 1.0:
            raise ValueError("paid_share must be in [0, 1], got %r"
                             % paid_share)
        if max_preclicks < 0:
            raise ValueError("max_preclicks must be >= 0, got %d"
                             % max_preclicks)
        if process not in ARRIVAL_PROCESSES:
            raise ValueError("process must be one of %s, got %r"
                             % ("/".join(ARRIVAL_PROCESSES), process))
        if burstiness < 1.0:
            raise ValueError("burstiness must be >= 1, got %r" % burstiness)
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1), got %r"
                             % burst_fraction)
        if burstiness * burst_fraction >= 1.0:
            raise ValueError(
                "burstiness * burst_fraction must be < 1 (got %.2f) so calm "
                "phases can compensate and keep the mean rate on target"
                % (burstiness * burst_fraction))
        if not 0.0 <= diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1], got %r"
                             % diurnal_amplitude)
        if not (diurnal_period_seconds > 0 and burst_cycle_seconds > 0):
            raise ValueError("periods must be > 0")
        self.zipf_exponent = float(zipf_exponent)
        self.paid_share = float(paid_share)
        self.max_preclicks = int(max_preclicks)
        self.process = process
        self.burstiness = float(burstiness)
        self.burst_fraction = float(burst_fraction)
        self.burst_cycle_seconds = float(burst_cycle_seconds)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.diurnal_period_seconds = float(diurnal_period_seconds)
        self.seed = int(seed)

        # rank queries by empirical session count (ties by id, so the
        # ranking — and hence the stream — is deterministic), and keep
        # each query's sessions for pre-click replay
        counts: Dict[int, int] = {}
        self._sessions_by_query: Dict[int, List[Session]] = {}
        for session in sessions:
            counts[session.query] = counts.get(session.query, 0) + 1
            self._sessions_by_query.setdefault(session.query, []).append(
                session)
        self.ranked_queries = np.array(
            sorted(counts, key=lambda q: (-counts[q], q)), dtype=np.int64)
        ranks = np.arange(1, self.ranked_queries.size + 1, dtype=np.float64)
        weights = ranks ** -self.zipf_exponent
        self.query_probs = weights / weights.sum()

    # -- arrival processes ---------------------------------------------------

    def _arrivals(self, rng: np.random.Generator, qps: float,
                  duration: float) -> np.ndarray:
        if self.process == "poisson":
            return self._poisson_arrivals(rng, qps, duration)
        if self.process == "bursty":
            return self._bursty_arrivals(rng, qps, duration)
        return self._diurnal_arrivals(rng, qps, duration)

    @staticmethod
    def _poisson_arrivals(rng, qps, duration) -> np.ndarray:
        # draw gaps in chunks until the horizon is crossed
        times: List[np.ndarray] = []
        t = 0.0
        while t < duration:
            gaps = rng.exponential(1.0 / qps, size=max(int(qps * duration), 16))
            chunk = t + np.cumsum(gaps)
            times.append(chunk)
            t = float(chunk[-1])
        arrivals = np.concatenate(times)
        return arrivals[arrivals < duration]

    def _bursty_arrivals(self, rng, qps, duration) -> np.ndarray:
        f = self.burst_fraction
        burst_rate = self.burstiness * qps
        calm_rate = qps * (1.0 - self.burstiness * f) / (1.0 - f)
        times: List[np.ndarray] = []
        t, in_burst = 0.0, False
        while t < duration:
            mean_len = self.burst_cycle_seconds * (f if in_burst else 1.0 - f)
            phase = float(rng.exponential(mean_len))
            rate = burst_rate if in_burst else calm_rate
            if rate > 0 and phase > 0:
                expected = max(int(rate * phase * 1.5) + 8, 8)
                gaps = rng.exponential(1.0 / rate, size=expected)
                chunk = t + np.cumsum(gaps)
                chunk = chunk[chunk < t + phase]
                # top up in the unlikely case the overdraw fell short
                while chunk.size and chunk[-1] < t + phase:
                    more = chunk[-1] + np.cumsum(
                        rng.exponential(1.0 / rate, size=8))
                    chunk = np.concatenate([chunk, more[more < t + phase]])
                    if more[-1] >= t + phase:
                        break
                times.append(chunk)
            t += phase
            in_burst = not in_burst
        arrivals = (np.concatenate(times) if times
                    else np.empty(0, dtype=np.float64))
        return arrivals[arrivals < duration]

    def _diurnal_arrivals(self, rng, qps, duration) -> np.ndarray:
        # Lewis thinning against the peak rate
        peak = qps * (1.0 + self.diurnal_amplitude)
        candidates = self._poisson_arrivals(rng, peak, duration)
        phase = 2.0 * np.pi * candidates / self.diurnal_period_seconds
        rate = qps * (1.0 + self.diurnal_amplitude * np.sin(phase))
        keep = rng.random(candidates.size) < rate / peak
        return candidates[keep]

    # -- the request stream --------------------------------------------------

    def generate(self, qps: float, duration: float,
                 seed: Optional[int] = None) -> List[TrafficRequest]:
        """The request stream of one run — deterministic in the seed."""
        if not qps > 0:
            raise ValueError("qps must be > 0, got %r" % qps)
        if not duration > 0:
            raise ValueError("duration must be > 0, got %r" % duration)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        arrivals = self._arrivals(rng, qps, duration)
        n = arrivals.size
        query_idx = rng.choice(self.ranked_queries.size, size=n,
                               p=self.query_probs)
        paid = rng.random(n) < self.paid_share
        requests: List[TrafficRequest] = []
        for i in range(n):
            query = int(self.ranked_queries[query_idx[i]])
            sessions = self._sessions_by_query[query]
            session = sessions[int(rng.integers(len(sessions)))]
            items = session.clicked_of_type(NodeType.ITEM)
            requests.append(TrafficRequest(
                arrival=float(arrivals[i]), query=query,
                preclicks=tuple(items[:self.max_preclicks]),
                lane="paid" if paid[i] else "organic"))
        return requests

    # -- the closed loop -----------------------------------------------------

    def drive(self, controller: AdmissionController, qps: float,
              duration: float, seed: Optional[int] = None) -> TrafficReport:
        """Offer one generated stream to a (fresh) controller and drain it.

        The report reads the controller's stats, so hand in a fresh
        controller per drive; achieved QPS is served requests over the
        virtual makespan (arrival horizon or last service completion,
        whichever is later).
        """
        if controller.stats.offered:
            raise ValueError("drive() needs a fresh controller (it reports "
                             "cumulative stats); this one already saw %d "
                             "requests" % controller.stats.offered)
        requests = self.generate(qps, duration, seed=seed)
        for request in requests:
            controller.offer(request.arrival, request.query,
                             request.preclicks, lane=request.lane)
        makespan = max(controller.drain(), duration)
        stats = controller.stats
        served = stats.served
        return TrafficReport(
            process=self.process,
            target_qps=float(qps),
            duration=float(duration),
            offered=len(requests),
            offered_qps=len(requests) / duration,
            served=served,
            achieved_qps=served / makespan,
            shed=stats.shed,
            shed_rate=stats.shed_rate,
            mean_wait_ms=1000.0 * stats.mean_wait_seconds,
            wait_ms={key: 1000.0 * value
                     for key, value in stats.wait_percentiles().items()},
            latency_ms={key: 1000.0 * value
                        for key, value in stats.latency_percentiles().items()},
            mean_batch_size=stats.mean_batch_size,
        )
