"""Serving subsystem: micro-batched engine + queueing simulator.

Splits the online half of the deployment (paper §IV-C, Fig. 6/9) out of
:mod:`repro.retrieval`:

- :mod:`repro.serving.engine` — :class:`ServingEngine`, which
  micro-batches requests through the vectorised retriever, caches
  layer-1 key expansions in an LRU, and keeps per-worker timings;
- :mod:`repro.serving.simulator` — the Erlang-C (M/M/c)
  :class:`ServingSimulator` mapping measured (batched) service times to
  the response-time-vs-QPS curve of paper Fig. 9.
"""

from repro.serving.engine import EngineStats, LRUCache, ServingEngine
from repro.serving.simulator import (
    ServingSimulator,
    ServingStats,
    erlang_b,
    erlang_c_wait,
)

__all__ = [
    "EngineStats",
    "LRUCache",
    "ServingEngine",
    "ServingSimulator",
    "ServingStats",
    "erlang_b",
    "erlang_c_wait",
]
