"""Serving subsystem: admission control, micro-batched engine, traffic, queue model.

The online half of the deployment (paper §IV-C, Fig. 6/9, Table V),
layered front to back:

- :mod:`repro.serving.admission` — :class:`AdmissionController`, the
  SLO-aware layer in front of the engine: arrival-timestamped bounded
  queue, fill-or-deadline micro-batch sizing, paid/organic priority
  lanes, backpressure + deadline load-shedding, and per-request
  queue/service latency percentiles in :class:`AdmissionStats`;
- :mod:`repro.serving.engine` — :class:`ServingEngine`, which
  micro-batches requests through the vectorised retriever, caches
  layer-1 key expansions in an LRU, and keeps per-worker and
  per-request timings;
- :mod:`repro.serving.traffic` — :class:`TrafficGenerator`, the
  closed-loop harness replaying Zipf head-skewed queries from real
  behaviour-log sessions over Poisson/bursty/diurnal arrivals, and
  :class:`SyntheticService` for pure-virtual queueing runs;
- :mod:`repro.serving.simulator` — the Erlang-C (M/M/c)
  :class:`ServingSimulator` mapping measured (batched) service times to
  the response-time-vs-QPS curve of paper Fig. 9, with the
  :func:`allen_cunneen_wait` G/G/c correction used to calibrate it
  against the measured admission+engine system.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionRequest,
    AdmissionStats,
    LANES,
)
from repro.serving.engine import (
    EngineStats,
    LRUCache,
    ServingEngine,
    percentiles,
)
from repro.serving.simulator import (
    ServingSimulator,
    ServingStats,
    allen_cunneen_wait,
    erlang_b,
    erlang_c_wait,
)
from repro.serving.traffic import (
    ARRIVAL_PROCESSES,
    SyntheticService,
    TrafficGenerator,
    TrafficReport,
    TrafficRequest,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionController",
    "AdmissionRequest",
    "AdmissionStats",
    "EngineStats",
    "LANES",
    "LRUCache",
    "ServingEngine",
    "ServingSimulator",
    "ServingStats",
    "SyntheticService",
    "TrafficGenerator",
    "TrafficReport",
    "TrafficRequest",
    "allen_cunneen_wait",
    "erlang_b",
    "erlang_c_wait",
    "percentiles",
]
