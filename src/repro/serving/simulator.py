"""Queueing simulator — response time vs QPS (paper Fig. 9).

The deployed system serves tens of thousands of requests per second
from the iGraph engine.  The *shape* of its latency curve (slow, smooth
growth until the worker pool saturates) is a queueing property, not a
hardware one, so it is reproduced with an M/M/c model:

- the per-request service time is *measured* by timing real two-layer
  retrievals on this machine — either one request at a time, or through
  the micro-batching :class:`~repro.serving.engine.ServingEngine`,
  whose amortised batched service time is what a production fleet
  actually pays per request;
- a c-worker Erlang-C queue maps an offered load λ (QPS) to the mean
  waiting time, giving ``response = wait(λ) + service``.

The Erlang-C probability is computed through the iterative Erlang-B
recursion (``B(0) = 1``, ``B(n) = aB(n-1) / (n + aB(n-1))``), which
stays in ``(0, 1]`` at every step — unlike the textbook factorial
formula, it neither overflows nor loses precision for fleets of
thousands of workers.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.retrieval.two_layer import TwoLayerRetriever
    from repro.serving.engine import ServingEngine


def erlang_b(offered_load: float, servers: int) -> float:
    """Erlang-B blocking probability via the stable iterative recursion."""
    blocking = 1.0
    for n in range(1, servers + 1):
        blocking = offered_load * blocking / (n + offered_load * blocking)
    return blocking


def allen_cunneen_wait(arrival_rate: float, service_rate: float,
                       servers: int, ca2: float = 1.0,
                       cs2: float = 1.0) -> float:
    """G/G/c mean-wait approximation: Erlang-C scaled by ``(ca²+cs²)/2``.

    ``ca2``/``cs2`` are the squared coefficients of variation of the
    inter-arrival and service processes (1.0 each recovers M/M/c; a
    near-deterministic service pushes ``cs2 → 0`` and halves the
    Erlang-C wait, the M/D/c limit).  This is what calibrating the
    simulator against the *measured* admission+engine system uses: the
    engine's service times are not exponential, so the fair prediction
    applies the measured ``cs2``.
    """
    scale = 0.5 * (ca2 + cs2)
    return scale * erlang_c_wait(arrival_rate, service_rate, servers)


def erlang_c_wait(arrival_rate: float, service_rate: float,
                  servers: int) -> float:
    """Mean queueing delay of an M/M/c system (seconds).

    Returns ``inf`` when the system is unstable (λ ≥ c·μ).  Stable for
    arbitrarily large fleets (``servers=1000`` and beyond) because the
    Erlang-B recursion replaces the factorial-based formula.
    """
    if arrival_rate <= 0:
        return 0.0
    utilisation = arrival_rate / (servers * service_rate)
    if utilisation >= 1.0:
        return float("inf")
    offered = arrival_rate / service_rate
    blocking = erlang_b(offered, servers)
    p_wait = blocking / (1.0 - utilisation * (1.0 - blocking))
    return p_wait / (servers * service_rate - arrival_rate)


@dataclasses.dataclass
class ServingStats:
    """One point of the Fig. 9 curve."""

    qps: float
    response_time_ms: float
    utilisation: float


class ServingSimulator:
    """Measures service time, then sweeps QPS through the queue model.

    Parameters
    ----------
    retriever:
        The two-layer retriever to time (``None`` if the service time
        is injected via ``service_seconds`` or measured from an
        engine).
    num_workers:
        Size of the simulated serving fleet.  The paper's fleet handles
        ~50k QPS at <5 ms; scale workers to the measured service time.
    service_seconds:
        Optional pre-measured per-request service time.
    """

    def __init__(self, retriever: Optional["TwoLayerRetriever"] = None,
                 num_workers: int = 64,
                 service_seconds: Optional[float] = None):
        self.retriever = retriever
        self.num_workers = int(num_workers)
        self._service_seconds = service_seconds

    def measure_service_time(self, queries: Sequence[int],
                             preclicks: Sequence[Sequence[int]],
                             k: int = 20, repeats: int = 1) -> float:
        """Mean wall-clock seconds of one unbatched two-layer retrieval."""
        if self.retriever is None:
            raise RuntimeError("no retriever to measure; pass one to the "
                               "constructor or use measure_batched_"
                               "service_time()")
        start = time.perf_counter()
        count = 0
        for _ in range(repeats):
            for query, items in zip(queries, preclicks):
                self.retriever.retrieve(int(query), items, k=k)
                count += 1
        elapsed = time.perf_counter() - start
        self._service_seconds = elapsed / max(count, 1)
        return self._service_seconds

    def measure_batched_service_time(self, engine: "ServingEngine",
                                     queries: Sequence[int],
                                     preclicks: Sequence[Sequence[int]],
                                     k: int = 20, repeats: int = 1) -> float:
        """Amortised per-request seconds when served in micro-batches.

        Drives ``engine`` over the request stream and reads the
        per-request busy time from its stats — the batched service time
        the production queueing model should consume.
        """
        busy_before = engine.stats.total_busy_seconds
        count_before = engine.stats.requests
        for _ in range(repeats):
            engine.serve(queries, preclicks, k=k)
        busy = engine.stats.total_busy_seconds - busy_before
        count = engine.stats.requests - count_before
        self._service_seconds = busy / max(count, 1)
        return self._service_seconds

    @property
    def service_seconds(self) -> float:
        if self._service_seconds is None:
            raise RuntimeError("call measure_service_time() first")
        return self._service_seconds

    def size_fleet(self, qps: float, target_utilisation: float = 0.8) -> int:
        """Workers needed to serve ``qps`` at the target utilisation.

        Sets (and returns) ``num_workers = ceil(qps · service /
        target_utilisation)`` from the measured service time, replacing
        the by-hand ``sim.num_workers = ...`` mutation callers used to
        do.  Requires a measured (or injected) service time.
        """
        if qps <= 0:
            raise ValueError("qps must be > 0, got %r" % qps)
        if not 0.0 < target_utilisation <= 1.0:
            raise ValueError("target_utilisation must be in (0, 1], got %r"
                             % target_utilisation)
        offered = qps * self.service_seconds
        self.num_workers = max(1, int(math.ceil(offered / target_utilisation)))
        return self.num_workers

    def sweep(self, qps_values: Sequence[float]) -> List[ServingStats]:
        """Mean response time for each offered load (paper Fig. 9)."""
        service_rate = 1.0 / self.service_seconds
        stats: List[ServingStats] = []
        for qps in qps_values:
            wait = erlang_c_wait(qps, service_rate, self.num_workers)
            response = wait + self.service_seconds
            stats.append(ServingStats(
                qps=float(qps),
                response_time_ms=1000.0 * response,
                utilisation=qps / (self.num_workers * service_rate)))
        return stats

    def predict_wait(self, qps: float, ca2: float = 1.0,
                     cs2: float = 1.0) -> float:
        """Predicted mean queueing wait (seconds) at offered load ``qps``.

        With the default ``ca2 = cs2 = 1`` this is the plain Erlang-C
        (M/M/c) wait; pass the measured squared coefficients of
        variation to get the :func:`allen_cunneen_wait` G/G/c
        correction — the prediction the admission-layer calibration
        (``benchmarks/bench_serving_async.py``) compares against.
        """
        return allen_cunneen_wait(qps, 1.0 / self.service_seconds,
                                  self.num_workers, ca2=ca2, cs2=cs2)

    def saturation_qps(self) -> float:
        """Offered load at which the fleet saturates (λ = c·μ)."""
        return self.num_workers / self.service_seconds
