"""Count-based circuit breaker between the engine and admission.

When slice/shard error rates spike, continuing to admit traffic just
burns queue capacity on requests that will come back degraded; the
deployed posture is to shed at the door until the dependency recovers.
The breaker here is deliberately *clock-free*: the serving engine runs
on the real clock while the :class:`~repro.serving.admission.\
AdmissionController` simulates a virtual one, so recovery is counted in
calls, not seconds — a sliding window of the last ``window`` outcomes
trips the breaker ``open`` when the error rate reaches ``threshold``,
and while open every ``probe_every``-th admission is allowed through as
a half-open probe.  One successful probe closes the breaker and resets
the window; a failed probe keeps it open.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict


class CircuitBreaker:
    """Sliding-window error-rate breaker with half-open probes."""

    CLOSED = "closed"
    OPEN = "open"

    def __init__(self, window: int = 32, threshold: float = 0.5,
                 probe_every: int = 8, min_samples: int = 8):
        if window < 1:
            raise ValueError("breaker: window must be >= 1, got %d" % window)
        if not 0.0 < threshold <= 1.0:
            raise ValueError("breaker: threshold must be in (0, 1], got %r"
                             % threshold)
        if probe_every < 1:
            raise ValueError("breaker: probe_every must be >= 1, got %d"
                             % probe_every)
        self.window = int(window)
        self.threshold = float(threshold)
        self.probe_every = int(probe_every)
        self.min_samples = max(int(min_samples), 1)
        self.state = self.CLOSED
        self.trips = 0
        self.probes = 0
        self.shed_calls = 0
        self._lock = threading.Lock()
        self._outcomes: Deque[bool] = deque(maxlen=self.window)
        self._open_calls = 0

    @property
    def is_open(self) -> bool:
        return self.state == self.OPEN

    def error_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def allow(self) -> bool:
        """Gate one admission; while open, only probes pass."""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            self._open_calls += 1
            if self._open_calls % self.probe_every == 0:
                self.probes += 1
                return True
            self.shed_calls += 1
            return False

    def record(self, ok: bool) -> None:
        """Feed one downstream outcome (a slice/shard result)."""
        with self._lock:
            if self.state == self.OPEN:
                if ok:
                    # a successful probe closes the breaker with a
                    # clean window, so one stale error cannot re-trip it
                    self.state = self.CLOSED
                    self._outcomes.clear()
                    self._open_calls = 0
                return
            self._outcomes.append(bool(ok))
            if (len(self._outcomes) >= self.min_samples
                    and (1.0 - sum(self._outcomes) / len(self._outcomes))
                    >= self.threshold):
                self.state = self.OPEN
                self.trips += 1
                self._open_calls = 0

    def summary(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "error_rate": self.error_rate(),
            "trips": self.trips,
            "probes": self.probes,
            "shed_calls": self.shed_calls,
        }
