"""Meta-path guided random walks and positive-pair extraction.

Implements paper §IV-A-2 and Table III: six meta-paths over the
heterogeneous graph, each a short typed walk whose visited nodes give
positive pairs ``<start, later>`` via a sliding window.  Positive pairs
must share a category (paper: "we also require the sampled positive
node pairs to be in the same category"); for queries whose category is
an internal tree node, "same" means one category lies on the other's
root path.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetgraph import HetGraph
from repro.graph.schema import EdgeType, NodeRef, NodeType, Relation, relation_of


@dataclasses.dataclass(frozen=True)
class MetaPath:
    """A typed walk template: start type + (edge type, node type) steps."""

    name: str
    start: NodeType
    steps: Tuple[Tuple[EdgeType, NodeType], ...]

    @property
    def length(self) -> int:
        return len(self.steps)


#: The six meta-paths of paper Table III.
TABLE_III_META_PATHS: Tuple[MetaPath, ...] = (
    MetaPath("q-coclick-q-semantic-q", NodeType.QUERY,
             ((EdgeType.CO_CLICK, NodeType.QUERY),
              (EdgeType.SEMANTIC, NodeType.QUERY))),
    MetaPath("q-click-i-coclick-i", NodeType.QUERY,
             ((EdgeType.CLICK, NodeType.ITEM),
              (EdgeType.CO_CLICK, NodeType.ITEM))),
    MetaPath("q-click-a-cobid-a", NodeType.QUERY,
             ((EdgeType.CLICK, NodeType.AD),
              (EdgeType.CO_BID, NodeType.AD))),
    MetaPath("i-click-q-semantic-q", NodeType.ITEM,
             ((EdgeType.CLICK, NodeType.QUERY),
              (EdgeType.SEMANTIC, NodeType.QUERY))),
    MetaPath("i-coclick-i-coclick-i", NodeType.ITEM,
             ((EdgeType.CO_CLICK, NodeType.ITEM),
              (EdgeType.CO_CLICK, NodeType.ITEM))),
    MetaPath("i-coclick-a-cobid-a", NodeType.ITEM,
             ((EdgeType.CO_CLICK, NodeType.AD),
              (EdgeType.CO_BID, NodeType.AD))),
)


@dataclasses.dataclass(frozen=True)
class PositivePair:
    """A positive training pair with its relation label."""

    source: NodeRef
    target: NodeRef
    relation: Relation


@dataclasses.dataclass
class PairBlock:
    """Positive pairs of one relation as aligned index arrays.

    The struct-of-arrays twin of a ``List[PositivePair]``: the batched
    walker emits these, the batched negative sampler consumes them.
    """

    relation: Relation
    src_idx: np.ndarray
    dst_idx: np.ndarray

    def __len__(self) -> int:
        return int(self.src_idx.size)

    def to_pairs(self) -> List[PositivePair]:
        """Materialise :class:`PositivePair` objects (tests / interop)."""
        src_type = self.relation.source_type
        dst_type = self.relation.target_type
        return [PositivePair(NodeRef(src_type, int(s)),
                             NodeRef(dst_type, int(d)), self.relation)
                for s, d in zip(self.src_idx, self.dst_idx)]


class MetaPathWalker:
    """Samples positive pairs by meta-path guided random walk.

    Parameters
    ----------
    graph:
        The heterogeneous graph.
    meta_paths:
        Walk templates; defaults to paper Table III.
    enforce_category:
        Apply the same-category constraint of §IV-A-2.
    """

    def __init__(self, graph: HetGraph,
                 meta_paths: Optional[Sequence[MetaPath]] = None,
                 enforce_category: bool = True):
        self.graph = graph
        self.meta_paths = tuple(meta_paths or TABLE_III_META_PATHS)
        self.enforce_category = enforce_category
        # start-node pools: nodes with at least one edge of the first step
        self._start_pools = {}
        for path in self.meta_paths:
            degree = np.zeros(graph.num_nodes[path.start], dtype=np.int64)
            edge_type, dst_type = path.steps[0]
            for (s, e, d), csr in graph._adj.items():
                if s == path.start and e == edge_type and d == dst_type:
                    degree += np.diff(csr.indptr)
            self._start_pools[path.name] = np.flatnonzero(degree > 0)

    def _same_category(self, a: NodeRef, b: NodeRef) -> bool:
        tree = self.graph.category_tree
        cat_a = int(self.graph.categories[a.node_type][a.index])
        cat_b = int(self.graph.categories[b.node_type][b.index])
        if cat_a == cat_b:
            return True
        lca = tree.lowest_common_ancestor(cat_a, cat_b)
        return lca == cat_a or lca == cat_b

    def _step(self, rng: np.random.Generator, node_type: NodeType, index: int,
              edge_type: EdgeType, dst_type: NodeType) -> Optional[int]:
        ids, weights, _ = self.graph.neighbors(node_type, index,
                                               edge_type=edge_type,
                                               dst_type=dst_type)
        if ids.size == 0:
            return None
        probs = weights / weights.sum()
        return int(rng.choice(ids, p=probs))

    def walk(self, rng: np.random.Generator, path: MetaPath,
             start: Optional[int] = None) -> Optional[List[NodeRef]]:
        """One walk along ``path``; None if it dead-ends or has no start."""
        pool = self._start_pools[path.name]
        if start is None:
            if pool.size == 0:
                return None
            start = int(pool[rng.integers(pool.size)])
        trail = [NodeRef(path.start, start)]
        current_type, current = path.start, start
        for edge_type, dst_type in path.steps:
            nxt = self._step(rng, current_type, current, edge_type, dst_type)
            if nxt is None:
                return None
            trail.append(NodeRef(dst_type, nxt))
            current_type, current = dst_type, nxt
        return trail

    def extract_pairs(self, trail: List[NodeRef]) -> List[PositivePair]:
        """Sliding-window positives anchored at the walk start (Table III)."""
        pairs = []
        anchor = trail[0]
        for node in trail[1:]:
            if node == anchor:
                continue
            if self.enforce_category and not self._same_category(anchor, node):
                continue
            try:
                relation = relation_of(anchor.node_type, node.node_type)
            except (KeyError, ValueError):
                continue
            pairs.append(PositivePair(anchor, node, relation))
        return pairs

    def sample_pairs(self, rng: np.random.Generator,
                     num_walks: int) -> List[PositivePair]:
        """Run ``num_walks`` walks, cycling meta-paths, collecting pairs."""
        pairs: List[PositivePair] = []
        for i in range(num_walks):
            path = self.meta_paths[i % len(self.meta_paths)]
            trail = self.walk(rng, path)
            if trail is not None:
                pairs.extend(self.extract_pairs(trail))
        return pairs

    def iter_pairs(self, rng: np.random.Generator) -> Iterator[PositivePair]:
        """Endless stream of positive pairs."""
        i = 0
        while True:
            path = self.meta_paths[i % len(self.meta_paths)]
            i += 1
            trail = self.walk(rng, path)
            if trail is None:
                continue
            yield from self.extract_pairs(trail)

    # -- batched plane ------------------------------------------------------

    def _tables_for(self, path: MetaPath):
        """Alias tables per step of a path.

        Looked up from the graph every time (an O(1) dict hit once
        built) so ``add_edges`` invalidation reaches the walker too.
        """
        tables = []
        current_type = path.start
        for edge_type, dst_type in path.steps:
            tables.append(self.graph.alias_tables(current_type, edge_type,
                                                  dst_type))
            current_type = dst_type
        return tables

    def walk_batch(self, rng: np.random.Generator, path: MetaPath,
                   size: int, starts: Optional[np.ndarray] = None
                   ) -> Tuple[List[np.ndarray], np.ndarray]:
        """``size`` walks advanced one level per batched alias draw.

        Returns ``(levels, alive)``: ``levels[l]`` holds the node index
        of every walk at level ``l`` and ``alive`` marks walks that
        completed all steps.  Dead-ended walks are discarded whole,
        matching the looped :meth:`walk` returning ``None``.
        """
        if starts is None:
            pool = self._start_pools[path.name]
            if pool.size == 0:
                dead = np.full(size, -1, dtype=np.int64)
                return ([dead] * (path.length + 1),
                        np.zeros(size, dtype=bool))
            starts = pool[rng.integers(pool.size, size=size)]
        else:
            starts = np.asarray(starts, dtype=np.int64)
        levels = [starts]
        alive = np.ones(starts.size, dtype=bool)
        current = starts
        for table in self._tables_for(path):
            if table is None:
                nxt = np.full(current.size, -1, dtype=np.int64)
            else:
                nxt = table.draw(rng, np.where(current >= 0, current, 0))
                nxt[~alive] = -1
            alive &= nxt >= 0
            levels.append(nxt)
            current = nxt
        return levels, alive

    def extract_pair_blocks(self, path: MetaPath, levels: List[np.ndarray],
                            alive: np.ndarray) -> List[PairBlock]:
        """Vectorised :meth:`extract_pairs` over a batch of walks."""
        blocks: List[PairBlock] = []
        if not alive.any():
            return blocks
        anchors = levels[0]
        tree = self.graph.category_tree
        anchor_cats = None
        for level, (_edge, dst_type) in zip(levels[1:], path.steps):
            try:
                relation = relation_of(path.start, dst_type)
            except (KeyError, ValueError):
                continue
            keep = alive.copy()
            if dst_type == path.start:
                keep &= level != anchors
            kept = np.flatnonzero(keep)
            if kept.size == 0:
                continue
            if self.enforce_category:
                if anchor_cats is None:
                    anchor_cats = self.graph.categories[path.start][
                        np.where(alive, anchors, 0)]
                target_cats = self.graph.categories[dst_type][level[kept]]
                kept = kept[tree.same_branch(anchor_cats[kept], target_cats)]
                if kept.size == 0:
                    continue
            blocks.append(PairBlock(relation, anchors[kept].copy(),
                                    level[kept].copy()))
        return blocks

    def sample_pair_blocks(self, rng: np.random.Generator,
                           num_walks: int) -> List[PairBlock]:
        """Batched :meth:`sample_pairs`: walks split across meta-paths.

        Each path gets the same share it would get from the looped
        cycling order, but all its walks advance together — one alias
        draw and one dead-end mask per level instead of one
        ``rng.choice`` per node.
        """
        num_paths = len(self.meta_paths)
        blocks: List[PairBlock] = []
        for i, path in enumerate(self.meta_paths):
            share = num_walks // num_paths + (1 if i < num_walks % num_paths
                                              else 0)
            if share == 0:
                continue
            levels, alive = self.walk_batch(rng, path, share)
            blocks.extend(self.extract_pair_blocks(path, levels, alive))
        return blocks

    def sample_pairs_batched(self, rng: np.random.Generator,
                             num_walks: int) -> List[PositivePair]:
        """:meth:`sample_pairs` through the batched plane (parity helper)."""
        pairs: List[PositivePair] = []
        for block in self.sample_pair_blocks(rng, num_walks):
            pairs.extend(block.to_pairs())
        return pairs
