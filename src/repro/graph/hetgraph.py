"""In-memory heterogeneous graph with CSR adjacency.

Replaces the Euler distributed graph engine at laptop scale.  The graph
stores, per node type, a contiguous index range, a category id per node
and sparse feature fields (paper Table IV); and, per
``(source type, edge type, target type)`` triple, a CSR adjacency with
edge weights.  Merged per-target-type CSRs support the GCN context
encoder's typed neighbour aggregation (paper Eq. 5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.graph.alias import CSRAliasTables
from repro.graph.category import CategoryTree
from repro.graph.schema import EdgeType, NodeType

AdjKey = Tuple[NodeType, EdgeType, NodeType]


class CategoryPools(NamedTuple):
    """Array view of one node type grouped by category.

    ``order[start[c]:start[c] + count[c]]`` are the nodes of category
    ``c``; ``rank[v]`` is node ``v``'s position inside its own pool.
    The hard-negative sampler uses this to draw same-category nodes
    (excluding the positive) with one ``rng`` call per batch.
    """

    order: np.ndarray
    start: np.ndarray
    count: np.ndarray
    rank: np.ndarray


class _CSR:
    """Compressed sparse rows: ``indices[indptr[i]:indptr[i+1]]``."""

    __slots__ = ("indptr", "indices", "weights", "_weight_prefix")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 weights: np.ndarray):
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._weight_prefix: Optional[np.ndarray] = None

    @property
    def weight_prefix(self) -> np.ndarray:
        """``[0, w0, w0+w1, …]`` — the inverse-CDF table for sampling."""
        if self._weight_prefix is None:
            self._weight_prefix = np.concatenate(
                [[0.0], np.cumsum(self.weights)])
        return self._weight_prefix

    @classmethod
    def from_edges(cls, num_rows: int, src: np.ndarray, dst: np.ndarray,
                   weights: np.ndarray) -> "_CSR":
        order = np.argsort(src, kind="stable")
        src, dst, weights = src[order], dst[order], weights[order]
        counts = np.bincount(src, minlength=num_rows)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return cls(indptr, dst.astype(np.int64), weights.astype(np.float64))

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    @property
    def nnz(self) -> int:
        return int(self.indices.size)


class HetGraph:
    """The query-item-ad interaction graph ``G = (V, E)``.

    Parameters
    ----------
    num_nodes:
        Node count per :class:`NodeType`.
    categories:
        Per-type array of category-tree leaf ids, one per node.
    features:
        Per-type mapping ``field name -> int array``; arrays are either
        ``(n,)`` single-valued ids or ``(n, k)`` multi-slot ids (e.g.
        title terms) padded with ``-1``.
    category_tree:
        The taxonomy used for positive filtering / negative mining.
    """

    def __init__(self, num_nodes: Dict[NodeType, int],
                 categories: Dict[NodeType, np.ndarray],
                 features: Dict[NodeType, Dict[str, np.ndarray]],
                 category_tree: CategoryTree):
        self.num_nodes = {t: int(num_nodes.get(t, 0)) for t in NodeType}
        self.categories = {t: np.asarray(categories[t], dtype=np.int64)
                           for t in categories}
        self.features = features
        self.category_tree = category_tree
        self._adj: Dict[AdjKey, _CSR] = {}
        self._merged: Dict[Tuple[NodeType, NodeType], _CSR] = {}
        self._by_category: Dict[NodeType, Dict[int, np.ndarray]] = {}
        self._alias: Dict[AdjKey, CSRAliasTables] = {}
        self._pools: Dict[NodeType, CategoryPools] = {}
        for node_type, cats in self.categories.items():
            if cats.shape[0] != self.num_nodes[node_type]:
                raise ValueError("category array for %s has %d rows, expected %d"
                                 % (node_type, cats.shape[0], self.num_nodes[node_type]))

    # -- construction ------------------------------------------------------

    def add_edges(self, src_type: NodeType, edge_type: EdgeType,
                  dst_type: NodeType, src: np.ndarray, dst: np.ndarray,
                  weights: Optional[np.ndarray] = None,
                  symmetric: bool = False) -> None:
        """Register an edge list; ``symmetric`` also adds the reverse.

        Duplicate (src, dst) pairs are coalesced by summing weights,
        matching the behaviour-count semantics of the log builder.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if weights is None:
            weights = np.ones(src.size, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (src.size == dst.size == weights.size):
            raise ValueError("src/dst/weights size mismatch")
        self._insert(src_type, edge_type, dst_type, src, dst, weights)
        if symmetric:
            self._insert(dst_type, edge_type, src_type, dst, src, weights)
        self._merged.clear()
        self._alias.clear()

    def _insert(self, src_type: NodeType, edge_type: EdgeType,
                dst_type: NodeType, src: np.ndarray, dst: np.ndarray,
                weights: np.ndarray) -> None:
        key = (src_type, edge_type, dst_type)
        n_src = self.num_nodes[src_type]
        n_dst = self.num_nodes[dst_type]
        if src.size and (src.min() < 0 or src.max() >= n_src):
            raise ValueError("source index out of range for %s" % (key,))
        if dst.size and (dst.min() < 0 or dst.max() >= n_dst):
            raise ValueError("target index out of range for %s" % (key,))
        if key in self._adj:
            old = self._adj[key]
            old_src = np.repeat(np.arange(n_src), np.diff(old.indptr))
            src = np.concatenate([old_src, src])
            dst = np.concatenate([old.indices, dst])
            weights = np.concatenate([old.weights, weights])
        # coalesce duplicates
        pair_key = src * n_dst + dst
        unique, inverse = np.unique(pair_key, return_inverse=True)
        merged_w = np.zeros(unique.size, dtype=np.float64)
        np.add.at(merged_w, inverse, weights)
        merged_src = (unique // n_dst).astype(np.int64)
        merged_dst = (unique % n_dst).astype(np.int64)
        self._adj[key] = _CSR.from_edges(n_src, merged_src, merged_dst, merged_w)

    # -- inspection ---------------------------------------------------------

    @property
    def adjacency_keys(self) -> List[AdjKey]:
        return list(self._adj.keys())

    def num_edges(self, src_type: Optional[NodeType] = None,
                  edge_type: Optional[EdgeType] = None,
                  dst_type: Optional[NodeType] = None) -> int:
        """Total stored directed edges matching the optional filters."""
        total = 0
        for (s, e, d), csr in self._adj.items():
            if src_type is not None and s != src_type:
                continue
            if edge_type is not None and e != edge_type:
                continue
            if dst_type is not None and d != dst_type:
                continue
            total += csr.nnz
        return total

    def neighbors(self, node_type: NodeType, index: int,
                  edge_type: Optional[EdgeType] = None,
                  dst_type: Optional[NodeType] = None
                  ) -> Tuple[np.ndarray, np.ndarray, List[NodeType]]:
        """Neighbour ids, weights and their types for one node."""
        ids, weights, types = [], [], []
        for (s, e, d), csr in self._adj.items():
            if s != node_type:
                continue
            if edge_type is not None and e != edge_type:
                continue
            if dst_type is not None and d != dst_type:
                continue
            row_ids, row_w = csr.row(index)
            ids.append(row_ids)
            weights.append(row_w)
            types.extend([d] * row_ids.size)
        if not ids:
            return (np.empty(0, dtype=np.int64), np.empty(0), [])
        return np.concatenate(ids), np.concatenate(weights), types

    def _merged_csr(self, src_type: NodeType, dst_type: NodeType) -> _CSR:
        """Union of all edge types between two node types (cached)."""
        key = (src_type, dst_type)
        if key not in self._merged:
            srcs, dsts, ws = [], [], []
            n_src = self.num_nodes[src_type]
            for (s, e, d), csr in self._adj.items():
                if s != src_type or d != dst_type:
                    continue
                srcs.append(np.repeat(np.arange(n_src), np.diff(csr.indptr)))
                dsts.append(csr.indices)
                ws.append(csr.weights)
            if srcs:
                src = np.concatenate(srcs)
                dst = np.concatenate(dsts)
                w = np.concatenate(ws)
            else:
                src = np.empty(0, dtype=np.int64)
                dst = np.empty(0, dtype=np.int64)
                w = np.empty(0)
            self._merged[key] = _CSR.from_edges(n_src, src, dst, w)
        return self._merged[key]

    def sample_neighbors(self, rng: np.random.Generator, src_type: NodeType,
                         indices: np.ndarray, dst_type: NodeType,
                         k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``k`` neighbours of type ``dst_type`` for each source.

        Returns ``(neighbour_ids, mask)`` of shape ``(len(indices), k)``;
        rows with no neighbours are padded with 0 and masked out.
        Sampling is with replacement, proportional to edge weight — the
        stochastic analogue of Eq. 5's mean aggregation.

        Vectorised over the whole batch: one uniform block scaled by
        each row's total weight, inverted through the CSR's cached
        cumulative-weight prefix with a single ``searchsorted`` — no
        per-row python work, which matters because the encode-plan
        sampling phase calls this for every frontier level.
        """
        indices = np.asarray(indices, dtype=np.int64)
        csr = self._merged_csr(src_type, dst_type)
        out = np.zeros((indices.size, k), dtype=np.int64)
        mask = np.zeros((indices.size, k), dtype=np.float64)
        if indices.size == 0 or csr.nnz == 0:
            return out, mask
        prefix = csr.weight_prefix
        lo = csr.indptr[indices]
        hi = csr.indptr[indices + 1]
        totals = prefix[hi] - prefix[lo]
        # a row whose weights sum to zero has no samplable neighbour:
        # treat it like degree 0 (all-masked) instead of emitting an
        # edge whose sampling probability is 0
        valid = (hi > lo) & (totals > 0)
        if not np.any(valid):
            return out, mask
        # inverse CDF: u ~ U[prefix[lo], prefix[hi]) per draw, located in
        # the global prefix and clipped back into the row's own range
        u = prefix[lo][:, None] + rng.random((indices.size, k)) * totals[:, None]
        picks = np.searchsorted(prefix, u, side="right") - 1
        picks = np.clip(picks, lo[:, None], (hi - 1)[:, None])
        out[valid] = csr.indices[picks[valid]]
        mask[valid] = 1.0
        return out, mask

    def alias_tables(self, src_type: NodeType, edge_type: EdgeType,
                     dst_type: NodeType) -> Optional[CSRAliasTables]:
        """Per-row alias tables of one adjacency, built once per graph.

        ``None`` when the graph has no such adjacency.  The cache is
        invalidated by :meth:`add_edges`.
        """
        key = (src_type, edge_type, dst_type)
        csr = self._adj.get(key)
        if csr is None:
            return None
        tables = self._alias.get(key)
        if tables is None:
            tables = CSRAliasTables(csr.indptr, csr.indices, csr.weights)
            self._alias[key] = tables
        return tables

    def category_pools(self, node_type: NodeType) -> CategoryPools:
        """Nodes of a type grouped by category as flat arrays (cached)."""
        pools = self._pools.get(node_type)
        if pools is None:
            cats = self.categories[node_type]
            order = np.argsort(cats, kind="stable").astype(np.int64)
            count = np.bincount(cats, minlength=len(self.category_tree)
                                ).astype(np.int64)
            start = (np.cumsum(count) - count).astype(np.int64)
            rank = np.empty(cats.size, dtype=np.int64)
            rank[order] = np.arange(cats.size) - start[cats[order]]
            pools = CategoryPools(order, start, count, rank)
            self._pools[node_type] = pools
        return pools

    def degree(self, node_type: NodeType, dst_type: Optional[NodeType] = None
               ) -> np.ndarray:
        """Out-degree per node, optionally restricted to a target type."""
        total = np.zeros(self.num_nodes[node_type], dtype=np.int64)
        for (s, e, d), csr in self._adj.items():
            if s != node_type:
                continue
            if dst_type is not None and d != dst_type:
                continue
            total += np.diff(csr.indptr)
        return total

    def nodes_in_category(self, node_type: NodeType, category: int) -> np.ndarray:
        """Node ids of a type belonging to a category (cached)."""
        by_cat = self._by_category.get(node_type)
        if by_cat is None:
            cats = self.categories[node_type]
            by_cat = {}
            order = np.argsort(cats, kind="stable")
            sorted_cats = cats[order]
            boundaries = np.flatnonzero(np.diff(sorted_cats)) + 1
            for chunk in np.split(order, boundaries):
                if chunk.size:
                    by_cat[int(cats[chunk[0]])] = chunk
            self._by_category[node_type] = by_cat
        return by_cat.get(int(category), np.empty(0, dtype=np.int64))

    def stats(self) -> Dict[str, int]:
        """Node/edge counts in the shape of paper Table V."""
        return {
            "queries": self.num_nodes[NodeType.QUERY],
            "items": self.num_nodes[NodeType.ITEM],
            "ads": self.num_nodes[NodeType.AD],
            "edges": self.num_edges(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return ("HetGraph(queries=%(queries)d, items=%(items)d, "
                "ads=%(ads)d, edges=%(edges)d)" % s)
