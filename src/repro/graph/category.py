"""The e-commerce category tree (paper §IV-A-2, Fig. 1).

Every product (item/ad) belongs to one *leaf* category; queries are
classified into categories too.  AMCAD uses the tree in two places:

- positive node pairs from meta-path walks must share a category;
- *hard* negatives are drawn from the same category as the positive,
  *easy* negatives from other categories.

The tree also provides the planted hierarchical structure that makes
hyperbolic subspaces useful, so the synthetic data generator grows its
query taxonomy from the same object.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class CategoryTree:
    """A rooted tree of category ids with O(1) parent/depth lookups.

    Node 0 is the root.  Construction is top-down with
    :meth:`add_child`; :func:`CategoryTree.balanced` grows a uniform
    taxonomy of a given depth and branching factor.
    """

    def __init__(self):
        self.parent: List[int] = [-1]
        self.depth: List[int] = [0]
        self.children: List[List[int]] = [[]]
        self.name: List[str] = ["root"]
        self._arrays = None  # (size, depth array, ancestor matrix) cache

    @classmethod
    def balanced(cls, depth: int, branching: int,
                 namer=None) -> "CategoryTree":
        """Grow a complete tree: ``branching**depth`` leaves.

        ``namer(parent_name, child_rank)`` may supply human-readable
        names; defaults to dotted paths like ``"root.2.0"``.
        """
        tree = cls()
        frontier = [0]
        for _ in range(depth):
            next_frontier = []
            for node in frontier:
                for rank in range(branching):
                    if namer is not None:
                        name = namer(tree.name[node], rank)
                    else:
                        name = "%s.%d" % (tree.name[node], rank)
                    next_frontier.append(tree.add_child(node, name))
            frontier = next_frontier
        return tree

    def add_child(self, parent: int, name: Optional[str] = None) -> int:
        """Attach a new category under ``parent`` and return its id."""
        if not 0 <= parent < len(self.parent):
            raise ValueError("unknown parent category %d" % parent)
        node = len(self.parent)
        self.parent.append(parent)
        self.depth.append(self.depth[parent] + 1)
        self.children.append([])
        self.name.append(name if name is not None else "cat%d" % node)
        self.children[parent].append(node)
        return node

    def __len__(self) -> int:
        return len(self.parent)

    @property
    def leaves(self) -> List[int]:
        """Ids of all leaf categories."""
        return [i for i, kids in enumerate(self.children) if not kids]

    def is_leaf(self, node: int) -> bool:
        return not self.children[node]

    def path(self, node: int) -> List[int]:
        """Path from the root to ``node`` (inclusive)."""
        trail = []
        while node != -1:
            trail.append(node)
            node = self.parent[node]
        return trail[::-1]

    def ancestor_at_depth(self, node: int, depth: int) -> int:
        """The ancestor of ``node`` at the given depth (0 = root)."""
        while self.depth[node] > depth:
            node = self.parent[node]
        return node

    def _index_arrays(self):
        """Cached ``(depth, ancestor-at-depth)`` arrays for batch queries.

        ``anc[d, c]`` is the ancestor of category ``c`` at depth ``d``
        (``-1`` when ``c`` is shallower than ``d``).  Rebuilt lazily
        whenever the tree has grown since the last call.
        """
        if self._arrays is not None and self._arrays[0] == len(self.parent):
            return self._arrays[1], self._arrays[2]
        depth = np.asarray(self.depth, dtype=np.int64)
        parent = np.asarray(self.parent, dtype=np.int64)
        n = depth.size
        anc = np.full((int(depth.max()) + 1, n), -1, dtype=np.int64)
        anc[depth, np.arange(n)] = np.arange(n)
        for d in range(anc.shape[0] - 1, 0, -1):
            fill = (anc[d] >= 0) & (anc[d - 1] < 0)
            anc[d - 1, fill] = parent[anc[d, fill]]
        self._arrays = (n, depth, anc)
        return depth, anc

    def depth_array(self) -> np.ndarray:
        """Depth per category id as one array (root = 0)."""
        return self._index_arrays()[0]

    def ancestor_matrix(self) -> np.ndarray:
        """The ``(max_depth + 1, num_categories)`` ancestor-at-depth table."""
        return self._index_arrays()[1]

    def same_branch(self, a, b) -> np.ndarray:
        """Vectorised root-path test: ``lca(a, b)`` is ``a`` or ``b``.

        This is exactly the meta-path positive constraint of §IV-A-2
        ("one category lies on the other's root path") evaluated for
        aligned arrays of category ids without per-pair LCA walks.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        depth, anc = self._index_arrays()
        shallower = np.minimum(depth[a], depth[b])
        return anc[shallower, a] == anc[shallower, b]

    def lowest_common_ancestor(self, a: int, b: int) -> int:
        while self.depth[a] > self.depth[b]:
            a = self.parent[a]
        while self.depth[b] > self.depth[a]:
            b = self.parent[b]
        while a != b:
            a = self.parent[a]
            b = self.parent[b]
        return a

    def tree_distance(self, a: int, b: int) -> int:
        """Number of edges on the tree path between two categories."""
        lca = self.lowest_common_ancestor(a, b)
        return (self.depth[a] - self.depth[lca]) + (self.depth[b] - self.depth[lca])

    def siblings(self, node: int) -> List[int]:
        """Other children of the same parent (empty for the root)."""
        parent = self.parent[node]
        if parent == -1:
            return []
        return [c for c in self.children[parent] if c != node]

    def sample_leaf(self, rng: np.random.Generator) -> int:
        leaves = self.leaves
        return leaves[int(rng.integers(len(leaves)))]

    def leaf_groups_by_parent(self) -> Dict[int, List[int]]:
        """Leaves grouped under their direct parent."""
        groups: Dict[int, List[int]] = {}
        for leaf in self.leaves:
            groups.setdefault(self.parent[leaf], []).append(leaf)
        return groups
