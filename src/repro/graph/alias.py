"""Walker's alias method for O(1) discrete sampling.

The paper uses the alias method for constant-time negative sampling
over hundreds of millions of nodes (§V-A, citing Walker 1977).  The
table is built once in O(n) and each draw costs one uniform and one
comparison.

Construction here is array-native: :func:`build_alias_tables` builds
the tables for *many* distributions in one pass — one per CSR row —
pairing deficit ("small") entries with surplus ("large") entries
through per-row prefix sums instead of the classic python stack loop.
:class:`CSRAliasTables` wraps the per-row tables of one ``(src type,
edge type, dst type)`` adjacency and serves batched weighted neighbour
draws for the meta-path walkers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: entries whose scaled mass is within this tolerance of 1 are treated
#: as exactly resolved (mirrors the sequential algorithm's final sweep)
_ONE_TOL = 1e-9


def _segment_cumsum(values: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Inclusive cumulative sum restarting at each segment boundary.

    ``segments`` must be sorted ascending (values grouped by segment).
    """
    running = np.cumsum(values)
    first = np.ones(segments.size, dtype=bool)
    first[1:] = segments[1:] != segments[:-1]
    starts = np.flatnonzero(first)
    seg_lens = np.diff(np.append(starts, segments.size))
    base = np.repeat(running[starts] - values[starts], seg_lens)
    return running - base


def _sequential_rows(prob: np.ndarray, alias: np.ndarray, rem: np.ndarray,
                     pending: np.ndarray, row_of: np.ndarray,
                     local: np.ndarray) -> None:
    """Classic two-stack cleanup for rows the vectorised rounds left over.

    Only reachable on pathological weight chains (each round otherwise
    resolves every current deficit entry); kept as an exactness net.
    """
    left = np.flatnonzero(pending)
    if left.size == 0:
        return
    boundaries = np.flatnonzero(np.diff(row_of[left])) + 1
    for group in np.split(left, boundaries):
        small = [i for i in group if rem[i] < 1.0]
        large = [i for i in group if rem[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = rem[s]
            alias[s] = local[l]
            rem[l] -= 1.0 - rem[s]
            if rem[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for i in small + large:
            prob[i] = 1.0
    pending[left] = False


def build_alias_tables(weights, indptr=None,
                       max_rounds: int = 64) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised alias-table construction, one table per CSR row.

    Parameters
    ----------
    weights:
        Flat non-negative weights, finite, concatenated row by row.
    indptr:
        CSR row pointer (``weights[indptr[i]:indptr[i+1]]`` is row
        ``i``); ``None`` treats the whole array as a single row.  Empty
        rows are allowed and produce no table entries.
    max_rounds:
        Safety cap on pairing rounds before the sequential fallback
        finishes any leftovers (never reached on realistic weights).

    Returns ``(prob, alias)`` aligned with ``weights``; ``alias`` holds
    *row-local* column indices so multi-row draws compose with the
    row's ``indptr`` offset.

    Each round classifies every still-open entry as deficit (scaled
    mass < 1) or surplus (> 1), lays the deficits and surpluses of each
    row on a common mass axis via prefix sums, and assigns every
    deficit entry to the surplus entry whose span contains its starting
    offset — all deficits finalise per round, so total work stays
    O(n log n) across rounds (the log from one merge sort per round).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be a 1-D array")
    if not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite (no NaN/inf)")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if indptr is None:
        indptr = np.array([0, weights.size], dtype=np.int64)
    else:
        indptr = np.asarray(indptr, dtype=np.int64)
    nnz = weights.size
    lens = np.diff(indptr)
    num_rows = lens.size
    if nnz == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)

    row_of = np.repeat(np.arange(num_rows), lens)
    running = np.concatenate([[0.0], np.cumsum(weights)])
    sums = running[indptr[1:]] - running[indptr[:-1]]
    if np.any((sums <= 0) & (lens > 0)):
        raise ValueError("rows with edges must have positive total weight")

    rem = weights * (lens[row_of] / sums[row_of])
    prob = np.ones(nnz, dtype=np.float64)
    local = np.arange(nnz, dtype=np.int64) - np.repeat(indptr[:-1], lens)
    alias = local.copy()
    pending = np.ones(nnz, dtype=bool)

    for _round in range(max_rounds):
        open_idx = np.flatnonzero(pending)
        if open_idx.size == 0:
            break
        mass = rem[open_idx]
        near_one = np.abs(mass - 1.0) <= _ONE_TOL
        if near_one.any():
            pending[open_idx[near_one]] = False    # prob 1, alias self
            open_idx = open_idx[~near_one]
            mass = mass[~near_one]
        if open_idx.size == 0:
            break
        deficit_side = mass < 1.0
        sm = open_idx[deficit_side]
        lg = open_idx[~deficit_side]
        n_sm = np.bincount(row_of[sm], minlength=num_rows)
        n_lg = np.bincount(row_of[lg], minlength=num_rows)
        # rows where one side ran out: mass conservation says whatever
        # remains is ~1, so finalise it
        lone_sm = sm[n_lg[row_of[sm]] == 0]
        if lone_sm.size:
            prob[lone_sm] = np.clip(rem[lone_sm], 0.0, 1.0)
            pending[lone_sm] = False
        lone_lg = lg[n_sm[row_of[lg]] == 0]
        if lone_lg.size:
            pending[lone_lg] = False
        sm = sm[n_lg[row_of[sm]] > 0]
        lg = lg[n_sm[row_of[lg]] > 0]
        if sm.size == 0:
            continue

        sm_rows = row_of[sm]
        lg_rows = row_of[lg]
        deficits = 1.0 - rem[sm]
        surpluses = rem[lg] - 1.0
        deficit_end = _segment_cumsum(deficits, sm_rows)
        deficit_start = deficit_end - deficits
        surplus_end = _segment_cumsum(surpluses, lg_rows)

        # rank each deficit's start among its row's surplus span ends; a
        # deficit starting exactly where a surplus ends goes to the NEXT
        # surplus entry (the tied one has no span left to donate)
        merged_vals = np.concatenate([deficit_start, surplus_end])
        merged_rows = np.concatenate([sm_rows, lg_rows])
        merged_small = np.concatenate([np.ones(sm.size, dtype=np.int8),
                                       np.zeros(lg.size, dtype=np.int8)])
        order = np.lexsort((merged_small, merged_vals, merged_rows))
        surplus_rank = np.empty(order.size, dtype=np.int64)
        surplus_rank[order] = np.cumsum(1 - merged_small[order])
        n_lg_round = np.bincount(lg_rows, minlength=num_rows)
        lg_before_row = np.cumsum(n_lg_round) - n_lg_round
        k_in_row = surplus_rank[:sm.size] - lg_before_row[sm_rows]
        k_in_row = np.clip(k_in_row, 0, n_lg_round[sm_rows] - 1)
        assigned_pos = lg_before_row[sm_rows] + k_in_row
        assigned = lg[assigned_pos]

        prob[sm] = rem[sm]
        alias[sm] = local[assigned]
        pending[sm] = False
        absorbed = np.bincount(assigned_pos, weights=deficits,
                               minlength=lg.size)
        rem[lg] -= absorbed

    _sequential_rows(prob, alias, rem, pending, row_of, local)
    np.clip(prob, 0.0, 1.0, out=prob)
    return prob, alias


class AliasSampler:
    """Constant-time sampler over a discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative, finite, not-all-zero weights; normalised
        internally.
    """

    def __init__(self, weights):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite (no NaN/inf)")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        if weights.sum() <= 0:
            raise ValueError("weights must not all be zero")
        self.n = weights.size
        self.prob, self.alias = build_alias_tables(weights)

    def sample(self, rng: np.random.Generator, size=None):
        """Draw indices; scalar when ``size`` is None, else an array."""
        if size is None:
            column = int(rng.integers(self.n))
            if rng.random() < self.prob[column]:
                return column
            return int(self.alias[column])
        columns = rng.integers(self.n, size=size)
        coins = rng.random(size=size)
        take_alias = coins >= self.prob[columns]
        result = np.where(take_alias, self.alias[columns], columns)
        return result


class CSRAliasTables:
    """One alias table per CSR row, built in a single vectorised pass.

    The batched walker's step primitive: ``draw`` picks one weighted
    neighbour per source row with two uniforms and two gathers, so a
    whole level of walks advances without touching python loops.
    """

    __slots__ = ("indptr", "indices", "lens", "prob", "alias")

    def __init__(self, indptr, indices, weights):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.lens = np.diff(self.indptr)
        self.prob, self.alias = build_alias_tables(weights, self.indptr)

    @property
    def num_rows(self) -> int:
        return int(self.lens.size)

    def draw(self, rng: np.random.Generator, rows) -> np.ndarray:
        """One weighted neighbour id per row; ``-1`` where a row is empty."""
        rows = np.asarray(rows, dtype=np.int64)
        lens = self.lens[rows]
        out = np.full(rows.shape, -1, dtype=np.int64)
        live = np.flatnonzero(lens > 0)
        if live.size == 0:
            return out
        base = self.indptr[rows[live]]
        span = lens[live]
        column = np.minimum((rng.random(live.size) * span).astype(np.int64),
                            span - 1)
        slot = base + column
        take_alias = rng.random(live.size) >= self.prob[slot]
        column = np.where(take_alias, self.alias[slot], column)
        out[live] = self.indices[base + column]
        return out
