"""Walker's alias method for O(1) discrete sampling.

The paper uses the alias method for constant-time negative sampling
over hundreds of millions of nodes (§V-A, citing Walker 1977).  The
table is built once in O(n) and each draw costs one uniform and one
comparison.
"""

from __future__ import annotations

import numpy as np


class AliasSampler:
    """Constant-time sampler over a discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights; normalised internally.
    """

    def __init__(self, weights):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")

        n = weights.size
        self.n = n
        prob = weights * (n / total)
        self.prob = np.empty(n, dtype=np.float64)
        self.alias = np.zeros(n, dtype=np.int64)

        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self.prob[s] = prob[s]
            self.alias[s] = l
            prob[l] = prob[l] - (1.0 - prob[s])
            if prob[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for i in large:
            self.prob[i] = 1.0
        for i in small:
            self.prob[i] = 1.0

    def sample(self, rng: np.random.Generator, size=None):
        """Draw indices; scalar when ``size`` is None, else an array."""
        if size is None:
            column = int(rng.integers(self.n))
            if rng.random() < self.prob[column]:
                return column
            return int(self.alias[column])
        columns = rng.integers(self.n, size=size)
        coins = rng.random(size=size)
        take_alias = coins >= self.prob[columns]
        result = np.where(take_alias, self.alias[columns], columns)
        return result
