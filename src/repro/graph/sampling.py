"""Negative sampling with hard/easy stratification (paper §IV-A-2).

Given a positive pair, negatives are nodes of the *target* type:

- **hard** negatives share the positive target's category — they force
  the representation to discriminate at fine granularity;
- **easy** negatives come from other categories.

The paper uses K = 6 negatives per positive at an easy:hard ratio of
2:1, sampled by the alias method for O(1) draws (§V-A).  Two
implementations live here: the looped reference (``sample`` /
``sample_batch``, one pair at a time) and the array-native plane
(``sample_arrays``), which draws a whole relation-homogeneous batch
with oversample-and-mask rejection for easy negatives and one indexed
gather into per-category pools for hard ones, producing a
:class:`SampleBatch` instead of a list of dataclasses.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.graph.alias import AliasSampler
from repro.graph.hetgraph import HetGraph
from repro.graph.metapath import PositivePair
from repro.graph.schema import NodeRef, NodeType, Relation


@dataclasses.dataclass
class TrainingSample:
    """``<x_src, x_pos, {x_neg_i}>`` with the relation label (paper §IV-B-3)."""

    source: NodeRef
    positive: NodeRef
    negatives: List[NodeRef]
    relation: Relation


@dataclasses.dataclass
class SampleBatch:
    """A relation-homogeneous training batch as aligned index arrays.

    The struct-of-arrays twin of ``List[TrainingSample]`` and the data
    contract between the sampling plane and ``AMCAD.loss``:
    ``src_idx``/``pos_idx`` are ``(B,)`` node indices, ``neg_idx`` is
    ``(B, K)``, and every node is typed by ``relation``.  Iterating a
    batch yields :class:`TrainingSample` views, so reference-path
    consumers keep working.
    """

    relation: Relation
    src_idx: np.ndarray
    pos_idx: np.ndarray
    neg_idx: np.ndarray

    def __post_init__(self):
        self.src_idx = np.asarray(self.src_idx, dtype=np.int64)
        self.pos_idx = np.asarray(self.pos_idx, dtype=np.int64)
        self.neg_idx = np.asarray(self.neg_idx, dtype=np.int64)
        if self.src_idx.shape != self.pos_idx.shape or self.src_idx.ndim != 1:
            raise ValueError("src_idx/pos_idx must be aligned 1-D arrays")
        if self.neg_idx.ndim != 2 or self.neg_idx.shape[0] != self.src_idx.size:
            raise ValueError("neg_idx must be (batch, K), got %r"
                             % (self.neg_idx.shape,))

    def __getstate__(self) -> dict:
        """Pickle as the four raw fields (the cross-process contract).

        Batches cross a process boundary on the prefetching training
        plane (:mod:`repro.training.prefetch`); the explicit state dict
        pins the wire format to exactly the contract fields.
        """
        return {"relation": self.relation, "src_idx": self.src_idx,
                "pos_idx": self.pos_idx, "neg_idx": self.neg_idx}

    def __setstate__(self, state: dict) -> None:
        self.relation = state["relation"]
        self.src_idx = state["src_idx"]
        self.pos_idx = state["pos_idx"]
        self.neg_idx = state["neg_idx"]
        # re-validate on the consumer side: a payload that lost dtype or
        # alignment in transit fails loudly here, not deep in the loss
        self.__post_init__()

    def __len__(self) -> int:
        return int(self.src_idx.size)

    @property
    def num_negatives(self) -> int:
        return int(self.neg_idx.shape[1])

    def __iter__(self) -> Iterator[TrainingSample]:
        src_type = self.relation.source_type
        tgt_type = self.relation.target_type
        for s, p, negs in zip(self.src_idx, self.pos_idx, self.neg_idx):
            yield TrainingSample(
                source=NodeRef(src_type, int(s)),
                positive=NodeRef(tgt_type, int(p)),
                negatives=[NodeRef(tgt_type, int(n)) for n in negs],
                relation=self.relation)


def as_sample_batches(
        samples: Union["SampleBatch", Sequence[TrainingSample]]
) -> List[SampleBatch]:
    """Normalise a loss input to relation-homogeneous batches.

    A :class:`SampleBatch` passes through; a sequence of
    :class:`TrainingSample` is grouped per relation in first-seen
    order, exactly as the looped loss did.
    """
    if isinstance(samples, SampleBatch):
        return [samples]
    by_relation: Dict[Relation, List[TrainingSample]] = {}
    for sample in samples:
        by_relation.setdefault(sample.relation, []).append(sample)
    batches = []
    for relation, group in by_relation.items():
        batches.append(SampleBatch(
            relation=relation,
            src_idx=np.array([s.source.index for s in group]),
            pos_idx=np.array([s.positive.index for s in group]),
            neg_idx=np.array([[n.index for n in s.negatives]
                              for s in group])))
    return batches


class NegativeSampler:
    """Samples hard and easy negatives for positive pairs.

    Parameters
    ----------
    graph:
        Graph supplying categories and degree-based node weights.
    num_negatives:
        K, total negatives per positive (paper: 6).
    easy_ratio:
        Fraction of easy negatives in [0, 1] (paper: 2:1 easy:hard →
        2/3).
    degree_smoothing:
        Finite exponent on node degree for the global (easy)
        distribution — 0.75 mirrors the word2vec/DeepWalk convention.
    """

    #: rejection-round cap for easy draws landing in the positive's
    #: category (matches the looped path's ``50 * count`` attempt cap)
    MAX_REJECTION_ROUNDS = 50

    def __init__(self, graph: HetGraph, num_negatives: int = 6,
                 easy_ratio: float = 2.0 / 3.0,
                 degree_smoothing: float = 0.75,
                 seed: Optional[int] = None):
        if num_negatives < 1:
            raise ValueError("need at least one negative sample")
        easy_ratio = float(easy_ratio)
        if not 0.0 <= easy_ratio <= 1.0:
            raise ValueError("easy_ratio must be in [0, 1], got %r"
                             % easy_ratio)
        degree_smoothing = float(degree_smoothing)
        if not np.isfinite(degree_smoothing):
            raise ValueError("degree_smoothing must be finite, got %r"
                             % degree_smoothing)
        self.graph = graph
        self.num_negatives = int(num_negatives)
        self.easy_ratio = easy_ratio
        self._global_samplers: Dict[NodeType, AliasSampler] = {}
        for node_type in NodeType:
            n = graph.num_nodes[node_type]
            if n == 0:
                continue
            weights = graph.degree(node_type).astype(np.float64) ** degree_smoothing
            if weights.sum() == 0:
                weights = np.ones(n)
            else:
                weights = weights + 1e-3  # keep cold nodes reachable
            self._global_samplers[node_type] = AliasSampler(weights)

    @property
    def _split(self):
        n_easy = int(round(self.num_negatives * self.easy_ratio))
        return n_easy, self.num_negatives - n_easy

    # -- looped reference ---------------------------------------------------

    def _sample_easy(self, rng: np.random.Generator, node_type: NodeType,
                     category: int, count: int) -> List[int]:
        """Degree-weighted draws outside the positive's category."""
        sampler = self._global_samplers[node_type]
        cats = self.graph.categories[node_type]
        out: List[int] = []
        attempts = 0
        while len(out) < count and attempts < 50 * count:
            idx = int(sampler.sample(rng))
            attempts += 1
            if int(cats[idx]) != category:
                out.append(idx)
        while len(out) < count:  # degenerate single-category graphs
            out.append(int(sampler.sample(rng)))
        return out

    def _sample_hard(self, rng: np.random.Generator, node_type: NodeType,
                     category: int, exclude: int, count: int) -> List[int]:
        """Uniform draws inside the positive's category, excluding it."""
        pool = self.graph.nodes_in_category(node_type, category)
        pool = pool[pool != exclude]
        if pool.size == 0:
            return self._sample_easy(rng, node_type, -1, count)
        picks = rng.integers(pool.size, size=count)
        return [int(pool[p]) for p in picks]

    def sample(self, rng: np.random.Generator,
               pair: PositivePair) -> TrainingSample:
        """Attach K negatives to a positive pair."""
        target_type = pair.target.node_type
        category = int(self.graph.categories[target_type][pair.target.index])
        n_easy, n_hard = self._split
        negatives = [NodeRef(target_type, idx) for idx in
                     self._sample_easy(rng, target_type, category, n_easy)]
        negatives += [NodeRef(target_type, idx) for idx in
                      self._sample_hard(rng, target_type, category,
                                        pair.target.index, n_hard)]
        return TrainingSample(source=pair.source, positive=pair.target,
                              negatives=negatives, relation=pair.relation)

    def sample_batch(self, rng: np.random.Generator,
                     pairs: Sequence[PositivePair]) -> List[TrainingSample]:
        return [self.sample(rng, pair) for pair in pairs]

    # -- array-native plane -------------------------------------------------

    def sample_arrays(self, rng: np.random.Generator, relation: Relation,
                      src_idx: np.ndarray,
                      pos_idx: np.ndarray) -> SampleBatch:
        """Attach K negatives to a whole relation-homogeneous batch.

        Easy negatives: draw from the degree-smoothed alias table, then
        redraw only the entries that landed in their positive's
        category (oversample-and-mask rejection; degenerate graphs keep
        the last draws, as the looped path does).  Hard negatives: one
        ``rng.random`` block indexed into the per-category pools, with
        the positive excluded by rank shifting.
        """
        src_idx = np.asarray(src_idx, dtype=np.int64)
        pos_idx = np.asarray(pos_idx, dtype=np.int64)
        target_type = relation.target_type
        cats = self.graph.categories[target_type]
        pos_cat = cats[pos_idx]
        batch = pos_idx.size
        n_easy, n_hard = self._split
        neg_idx = np.empty((batch, self.num_negatives), dtype=np.int64)

        sampler = self._global_samplers[target_type]
        if n_easy:
            easy = np.asarray(sampler.sample(rng, size=(batch, n_easy)),
                              dtype=np.int64)
            collide = cats[easy] == pos_cat[:, None]
            rounds = 0
            while collide.any() and rounds < self.MAX_REJECTION_ROUNDS:
                easy[collide] = sampler.sample(rng, size=int(collide.sum()))
                collide = cats[easy] == pos_cat[:, None]
                rounds += 1
            neg_idx[:, :n_easy] = easy

        if n_hard:
            pools = self.graph.category_pools(target_type)
            available = pools.count[pos_cat] - 1  # pool minus the positive
            has_pool = available > 0
            span = np.maximum(available, 1)
            draw = (rng.random((batch, n_hard)) * span[:, None]).astype(np.int64)
            draw = np.minimum(draw, (span - 1)[:, None])
            # uniform over the pool minus the positive: skip its rank
            draw += draw >= pools.rank[pos_idx][:, None]
            # singleton pools would shift past their (1-element) pool;
            # keep their gather in bounds — they are overwritten below
            draw[~has_pool] = 0
            hard = pools.order[pools.start[pos_cat][:, None] + draw]
            if not has_pool.all():  # singleton categories: global fallback
                orphan = np.flatnonzero(~has_pool)
                hard[orphan] = sampler.sample(rng, size=(orphan.size, n_hard))
            neg_idx[:, n_easy:] = hard

        return SampleBatch(relation=relation, src_idx=src_idx,
                           pos_idx=pos_idx, neg_idx=neg_idx)
