"""Negative sampling with hard/easy stratification (paper §IV-A-2).

Given a positive pair, negatives are nodes of the *target* type:

- **hard** negatives share the positive target's category — they force
  the representation to discriminate at fine granularity;
- **easy** negatives come from other categories.

The paper uses K = 6 negatives per positive at an easy:hard ratio of
2:1, sampled by the alias method for O(1) draws (§V-A).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.alias import AliasSampler
from repro.graph.hetgraph import HetGraph
from repro.graph.metapath import PositivePair
from repro.graph.schema import NodeRef, NodeType, Relation


@dataclasses.dataclass
class TrainingSample:
    """``<x_src, x_pos, {x_neg_i}>`` with the relation label (paper §IV-B-3)."""

    source: NodeRef
    positive: NodeRef
    negatives: List[NodeRef]
    relation: Relation


class NegativeSampler:
    """Samples hard and easy negatives for positive pairs.

    Parameters
    ----------
    graph:
        Graph supplying categories and degree-based node weights.
    num_negatives:
        K, total negatives per positive (paper: 6).
    easy_ratio:
        Fraction of easy negatives (paper: 2:1 easy:hard → 2/3).
    degree_smoothing:
        Exponent on node degree for the global (easy) distribution —
        0.75 mirrors the word2vec/DeepWalk convention.
    """

    def __init__(self, graph: HetGraph, num_negatives: int = 6,
                 easy_ratio: float = 2.0 / 3.0,
                 degree_smoothing: float = 0.75,
                 seed: Optional[int] = None):
        if num_negatives < 1:
            raise ValueError("need at least one negative sample")
        self.graph = graph
        self.num_negatives = int(num_negatives)
        self.easy_ratio = float(easy_ratio)
        self._global_samplers: Dict[NodeType, AliasSampler] = {}
        for node_type in NodeType:
            n = graph.num_nodes[node_type]
            if n == 0:
                continue
            weights = graph.degree(node_type).astype(np.float64) ** degree_smoothing
            if weights.sum() == 0:
                weights = np.ones(n)
            else:
                weights = weights + 1e-3  # keep cold nodes reachable
            self._global_samplers[node_type] = AliasSampler(weights)

    def _sample_easy(self, rng: np.random.Generator, node_type: NodeType,
                     category: int, count: int) -> List[int]:
        """Degree-weighted draws outside the positive's category."""
        sampler = self._global_samplers[node_type]
        cats = self.graph.categories[node_type]
        out: List[int] = []
        attempts = 0
        while len(out) < count and attempts < 50 * count:
            idx = int(sampler.sample(rng))
            attempts += 1
            if int(cats[idx]) != category:
                out.append(idx)
        while len(out) < count:  # degenerate single-category graphs
            out.append(int(sampler.sample(rng)))
        return out

    def _sample_hard(self, rng: np.random.Generator, node_type: NodeType,
                     category: int, exclude: int, count: int) -> List[int]:
        """Uniform draws inside the positive's category, excluding it."""
        pool = self.graph.nodes_in_category(node_type, category)
        pool = pool[pool != exclude]
        if pool.size == 0:
            return self._sample_easy(rng, node_type, -1, count)
        picks = rng.integers(pool.size, size=count)
        return [int(pool[p]) for p in picks]

    def sample(self, rng: np.random.Generator,
               pair: PositivePair) -> TrainingSample:
        """Attach K negatives to a positive pair."""
        target_type = pair.target.node_type
        category = int(self.graph.categories[target_type][pair.target.index])
        n_easy = int(round(self.num_negatives * self.easy_ratio))
        n_hard = self.num_negatives - n_easy
        negatives = [NodeRef(target_type, idx) for idx in
                     self._sample_easy(rng, target_type, category, n_easy)]
        negatives += [NodeRef(target_type, idx) for idx in
                      self._sample_hard(rng, target_type, category,
                                        pair.target.index, n_hard)]
        return TrainingSample(source=pair.source, positive=pair.target,
                              negatives=negatives, relation=pair.relation)

    def sample_batch(self, rng: np.random.Generator,
                     pairs: Sequence[PositivePair]) -> List[TrainingSample]:
        return [self.sample(rng, pair) for pair in pairs]
