"""Behaviour-log → heterogeneous-graph construction (paper §IV-A-1, Fig. 4).

Four edge channels:

- **clicking** — query → each clicked item/ad of its sessions;
- **co-clicking** — adjacent clicked item/ad nodes within a session,
  plus query-query co-search edges between a user's consecutive
  sessions (behavioural edges for popular nodes);
- **semantic similarity** — query pairs whose term Jaccard similarity
  exceeds a threshold (cold-start help for behaviour-sparse nodes);
- **co-bidding** — ad pairs sharing at least one bid keyword.

All channels produce symmetric (both-direction) edges; click/co-click
weights are interaction counts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from typing import TYPE_CHECKING

from repro.common import PAD
from repro.graph.hetgraph import HetGraph
from repro.graph.schema import EdgeType, NodeType

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.data.logs import BehaviorLog
    from repro.data.universe import Universe


class GraphBuilder:
    """Accumulates edges from logs over a :class:`Universe`."""

    def __init__(self, universe: "Universe", semantic_threshold: float = 0.4,
                 max_semantic_degree: int = 20):
        self.universe = universe
        self.semantic_threshold = float(semantic_threshold)
        self.max_semantic_degree = int(max_semantic_degree)
        self._click: Dict[Tuple[NodeType, int, int], float] = defaultdict(float)
        self._co_click: Dict[Tuple[NodeType, int, NodeType, int], float] = defaultdict(float)
        self._co_search: Dict[Tuple[int, int], float] = defaultdict(float)

    # -- behavioural edges ---------------------------------------------------

    def add_log(self, log: "BehaviorLog") -> "GraphBuilder":
        """Accumulate clicking / co-clicking edges from one daily log."""
        for session in log:
            query = session.query
            for ref in session.clicks:
                self._click[(ref.node_type, query, ref.index)] += 1.0
            for first, second in zip(session.clicks, session.clicks[1:]):
                key = (first.node_type, first.index, second.node_type, second.index)
                if (first.node_type, first.index) != (second.node_type, second.index):
                    self._co_click[key] += 1.0
        for run in log.user_session_runs():
            for first, second in zip(run, run[1:]):
                if first.query != second.query:
                    pair = (min(first.query, second.query),
                            max(first.query, second.query))
                    self._co_search[pair] += 1.0
        return self

    def add_logs(self, logs: Iterable["BehaviorLog"]) -> "GraphBuilder":
        for log in logs:
            self.add_log(log)
        return self

    # -- non-behavioural edges -------------------------------------------------

    def _semantic_pairs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Query pairs with term-Jaccard above threshold.

        Uses an inverted term index so the cost is proportional to the
        number of co-occurring pairs, not |Q|².  Degree is capped to the
        strongest ``max_semantic_degree`` matches per query so dense
        term clusters do not blow up the edge count.
        """
        terms = self.universe.queries.terms
        term_sets = [set(int(t) for t in row if t != PAD) for row in terms]
        inverted: Dict[int, List[int]] = defaultdict(list)
        for q, row in enumerate(term_sets):
            for term in row:
                inverted[term].append(q)
        overlap: Dict[Tuple[int, int], int] = defaultdict(int)
        for queries in inverted.values():
            if len(queries) < 2 or len(queries) > 200:
                continue  # skip terms too generic to be informative
            for i, a in enumerate(queries):
                for b in queries[i + 1:]:
                    overlap[(a, b)] += 1
        by_query: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
        for (a, b), inter in overlap.items():
            union = len(term_sets[a]) + len(term_sets[b]) - inter
            if union == 0:
                continue
            jaccard = inter / union
            if jaccard >= self.semantic_threshold:
                by_query[a].append((jaccard, b))
                by_query[b].append((jaccard, a))
        src, dst, weight = [], [], []
        for a, matches in by_query.items():
            matches.sort(reverse=True)
            for jaccard, b in matches[:self.max_semantic_degree]:
                src.append(a)
                dst.append(b)
                weight.append(jaccard)
        return (np.asarray(src, dtype=np.int64),
                np.asarray(dst, dtype=np.int64),
                np.asarray(weight, dtype=np.float64))

    def _co_bid_pairs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ad pairs sharing at least one bid keyword."""
        bid_words = self.universe.ads.bid_words
        inverted: Dict[int, List[int]] = defaultdict(list)
        for ad, row in enumerate(bid_words):
            for word in set(int(w) for w in row if w != PAD):
                inverted[word].append(ad)
        pairs: Dict[Tuple[int, int], float] = defaultdict(float)
        for ads in inverted.values():
            if len(ads) < 2 or len(ads) > 200:
                continue
            for i, a in enumerate(ads):
                for b in ads[i + 1:]:
                    pairs[(a, b)] += 1.0
        if not pairs:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                    np.empty(0))
        src = np.fromiter((a for a, _ in pairs), dtype=np.int64, count=len(pairs))
        dst = np.fromiter((b for _, b in pairs), dtype=np.int64, count=len(pairs))
        weight = np.fromiter(pairs.values(), dtype=np.float64, count=len(pairs))
        return src, dst, weight

    # -- finalisation -----------------------------------------------------------

    def build(self) -> HetGraph:
        """Materialise the heterogeneous graph."""
        universe = self.universe
        graph = HetGraph(universe.num_nodes(), universe.categories(),
                         universe.features(), universe.category_tree)

        # clicking edges (query <-> item/ad)
        for target_type in (NodeType.ITEM, NodeType.AD):
            entries = [(q, d, w) for (t, q, d), w in self._click.items()
                       if t == target_type]
            if entries:
                q, d, w = (np.asarray(col) for col in zip(*entries))
                graph.add_edges(NodeType.QUERY, EdgeType.CLICK, target_type,
                                q, d, w, symmetric=True)

        # co-clicking edges (item/ad <-> item/ad, all type combinations)
        grouped: Dict[Tuple[NodeType, NodeType], List[Tuple[int, int, float]]] = defaultdict(list)
        for (t1, i1, t2, i2), w in self._co_click.items():
            grouped[(t1, t2)].append((i1, i2, w))
        for (t1, t2), entries in grouped.items():
            s, d, w = (np.asarray(col) for col in zip(*entries))
            graph.add_edges(t1, EdgeType.CO_CLICK, t2, s, d, w, symmetric=True)

        # query co-search edges (behavioural q-q, used by Table III's
        # first meta-path)
        if self._co_search:
            entries = [(a, b, w) for (a, b), w in self._co_search.items()]
            a, b, w = (np.asarray(col) for col in zip(*entries))
            graph.add_edges(NodeType.QUERY, EdgeType.CO_CLICK, NodeType.QUERY,
                            a, b, w, symmetric=True)

        # semantic similarity edges (q-q)
        src, dst, weight = self._semantic_pairs()
        if src.size:
            graph.add_edges(NodeType.QUERY, EdgeType.SEMANTIC, NodeType.QUERY,
                            src, dst, weight, symmetric=True)

        # co-bidding edges (a-a)
        src, dst, weight = self._co_bid_pairs()
        if src.size:
            graph.add_edges(NodeType.AD, EdgeType.CO_BID, NodeType.AD,
                            src, dst, weight, symmetric=True)
        return graph


def build_graph(universe: "Universe", logs: Sequence["BehaviorLog"],
                semantic_threshold: float = 0.4) -> HetGraph:
    """One-call construction: accumulate all logs and build."""
    builder = GraphBuilder(universe, semantic_threshold=semantic_threshold)
    builder.add_logs(logs)
    return builder.build()
