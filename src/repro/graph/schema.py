"""Node, edge and relation vocabulary of the interaction graph.

The paper's heterogeneous graph ``G = (V, E)`` has three node types
(queries ``V_q``, items ``V_i``, ads ``V_a``) and four edge types
(clicking, co-clicking, semantic similarity, co-bidding).  The
edge-level scorer and the online index layer additionally speak in
terms of *relations* — ordered (source-type, target-type) pairs — of
which six are used end to end: Q2Q, Q2I, Q2A, I2Q, I2I, I2A.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class NodeType(str, enum.Enum):
    """The three entity types of the sponsored-search graph."""

    QUERY = "query"
    ITEM = "item"
    AD = "ad"

    @property
    def letter(self) -> str:
        """Single-letter code used in relation names (q/i/a)."""
        return {"query": "q", "item": "i", "ad": "a"}[self.value]


class EdgeType(str, enum.Enum):
    """Edge construction channels (paper §IV-A-1)."""

    CLICK = "click"
    CO_CLICK = "co_click"
    SEMANTIC = "semantic"
    CO_BID = "co_bid"


class Relation(str, enum.Enum):
    """Typed (source, target) pairs scored by the edge-level scorer.

    These are also the six inverted indices of the two-layer online
    retrieval framework (paper §IV-C, Fig. 6).
    """

    Q2Q = "q2q"
    Q2I = "q2i"
    Q2A = "q2a"
    I2Q = "i2q"
    I2I = "i2i"
    I2A = "i2a"

    @property
    def source_type(self) -> NodeType:
        return _LETTER_TO_TYPE[self.value[0]]

    @property
    def target_type(self) -> NodeType:
        return _LETTER_TO_TYPE[self.value[2]]


_LETTER_TO_TYPE = {"q": NodeType.QUERY, "i": NodeType.ITEM, "a": NodeType.AD}


def relation_of(source: NodeType, target: NodeType) -> Relation:
    """Return the relation for a typed node pair.

    Ad-sourced pairs produced by meta-path walks (e.g. ``<q, a1>`` and
    ``<q, a2>``) are always query/item-sourced in Table III, so only the
    six relations above are needed; an A2* lookup raises ``KeyError``.
    """
    return Relation("%s2%s" % (source.letter, target.letter))


class NodeRef(NamedTuple):
    """A typed node handle: ``(node_type, local_index)``.

    Node indices are contiguous *within* a type; the pair is the
    canonical node identity everywhere in the library.
    """

    node_type: NodeType
    index: int

    def __str__(self) -> str:
        return "%s:%d" % (self.node_type.letter, self.index)
