"""Heterogeneous interaction-graph substrate (paper §IV-A).

This package replaces Alibaba's Euler distributed graph engine with an
in-memory heterogeneous graph tailored to the query-item-ad interaction
data of sponsored search:

- :mod:`repro.graph.schema` — node types (query/item/ad), edge types
  (click, co-click, semantic, co-bid) and relation identifiers;
- :mod:`repro.graph.hetgraph` — CSR adjacency per (src-type, edge-type)
  with neighbour sampling;
- :mod:`repro.graph.category` — the e-commerce category tree the paper
  uses to constrain positives and stratify negatives;
- :mod:`repro.graph.builder` — behaviour-log → graph construction
  (paper Fig. 4);
- :mod:`repro.graph.alias` — Walker's alias method for O(1) sampling;
- :mod:`repro.graph.metapath` — meta-path guided random walks and
  positive-pair extraction (paper Table III);
- :mod:`repro.graph.sampling` — hard/easy negative sampling.
"""

from repro.graph.schema import EdgeType, NodeRef, NodeType, Relation, relation_of
from repro.graph.alias import AliasSampler, CSRAliasTables, build_alias_tables
from repro.graph.category import CategoryTree
from repro.graph.hetgraph import CategoryPools, HetGraph
from repro.graph.builder import GraphBuilder, build_graph
from repro.graph.metapath import (
    MetaPath,
    MetaPathWalker,
    PairBlock,
    TABLE_III_META_PATHS,
)
from repro.graph.sampling import (
    NegativeSampler,
    SampleBatch,
    TrainingSample,
    as_sample_batches,
)

__all__ = [
    "NodeType",
    "EdgeType",
    "Relation",
    "NodeRef",
    "relation_of",
    "AliasSampler",
    "CSRAliasTables",
    "build_alias_tables",
    "CategoryTree",
    "CategoryPools",
    "HetGraph",
    "GraphBuilder",
    "build_graph",
    "MetaPath",
    "MetaPathWalker",
    "PairBlock",
    "TABLE_III_META_PATHS",
    "NegativeSampler",
    "SampleBatch",
    "TrainingSample",
    "as_sample_batches",
]
