"""Shared constants used across packages."""

#: Padding id for variable-length categorical feature slots (e.g. terms).
PAD = -1
