"""Shared constants and crash-safe filesystem primitives.

Every persisted artifact in the repo goes through the atomic writers
here: content lands in a same-directory temp file first (flushed and
fsynced), then a single ``os.replace`` makes it visible.  A crash —
real, or injected at the ``"io.atomic_write"`` fault point — at any
instant leaves either the complete old file or the complete new file,
never a torn hybrid; stray ``*.tmp-*`` staging files are dead weight a
later write of the same path sweeps up.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pathlib
import tempfile
from typing import Iterator, Union

import numpy as np

from repro.testing.faults import InjectedFault, fault_point

#: Padding id for variable-length categorical feature slots (e.g. terms).
PAD = -1

PathLike = Union[str, "os.PathLike[str]"]


def _sweep_stale_tmp(path: pathlib.Path) -> None:
    """Best-effort removal of staging files a crashed writer left behind."""
    for stale in path.parent.glob(path.name + ".tmp-*"):
        with contextlib.suppress(OSError):
            stale.unlink()


@contextlib.contextmanager
def atomic_writer(path: PathLike, mode: str = "wb") -> Iterator:
    """Open a temp file that replaces ``path`` atomically on clean exit.

    The ``"io.atomic_write"`` fault point sits between the flushed
    write and the publishing ``os.replace``; a ``torn``-mode fault
    additionally truncates the staged bytes to half before raising, so
    regression tests can prove a mid-write crash never corrupts the
    published file.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _sweep_stale_tmp(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".tmp-")
    tmp = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        try:
            fault_point("io.atomic_write", path=str(path))
        except InjectedFault as exc:
            if exc.torn:    # simulate the crash tearing the staged bytes
                size = tmp.stat().st_size
                with open(tmp, "r+b") as handle:
                    handle.truncate(size // 2)
            raise
        os.replace(tmp, path)
    except BaseException:
        # leave ``path`` untouched; drop the staging file (a real crash
        # would leave it behind — the sweep above handles that later)
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_bytes(path: PathLike, payload: bytes) -> pathlib.Path:
    with atomic_writer(path, "wb") as handle:
        handle.write(payload)
    return pathlib.Path(path)


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> pathlib.Path:
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_savez(path: PathLike, arrays: dict,
                 compressed: bool = True) -> pathlib.Path:
    """``np.savez(_compressed)`` through the atomic writer."""
    with atomic_writer(path, "wb") as handle:
        (np.savez_compressed if compressed else np.savez)(handle, **arrays)
    return pathlib.Path(path)


def file_sha256(path: PathLike, chunk_bytes: int = 1 << 20) -> str:
    """Streaming SHA-256 hex digest of one file."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(chunk_bytes), b""):
            digest.update(chunk)
    return digest.hexdigest()
