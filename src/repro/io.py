"""Persistence for trained models and built indices.

The deployed system trains offline, ships embeddings to index builders
and serves from stored indices (paper Fig. 3); this module provides the
laptop equivalent: ``.npz``-based save/load with a JSON config header.

Model checkpoints store the configuration plus every parameter tensor
in deterministic construction order, so loading requires only the same
graph (the entity universe defines the table shapes):

    save_model(model, "amcad.npz")
    model = load_model("amcad.npz", graph)

Index sets serialise each relation's key→results arrays and reload
into a lightweight read-only object that serves the two-layer
retriever without the model.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Union

import numpy as np

from repro.common import atomic_savez
from repro.graph.hetgraph import HetGraph
from repro.graph.schema import Relation
from repro.models.amcad import AMCAD, AMCADConfig
from repro.retrieval.index import IndexSet, InvertedIndex

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def save_model(model: AMCAD, path: PathLike) -> pathlib.Path:
    """Write an AMCAD checkpoint (config JSON + parameter arrays)."""
    path = pathlib.Path(path)
    params = list(model.parameters())
    arrays = {"param_%06d" % i: p.data for i, p in enumerate(params)}
    header = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "num_parameters": len(params),
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    return atomic_savez(path, arrays)


def load_model(path: PathLike, graph: HetGraph) -> AMCAD:
    """Rebuild a model over ``graph`` and restore its parameters.

    The graph must come from the same entity universe the checkpoint
    was trained on (feature-table shapes are derived from it).
    """
    path = pathlib.Path(path)
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        if header["format_version"] != _FORMAT_VERSION:
            raise ValueError("unsupported checkpoint version %r"
                             % header["format_version"])
        config = AMCADConfig(**header["config"])
        model = AMCAD(graph, config)
        params = list(model.parameters())
        if len(params) != header["num_parameters"]:
            raise ValueError(
                "checkpoint has %d parameters but the rebuilt model has %d "
                "— was it saved for a different graph/universe?"
                % (header["num_parameters"], len(params)))
        for i, param in enumerate(params):
            stored = archive["param_%06d" % i]
            if stored.shape != param.data.shape:
                raise ValueError(
                    "parameter %d shape mismatch: checkpoint %r vs model %r"
                    % (i, stored.shape, param.data.shape))
            param.data[...] = stored
    return model


def save_index_set(index_set: IndexSet, path: PathLike) -> pathlib.Path:
    """Write all built inverted indices to one ``.npz`` file.

    Shard-aware: the backend registry name and per-relation target
    shard bounds (sharded backends) ride along in the JSON header, so a
    reloaded set knows the layout it was built over without the model
    or backend objects.
    """
    path = pathlib.Path(path)
    arrays: Dict[str, np.ndarray] = {}
    relations = []
    for relation, index in index_set.indices.items():
        key = relation.value
        relations.append(key)
        arrays["ids_%s" % key] = index.ids
        arrays["dists_%s" % key] = index.distances
    header = {"format_version": _FORMAT_VERSION, "relations": relations}
    backend_name = getattr(index_set, "backend_name", None)
    if backend_name is not None:
        header["backend"] = backend_name
    backend_params = getattr(index_set, "backend_params", None)
    if backend_params:
        header["backend_params"] = backend_params
    shard_bounds = {
        relation.value: [[int(a), int(b)] for a, b in bounds]
        for relation, bounds in getattr(index_set, "shard_bounds",
                                        {}).items()}
    if shard_bounds:
        header["shard_bounds"] = shard_bounds
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    return atomic_savez(path, arrays)


class StoredIndexSet:
    """Read-only index set reloaded from disk.

    Provides the mapping interface the two-layer retriever uses
    (``__getitem__`` / ``__contains__``) without needing the model,
    plus the backend metadata recorded at save time (``backend``,
    ``backend_params`` — ANN dials, shard layout — and
    ``shard_bounds``).
    """

    def __init__(self, indices: Dict[Relation, InvertedIndex],
                 backend: str = None,
                 shard_bounds: Dict[Relation, list] = None,
                 backend_params: Dict[str, object] = None):
        self.indices = indices
        self.backend = backend
        self.shard_bounds = dict(shard_bounds or {})
        self.backend_params = dict(backend_params or {})

    def __getitem__(self, relation: Relation) -> InvertedIndex:
        return self.indices[relation]

    def __contains__(self, relation: Relation) -> bool:
        return relation in self.indices


def load_index_set(path: PathLike) -> StoredIndexSet:
    """Reload indices written by :func:`save_index_set`."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        if header["format_version"] != _FORMAT_VERSION:
            raise ValueError("unsupported index version %r"
                             % header["format_version"])
        indices = {}
        for key in header["relations"]:
            relation = Relation(key)
            indices[relation] = InvertedIndex(
                relation=relation,
                ids=archive["ids_%s" % key],
                distances=archive["dists_%s" % key],
                build_seconds=0.0)
    shard_bounds = {Relation(key): [(int(a), int(b)) for a, b in bounds]
                    for key, bounds in header.get("shard_bounds",
                                                  {}).items()}
    return StoredIndexSet(indices, backend=header.get("backend"),
                          shard_bounds=shard_bounds,
                          backend_params=header.get("backend_params"))
