"""AMCAD reproduction — adaptive mixed-curvature ad retrieval.

A full reimplementation of *AMCAD: Adaptive Mixed-Curvature
Representation based Advertisement Retrieval System* (ICDE 2022),
including every substrate: a numpy autodiff engine, κ-stereographic
geometry, a heterogeneous graph engine, a sponsored-search behaviour
simulator, the AMCAD model plus fourteen baselines, the training stack,
and the MNN / two-layer online retrieval system.

Typical usage::

    from repro.data import SponsoredSearchSimulator, SimulatorConfig
    from repro.graph import build_graph
    from repro.models import make_model
    from repro.training import Trainer, TrainerConfig
    from repro.retrieval import IndexSet, TwoLayerRetriever

See README.md for the full tour and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"

__all__ = [
    "autodiff",
    "geometry",
    "graph",
    "data",
    "models",
    "training",
    "retrieval",
    "serving",
    "evaluation",
    "pipeline",
    "io",
    "bench",
]
