"""``python -m repro`` — the pipeline command line (see repro.pipeline.cli)."""

from repro.pipeline.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
