"""Mixed-curvature (product) spaces — paper §III-B, Eq. 2–3.

A :class:`ProductManifold` is the Cartesian product of M subspaces.
Points live in the concatenation of subspace coordinates; distances are
per-subspace geodesic distances combined either uniformly (the classic
product space of Gu et al., paper Eq. 3) or with externally supplied
weights (the attentive combination of AMCAD's edge-level scorer, paper
Eq. 14).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, ensure_tensor
from repro.geometry.manifold import UnifiedManifold


class ProductManifold:
    """Cartesian product ``M(1) × M(2) × … × M(N)`` of unified subspaces."""

    def __init__(self, factors: Sequence[UnifiedManifold]):
        if not factors:
            raise ValueError("a product manifold needs at least one factor")
        self.factors: List[UnifiedManifold] = list(factors)
        self.dims = [m.dim for m in self.factors]
        self.dim = sum(self.dims)
        self._offsets = np.cumsum([0] + self.dims)

    @classmethod
    def adaptive(cls, num_spaces: int, dim_per_space: int,
                 init_kappas: Optional[Iterable[float]] = None) -> "ProductManifold":
        """The adaptive mixed-curvature space of AMCAD.

        All factors are trainable unified manifolds; by default the
        initial curvatures are spread over ``[-1, 1]`` so subspaces
        start from distinct, strongly curved geometries and adapt from
        there (flat starts were observed to under-perform: the κ
        gradient is small relative to weight gradients, so subspaces
        initialised near zero stay nearly Euclidean for a long time).
        """
        if init_kappas is None:
            if num_spaces == 1:
                init_kappas = [0.0]
            else:
                init_kappas = np.linspace(-1.0, 1.0, num_spaces)
        factors = [UnifiedManifold(dim_per_space, kappa=k, trainable=True)
                   for k in init_kappas]
        return cls(factors)

    def __len__(self) -> int:
        return len(self.factors)

    def __iter__(self):
        return iter(self.factors)

    def split(self, x) -> List[Tensor]:
        """Split a concatenated point into per-subspace coordinates."""
        x = ensure_tensor(x)
        if x.shape[-1] != self.dim:
            raise ValueError("expected trailing dim %d, got %d"
                             % (self.dim, x.shape[-1]))
        pieces = []
        for i in range(len(self.factors)):
            pieces.append(x[..., self._offsets[i]:self._offsets[i + 1]])
        return pieces

    def concat(self, pieces: Sequence) -> Tensor:
        """Concatenate per-subspace coordinates into one point."""
        return ops.concatenate(list(pieces), axis=-1)

    def expmap0(self, v) -> Tensor:
        return self.concat([m.expmap0(p) for m, p in zip(self.factors, self.split(v))])

    def logmap0(self, x) -> Tensor:
        return self.concat([m.logmap0(p) for m, p in zip(self.factors, self.split(x))])

    def project(self, x) -> Tensor:
        return self.concat([m.project(p) for m, p in zip(self.factors, self.split(x))])

    def sub_distances(self, x, y) -> Tensor:
        """Per-subspace geodesic distances, shape ``(..., M)``."""
        pieces_x = self.split(x)
        pieces_y = self.split(y)
        dists = [m.dist(px, py)
                 for m, px, py in zip(self.factors, pieces_x, pieces_y)]
        return ops.concatenate(dists, axis=-1)

    def dist(self, x, y, weights=None) -> Tensor:
        """Combined distance (paper Eq. 3 / Eq. 14).

        With ``weights=None`` this is the plain product-space distance
        ``Σ_m d_m``; otherwise a weighted sum ``Σ_m w_m · d_m`` where
        ``weights`` broadcasts against the ``(..., M)`` distance matrix.
        """
        dists = self.sub_distances(x, y)
        if weights is None:
            return ops.sum(dists, axis=-1, keepdims=True)
        weights = ensure_tensor(weights)
        return ops.sum(dists * weights, axis=-1, keepdims=True)

    def constrain(self) -> None:
        for factor in self.factors:
            factor.constrain()

    def kappas(self) -> List[float]:
        """Current curvature values of all subspaces."""
        return [m.kappa_value for m in self.factors]

    def space_types(self) -> List[str]:
        return [m.space_type for m in self.factors]

    def random_point(self, rng: np.random.Generator, *leading,
                     tangent_scale: float = 0.1) -> Tensor:
        return self.concat([m.random_point(rng, *leading, tangent_scale=tangent_scale)
                            for m in self.factors])

    def parameters(self):
        for factor in self.factors:
            yield from factor.parameters()

    @property
    def signature(self) -> str:
        """Compact description such as ``'H8 x S8'`` or ``'U8 x U8'``."""
        letters = []
        for factor in self.factors:
            if factor.trainable:
                letters.append("U%d" % factor.dim)
            else:
                letters.append({"hyperbolic": "H", "euclidean": "E",
                                "spherical": "S"}[factor.space_type] + str(factor.dim))
        return " x ".join(letters)

    def __repr__(self) -> str:
        return "ProductManifold(%s, kappas=%s)" % (
            self.signature, ["%.3f" % k for k in self.kappas()])
