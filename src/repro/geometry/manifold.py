"""Manifold objects wrapping the stereographic operations.

A :class:`UnifiedManifold` owns a (possibly trainable) curvature and
exposes the operation set of paper Table II bound to that curvature.
The constant-curvature spaces of paper Table I are thin factory
functions fixing κ:

- :func:`Euclidean`  — κ = 0, frozen,
- :func:`Hyperbolic` — κ = -1 (or given), frozen,
- :func:`Spherical`  — κ = +1 (or given), frozen.

The *adaptive* space of AMCAD is a trainable ``UnifiedManifold`` whose κ
is a scalar :class:`~repro.autodiff.tensor.Parameter` updated by the
same optimiser as the rest of the model and clamped to a stable range
after each step (:meth:`UnifiedManifold.constrain`).

The hot operations — ``expmap0``, ``logmap0`` and ``dist`` — dispatch to
the fused single-tape-node kernels of :mod:`repro.geometry.fast`; the
composed micro-op chains in :mod:`repro.geometry.stereographic` remain
the reference implementation (same values and gradients, an order of
magnitude more tape nodes) and still back ``mobius_add``/``matvec``.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter, Tensor
from repro.geometry import fast
from repro.geometry import stereographic as st


class UnifiedManifold:
    """The unified κ-stereographic manifold ``U^dim_κ``.

    Parameters
    ----------
    dim:
        Dimensionality of the space.
    kappa:
        Initial sectional curvature.
    trainable:
        If true, κ is a :class:`Parameter` optimised with the model.
    kappa_bounds:
        Stability clamp applied by :meth:`constrain` after each
        optimiser step (paper §V-B numerical-stability measures).
    """

    def __init__(self, dim: int, kappa: float = 0.0, trainable: bool = True,
                 kappa_bounds: tuple = (-2.5, 2.5)):
        if dim < 1:
            raise ValueError("manifold dimension must be >= 1, got %d" % dim)
        self.dim = int(dim)
        self.trainable = bool(trainable)
        self.kappa_bounds = (float(kappa_bounds[0]), float(kappa_bounds[1]))
        if trainable:
            self.kappa: Tensor = Parameter(np.asarray(float(kappa)))
        else:
            self.kappa = Tensor(np.asarray(float(kappa)))

    # -- curvature handling ----------------------------------------------

    @property
    def kappa_value(self) -> float:
        """Current scalar curvature value."""
        return float(self.kappa.data)

    def constrain(self) -> None:
        """Clamp κ in-place to its stability bounds (no-op if frozen)."""
        lo, hi = self.kappa_bounds
        np.clip(self.kappa.data, lo, hi, out=self.kappa.data)

    @property
    def space_type(self) -> str:
        """Human-readable geometry class: hyperbolic/euclidean/spherical."""
        value = self.kappa_value
        if value < -st._KAPPA_ZERO_TOL:
            return "hyperbolic"
        if value > st._KAPPA_ZERO_TOL:
            return "spherical"
        return "euclidean"

    # -- operations (paper Table II) ---------------------------------------

    def expmap0(self, v) -> Tensor:
        return fast.fused_expmap0(v, self.kappa)

    def logmap0(self, x) -> Tensor:
        return fast.fused_logmap0(x, self.kappa)

    def mobius_add(self, x, y) -> Tensor:
        return st.mobius_add(x, y, self.kappa)

    def matvec(self, weight, x) -> Tensor:
        """Möbius matrix multiplication ``W ⊗κ x`` (fused exp/log maps)."""
        tangent = fast.fused_logmap0(x, self.kappa)
        return fast.fused_expmap0(ops.matmul(tangent, weight), self.kappa)

    def dist(self, x, y) -> Tensor:
        """Geodesic distance with the trailing axis squeezed to scalars."""
        return fast.fused_dist(x, y, self.kappa)

    def project(self, x) -> Tensor:
        return st.project(x, self.kappa)

    def activation(self, x, fn, target: "UnifiedManifold" = None) -> Tensor:
        """Curved activation ``σ_{κ1→κ2}(x) = exp^{κ2}_0(σ(log^{κ1}_0 x))``.

        ``fn`` is a tangent-space nonlinearity (e.g. ``ops.tanh``);
        ``target`` defaults to this manifold (κ2 = κ1).
        """
        target = target if target is not None else self
        return fast.fused_expmap0(fn(self.logmap0(x)), target.kappa)

    def origin(self, *leading) -> Tensor:
        """The origin point, broadcast to ``(*leading, dim)``."""
        return Tensor(np.zeros(tuple(leading) + (self.dim,)))

    def random_point(self, rng: np.random.Generator, *leading,
                     tangent_scale: float = 0.1) -> Tensor:
        """Sample a point by exponentiating a Gaussian tangent vector."""
        tangent = Tensor(rng.normal(scale=tangent_scale,
                                    size=tuple(leading) + (self.dim,)))
        return self.project(self.expmap0(tangent))

    def parameters(self):
        """Yield the trainable curvature (if any)."""
        if self.trainable:
            yield self.kappa

    def __repr__(self) -> str:
        return "UnifiedManifold(dim=%d, kappa=%.4f, %s%s)" % (
            self.dim, self.kappa_value, self.space_type,
            ", trainable" if self.trainable else "")


def Euclidean(dim: int) -> UnifiedManifold:
    """Flat space ``E^dim`` (κ = 0, frozen)."""
    return UnifiedManifold(dim, kappa=0.0, trainable=False)


def Hyperbolic(dim: int, kappa: float = -1.0) -> UnifiedManifold:
    """Hyperbolic space ``H^dim`` (κ < 0, frozen)."""
    if kappa >= 0:
        raise ValueError("hyperbolic curvature must be negative, got %g" % kappa)
    return UnifiedManifold(dim, kappa=kappa, trainable=False)


def Spherical(dim: int, kappa: float = 1.0) -> UnifiedManifold:
    """Spherical space ``S^dim`` (κ > 0, frozen)."""
    if kappa <= 0:
        raise ValueError("spherical curvature must be positive, got %g" % kappa)
    return UnifiedManifold(dim, kappa=kappa, trainable=False)
