"""κ-stereographic (gyrovector) operations — paper Table II.

The unified model ``U^n_κ`` represents all three constant-curvature
geometries with one coordinate chart.  Following the paper's convention:

- ``κ < 0`` — hyperbolic space (Poincaré ball of radius ``1/sqrt(-κ)``),
- ``κ = 0`` — Euclidean space,
- ``κ > 0`` — spherical space (stereographic projection of the sphere).

The curvature-dependent trigonometry is::

    tan_κ(x)  = tanh(√-κ·x)/√-κ   (κ<0) |  x + κx³/3  (κ≈0) |  tan(√κ·x)/√κ   (κ>0)
    artan_κ(x) = tanh⁻¹(√-κ·x)/√-κ (κ<0) |  x - κx³/3  (κ≈0) |  tan⁻¹(√κ·x)/√κ (κ>0)

Branches are selected with masked ``where`` so a *trainable* κ can cross
zero smoothly during optimisation (the κ≈0 branch is the shared
third-order Taylor expansion of both sides).  Each branch clamps its
argument so that the non-selected branch never produces NaNs that would
poison the ``where`` gradient.

All functions accept ``Tensor`` or array-like inputs; ``kappa`` may be a
python float, a numpy scalar or a (trainable) scalar ``Tensor``.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, ensure_tensor

# Curvatures with |κ| below this are treated with the Taylor branch.
_KAPPA_ZERO_TOL = 1e-5
# Clamp for tan argument: stay inside (-π/2, π/2) with margin.
_TAN_ARG_MAX = 1.51
# Clamp for arctanh argument: stay inside (-1, 1).
_ARTANH_ARG_MAX = 1.0 - 1e-7
# Clamp for tanh argument: avoid saturation-driven overflow in exp.
_TANH_ARG_MAX = 15.0
_EPS = 1e-15


def tan_k(x, kappa) -> Tensor:
    """Curvature-dependent tangent ``tan_κ`` (paper Table II).

    κ is a *scalar* (float or 0-d tensor), so the active branch is
    selected in Python from its current value — the gradient with
    respect to κ inside a branch is the correct almost-everywhere
    derivative of the piecewise function, and the Taylor branch covers
    the neighbourhood of κ = 0 where both sides agree to third order.
    """
    x = ensure_tensor(x)
    kappa = ensure_tensor(kappa)
    value = float(kappa.data)
    if value < -_KAPPA_ZERO_TOL:
        scale = ops.sqrt(ops.abs_(kappa) + _EPS)
        return ops.tanh(ops.clip(x * scale, -_TANH_ARG_MAX, _TANH_ARG_MAX)) / scale
    if value > _KAPPA_ZERO_TOL:
        scale = ops.sqrt(ops.abs_(kappa) + _EPS)
        return ops.tan(ops.clip(x * scale, -_TAN_ARG_MAX, _TAN_ARG_MAX)) / scale
    return x + kappa * (x * x * x) * (1.0 / 3.0)


def artan_k(x, kappa) -> Tensor:
    """Curvature-dependent arc tangent ``tan⁻¹_κ`` (paper Table II).

    Scalar-κ branch selection; see :func:`tan_k`.
    """
    x = ensure_tensor(x)
    kappa = ensure_tensor(kappa)
    value = float(kappa.data)
    if value < -_KAPPA_ZERO_TOL:
        scale = ops.sqrt(ops.abs_(kappa) + _EPS)
        return ops.arctanh(ops.clip(x * scale, -_ARTANH_ARG_MAX,
                                    _ARTANH_ARG_MAX)) / scale
    if value > _KAPPA_ZERO_TOL:
        scale = ops.sqrt(ops.abs_(kappa) + _EPS)
        return ops.arctan(x * scale) / scale
    return x - kappa * (x * x * x) * (1.0 / 3.0)


def mobius_add(x, y, kappa) -> Tensor:
    """Möbius addition ``x ⊕κ y`` (paper Table II convention).

    At κ=0 this reduces to vector addition; at κ=-1 it is the standard
    Poincaré-ball Möbius addition.
    """
    x, y = ensure_tensor(x), ensure_tensor(y)
    kappa = ensure_tensor(kappa)
    xy = ops.sum(x * y, axis=-1, keepdims=True)
    x2 = ops.sum(x * x, axis=-1, keepdims=True)
    y2 = ops.sum(y * y, axis=-1, keepdims=True)
    numerator = (1.0 - 2.0 * kappa * xy - kappa * y2) * x + (1.0 + kappa * x2) * y
    denominator = 1.0 - 2.0 * kappa * xy + kappa * kappa * x2 * y2
    # The denominator can approach zero only near the boundary of the
    # hyperbolic ball; the projection step keeps points strictly inside,
    # and the clamp below guards the gradient.
    safe = ops.where(np.abs(denominator.data) < _EPS,
                     denominator + _EPS, denominator)
    return numerator / safe


def conformal_factor(x, kappa) -> Tensor:
    """Conformal factor ``λ^κ_x = 2 / (1 + κ‖x‖²)``."""
    x = ensure_tensor(x)
    kappa = ensure_tensor(kappa)
    x2 = ops.sum(x * x, axis=-1, keepdims=True)
    return 2.0 / (1.0 + kappa * x2)


def expmap0(v, kappa) -> Tensor:
    """Exponential map at the origin: ``exp^κ_0(v) = tan_κ(‖v‖)·v/‖v‖``."""
    v = ensure_tensor(v)
    v_norm = ops.norm(v, axis=-1, keepdims=True)
    return tan_k(v_norm, kappa) * (v / v_norm)


def logmap0(x, kappa) -> Tensor:
    """Logarithmic map at the origin: ``log^κ_0(x) = tan⁻¹_κ(‖x‖)·x/‖x‖``."""
    x = ensure_tensor(x)
    x_norm = ops.norm(x, axis=-1, keepdims=True)
    return artan_k(x_norm, kappa) * (x / x_norm)


def dist_k(x, y, kappa) -> Tensor:
    """Geodesic distance ``d_κ(x,y) = 2·tan⁻¹_κ(‖-x ⊕κ y‖)``.

    Returns shape ``(..., 1)`` — the feature axis is reduced but kept as
    a size-1 axis so results broadcast cleanly against vectors; callers
    that want a plain scalar per row index it away with ``[..., 0]``.
    """
    x, y = ensure_tensor(x), ensure_tensor(y)
    diff = mobius_add(-x, y, kappa)
    diff_norm = ops.norm(diff, axis=-1, keepdims=True)
    return 2.0 * artan_k(diff_norm, kappa)


def mobius_matvec(weight, x, kappa) -> Tensor:
    """Möbius matrix multiplication ``W ⊗κ x = exp^κ_0(log^κ_0(x)·W)``.

    ``x`` has shape ``(..., d_in)`` and ``weight`` shape
    ``(d_in, d_out)``; the product is taken in the tangent space at the
    origin, matching paper Table II.
    """
    tangent = logmap0(x, kappa)
    return expmap0(ops.matmul(tangent, weight), kappa)


def project(x, kappa, boundary_eps: float = 4e-3) -> Tensor:
    """Project ``x`` back inside the valid region of ``U^n_κ``.

    Only hyperbolic space has a boundary (the ball of radius
    ``1/√(-κ)``); spherical and Euclidean points are returned unchanged.
    Mirrors the clipping used to keep training numerically stable
    (paper §V-B discusses exactly this out-of-boundary failure mode).
    """
    x = ensure_tensor(x)
    kappa = ensure_tensor(kappa)
    negative = kappa.data < -_KAPPA_ZERO_TOL
    if not np.any(negative):
        return x
    scale = ops.sqrt(ops.abs_(kappa) + _EPS)
    max_norm = (1.0 - boundary_eps) / scale
    x_norm = ops.norm(x, axis=-1, keepdims=True)
    over = x_norm.data > max_norm.data
    scaled = x * (max_norm / x_norm)
    inside_ball = ops.where(over, scaled, x)
    return ops.where(negative, inside_ball, x)


def fermi_dirac(distance, radius: float = 1.0, temperature: float = 5.0) -> Tensor:
    """Fermi–Dirac link probability ``σ(t·(r − d))`` (paper Eq. 15 context).

    The paper sets radius ``r = 1`` and temperature ``t = 5``.
    """
    return ops.sigmoid(temperature * (radius - ensure_tensor(distance)))
