"""Constant-curvature and mixed-curvature geometry (paper §III, Table II).

Implements the unified κ-stereographic model ``U^n_κ`` whose curvature
smoothly interpolates hyperbolic (κ<0), Euclidean (κ=0) and spherical
(κ>0) geometry, plus the Cartesian-product *mixed-curvature* space of
paper §III-B.  All operations are differentiable through
:mod:`repro.autodiff`, including with respect to κ itself — this is what
makes the "adaptive" part of AMCAD possible.
"""

from repro.geometry.stereographic import (
    artan_k,
    conformal_factor,
    dist_k,
    expmap0,
    logmap0,
    mobius_add,
    mobius_matvec,
    project,
    tan_k,
)
from repro.geometry.fast import fused_dist, fused_expmap0, fused_logmap0
from repro.geometry.kernels import HAVE_NUMBA, KERNEL_MODES
from repro.geometry.manifold import (
    Euclidean,
    Hyperbolic,
    Spherical,
    UnifiedManifold,
)
from repro.geometry.product import ProductManifold

__all__ = [
    "tan_k",
    "artan_k",
    "mobius_add",
    "mobius_matvec",
    "expmap0",
    "logmap0",
    "dist_k",
    "project",
    "conformal_factor",
    "fused_expmap0",
    "fused_logmap0",
    "fused_dist",
    "HAVE_NUMBA",
    "KERNEL_MODES",
    "UnifiedManifold",
    "Euclidean",
    "Hyperbolic",
    "Spherical",
    "ProductManifold",
]
