"""Dispatchable inner kernels for the fused geometry ops.

Every hot path in the system — training, full-graph inference and ANN
re-ranking — bottoms out in the same handful of mixed-curvature
primitives (`tan_κ`/`artan_κ` radial maps, the pairwise Möbius-norm
expansion, the fused distance forward/backward).  This module puts one
dispatch registry in front of them: per primitive it holds

- a **pure-numpy implementation** — the reference, moved here from
  :mod:`repro.geometry.fast`, gradchecked against the composed
  micro-op chain by the encoder-plane tests;
- a **loop implementation** — the same math written as sequential
  scalar loops (the MyGrad idiom: njit only the inner loop of an
  autodiff op, numpy everywhere else).  Kept callable as plain Python
  so its logic is testable even where numba is absent;
- the **compiled implementation** — the loop implementation wrapped in
  ``numba.njit(cache=True, fastmath=False)`` when numba imports.
  ``fastmath`` stays off: the parity contract (losses/grads within
  1e-8 of numpy, re-rank distances within 1e-6) relies on IEEE
  ordering of the guard arithmetic.

Selection is gated on import: numba absent → numpy silently; numba
present → compiled unless overridden.  The resolved three-valued dial
(``"auto"``/``"numpy"``/``"compiled"``) is exposed as the validated
``model.kernels`` config key, mirroring the ``compute_plane`` /
``data_plane`` dial pattern.

Branch structure is shared with the numpy path bit for bit: the three
curvature regimes split on the same ``_KAPPA_ZERO_TOL`` threshold, the
clip/ε guards use the same named constants in the same evaluation
order, and the backward helpers reuse the forward's cached trig value
(``tanh``/``tan``/``arctanh``/``arctan`` is evaluated exactly once per
op — see ``*_fwd_numpy``/``*_bwd_numpy``).

Two trig *flavours* coexist, as in ``fast.py``:

- the **inference flavour** (``tan_k``/``artan_k`` kernels and the
  pairwise/rowwise distances): ``s = sqrt(±κ)`` with no ε, matching
  the historical no-tape index-build path;
- the **fused flavour** (radial and fused-dist kernels):
  ``s = sqrt(|κ| + ε)`` with the named clamp constants, matching the
  composed autodiff chain the fused tape ops replicate.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import time
from typing import Callable, Dict, Optional

import numpy as np

# Shared clamp/ε constants — the compiled loops replicate the numpy
# guards only while these stay identical to the composed reference.
from repro.geometry.stereographic import (
    _ARTANH_ARG_MAX,
    _EPS,
    _KAPPA_ZERO_TOL,
    _TAN_ARG_MAX,
    _TANH_ARG_MAX,
)

try:  # pragma: no cover - exercised via both CI legs
    import numba as _numba
    HAVE_NUMBA = True
    NUMBA_VERSION = _numba.__version__
except ImportError:  # pragma: no cover
    _numba = None
    HAVE_NUMBA = False
    NUMBA_VERSION = None

#: trig-kind selector shared by the radial kernels
KIND_TAN = 0
KIND_ARTAN = 1

#: the three-valued dial exposed as ``model.kernels``
KERNEL_MODES = ("auto", "numpy", "compiled")


# -- split trig helpers (fused flavour) -------------------------------------
#
# Forward returns ``(f, aux)`` where ``aux`` caches the raw trig value
# (tanh/tan/arctanh/arctan of the clipped argument; the radius itself on
# the Taylor branch).  Backward takes ``(r, aux, kappa)`` and rebuilds
# the clipped argument bitwise, so its ``df_dr``/``df_dκ`` match the old
# eager vjp exactly while the trig call happens once, in the forward.
# The radial/dist numpy kernels look these up as module attributes at
# call time, which is what makes the call-counting regression test's
# monkeypatch observable.


def tan_k_fwd_numpy(r: np.ndarray, kappa: float):
    """``tan_κ(r)`` (fused ε/clips) plus the cached trig value."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        th = np.tanh(np.clip(r * s, -_TANH_ARG_MAX, _TANH_ARG_MAX))
        return th / s, th
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        tn = np.tan(np.clip(r * s, -_TAN_ARG_MAX, _TAN_ARG_MAX))
        return tn / s, tn
    return r + kappa * r ** 3 / 3.0, r


def tan_k_bwd_numpy(r: np.ndarray, aux: np.ndarray, kappa: float):
    """``(∂tan_κ/∂r, ∂tan_κ/∂κ)`` from the cached forward trig value."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        u = r * s
        inside = (u >= -_TANH_ARG_MAX) & (u <= _TANH_ARG_MAX)
        th = aux
        sech2 = (1.0 - th * th) * inside
        ds_dk = -0.5 / s
        df_ds = (sech2 * r * s - th) / (s * s)
        return sech2, df_ds * ds_dk
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        u = r * s
        inside = (u >= -_TAN_ARG_MAX) & (u <= _TAN_ARG_MAX)
        tn = aux
        sec2 = (1.0 + tn * tn) * inside
        ds_dk = 0.5 / s
        df_ds = (sec2 * r * s - tn) / (s * s)
        return sec2, df_ds * ds_dk
    return 1.0 + kappa * r * r, r ** 3 / 3.0


def artan_k_fwd_numpy(r: np.ndarray, kappa: float):
    """``tan⁻¹_κ(r)`` (fused ε/clips) plus the cached trig value."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        at = np.arctanh(np.clip(r * s, -_ARTANH_ARG_MAX, _ARTANH_ARG_MAX))
        return at / s, at
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        at = np.arctan(r * s)
        return at / s, at
    return r - kappa * r ** 3 / 3.0, r


def artan_k_bwd_numpy(r: np.ndarray, aux: np.ndarray, kappa: float):
    """``(∂tan⁻¹_κ/∂r, ∂tan⁻¹_κ/∂κ)`` from the cached forward trig value."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        u = r * s
        inside = (u >= -_ARTANH_ARG_MAX) & (u <= _ARTANH_ARG_MAX)
        c = np.clip(u, -_ARTANH_ARG_MAX, _ARTANH_ARG_MAX)
        at = aux
        # ops.arctanh guards 1-c² with the same clamp
        dat_dc = 1.0 / np.maximum(1.0 - c * c, _EPS)
        df_dr = dat_dc * inside
        ds_dk = -0.5 / s
        df_ds = (dat_dc * inside * r * s - at) / (s * s)
        return df_dr, df_ds * ds_dk
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        u = r * s
        at = aux
        dat_du = 1.0 / (1.0 + u * u)
        ds_dk = 0.5 / s
        df_ds = (dat_du * r * s - at) / (s * s)
        return dat_du, df_ds * ds_dk
    return 1.0 - kappa * r * r, -(r ** 3) / 3.0


# -- numpy kernel implementations -------------------------------------------
#
# Registry contract (all float64; ``kappa`` a python float):
#
# - tan_k / artan_k:      ``(n,) -> (n,)``          (inference flavour)
# - radial_fwd:           ``(n,d), κ, kind -> (out (n,d), r (n,), f (n,),
#                         aux (n,))``               (fused flavour)
# - radial_bwd:           ``(grad (n,d), v (n,d), r, f, aux, κ, kind) ->
#                         (grad_v (n,d), grad_κ float)``
# - pairwise_mobius_norm: ``(b,d), (n,d), κ -> (b,n)``
# - pairwise_dist:        ``(b,d), (n,d), κ -> (b,n)``
# - rowwise_dist:         ``(b,d), (b,d), κ -> (b,)``
# - dist_fwd:             ``(a (n,d), b (n,d), κ) -> (out (n,), diff, r, f,
#                         aux, safe, p, alpha, beta, ca, cb)``
# - dist_bwd:             ``(grad (n,), a, b, <caches>, κ) ->
#                         (g_a (n,d), g_b (n,d), grad_κ float)``


def _np_tan_k(x, kappa):
    # inference flavour: s = sqrt(±κ) with no ε (historical no-tape path)
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa)
        return np.tanh(np.clip(s * x, -_TANH_ARG_MAX, _TANH_ARG_MAX)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa)
        return np.tan(np.clip(s * x, -_TAN_ARG_MAX, _TAN_ARG_MAX)) / s
    return x + kappa * x ** 3 / 3.0


def _np_artan_k(x, kappa):
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa)
        return np.arctanh(np.clip(s * x, -_ARTANH_ARG_MAX,
                                  _ARTANH_ARG_MAX)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa)
        return np.arctan(s * x) / s
    return x - kappa * x ** 3 / 3.0


def _np_radial_fwd(v, kappa, kind):
    r = np.sqrt(np.sum(v * v, axis=-1) + _EPS)
    if kind == KIND_TAN:
        f, aux = tan_k_fwd_numpy(r, kappa)
    else:
        f, aux = artan_k_fwd_numpy(r, kappa)
    out = v * (f / r)[:, None]
    return out, r, f, np.asarray(aux, dtype=np.float64)


def _np_radial_bwd(grad, v, r, f, aux, kappa, kind):
    if kind == KIND_TAN:
        df_dr, df_dk = tan_k_bwd_numpy(r, aux, kappa)
    else:
        df_dr, df_dk = artan_k_bwd_numpy(r, aux, kappa)
    gv_inner = np.sum(grad * v, axis=-1)
    grad_v = (grad * (f / r)[:, None]
              + v * (gv_inner * (df_dr * r - f) / r ** 3)[:, None])
    grad_k = float(np.sum(gv_inner / r * df_dk))
    return grad_v, grad_k


def _np_pairwise_mobius_norm(x, y, kappa):
    inner = -(x @ y.T)                      # ⟨-x, y⟩, (B, N)
    x2 = np.sum(x * x, axis=1)[:, None]     # ‖-x‖² = ‖x‖², (B, 1)
    y2 = np.sum(y * y, axis=1)[None, :]     # (1, N)
    coeff_a = 1.0 - 2.0 * kappa * inner - kappa * y2
    coeff_b = 1.0 + kappa * x2
    denom = 1.0 - 2.0 * kappa * inner + kappa * kappa * x2 * y2
    denom = np.where(np.abs(denom) < 1e-15, 1e-15, denom)
    squared = (coeff_a * coeff_a * x2 + 2.0 * coeff_a * coeff_b * inner
               + coeff_b * coeff_b * y2)
    squared = np.maximum(squared, 0.0)
    return np.sqrt(squared) / np.abs(denom)


def _np_pairwise_dist(x, y, kappa):
    return 2.0 * _np_artan_k(_np_pairwise_mobius_norm(x, y, kappa), kappa)


def _np_rowwise_dist(x, y, kappa):
    inner = -np.sum(x * y, axis=1)
    x2 = np.sum(x * x, axis=1)
    y2 = np.sum(y * y, axis=1)
    coeff_a = 1.0 - 2.0 * kappa * inner - kappa * y2
    coeff_b = 1.0 + kappa * x2
    denom = 1.0 - 2.0 * kappa * inner + kappa * kappa * x2 * y2
    denom = np.where(np.abs(denom) < 1e-15, 1e-15, denom)
    squared = np.maximum(coeff_a * coeff_a * x2
                         + 2.0 * coeff_a * coeff_b * inner
                         + coeff_b * coeff_b * y2, 0.0)
    norm = np.sqrt(squared) / np.abs(denom)
    return 2.0 * _np_artan_k(norm, kappa)


def _np_dist_fwd(a, b, kappa):
    p = np.sum(a * b, axis=-1)
    alpha = np.sum(a * a, axis=-1)
    beta = np.sum(b * b, axis=-1)
    ca = 1.0 - 2.0 * kappa * p - kappa * beta
    cb = 1.0 + kappa * alpha
    den = 1.0 - 2.0 * kappa * p + kappa * kappa * alpha * beta
    safe = np.where(np.abs(den) < _EPS, den + _EPS, den)
    num = ca[:, None] * a + cb[:, None] * b
    diff = num / safe[:, None]
    r = np.sqrt(np.sum(diff * diff, axis=-1) + _EPS)
    f, aux = artan_k_fwd_numpy(r, kappa)
    out = 2.0 * f
    return (out, diff, r, f, np.asarray(aux, dtype=np.float64),
            safe, p, alpha, beta, ca, cb)


def _np_dist_bwd(grad, a, b, diff, r, f, aux, safe, p, alpha, beta,
                 ca, cb, kappa):
    df_dr, df_dk = artan_k_bwd_numpy(r, aux, kappa)
    g_f = 2.0 * grad
    g_r = g_f * df_dr
    grad_k = np.sum(g_f * df_dk)
    g_diff = g_r[:, None] * diff / r[:, None]
    g_num = g_diff / safe[:, None]
    g_den = -np.sum(g_diff * diff, axis=-1) / safe
    g_ca = np.sum(g_num * a, axis=-1)
    g_cb = np.sum(g_num * b, axis=-1)
    g_a = ca[:, None] * g_num
    g_b = cb[:, None] * g_num
    g_p = -2.0 * kappa * (g_ca + g_den)
    g_alpha = kappa * kappa * beta * g_den + kappa * g_cb
    g_beta = kappa * kappa * alpha * g_den - kappa * g_ca
    grad_k += np.sum(g_den * (-2.0 * p + 2.0 * kappa * alpha * beta)
                     + g_ca * (-2.0 * p - beta) + g_cb * alpha)
    g_a = g_a + g_p[:, None] * b + 2.0 * g_alpha[:, None] * a
    g_b = g_b + g_p[:, None] * a + 2.0 * g_beta[:, None] * b
    return g_a, g_b, float(grad_k)


# -- loop kernel implementations --------------------------------------------
#
# The same math scalarised into sequential inner loops.  Each is plain
# Python (testable everywhere) and njit-compatible: when numba is
# present, ``register`` wraps it with ``njit(cache=True, fastmath=False)``
# and the jitted version becomes the ``compiled`` dispatch target.
# Branch thresholds, clip order and guard arithmetic mirror the numpy
# implementations above term by term.


def _loop_tan_k(x, kappa):
    n = x.shape[0]
    out = np.empty(n)
    if kappa < -_KAPPA_ZERO_TOL:
        s = math.sqrt(-kappa)
        for i in range(n):
            u = s * x[i]
            if u > _TANH_ARG_MAX:
                u = _TANH_ARG_MAX
            elif u < -_TANH_ARG_MAX:
                u = -_TANH_ARG_MAX
            out[i] = math.tanh(u) / s
    elif kappa > _KAPPA_ZERO_TOL:
        s = math.sqrt(kappa)
        for i in range(n):
            u = s * x[i]
            if u > _TAN_ARG_MAX:
                u = _TAN_ARG_MAX
            elif u < -_TAN_ARG_MAX:
                u = -_TAN_ARG_MAX
            out[i] = math.tan(u) / s
    else:
        for i in range(n):
            out[i] = x[i] + kappa * x[i] ** 3 / 3.0
    return out


def _loop_artan_k(x, kappa):
    n = x.shape[0]
    out = np.empty(n)
    if kappa < -_KAPPA_ZERO_TOL:
        s = math.sqrt(-kappa)
        for i in range(n):
            u = s * x[i]
            if u > _ARTANH_ARG_MAX:
                u = _ARTANH_ARG_MAX
            elif u < -_ARTANH_ARG_MAX:
                u = -_ARTANH_ARG_MAX
            out[i] = math.atanh(u) / s
    elif kappa > _KAPPA_ZERO_TOL:
        s = math.sqrt(kappa)
        for i in range(n):
            out[i] = math.atan(s * x[i]) / s
    else:
        for i in range(n):
            out[i] = x[i] - kappa * x[i] ** 3 / 3.0
    return out


def _loop_radial_fwd(v, kappa, kind):
    n, d = v.shape
    out = np.empty((n, d))
    r = np.empty(n)
    f = np.empty(n)
    aux = np.empty(n)
    for i in range(n):
        acc = 0.0
        for j in range(d):
            acc += v[i, j] * v[i, j]
        r[i] = math.sqrt(acc + _EPS)
    if kind == KIND_TAN:
        if kappa < -_KAPPA_ZERO_TOL:
            s = math.sqrt(-kappa + _EPS)
            for i in range(n):
                u = r[i] * s
                if u > _TANH_ARG_MAX:
                    u = _TANH_ARG_MAX
                elif u < -_TANH_ARG_MAX:
                    u = -_TANH_ARG_MAX
                th = math.tanh(u)
                aux[i] = th
                f[i] = th / s
        elif kappa > _KAPPA_ZERO_TOL:
            s = math.sqrt(kappa + _EPS)
            for i in range(n):
                u = r[i] * s
                if u > _TAN_ARG_MAX:
                    u = _TAN_ARG_MAX
                elif u < -_TAN_ARG_MAX:
                    u = -_TAN_ARG_MAX
                tn = math.tan(u)
                aux[i] = tn
                f[i] = tn / s
        else:
            for i in range(n):
                aux[i] = r[i]
                f[i] = r[i] + kappa * r[i] ** 3 / 3.0
    else:
        if kappa < -_KAPPA_ZERO_TOL:
            s = math.sqrt(-kappa + _EPS)
            for i in range(n):
                u = r[i] * s
                if u > _ARTANH_ARG_MAX:
                    u = _ARTANH_ARG_MAX
                elif u < -_ARTANH_ARG_MAX:
                    u = -_ARTANH_ARG_MAX
                at = math.atanh(u)
                aux[i] = at
                f[i] = at / s
        elif kappa > _KAPPA_ZERO_TOL:
            s = math.sqrt(kappa + _EPS)
            for i in range(n):
                at = math.atan(r[i] * s)
                aux[i] = at
                f[i] = at / s
        else:
            for i in range(n):
                aux[i] = r[i]
                f[i] = r[i] - kappa * r[i] ** 3 / 3.0
    for i in range(n):
        scale = f[i] / r[i]
        for j in range(d):
            out[i, j] = v[i, j] * scale
    return out, r, f, aux


def _loop_radial_bwd(grad, v, r, f, aux, kappa, kind):
    n, d = v.shape
    gv = np.empty((n, d))
    grad_k = 0.0
    for i in range(n):
        ri = r[i]
        ai = aux[i]
        if kind == KIND_TAN:
            if kappa < -_KAPPA_ZERO_TOL:
                s = math.sqrt(-kappa + _EPS)
                u = ri * s
                inside = 1.0 if (u >= -_TANH_ARG_MAX) and \
                    (u <= _TANH_ARG_MAX) else 0.0
                sech2 = (1.0 - ai * ai) * inside
                df_dr = sech2
                df_dk = ((sech2 * ri * s - ai) / (s * s)) * (-0.5 / s)
            elif kappa > _KAPPA_ZERO_TOL:
                s = math.sqrt(kappa + _EPS)
                u = ri * s
                inside = 1.0 if (u >= -_TAN_ARG_MAX) and \
                    (u <= _TAN_ARG_MAX) else 0.0
                sec2 = (1.0 + ai * ai) * inside
                df_dr = sec2
                df_dk = ((sec2 * ri * s - ai) / (s * s)) * (0.5 / s)
            else:
                df_dr = 1.0 + kappa * ri * ri
                df_dk = ri ** 3 / 3.0
        else:
            if kappa < -_KAPPA_ZERO_TOL:
                s = math.sqrt(-kappa + _EPS)
                u = ri * s
                inside = 1.0 if (u >= -_ARTANH_ARG_MAX) and \
                    (u <= _ARTANH_ARG_MAX) else 0.0
                c = u
                if c > _ARTANH_ARG_MAX:
                    c = _ARTANH_ARG_MAX
                elif c < -_ARTANH_ARG_MAX:
                    c = -_ARTANH_ARG_MAX
                om = 1.0 - c * c
                if om < _EPS:
                    om = _EPS
                dat_dc = 1.0 / om
                df_dr = dat_dc * inside
                df_dk = ((dat_dc * inside * ri * s - ai) / (s * s)) \
                    * (-0.5 / s)
            elif kappa > _KAPPA_ZERO_TOL:
                s = math.sqrt(kappa + _EPS)
                u = ri * s
                dat_du = 1.0 / (1.0 + u * u)
                df_dr = dat_du
                df_dk = ((dat_du * ri * s - ai) / (s * s)) * (0.5 / s)
            else:
                df_dr = 1.0 - kappa * ri * ri
                df_dk = -(ri ** 3) / 3.0
        inner = 0.0
        for j in range(d):
            inner += grad[i, j] * v[i, j]
        coef = inner * (df_dr * ri - f[i]) / ri ** 3
        scale = f[i] / ri
        for j in range(d):
            gv[i, j] = grad[i, j] * scale + v[i, j] * coef
        grad_k += inner / ri * df_dk
    return gv, grad_k


def _loop_pairwise_mobius_norm(x, y, kappa):
    b, d = x.shape
    n = y.shape[0]
    out = np.empty((b, n))
    x2 = np.empty(b)
    y2 = np.empty(n)
    for i in range(b):
        acc = 0.0
        for t in range(d):
            acc += x[i, t] * x[i, t]
        x2[i] = acc
    for j in range(n):
        acc = 0.0
        for t in range(d):
            acc += y[j, t] * y[j, t]
        y2[j] = acc
    for i in range(b):
        for j in range(n):
            inn = 0.0
            for t in range(d):
                inn -= x[i, t] * y[j, t]
            ca = 1.0 - 2.0 * kappa * inn - kappa * y2[j]
            cb = 1.0 + kappa * x2[i]
            den = 1.0 - 2.0 * kappa * inn + kappa * kappa * x2[i] * y2[j]
            aden = abs(den)
            if aden < 1e-15:
                aden = 1e-15
            sq = (ca * ca * x2[i] + 2.0 * ca * cb * inn
                  + cb * cb * y2[j])
            if sq < 0.0:
                sq = 0.0
            out[i, j] = math.sqrt(sq) / aden
    return out


def _loop_pairwise_dist(x, y, kappa):
    b, d = x.shape
    n = y.shape[0]
    out = np.empty((b, n))
    x2 = np.empty(b)
    y2 = np.empty(n)
    for i in range(b):
        acc = 0.0
        for t in range(d):
            acc += x[i, t] * x[i, t]
        x2[i] = acc
    for j in range(n):
        acc = 0.0
        for t in range(d):
            acc += y[j, t] * y[j, t]
        y2[j] = acc
    if kappa < -_KAPPA_ZERO_TOL:
        s = math.sqrt(-kappa)
    elif kappa > _KAPPA_ZERO_TOL:
        s = math.sqrt(kappa)
    else:
        s = 0.0
    for i in range(b):
        for j in range(n):
            inn = 0.0
            for t in range(d):
                inn -= x[i, t] * y[j, t]
            ca = 1.0 - 2.0 * kappa * inn - kappa * y2[j]
            cb = 1.0 + kappa * x2[i]
            den = 1.0 - 2.0 * kappa * inn + kappa * kappa * x2[i] * y2[j]
            aden = abs(den)
            if aden < 1e-15:
                aden = 1e-15
            sq = (ca * ca * x2[i] + 2.0 * ca * cb * inn
                  + cb * cb * y2[j])
            if sq < 0.0:
                sq = 0.0
            norm = math.sqrt(sq) / aden
            if kappa < -_KAPPA_ZERO_TOL:
                u = s * norm
                if u > _ARTANH_ARG_MAX:
                    u = _ARTANH_ARG_MAX
                elif u < -_ARTANH_ARG_MAX:
                    u = -_ARTANH_ARG_MAX
                dist = math.atanh(u) / s
            elif kappa > _KAPPA_ZERO_TOL:
                dist = math.atan(s * norm) / s
            else:
                dist = norm - kappa * norm ** 3 / 3.0
            out[i, j] = 2.0 * dist
    return out


def _loop_rowwise_dist(x, y, kappa):
    b, d = x.shape
    out = np.empty(b)
    if kappa < -_KAPPA_ZERO_TOL:
        s = math.sqrt(-kappa)
    elif kappa > _KAPPA_ZERO_TOL:
        s = math.sqrt(kappa)
    else:
        s = 0.0
    for i in range(b):
        inn = 0.0
        xx = 0.0
        yy = 0.0
        for t in range(d):
            inn -= x[i, t] * y[i, t]
            xx += x[i, t] * x[i, t]
            yy += y[i, t] * y[i, t]
        ca = 1.0 - 2.0 * kappa * inn - kappa * yy
        cb = 1.0 + kappa * xx
        den = 1.0 - 2.0 * kappa * inn + kappa * kappa * xx * yy
        aden = abs(den)
        if aden < 1e-15:
            aden = 1e-15
        sq = ca * ca * xx + 2.0 * ca * cb * inn + cb * cb * yy
        if sq < 0.0:
            sq = 0.0
        norm = math.sqrt(sq) / aden
        if kappa < -_KAPPA_ZERO_TOL:
            u = s * norm
            if u > _ARTANH_ARG_MAX:
                u = _ARTANH_ARG_MAX
            elif u < -_ARTANH_ARG_MAX:
                u = -_ARTANH_ARG_MAX
            dist = math.atanh(u) / s
        elif kappa > _KAPPA_ZERO_TOL:
            dist = math.atan(s * norm) / s
        else:
            dist = norm - kappa * norm ** 3 / 3.0
        out[i] = 2.0 * dist
    return out


def _loop_dist_fwd(a, b, kappa):
    n, d = a.shape
    out = np.empty(n)
    diff = np.empty((n, d))
    r = np.empty(n)
    f = np.empty(n)
    aux = np.empty(n)
    safe = np.empty(n)
    p = np.empty(n)
    alpha = np.empty(n)
    beta = np.empty(n)
    ca = np.empty(n)
    cb = np.empty(n)
    if kappa < -_KAPPA_ZERO_TOL:
        s = math.sqrt(-kappa + _EPS)
    elif kappa > _KAPPA_ZERO_TOL:
        s = math.sqrt(kappa + _EPS)
    else:
        s = 0.0
    for i in range(n):
        pp = 0.0
        aa = 0.0
        bb = 0.0
        for j in range(d):
            pp += a[i, j] * b[i, j]
            aa += a[i, j] * a[i, j]
            bb += b[i, j] * b[i, j]
        p[i] = pp
        alpha[i] = aa
        beta[i] = bb
        cai = 1.0 - 2.0 * kappa * pp - kappa * bb
        cbi = 1.0 + kappa * aa
        ca[i] = cai
        cb[i] = cbi
        den = 1.0 - 2.0 * kappa * pp + kappa * kappa * aa * bb
        if abs(den) < _EPS:
            den = den + _EPS
        safe[i] = den
        rr = 0.0
        for j in range(d):
            dv = (cai * a[i, j] + cbi * b[i, j]) / den
            diff[i, j] = dv
            rr += dv * dv
        ri = math.sqrt(rr + _EPS)
        r[i] = ri
        if kappa < -_KAPPA_ZERO_TOL:
            u = ri * s
            if u > _ARTANH_ARG_MAX:
                u = _ARTANH_ARG_MAX
            elif u < -_ARTANH_ARG_MAX:
                u = -_ARTANH_ARG_MAX
            at = math.atanh(u)
            aux[i] = at
            f[i] = at / s
        elif kappa > _KAPPA_ZERO_TOL:
            at = math.atan(ri * s)
            aux[i] = at
            f[i] = at / s
        else:
            aux[i] = ri
            f[i] = ri - kappa * ri ** 3 / 3.0
        out[i] = 2.0 * f[i]
    return out, diff, r, f, aux, safe, p, alpha, beta, ca, cb


def _loop_dist_bwd(grad, a, b, diff, r, f, aux, safe, p, alpha, beta,
                   ca, cb, kappa):
    n, d = a.shape
    g_a = np.empty((n, d))
    g_b = np.empty((n, d))
    grad_k = 0.0
    if kappa < -_KAPPA_ZERO_TOL:
        s = math.sqrt(-kappa + _EPS)
    elif kappa > _KAPPA_ZERO_TOL:
        s = math.sqrt(kappa + _EPS)
    else:
        s = 0.0
    for i in range(n):
        ri = r[i]
        ati = aux[i]
        if kappa < -_KAPPA_ZERO_TOL:
            u = ri * s
            inside = 1.0 if (u >= -_ARTANH_ARG_MAX) and \
                (u <= _ARTANH_ARG_MAX) else 0.0
            c = u
            if c > _ARTANH_ARG_MAX:
                c = _ARTANH_ARG_MAX
            elif c < -_ARTANH_ARG_MAX:
                c = -_ARTANH_ARG_MAX
            om = 1.0 - c * c
            if om < _EPS:
                om = _EPS
            dat_dc = 1.0 / om
            df_dr = dat_dc * inside
            df_dk = ((dat_dc * inside * ri * s - ati) / (s * s)) \
                * (-0.5 / s)
        elif kappa > _KAPPA_ZERO_TOL:
            u = ri * s
            dat_du = 1.0 / (1.0 + u * u)
            df_dr = dat_du
            df_dk = ((dat_du * ri * s - ati) / (s * s)) * (0.5 / s)
        else:
            df_dr = 1.0 - kappa * ri * ri
            df_dk = -(ri ** 3) / 3.0
        g_f = 2.0 * grad[i]
        g_r = g_f * df_dr
        grad_k += g_f * df_dk
        g_den_acc = 0.0
        g_ca_acc = 0.0
        g_cb_acc = 0.0
        for j in range(d):
            g_diff_j = g_r * diff[i, j] / ri
            g_num_j = g_diff_j / safe[i]
            g_den_acc -= g_diff_j * diff[i, j]
            g_ca_acc += g_num_j * a[i, j]
            g_cb_acc += g_num_j * b[i, j]
            g_a[i, j] = ca[i] * g_num_j
            g_b[i, j] = cb[i] * g_num_j
        g_den = g_den_acc / safe[i]
        g_p = -2.0 * kappa * (g_ca_acc + g_den)
        g_alpha = kappa * kappa * beta[i] * g_den + kappa * g_cb_acc
        g_beta = kappa * kappa * alpha[i] * g_den - kappa * g_ca_acc
        grad_k += (g_den * (-2.0 * p[i] + 2.0 * kappa * alpha[i] * beta[i])
                   + g_ca_acc * (-2.0 * p[i] - beta[i])
                   + g_cb_acc * alpha[i])
        for j in range(d):
            g_a[i, j] += g_p * b[i, j] + 2.0 * g_alpha * a[i, j]
            g_b[i, j] += g_p * a[i, j] + 2.0 * g_beta * b[i, j]
    return g_a, g_b, grad_k


# -- registry and mode management -------------------------------------------


@dataclasses.dataclass
class Kernel:
    """One registered primitive and its selectable implementations."""

    name: str
    numpy: Callable
    loop: Optional[Callable]
    compiled: Optional[Callable]


REGISTRY: Dict[str, Kernel] = {}

_ACTIVE_MODE = "numpy"
_DISPATCH: Dict[str, Callable] = {}


def register(name: str, numpy_impl: Callable,
             loop_impl: Optional[Callable] = None) -> None:
    """Register a primitive; jit-wrap its loop impl when numba exists."""
    compiled = None
    if HAVE_NUMBA and loop_impl is not None:
        compiled = _numba.njit(cache=True, fastmath=False)(loop_impl)
    REGISTRY[name] = Kernel(name, numpy_impl, loop_impl, compiled)
    _DISPATCH[name] = compiled if (_ACTIVE_MODE == "compiled"
                                   and compiled is not None) else numpy_impl


def resolve_mode(mode: str = "auto") -> str:
    """Validate a dial value and resolve ``"auto"`` for this host."""
    if mode not in KERNEL_MODES:
        raise ValueError("kernels mode must be one of %s, got %r"
                         % (", ".join(KERNEL_MODES), mode))
    if mode == "auto":
        return "compiled" if HAVE_NUMBA else "numpy"
    if mode == "compiled" and not HAVE_NUMBA:
        raise ValueError(
            "model.kernels='compiled' requested but numba is not "
            "installed; install the compiled extra "
            "(pip install -e .[compiled]) or use kernels='auto'/'numpy'")
    return mode


def set_mode(mode: str = "auto") -> str:
    """Switch the process-wide dispatch target; returns the resolved mode."""
    global _ACTIVE_MODE
    resolved = resolve_mode(mode)
    _ACTIVE_MODE = resolved
    for name, kern in REGISTRY.items():
        _DISPATCH[name] = (kern.compiled if resolved == "compiled"
                           else kern.numpy)
    return resolved


def get_mode() -> str:
    """The resolved active mode (``"numpy"`` or ``"compiled"``)."""
    return _ACTIVE_MODE


@contextlib.contextmanager
def use(mode: str):
    """Temporarily switch kernel mode (tests and benches)."""
    previous = _ACTIVE_MODE
    set_mode(mode)
    try:
        yield
    finally:
        set_mode(previous)


def impl(name: str) -> Callable:
    """The active implementation of a registered primitive."""
    return _DISPATCH[name]


def warmup() -> float:
    """First-call every compiled kernel on tiny inputs; returns seconds.

    JIT compilation happens on the first call per signature; benches
    call this once so steady-state timings exclude compile cost (which
    is reported separately).  No-op without numba.
    """
    if not HAVE_NUMBA:
        return 0.0
    start = time.perf_counter()
    v = np.array([[0.1, 0.2], [0.3, 0.05]])
    g = np.full_like(v, 0.5)
    grad1 = np.full(2, 0.5)
    for kappa in (-1.0, 0.0, 1.0):
        REGISTRY["tan_k"].compiled(v[0], kappa)
        REGISTRY["artan_k"].compiled(v[0], kappa)
        for kind in (KIND_TAN, KIND_ARTAN):
            _, r, f, aux = REGISTRY["radial_fwd"].compiled(v, kappa, kind)
            REGISTRY["radial_bwd"].compiled(g, v, r, f, aux, kappa, kind)
        REGISTRY["pairwise_mobius_norm"].compiled(v, v, kappa)
        REGISTRY["pairwise_dist"].compiled(v, v, kappa)
        REGISTRY["rowwise_dist"].compiled(v, v, kappa)
        fw = REGISTRY["dist_fwd"].compiled(v, v, kappa)
        REGISTRY["dist_bwd"].compiled(grad1, v, v, fw[1], fw[2], fw[3],
                                      fw[4], fw[5], fw[6], fw[7], fw[8],
                                      fw[9], fw[10], kappa)
    return time.perf_counter() - start


register("tan_k", _np_tan_k, _loop_tan_k)
register("artan_k", _np_artan_k, _loop_artan_k)
register("radial_fwd", _np_radial_fwd, _loop_radial_fwd)
register("radial_bwd", _np_radial_bwd, _loop_radial_bwd)
register("pairwise_mobius_norm", _np_pairwise_mobius_norm,
         _loop_pairwise_mobius_norm)
register("pairwise_dist", _np_pairwise_dist, _loop_pairwise_dist)
register("rowwise_dist", _np_rowwise_dist, _loop_rowwise_dist)
register("dist_fwd", _np_dist_fwd, _loop_dist_fwd)
register("dist_bwd", _np_dist_bwd, _loop_dist_bwd)

set_mode("auto")
