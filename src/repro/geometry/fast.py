"""Fused kernels for mixed-curvature geometry — inference *and* training.

Three families live here:

1. **Pure-numpy inference kernels.**  The MNN index builder (paper
   §IV-C-1) computes distances from every key node to every candidate
   node — far too many pairs to route through the autodiff tape.  These
   kernels evaluate the κ-stereographic geodesic distance between row
   sets ``X (B,d)`` and ``Y (N,d)`` without ever materialising the
   ``(B,N,d)`` Möbius-sum tensor: the norm of ``-x ⊕κ y`` expands into
   inner products, so only ``(B,N)`` scalars are formed.  This is the
   vectorised (SIMD-style) half of the paper's two-level parallelism;
   the data-parallel half lives in :mod:`repro.retrieval.mnn`.

2. **Fused differentiable kernels** (:func:`fused_expmap0`,
   :func:`fused_logmap0`, :func:`fused_dist`).  The training-side
   counterpart of the same idea: each evaluates a whole Table II
   operation chain (norm → curvature trig → scaling, or Möbius-add →
   norm → ``tan⁻¹_κ``) as **one tape node** with a hand-derived
   vector-Jacobian backward, instead of the ~10 micro-ops the composed
   :mod:`repro.geometry.stereographic` versions record.  Forward values
   and gradients — including the gradient with respect to a trainable
   κ, and every numerical guard (norm ε, clip masks, arctanh/denominator
   clamps) — replicate the composed chain exactly, which the
   encoder-plane tests verify term by term.  The composed micro-op
   versions remain in :mod:`repro.geometry.stereographic` as the
   reference implementation.

3. **No-tape forward mirrors** (:func:`expmap0_numpy`,
   :func:`logmap0_numpy`, :func:`mobius_add_numpy`,
   :func:`project_numpy`, :func:`matvec_numpy`).  Bit-exact numpy
   replicas of the *forward* halves of the encoder operation chain —
   same ε constants, same clip masks, same evaluation order — used by
   the full-graph offline inference path
   (``NodeEncoder.encode_from_plan_numpy``) where no gradient will
   ever be requested and even tape-free ``Tensor`` wrapping is pure
   overhead.  Because they mirror the tensor forwards operation by
   operation, the offline ``embed_all``/index-build embeddings are
   bit-comparable to what the training-side encoder produces on the
   same :class:`~repro.models.plan.EncodePlan`.

The actual array math lives in :mod:`repro.geometry.kernels`: every
public function here flattens its inputs to the registry's 2-D
float64 contract and dispatches to whichever implementation (pure
numpy or numba-compiled) the process-wide kernel mode selects.  The
functions in this module own the tape wiring (tensor wrapping, cached
VJP closures, ``_unbroadcast``), which stays in plain Python either
way — the MyGrad idiom of compiling only the sequential inner loop.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.ops import _unbroadcast
from repro.autodiff.tensor import Tensor, ensure_tensor

from repro.geometry import kernels as _kernels
from repro.geometry.kernels import KIND_ARTAN, KIND_TAN

# The clamp/ε constants are shared with the composed reference: the fused
# backward closures replicate its gradients only while they stay identical.
from repro.geometry.stereographic import (
    _ARTANH_ARG_MAX,
    _EPS,
    _KAPPA_ZERO_TOL,
    _TAN_ARG_MAX,
    _TANH_ARG_MAX,
)

__all__ = [
    "artan_k_numpy", "tan_k_numpy", "pairwise_mobius_norm",
    "pairwise_dist", "rowwise_dist", "fused_expmap0", "fused_logmap0",
    "fused_dist", "expmap0_numpy", "logmap0_numpy", "mobius_add_numpy",
    "project_numpy", "matvec_numpy",
]


def _as_2d(x) -> np.ndarray:
    """Float64 view of ``x`` flattened to the registry's ``(n, d)`` shape."""
    x = np.asarray(x, dtype=np.float64)
    return np.ascontiguousarray(x).reshape(-1, x.shape[-1])


def artan_k_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """Scalar-curvature ``tan⁻¹_κ`` on plain arrays."""
    x = np.asarray(x, dtype=np.float64)
    flat = np.ascontiguousarray(x).reshape(-1)
    return _kernels.impl("artan_k")(flat, float(kappa)).reshape(x.shape)


def tan_k_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """Scalar-curvature ``tan_κ`` on plain arrays."""
    x = np.asarray(x, dtype=np.float64)
    flat = np.ascontiguousarray(x).reshape(-1)
    return _kernels.impl("tan_k")(flat, float(kappa)).reshape(x.shape)


def pairwise_mobius_norm(x: np.ndarray, y: np.ndarray,
                         kappa: float) -> np.ndarray:
    """``‖-x_i ⊕κ y_j‖`` for all (i, j) pairs, shape ``(B, N)``.

    Expansion: with ``a = -x``, the Möbius sum is
    ``(A·a + B·y) / D`` where ``A = 1 - 2κ⟨a,y⟩ - κ‖y‖²``,
    ``B = 1 + κ‖a‖²`` and ``D = 1 - 2κ⟨a,y⟩ + κ²‖a‖²‖y‖²``; hence
    ``‖·‖² = (A²‖a‖² + 2AB⟨a,y⟩ + B²‖y‖²) / D²``.
    """
    return _kernels.impl("pairwise_mobius_norm")(
        _as_2d(x), _as_2d(y), float(kappa))


def pairwise_dist(x: np.ndarray, y: np.ndarray, kappa: float,
                  block_rows: int = 0) -> np.ndarray:
    """Geodesic distance matrix ``d_κ(x_i, y_j)``, shape ``(B, N)``.

    ``block_rows > 0`` streams the query rows in blocks of that size —
    the blocked-merge idiom of ``ExactBackend`` — so the ``(B, N)``
    scalar intermediates of the norm expansion are bounded at
    ``(block_rows, N)`` regardless of batch size.  Each row's result is
    independent of the blocking (equal up to the shape-dependent
    accumulation order of the numpy path's BLAS inner products).
    """
    x = _as_2d(x)
    y = _as_2d(y)
    fn = _kernels.impl("pairwise_dist")
    kappa = float(kappa)
    if block_rows and 0 < block_rows < x.shape[0]:
        out = np.empty((x.shape[0], y.shape[0]))
        for start in range(0, x.shape[0], block_rows):
            stop = min(start + block_rows, x.shape[0])
            out[start:stop] = fn(x[start:stop], y, kappa)
        return out
    return fn(x, y, kappa)


def rowwise_dist(x: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """Aligned row-by-row distance ``d_κ(x_i, y_i)``, shape ``(B,)``."""
    return _kernels.impl("rowwise_dist")(_as_2d(x), _as_2d(y), float(kappa))


# -- fused differentiable kernels -----------------------------------------
#
# Tape wiring only: the forward/backward array math lives behind the
# kernel registry (``radial_fwd``/``radial_bwd``, ``dist_fwd``/
# ``dist_bwd``).  The forward caches the per-row trig value and every
# intermediate the hand-derived VJP needs, so the backward closure
# re-evaluates no tanh/tan/arctanh/arctan — and under ``no_grad`` the
# derivative arithmetic never runs at all.


def _tan_k_vjp(r: np.ndarray, kappa: float):
    """``tan_κ(r)`` with ∂/∂r and ∂/∂κ, mirroring ``stereographic.tan_k``.

    Compatibility wrapper over the split fwd/bwd helpers in
    :mod:`repro.geometry.kernels`; the fused tape ops call those
    directly so the forward trig value is computed once and cached.
    """
    f, aux = _kernels.tan_k_fwd_numpy(r, kappa)
    df_dr, df_dk = _kernels.tan_k_bwd_numpy(r, aux, kappa)
    return f, df_dr, df_dk


def _artan_k_vjp(r: np.ndarray, kappa: float):
    """``tan⁻¹_κ(r)`` with ∂/∂r and ∂/∂κ, mirroring ``stereographic.artan_k``.

    Compatibility wrapper over the split fwd/bwd helpers in
    :mod:`repro.geometry.kernels`.
    """
    f, aux = _kernels.artan_k_fwd_numpy(r, kappa)
    df_dr, df_dk = _kernels.artan_k_bwd_numpy(r, aux, kappa)
    return f, df_dr, df_dk


def _radial_map(v, kappa, kind) -> Tensor:
    """Shared fused body of ``expmap0``/``logmap0``: ``f(‖v‖)·v/‖v‖``.

    One tape node replacing the composed chain norm → trig → rescale
    (sum, sqrt, clip, tanh/arctanh, two divisions, a multiply — each a
    node of its own in the micro-op version).
    """
    v = ensure_tensor(v)
    kappa = ensure_tensor(kappa)
    kval = float(kappa.data)
    data = v.data
    shape = data.shape
    v2 = _as_2d(data)
    out2, r, f, aux = _kernels.impl("radial_fwd")(v2, kval, kind)
    out_data = out2.reshape(shape)

    def backward(grad):
        g2 = np.ascontiguousarray(grad).reshape(v2.shape)
        gv2, grad_k = _kernels.impl("radial_bwd")(g2, v2, r, f, aux,
                                                  kval, kind)
        return (gv2.reshape(shape),
                np.asarray(grad_k).reshape(kappa.shape))

    return Tensor._make(out_data, (v, kappa), backward)


def fused_expmap0(v, kappa) -> Tensor:
    """Fused ``exp^κ_0(v) = tan_κ(‖v‖)·v/‖v‖`` as a single tape node."""
    return _radial_map(v, kappa, KIND_TAN)


def fused_logmap0(x, kappa) -> Tensor:
    """Fused ``log^κ_0(x) = tan⁻¹_κ(‖x‖)·x/‖x‖`` as a single tape node."""
    return _radial_map(x, kappa, KIND_ARTAN)


def fused_dist(x, y, kappa) -> Tensor:
    """Fused geodesic distance ``d_κ(x,y) = 2·tan⁻¹_κ(‖-x ⊕κ y‖)``.

    Collapses the Möbius-addition / norm / ``tan⁻¹_κ`` chain — about a
    dozen tape nodes in the composed version — into one node with a
    hand-derived backward for ``x``, ``y`` *and* the (possibly
    trainable) curvature.  Output keeps the reduced feature axis as
    size 1, matching ``stereographic.dist_k``.
    """
    x = ensure_tensor(x)
    y = ensure_tensor(y)
    kappa = ensure_tensor(kappa)
    kval = float(kappa.data)
    a, b = np.broadcast_arrays(-x.data, y.data)
    shape = a.shape
    a2 = _as_2d(a)
    b2 = _as_2d(b)
    (out, diff, r, f, aux, safe, p, alpha,
     beta, ca, cb) = _kernels.impl("dist_fwd")(a2, b2, kval)
    out_data = out.reshape(shape[:-1] + (1,))

    def backward(grad):
        g = np.ascontiguousarray(grad).reshape(-1)
        g_a, g_b, grad_k = _kernels.impl("dist_bwd")(
            g, a2, b2, diff, r, f, aux, safe, p, alpha, beta, ca, cb,
            kval)
        return (_unbroadcast(-g_a.reshape(shape), x.shape),
                _unbroadcast(g_b.reshape(shape), y.shape),
                np.asarray(grad_k).reshape(kappa.shape))

    return Tensor._make(out_data, (x, y, kappa), backward)


# -- no-tape forward mirrors of the encoder chain ---------------------------
#
# Each helper replicates the *forward* computation of its tensor twin
# (`fused_expmap0`/`fused_logmap0`, `stereographic.mobius_add`/`project`)
# operation by operation — identical ε constants, identical clip masks,
# identical evaluation order — so outputs are bit-equal to the tensor
# path on float64.  The encoder-plane tests hold them to exact parity.
# expmap0/logmap0 share the tensor path's ``radial_fwd`` kernel, so the
# mirrors track whatever implementation the kernel mode selects.


def _tan_k_forward(r: np.ndarray, kappa: float) -> np.ndarray:
    """Forward half of :func:`_tan_k_vjp` (``tan_κ`` with fused ε/clips)."""
    return _kernels.tan_k_fwd_numpy(r, kappa)[0]


def _artan_k_forward(r: np.ndarray, kappa: float) -> np.ndarray:
    """Forward half of :func:`_artan_k_vjp` (``tan⁻¹_κ`` with fused ε/clips)."""
    return _kernels.artan_k_fwd_numpy(r, kappa)[0]


def expmap0_numpy(v: np.ndarray, kappa: float) -> np.ndarray:
    """No-tape mirror of :func:`fused_expmap0`: ``tan_κ(‖v‖)·v/‖v‖``."""
    v = np.asarray(v, dtype=np.float64)
    out2 = _kernels.impl("radial_fwd")(_as_2d(v), float(kappa), KIND_TAN)[0]
    return out2.reshape(v.shape)


def logmap0_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """No-tape mirror of :func:`fused_logmap0`: ``tan⁻¹_κ(‖x‖)·x/‖x‖``."""
    x = np.asarray(x, dtype=np.float64)
    out2 = _kernels.impl("radial_fwd")(_as_2d(x), float(kappa), KIND_ARTAN)[0]
    return out2.reshape(x.shape)


def mobius_add_numpy(x: np.ndarray, y: np.ndarray,
                     kappa: float) -> np.ndarray:
    """No-tape mirror of ``stereographic.mobius_add`` (same ε guard)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    xy = np.sum(x * y, axis=-1, keepdims=True)
    x2 = np.sum(x * x, axis=-1, keepdims=True)
    y2 = np.sum(y * y, axis=-1, keepdims=True)
    numerator = ((1.0 - 2.0 * kappa * xy - kappa * y2) * x
                 + (1.0 + kappa * x2) * y)
    denominator = 1.0 - 2.0 * kappa * xy + kappa * kappa * x2 * y2
    safe = np.where(np.abs(denominator) < _EPS, denominator + _EPS,
                    denominator)
    return numerator / safe


def project_numpy(x: np.ndarray, kappa: float,
                  boundary_eps: float = 4e-3) -> np.ndarray:
    """No-tape mirror of ``stereographic.project`` (hyperbolic clip)."""
    x = np.asarray(x, dtype=np.float64)
    if not kappa < -_KAPPA_ZERO_TOL:
        return x
    scale = np.sqrt(abs(kappa) + _EPS)
    max_norm = (1.0 - boundary_eps) / scale
    x_norm = np.sqrt(np.sum(x * x, axis=-1, keepdims=True) + _EPS)
    over = x_norm > max_norm
    return np.where(over, x * (max_norm / x_norm), x)


def matvec_numpy(weight: np.ndarray, x: np.ndarray,
                 kappa: float) -> np.ndarray:
    """No-tape Möbius matvec ``W ⊗κ x`` (fused log → matmul → exp)."""
    return expmap0_numpy(logmap0_numpy(x, kappa) @ weight, kappa)
