"""Pure-numpy inference kernels for mixed-curvature distances.

The MNN index builder (paper §IV-C-1) computes distances from every
key node to every candidate node — far too many pairs to route through
the autodiff tape.  These kernels evaluate the κ-stereographic geodesic
distance between row sets ``X (B,d)`` and ``Y (N,d)`` without ever
materialising the ``(B,N,d)`` Möbius-sum tensor: the norm of
``-x ⊕κ y`` expands into inner products, so only ``(B,N)`` scalars are
formed.  This is the vectorised (SIMD-style) half of the paper's
two-level parallelism; the data-parallel half lives in
:mod:`repro.retrieval.mnn`.
"""

from __future__ import annotations

import numpy as np

_KAPPA_ZERO_TOL = 1e-5
_ARTANH_ARG_MAX = 1.0 - 1e-7


def artan_k_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """Scalar-curvature ``tan⁻¹_κ`` on plain arrays."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa)
        return np.arctanh(np.clip(s * x, -_ARTANH_ARG_MAX, _ARTANH_ARG_MAX)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa)
        return np.arctan(s * x) / s
    return x - kappa * x ** 3 / 3.0


def tan_k_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """Scalar-curvature ``tan_κ`` on plain arrays."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa)
        return np.tanh(np.clip(s * x, -15.0, 15.0)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa)
        return np.tan(np.clip(s * x, -1.51, 1.51)) / s
    return x + kappa * x ** 3 / 3.0


def pairwise_mobius_norm(x: np.ndarray, y: np.ndarray,
                         kappa: float) -> np.ndarray:
    """``‖-x_i ⊕κ y_j‖`` for all (i, j) pairs, shape ``(B, N)``.

    Expansion: with ``a = -x``, the Möbius sum is
    ``(A·a + B·y) / D`` where ``A = 1 - 2κ⟨a,y⟩ - κ‖y‖²``,
    ``B = 1 + κ‖a‖²`` and ``D = 1 - 2κ⟨a,y⟩ + κ²‖a‖²‖y‖²``; hence
    ``‖·‖² = (A²‖a‖² + 2AB⟨a,y⟩ + B²‖y‖²) / D²``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    inner = -(x @ y.T)                      # ⟨-x, y⟩, (B, N)
    x2 = np.sum(x * x, axis=1)[:, None]     # ‖-x‖² = ‖x‖², (B, 1)
    y2 = np.sum(y * y, axis=1)[None, :]     # (1, N)
    coeff_a = 1.0 - 2.0 * kappa * inner - kappa * y2
    coeff_b = 1.0 + kappa * x2
    denom = 1.0 - 2.0 * kappa * inner + kappa * kappa * x2 * y2
    denom = np.where(np.abs(denom) < 1e-15, 1e-15, denom)
    squared = (coeff_a * coeff_a * x2 + 2.0 * coeff_a * coeff_b * inner
               + coeff_b * coeff_b * y2)
    squared = np.maximum(squared, 0.0)
    return np.sqrt(squared) / np.abs(denom)


def pairwise_dist(x: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """Geodesic distance matrix ``d_κ(x_i, y_j)``, shape ``(B, N)``."""
    return 2.0 * artan_k_numpy(pairwise_mobius_norm(x, y, kappa), kappa)


def rowwise_dist(x: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """Aligned row-by-row distance ``d_κ(x_i, y_i)``, shape ``(B,)``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    inner = -np.sum(x * y, axis=1)
    x2 = np.sum(x * x, axis=1)
    y2 = np.sum(y * y, axis=1)
    coeff_a = 1.0 - 2.0 * kappa * inner - kappa * y2
    coeff_b = 1.0 + kappa * x2
    denom = 1.0 - 2.0 * kappa * inner + kappa * kappa * x2 * y2
    denom = np.where(np.abs(denom) < 1e-15, 1e-15, denom)
    squared = np.maximum(coeff_a * coeff_a * x2
                         + 2.0 * coeff_a * coeff_b * inner
                         + coeff_b * coeff_b * y2, 0.0)
    norm = np.sqrt(squared) / np.abs(denom)
    return 2.0 * artan_k_numpy(norm, kappa)
