"""Fused kernels for mixed-curvature geometry — inference *and* training.

Three families live here:

1. **Pure-numpy inference kernels.**  The MNN index builder (paper
   §IV-C-1) computes distances from every key node to every candidate
   node — far too many pairs to route through the autodiff tape.  These
   kernels evaluate the κ-stereographic geodesic distance between row
   sets ``X (B,d)`` and ``Y (N,d)`` without ever materialising the
   ``(B,N,d)`` Möbius-sum tensor: the norm of ``-x ⊕κ y`` expands into
   inner products, so only ``(B,N)`` scalars are formed.  This is the
   vectorised (SIMD-style) half of the paper's two-level parallelism;
   the data-parallel half lives in :mod:`repro.retrieval.mnn`.

2. **Fused differentiable kernels** (:func:`fused_expmap0`,
   :func:`fused_logmap0`, :func:`fused_dist`).  The training-side
   counterpart of the same idea: each evaluates a whole Table II
   operation chain (norm → curvature trig → scaling, or Möbius-add →
   norm → ``tan⁻¹_κ``) as **one tape node** with a hand-derived
   vector-Jacobian backward, instead of the ~10 micro-ops the composed
   :mod:`repro.geometry.stereographic` versions record.  Forward values
   and gradients — including the gradient with respect to a trainable
   κ, and every numerical guard (norm ε, clip masks, arctanh/denominator
   clamps) — replicate the composed chain exactly, which the
   encoder-plane tests verify term by term.  The composed micro-op
   versions remain in :mod:`repro.geometry.stereographic` as the
   reference implementation.

3. **No-tape forward mirrors** (:func:`expmap0_numpy`,
   :func:`logmap0_numpy`, :func:`mobius_add_numpy`,
   :func:`project_numpy`, :func:`matvec_numpy`).  Bit-exact numpy
   replicas of the *forward* halves of the encoder operation chain —
   same ε constants, same clip masks, same evaluation order — used by
   the full-graph offline inference path
   (``NodeEncoder.encode_from_plan_numpy``) where no gradient will
   ever be requested and even tape-free ``Tensor`` wrapping is pure
   overhead.  Because they mirror the tensor forwards operation by
   operation, the offline ``embed_all``/index-build embeddings are
   bit-comparable to what the training-side encoder produces on the
   same :class:`~repro.models.plan.EncodePlan`.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.ops import _unbroadcast
from repro.autodiff.tensor import Tensor, ensure_tensor

# The clamp/ε constants are shared with the composed reference: the fused
# backward closures replicate its gradients only while they stay identical.
from repro.geometry.stereographic import (
    _ARTANH_ARG_MAX,
    _EPS,
    _KAPPA_ZERO_TOL,
    _TAN_ARG_MAX,
    _TANH_ARG_MAX,
)


def artan_k_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """Scalar-curvature ``tan⁻¹_κ`` on plain arrays."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa)
        return np.arctanh(np.clip(s * x, -_ARTANH_ARG_MAX, _ARTANH_ARG_MAX)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa)
        return np.arctan(s * x) / s
    return x - kappa * x ** 3 / 3.0


def tan_k_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """Scalar-curvature ``tan_κ`` on plain arrays."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa)
        return np.tanh(np.clip(s * x, -15.0, 15.0)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa)
        return np.tan(np.clip(s * x, -1.51, 1.51)) / s
    return x + kappa * x ** 3 / 3.0


def pairwise_mobius_norm(x: np.ndarray, y: np.ndarray,
                         kappa: float) -> np.ndarray:
    """``‖-x_i ⊕κ y_j‖`` for all (i, j) pairs, shape ``(B, N)``.

    Expansion: with ``a = -x``, the Möbius sum is
    ``(A·a + B·y) / D`` where ``A = 1 - 2κ⟨a,y⟩ - κ‖y‖²``,
    ``B = 1 + κ‖a‖²`` and ``D = 1 - 2κ⟨a,y⟩ + κ²‖a‖²‖y‖²``; hence
    ``‖·‖² = (A²‖a‖² + 2AB⟨a,y⟩ + B²‖y‖²) / D²``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    inner = -(x @ y.T)                      # ⟨-x, y⟩, (B, N)
    x2 = np.sum(x * x, axis=1)[:, None]     # ‖-x‖² = ‖x‖², (B, 1)
    y2 = np.sum(y * y, axis=1)[None, :]     # (1, N)
    coeff_a = 1.0 - 2.0 * kappa * inner - kappa * y2
    coeff_b = 1.0 + kappa * x2
    denom = 1.0 - 2.0 * kappa * inner + kappa * kappa * x2 * y2
    denom = np.where(np.abs(denom) < 1e-15, 1e-15, denom)
    squared = (coeff_a * coeff_a * x2 + 2.0 * coeff_a * coeff_b * inner
               + coeff_b * coeff_b * y2)
    squared = np.maximum(squared, 0.0)
    return np.sqrt(squared) / np.abs(denom)


def pairwise_dist(x: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """Geodesic distance matrix ``d_κ(x_i, y_j)``, shape ``(B, N)``."""
    return 2.0 * artan_k_numpy(pairwise_mobius_norm(x, y, kappa), kappa)


# -- fused differentiable kernels -----------------------------------------
#
# Conventions shared by the value-and-derivative helpers below: ``r`` is a
# strictly positive norm of shape ``(..., 1)``; each helper returns
# ``(f, df_dr, df_dkappa)`` where the derivatives replicate what the
# composed autodiff chain in :mod:`repro.geometry.stereographic` would
# accumulate (same ε constants, same clip masks, same ``max`` clamps).


def _tan_k_vjp(r: np.ndarray, kappa: float):
    """``tan_κ(r)`` with ∂/∂r and ∂/∂κ, mirroring ``stereographic.tan_k``."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        u = r * s
        inside = (u >= -_TANH_ARG_MAX) & (u <= _TANH_ARG_MAX)
        th = np.tanh(np.clip(u, -_TANH_ARG_MAX, _TANH_ARG_MAX))
        f = th / s
        sech2 = (1.0 - th * th) * inside
        df_dr = sech2
        # d scale / dκ through abs+sqrt: sign(κ) · 0.5 / s
        ds_dk = -0.5 / s
        df_ds = (sech2 * r * s - th) / (s * s)
        return f, df_dr, df_ds * ds_dk
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        u = r * s
        inside = (u >= -_TAN_ARG_MAX) & (u <= _TAN_ARG_MAX)
        tn = np.tan(np.clip(u, -_TAN_ARG_MAX, _TAN_ARG_MAX))
        f = tn / s
        sec2 = (1.0 + tn * tn) * inside
        df_dr = sec2
        ds_dk = 0.5 / s
        df_ds = (sec2 * r * s - tn) / (s * s)
        return f, df_dr, df_ds * ds_dk
    # Taylor branch: r + κ·r³/3 (shared third-order expansion)
    return (r + kappa * r ** 3 / 3.0,
            1.0 + kappa * r * r,
            r ** 3 / 3.0)


def _artan_k_vjp(r: np.ndarray, kappa: float):
    """``tan⁻¹_κ(r)`` with ∂/∂r and ∂/∂κ, mirroring ``stereographic.artan_k``."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        u = r * s
        inside = (u >= -_ARTANH_ARG_MAX) & (u <= _ARTANH_ARG_MAX)
        c = np.clip(u, -_ARTANH_ARG_MAX, _ARTANH_ARG_MAX)
        at = np.arctanh(c)
        # ops.arctanh guards 1-c² with the same clamp
        dat_dc = 1.0 / np.maximum(1.0 - c * c, _EPS)
        f = at / s
        df_dr = dat_dc * inside
        ds_dk = -0.5 / s
        df_ds = (dat_dc * inside * r * s - at) / (s * s)
        return f, df_dr, df_ds * ds_dk
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        u = r * s
        at = np.arctan(u)
        dat_du = 1.0 / (1.0 + u * u)
        f = at / s
        df_dr = dat_du
        ds_dk = 0.5 / s
        df_ds = (dat_du * r * s - at) / (s * s)
        return f, df_dr, df_ds * ds_dk
    return (r - kappa * r ** 3 / 3.0,
            1.0 - kappa * r * r,
            -(r ** 3) / 3.0)


def _radial_map(v, kappa, vjp) -> Tensor:
    """Shared fused body of ``expmap0``/``logmap0``: ``f(‖v‖)·v/‖v‖``.

    One tape node replacing the composed chain norm → trig → rescale
    (sum, sqrt, clip, tanh/arctanh, two divisions, a multiply — each a
    node of its own in the micro-op version).
    """
    v = ensure_tensor(v)
    kappa = ensure_tensor(kappa)
    kval = float(kappa.data)
    data = v.data
    r = np.sqrt(np.sum(data * data, axis=-1, keepdims=True) + _EPS)
    f, df_dr, df_dk = vjp(r, kval)
    out_data = data * (f / r)

    def backward(grad):
        gv_inner = np.sum(grad * data, axis=-1, keepdims=True)
        grad_v = grad * (f / r) + data * gv_inner * (df_dr * r - f) / r ** 3
        grad_k = np.sum(gv_inner / r * df_dk)
        return (grad_v, np.asarray(grad_k).reshape(kappa.shape))

    return Tensor._make(out_data, (v, kappa), backward)


def fused_expmap0(v, kappa) -> Tensor:
    """Fused ``exp^κ_0(v) = tan_κ(‖v‖)·v/‖v‖`` as a single tape node."""
    return _radial_map(v, kappa, _tan_k_vjp)


def fused_logmap0(x, kappa) -> Tensor:
    """Fused ``log^κ_0(x) = tan⁻¹_κ(‖x‖)·x/‖x‖`` as a single tape node."""
    return _radial_map(x, kappa, _artan_k_vjp)


def fused_dist(x, y, kappa) -> Tensor:
    """Fused geodesic distance ``d_κ(x,y) = 2·tan⁻¹_κ(‖-x ⊕κ y‖)``.

    Collapses the Möbius-addition / norm / ``tan⁻¹_κ`` chain — about a
    dozen tape nodes in the composed version — into one node with a
    hand-derived backward for ``x``, ``y`` *and* the (possibly
    trainable) curvature.  Output keeps the reduced feature axis as
    size 1, matching ``stereographic.dist_k``.
    """
    x = ensure_tensor(x)
    y = ensure_tensor(y)
    kappa = ensure_tensor(kappa)
    kval = float(kappa.data)
    a, b = np.broadcast_arrays(-x.data, y.data)
    p = np.sum(a * b, axis=-1, keepdims=True)
    alpha = np.sum(a * a, axis=-1, keepdims=True)
    beta = np.sum(b * b, axis=-1, keepdims=True)
    coeff_a = 1.0 - 2.0 * kval * p - kval * beta
    coeff_b = 1.0 + kval * alpha
    den = 1.0 - 2.0 * kval * p + kval * kval * alpha * beta
    safe = np.where(np.abs(den) < _EPS, den + _EPS, den)
    num = coeff_a * a + coeff_b * b
    diff = num / safe
    r = np.sqrt(np.sum(diff * diff, axis=-1, keepdims=True) + _EPS)
    f, df_dr, df_dk = _artan_k_vjp(r, kval)
    out_data = 2.0 * f

    def backward(grad):
        g_f = 2.0 * grad
        g_r = g_f * df_dr
        grad_k = np.sum(g_f * df_dk)
        g_diff = g_r * diff / r
        g_num = g_diff / safe
        g_den = -np.sum(g_diff * diff, axis=-1, keepdims=True) / safe
        g_ca = np.sum(g_num * a, axis=-1, keepdims=True)
        g_cb = np.sum(g_num * b, axis=-1, keepdims=True)
        g_a = coeff_a * g_num
        g_b = coeff_b * g_num
        g_p = -2.0 * kval * (g_ca + g_den)
        g_alpha = kval * kval * beta * g_den + kval * g_cb
        g_beta = kval * kval * alpha * g_den - kval * g_ca
        grad_k += np.sum(g_den * (-2.0 * p + 2.0 * kval * alpha * beta)
                         + g_ca * (-2.0 * p - beta) + g_cb * alpha)
        g_a = g_a + g_p * b + 2.0 * g_alpha * a
        g_b = g_b + g_p * a + 2.0 * g_beta * b
        return (_unbroadcast(-g_a, x.shape),
                _unbroadcast(g_b, y.shape),
                np.asarray(grad_k).reshape(kappa.shape))

    return Tensor._make(out_data, (x, y, kappa), backward)


# -- no-tape forward mirrors of the encoder chain ---------------------------
#
# Each helper replicates the *forward* computation of its tensor twin
# (`fused_expmap0`/`fused_logmap0`, `stereographic.mobius_add`/`project`)
# operation by operation — identical ε constants, identical clip masks,
# identical evaluation order — so outputs are bit-equal to the tensor
# path on float64.  The encoder-plane tests hold them to exact parity.


def _tan_k_forward(r: np.ndarray, kappa: float) -> np.ndarray:
    """Forward half of :func:`_tan_k_vjp` (``tan_κ`` with fused ε/clips)."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        return np.tanh(np.clip(r * s, -_TANH_ARG_MAX, _TANH_ARG_MAX)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        return np.tan(np.clip(r * s, -_TAN_ARG_MAX, _TAN_ARG_MAX)) / s
    return r + kappa * r ** 3 / 3.0


def _artan_k_forward(r: np.ndarray, kappa: float) -> np.ndarray:
    """Forward half of :func:`_artan_k_vjp` (``tan⁻¹_κ`` with fused ε/clips)."""
    if kappa < -_KAPPA_ZERO_TOL:
        s = np.sqrt(-kappa + _EPS)
        return np.arctanh(np.clip(r * s, -_ARTANH_ARG_MAX,
                                  _ARTANH_ARG_MAX)) / s
    if kappa > _KAPPA_ZERO_TOL:
        s = np.sqrt(kappa + _EPS)
        return np.arctan(r * s) / s
    return r - kappa * r ** 3 / 3.0


def expmap0_numpy(v: np.ndarray, kappa: float) -> np.ndarray:
    """No-tape mirror of :func:`fused_expmap0`: ``tan_κ(‖v‖)·v/‖v‖``."""
    v = np.asarray(v, dtype=np.float64)
    r = np.sqrt(np.sum(v * v, axis=-1, keepdims=True) + _EPS)
    return v * (_tan_k_forward(r, kappa) / r)


def logmap0_numpy(x: np.ndarray, kappa: float) -> np.ndarray:
    """No-tape mirror of :func:`fused_logmap0`: ``tan⁻¹_κ(‖x‖)·x/‖x‖``."""
    x = np.asarray(x, dtype=np.float64)
    r = np.sqrt(np.sum(x * x, axis=-1, keepdims=True) + _EPS)
    return x * (_artan_k_forward(r, kappa) / r)


def mobius_add_numpy(x: np.ndarray, y: np.ndarray,
                     kappa: float) -> np.ndarray:
    """No-tape mirror of ``stereographic.mobius_add`` (same ε guard)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    xy = np.sum(x * y, axis=-1, keepdims=True)
    x2 = np.sum(x * x, axis=-1, keepdims=True)
    y2 = np.sum(y * y, axis=-1, keepdims=True)
    numerator = ((1.0 - 2.0 * kappa * xy - kappa * y2) * x
                 + (1.0 + kappa * x2) * y)
    denominator = 1.0 - 2.0 * kappa * xy + kappa * kappa * x2 * y2
    safe = np.where(np.abs(denominator) < _EPS, denominator + _EPS,
                    denominator)
    return numerator / safe


def project_numpy(x: np.ndarray, kappa: float,
                  boundary_eps: float = 4e-3) -> np.ndarray:
    """No-tape mirror of ``stereographic.project`` (hyperbolic clip)."""
    x = np.asarray(x, dtype=np.float64)
    if not kappa < -_KAPPA_ZERO_TOL:
        return x
    scale = np.sqrt(abs(kappa) + _EPS)
    max_norm = (1.0 - boundary_eps) / scale
    x_norm = np.sqrt(np.sum(x * x, axis=-1, keepdims=True) + _EPS)
    over = x_norm > max_norm
    return np.where(over, x * (max_norm / x_norm), x)


def matvec_numpy(weight: np.ndarray, x: np.ndarray,
                 kappa: float) -> np.ndarray:
    """No-tape Möbius matvec ``W ⊗κ x`` (fused log → matmul → exp)."""
    return expmap0_numpy(logmap0_numpy(x, kappa) @ weight, kappa)


def rowwise_dist(x: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """Aligned row-by-row distance ``d_κ(x_i, y_i)``, shape ``(B,)``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    inner = -np.sum(x * y, axis=1)
    x2 = np.sum(x * x, axis=1)
    y2 = np.sum(y * y, axis=1)
    coeff_a = 1.0 - 2.0 * kappa * inner - kappa * y2
    coeff_b = 1.0 + kappa * x2
    denom = 1.0 - 2.0 * kappa * inner + kappa * kappa * x2 * y2
    denom = np.where(np.abs(denom) < 1e-15, 1e-15, denom)
    squared = np.maximum(coeff_a * coeff_a * x2
                         + 2.0 * coeff_a * coeff_b * inner
                         + coeff_b * coeff_b * y2, 0.0)
    norm = np.sqrt(squared) / np.abs(denom)
    return 2.0 * artan_k_numpy(norm, kappa)
