"""Seed-deterministic fault injection (the chaos harness).

A system that claims to degrade rather than die has to be *driven*
through its failure paths, repeatably.  This module provides the
failure points the rest of the codebase is instrumented with:

- :func:`fault_point` — called at named sites on production code paths
  (``"shard.search"`` in :class:`~repro.retrieval.backend.ShardedBackend`,
  ``"engine.slice"`` in :class:`~repro.serving.engine.ServingEngine`,
  ``"io.atomic_write"`` in the atomic-write helpers,
  ``"artifacts.publish"`` in the generation publish step,
  ``"prefetch.worker"`` / ``"prefetch.worker.start"`` in the
  :class:`~repro.training.prefetch.PlanProducer` workers).  A site call
  is a cheap no-op until a matching :class:`FaultSpec` is installed.
- :class:`FaultSpec` — one injectable failure: *where* (site plus
  optional context equality ``match``), *when* (``after`` warm-up hits,
  ``rate`` firing probability, ``max_fires`` budget) and *what*
  (``mode``):

  ========= ==========================================================
  mode      effect at the fault point
  ========= ==========================================================
  raise     raise :class:`InjectedFault`
  hang      sleep ``delay`` seconds, then raise :class:`InjectedTimeout`
            (a bounded stand-in for a hung dependency: callers with a
            real timeout see the timeout first, callers without one
            still return instead of deadlocking the test)
  slow      sleep ``delay`` seconds, then continue normally
  torn      raise :class:`InjectedFault` flagged ``torn=True`` — the
            atomic-write helpers additionally truncate the staged temp
            file, simulating a crash mid-write
  kill      ``os._exit(17)`` — process dies without cleanup (worker
            crash simulation; only honoured at ``prefetch.*`` sites)
  ========= ==========================================================

- a process-global :class:`FaultInjector` with :func:`install` /
  :func:`reset`; determinism comes from a per-spec
  ``default_rng(SeedSequence(entropy=(seed, site)))`` stream, so a
  given plan fires at the same hit indices on every run.

Specs are plain data (``to_dict`` / ``from_dict``) so a fault plan can
ride through pipeline config (``faults.specs``) and be re-installed
inside spawned prefetch workers.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: Modes a spec may request, and the exit code ``kill`` dies with.
MODES = ("raise", "hang", "slow", "torn", "kill")
KILL_EXIT_CODE = 17


class InjectedFault(RuntimeError):
    """An injected failure fired at ``site``."""

    def __init__(self, site: str, mode: str = "raise",
                 context: Optional[Dict[str, Any]] = None):
        self.site = site
        self.mode = mode
        self.context = dict(context or {})
        self.torn = mode == "torn"
        detail = ", ".join("%s=%r" % kv for kv in sorted(self.context.items()))
        super().__init__("injected %s fault at %r%s"
                         % (mode, site, " (%s)" % detail if detail else ""))


class InjectedTimeout(InjectedFault):
    """A ``hang``-mode fault: the dependency never answered in time."""

    def __init__(self, site: str, context: Optional[Dict[str, Any]] = None):
        super().__init__(site, mode="hang", context=context)


@dataclasses.dataclass
class FaultSpec:
    """One injectable failure point (see the module docstring table)."""

    site: str
    mode: str = "raise"
    #: firing probability per eligible hit (1.0 = always)
    rate: float = 1.0
    #: eligible hits skipped before the spec may fire (warm-up)
    after: int = 0
    #: total fires allowed (``None`` = unbounded: a *dead* dependency)
    max_fires: Optional[int] = None
    #: sleep for ``slow`` / ``hang`` modes, seconds
    delay: float = 0.05
    #: equality constraints on the fault-point context, e.g.
    #: ``{"shard": 2}`` fires only for shard 2
    match: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seed: int = 0

    def __post_init__(self):
        if not self.site:
            raise ValueError("faults: spec needs a non-empty site")
        if self.mode not in MODES:
            raise ValueError("faults: mode must be one of %s, got %r"
                             % ("/".join(MODES), self.mode))
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("faults: rate must be in (0, 1], got %r"
                             % self.rate)
        if self.after < 0:
            raise ValueError("faults: after must be >= 0, got %d" % self.after)
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("faults: max_fires must be >= 1 or None, got %r"
                             % self.max_fires)
        if self.delay < 0:
            raise ValueError("faults: delay must be >= 0, got %r" % self.delay)
        if not isinstance(self.match, dict):
            raise ValueError("faults: match must be a dict, got %r"
                             % type(self.match).__name__)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        payload = dict(payload)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError("faults: unknown spec key(s) %s; known: %s"
                             % (", ".join(map(repr, unknown)),
                                ", ".join(sorted(known))))
        return cls(**payload)

    def matches(self, context: Dict[str, Any]) -> bool:
        return all(context.get(key) == value
                   for key, value in self.match.items())


class FaultInjector:
    """Process-global registry of installed specs; thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self._specs: List[FaultSpec] = []
        self._hits: Dict[int, int] = {}
        self._fires: Dict[int, int] = {}
        self._rngs: Dict[int, np.random.Generator] = {}

    # -- management ----------------------------------------------------------

    def install(self, *specs: FaultSpec) -> None:
        """Add specs to the active plan (counters start fresh per spec)."""
        with self._lock:
            for spec in specs:
                if not isinstance(spec, FaultSpec):
                    spec = FaultSpec.from_dict(dict(spec))
                key = id(spec)
                self._specs.append(spec)
                self._hits[key] = 0
                self._fires[key] = 0
                self._rngs[key] = np.random.default_rng(
                    np.random.SeedSequence(
                        entropy=(int(spec.seed),
                                 *spec.site.encode("utf-8"))))

    def install_plan(self, specs) -> None:
        """Replace the active plan wholesale."""
        self.reset()
        self.install(*specs)

    def reset(self) -> None:
        with self._lock:
            self._specs = []
            self._hits.clear()
            self._fires.clear()
            self._rngs.clear()

    @property
    def active(self) -> bool:
        return bool(self._specs)

    def active_specs(self) -> List[FaultSpec]:
        with self._lock:
            return list(self._specs)

    def fires(self, site: Optional[str] = None) -> int:
        """Total fires so far, optionally restricted to one site."""
        with self._lock:
            return sum(self._fires[id(s)] for s in self._specs
                       if site is None or s.site == site)

    # -- the hot path --------------------------------------------------------

    def _due(self, site: str, context: Dict[str, Any]
             ) -> Optional[Tuple[FaultSpec, Dict[str, Any]]]:
        """Pick the first spec that fires for this hit (under the lock)."""
        with self._lock:
            for spec in self._specs:
                if spec.site != site or not spec.matches(context):
                    continue
                key = id(spec)
                self._hits[key] += 1
                if self._hits[key] <= spec.after:
                    continue
                if (spec.max_fires is not None
                        and self._fires[key] >= spec.max_fires):
                    continue
                if spec.rate < 1.0 and self._rngs[key].random() >= spec.rate:
                    continue
                self._fires[key] += 1
                return spec, context
        return None

    def on(self, site: str, **context: Any) -> None:
        """Evaluate one hit at ``site``; raises/sleeps/kills when due."""
        due = self._due(site, context)
        if due is None:
            return
        spec, context = due
        if spec.mode == "slow":
            time.sleep(spec.delay)
            return
        if spec.mode == "hang":
            time.sleep(spec.delay)
            raise InjectedTimeout(site, context)
        if spec.mode == "kill":
            os._exit(KILL_EXIT_CODE)
        raise InjectedFault(site, mode=spec.mode, context=context)


#: The process-global injector every fault point consults.
_INJECTOR = FaultInjector()


def fault_point(site: str, **context: Any) -> None:
    """Evaluate the installed plan at ``site`` (no-op when none is)."""
    if _INJECTOR.active:
        _INJECTOR.on(site, **context)


def install(*specs) -> None:
    _INJECTOR.install(*specs)


def install_plan(specs) -> None:
    _INJECTOR.install_plan(specs)


def reset() -> None:
    _INJECTOR.reset()


def active_specs() -> List[FaultSpec]:
    return _INJECTOR.active_specs()


def fires(site: Optional[str] = None) -> int:
    return _INJECTOR.fires(site)
