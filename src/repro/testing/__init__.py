"""Test-time instrumentation for the reproduction.

``repro.testing.faults`` is the seed-deterministic fault-injection
harness the robustness tests, the chaos CI job and
``benchmarks/bench_fault_tolerance.py`` drive; production code calls
its :func:`~repro.testing.faults.fault_point` hooks, which are no-ops
until a plan is installed.
"""

from repro.testing.faults import (  # noqa: F401
    FaultSpec,
    InjectedFault,
    InjectedTimeout,
    active_specs,
    fault_point,
    fires,
    install,
    install_plan,
    reset,
)
