"""Representation models: AMCAD and every baseline of paper Table VI.

The centrepiece is :class:`~repro.models.amcad.AMCAD`, the adaptive
mixed-curvature model of paper §IV-B.  Its configuration object
(:class:`~repro.models.amcad.AMCADConfig`) exposes every knob the paper
ablates, so the constant-curvature variants (AMCAD_E/H/S/U), the
ablations of Table VII and the geometric baselines (HyperML, HGCN, GIL,
M2GNN, product space) are all factory functions over the same
architecture — exactly how the paper describes its own comparisons.

The random-walk embedding baselines (DeepWalk, LINE, Node2Vec,
Metapath2Vec) are a separate skip-gram family in
:mod:`repro.models.baselines.skipgram`.
"""

from repro.models.features import FeatureEmbedding, LRUFeatureRegistry
from repro.models.encoder import COMPUTE_PLANES, NodeEncoder
from repro.models.plan import (
    EncodePlan,
    NeighborDrawCache,
    build_encode_plan,
    build_full_graph_plan,
)
from repro.models.scorer import EdgeScorer
from repro.models.amcad import (
    AMCAD,
    AMCADConfig,
    MODEL_VARIANTS,
    list_models,
    make_model,
)
from repro.models.baselines import (
    SKIPGRAM_BASELINES,
    SkipGramConfig,
    SkipGramModel,
    make_baseline,
)

__all__ = [
    "FeatureEmbedding",
    "LRUFeatureRegistry",
    "NodeEncoder",
    "COMPUTE_PLANES",
    "EncodePlan",
    "NeighborDrawCache",
    "build_encode_plan",
    "build_full_graph_plan",
    "EdgeScorer",
    "AMCAD",
    "AMCADConfig",
    "MODEL_VARIANTS",
    "list_models",
    "make_model",
    "SkipGramModel",
    "SkipGramConfig",
    "SKIPGRAM_BASELINES",
    "make_baseline",
]
