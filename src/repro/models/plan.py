"""Frontier-based encode planning — the sampling phase of the compute plane.

The recursive context encoder (paper §IV-B-2) re-encodes every sampled
neighbour from scratch, so one batch costs ``(k·|types|)^L`` encoder
evaluations and the same node is pushed through the tape many times.
This module separates the *stochastic* part of that computation — which
neighbours each node aggregates at each GCN round — from the
*differentiable* part, as a pure-numpy planning pass:

- :func:`build_encode_plan` walks the receptive field top-down and
  produces an :class:`EncodePlan`: per-level frontiers of **unique**
  ``(node_type, index)`` sets, per-frontier neighbour draws with masks,
  and precomputed gather maps (positions into the level below);
- the encoder's compute phase then encodes each unique frontier exactly
  once, bottom-up, routing representations through ``ops.gather``
  (``take`` forward, ``np.add.at`` scatter-add backward);
- because the plan *captures* the neighbour draws, the recursive
  reference plane can replay the exact same draws
  (:meth:`EncodePlan.lookup`), which is what makes loss/gradient parity
  between the planes testable to machine precision.

``EncodePlan`` is deliberately dumb data — arrays only, no tensors — so
it is the natural contract for future multi-process samplers (a worker
only needs to emit a plan) and for cached-frontier encoding
(:class:`NeighborDrawCache` reuses draws across trainer steps).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.hetgraph import HetGraph
from repro.graph.schema import NodeType


def _positions(frontier: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Positions of ``values`` inside the sorted-unique ``frontier``."""
    values = np.asarray(values, dtype=np.int64).ravel()
    pos = np.searchsorted(frontier, values)
    if values.size:
        clipped = np.minimum(pos, frontier.size - 1)
        if frontier.size == 0 or np.any(frontier[clipped] != values):
            raise ValueError("requested node ids are not covered by the "
                             "plan's frontier")
    return pos.astype(np.int64)


@dataclasses.dataclass
class NeighborBlock:
    """Captured neighbour draws of one ``(src_type → dst_type)`` edge set.

    ``neigh_ids``/``mask`` are ``(U, k)`` over the level's unique
    frontier; ``gather`` holds the flattened positions of ``neigh_ids``
    inside the *level-below* frontier of ``dst_type`` (``None`` when the
    mask is entirely empty and the block is skipped, mirroring the
    recursive plane's behaviour).
    """

    src_type: NodeType
    dst_type: NodeType
    neigh_ids: np.ndarray
    mask: np.ndarray
    gather: Optional[np.ndarray] = None


@dataclasses.dataclass
class PlanLevel:
    """One GCN round's worth of frontiers, draws and gather maps.

    Level ``l`` holds, per node type, the unique nodes whose
    representation *after* ``l`` GCN rounds is needed; ``self_maps``
    locate those nodes inside the level-``l-1`` frontier of the same
    type (absent at level 0, which is inductive-only).
    """

    frontiers: Dict[NodeType, np.ndarray] = dataclasses.field(
        default_factory=dict)
    self_maps: Dict[NodeType, np.ndarray] = dataclasses.field(
        default_factory=dict)
    blocks: Dict[NodeType, List[NeighborBlock]] = dataclasses.field(
        default_factory=dict)


@dataclasses.dataclass
class EncodePlan:
    """A fully-sampled GCN receptive field, ready for one-pass encoding."""

    node_type: NodeType
    indices: np.ndarray
    layers: int
    neighbor_samples: int
    levels: List[PlanLevel]

    def __getstate__(self) -> dict:
        """Pickle as the plain field dict — plans are arrays only.

        Plans cross a process boundary on the prefetching training plane
        (:mod:`repro.training.prefetch`); keeping the state explicit
        documents the wire format and gives ``__setstate__`` a place to
        re-check the invariants the compute phase relies on.
        """
        return {"node_type": self.node_type, "indices": self.indices,
                "layers": self.layers, "neighbor_samples":
                self.neighbor_samples, "levels": self.levels}

    def __setstate__(self, state: dict) -> None:
        self.node_type = state["node_type"]
        self.indices = np.asarray(state["indices"], dtype=np.int64)
        self.layers = int(state["layers"])
        self.neighbor_samples = int(state["neighbor_samples"])
        self.levels = state["levels"]
        if len(self.levels) != self.layers + 1:
            raise ValueError("corrupt EncodePlan: %d levels for %d layers"
                             % (len(self.levels), self.layers))

    def output_map(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Top-frontier positions of ``indices`` (default: the request)."""
        if indices is None:
            indices = self.indices
        return _positions(self.levels[self.layers].frontiers[self.node_type],
                          indices)

    def lookup(self, layer: int, src_type: NodeType, indices: np.ndarray,
               dst_type: NodeType) -> Tuple[np.ndarray, np.ndarray]:
        """Replay the captured draws for arbitrary (possibly duplicated)
        ``indices`` — the recursive plane's parity hook.

        ``layer`` is the 0-based GCN round, matching the ``layer``
        argument of the encoder's aggregation step.
        """
        level = self.levels[layer + 1]
        for block in level.blocks.get(src_type, ()):
            if block.dst_type == dst_type:
                pos = _positions(level.frontiers[src_type], indices)
                return block.neigh_ids[pos], block.mask[pos]
        raise KeyError("plan holds no draws for round %d %s -> %s"
                       % (layer, src_type.value, dst_type.value))

    def num_encoded(self) -> int:
        """Total unique encoder evaluations the plan schedules."""
        return int(sum(frontier.size for level in self.levels
                       for frontier in level.frontiers.values()))


class NeighborDrawCache:
    """Per-node neighbour-draw memo shared across plans (and steps).

    Keyed by ``(round, src_type, dst_type)``; each entry lazily fills a
    ``(num_nodes, k)`` draw table so a node sampled in one batch reuses
    the same neighbours when it reappears — the "cached frontier" reuse
    knob exposed as ``TrainerConfig.plan_refresh`` (the trainer clears
    the cache every N steps to resample).  The key carries no encode
    role, so the loss builds its source-role plans with the cache
    bypassed (``use_draw_cache=False``) — otherwise both endpoints of a
    same-type relation would share draws, the common-random-numbers
    pathology described in ``AMCAD._encode_group_frontier``.
    """

    def __init__(self):
        self._store: Dict[tuple, tuple] = {}

    def clear(self) -> None:
        self._store.clear()

    def sample(self, rng: np.random.Generator, graph: HetGraph, layer: int,
               src_type: NodeType, indices: np.ndarray, dst_type: NodeType,
               k: int) -> Tuple[np.ndarray, np.ndarray]:
        key = (layer, src_type, dst_type)
        entry = self._store.get(key)
        n = graph.num_nodes[src_type]
        if entry is None or entry[0].shape[1] != k:
            entry = (np.zeros((n, k), dtype=np.int64),
                     np.zeros((n, k), dtype=np.float64),
                     np.zeros(n, dtype=bool))
            self._store[key] = entry
        ids, mask, seen = entry
        missing = indices[~seen[indices]]
        if missing.size:
            new_ids, new_mask = graph.sample_neighbors(
                rng, src_type, missing, dst_type, k)
            ids[missing] = new_ids
            mask[missing] = new_mask
            seen[missing] = True
        return ids[indices], mask[indices]


def build_full_graph_plan(graph: HetGraph, node_type: NodeType,
                          layers: int, neighbor_samples: int,
                          rng: np.random.Generator,
                          draw_cache: Optional[NeighborDrawCache] = None
                          ) -> EncodePlan:
    """One :class:`EncodePlan` covering *every* node of ``node_type``.

    The offline half of the system (``embed_all``, index builds) needs
    representations for the whole vocabulary, not a mini-batch; walking
    it in per-batch plans re-samples and re-encodes the shared
    receptive field thousands of times.  A full-graph plan is built
    once — its per-level frontiers are bounded by the total node counts,
    so each GCN round becomes a handful of full-frontier passes
    (GraphSAGE-style cached supports) instead of ``N / batch`` recursive
    mini-batches.

    Passing a :class:`NeighborDrawCache` makes the plan *reusable
    across refreshes*: nodes keep their memoised draws until the caller
    clears the cache, which is the scheduled-refresh policy the trainer
    already applies to mini-batch plans (``training.plan_refresh``).
    The top frontier is ``arange(N)``, so
    :meth:`EncodePlan.output_map` is the identity and callers can use
    the per-level representations as vocabulary-ordered tables.
    """
    n = int(graph.num_nodes[node_type])
    return build_encode_plan(graph, node_type, np.arange(n, dtype=np.int64),
                             layers, neighbor_samples, rng,
                             draw_cache=draw_cache)


def build_encode_plan(graph: HetGraph, node_type: NodeType,
                      indices: np.ndarray, layers: int, neighbor_samples: int,
                      rng: np.random.Generator,
                      draw_cache: Optional[NeighborDrawCache] = None
                      ) -> EncodePlan:
    """Sample the GCN receptive field of ``indices`` into an :class:`EncodePlan`.

    Pure numpy: walks the frontier top-down (level ``layers`` … 1),
    draws ``neighbor_samples`` typed neighbours per unique frontier node
    per round, then resolves every gather map against the deduplicated
    level-below frontiers.  Neighbour-type iteration follows the
    :class:`NodeType` declaration order, matching the recursive plane.
    """
    indices = np.asarray(indices, dtype=np.int64)
    layers = int(layers)
    k = int(neighbor_samples)
    levels = [PlanLevel() for _ in range(layers + 1)]
    levels[layers].frontiers[node_type] = np.unique(indices)

    for l in range(layers, 0, -1):
        level = levels[l]
        below: Dict[NodeType, List[np.ndarray]] = {}
        for src_type in NodeType:
            uniq = level.frontiers.get(src_type)
            if uniq is None:
                continue
            # the self path always needs the previous-round representation
            below.setdefault(src_type, []).append(uniq)
            blocks: List[NeighborBlock] = []
            for dst_type in NodeType:
                if graph.num_nodes[dst_type] == 0:
                    continue
                if draw_cache is not None:
                    neigh, mask = draw_cache.sample(
                        rng, graph, l - 1, src_type, uniq, dst_type, k)
                else:
                    neigh, mask = graph.sample_neighbors(
                        rng, src_type, uniq, dst_type, k)
                blocks.append(NeighborBlock(src_type, dst_type, neigh, mask))
                if mask.sum() > 0:
                    below.setdefault(dst_type, []).append(np.unique(neigh))
            level.blocks[src_type] = blocks
        prev = levels[l - 1]
        for t, parts in below.items():
            prev.frontiers[t] = np.unique(np.concatenate(parts))
        for src_type in level.frontiers:
            level.self_maps[src_type] = _positions(
                prev.frontiers[src_type], level.frontiers[src_type])
            for block in level.blocks[src_type]:
                if block.mask.sum() > 0:
                    block.gather = _positions(prev.frontiers[block.dst_type],
                                              block.neigh_ids)
    return EncodePlan(node_type=node_type, indices=indices, layers=layers,
                      neighbor_samples=k, levels=levels)
