"""Edge-level adaptive mixed-curvature scorer (paper §IV-B-2, Fig. 5).

Two stages:

1. **Edge space projection** (Eq. 9–10) — the endpoints of a candidate
   edge live in *type-specific* spaces; they are projected into a
   relation-specific edge space (curvature ``κ_{m,r}``) with a Möbius
   linear map followed by a curved activation, and the geodesic
   distance is computed there;
2. **Subspace-distance combination** (Eq. 11–14) — per-node attention
   logits over subspaces are computed from the concatenated projected
   embeddings; the pair weight is the *sum* of the two node-level
   weights (so it decomposes and can be pre-computed before MNN
   retrieval — paper's own deployment trick), and the final distance is
   the weight-distance inner product.

Ablation switches: ``share_edge_space`` collapses all relations into one
edge space (``- proj``); ``attention='global'`` replaces pairwise
attention with a single learned weight vector per relation (M2GNN-style);
``attention='uniform'`` uses constant weights (``- comb``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter, Tensor
from repro.geometry.product import ProductManifold
from repro.geometry import stereographic as st
from repro.graph.schema import NodeType, Relation
from repro.models.features import glorot

_SHARED = "shared"


class EdgeScorer:
    """Scores typed node pairs in relation-specific mixed-curvature spaces.

    Parameters
    ----------
    node_manifolds:
        The per-type product manifolds of the node encoder.
    relations:
        Relations to support (default: all six of paper Fig. 6).
    adaptive_curvature:
        Whether edge-space curvatures are trainable.
    share_edge_space:
        Ablation ``- proj``: one edge space for every relation.
    attention:
        ``'pair'`` (paper), ``'global'`` (M2GNN-style fixed weights) or
        ``'uniform'`` (ablation ``- comb``).
    """

    def __init__(self, node_manifolds: Dict[NodeType, ProductManifold],
                 relations: Optional[List[Relation]] = None,
                 adaptive_curvature: bool = True,
                 share_edge_space: bool = False,
                 attention: str = "pair",
                 rng: Optional[np.random.Generator] = None):
        if attention not in ("pair", "global", "uniform"):
            raise ValueError("unknown attention mode %r" % attention)
        rng = rng or np.random.default_rng(1)
        self.node_manifolds = node_manifolds
        self.relations = list(relations or list(Relation))
        self.share_edge_space = bool(share_edge_space)
        self.attention = attention

        reference = next(iter(node_manifolds.values()))
        self.num_subspaces = len(reference)
        self.subspace_dim = reference.factors[0].dim

        # edge spaces: κ_{m,r} (paper Eq. 9-10)
        keys = [_SHARED] if share_edge_space else list(self.relations)
        self.edge_manifolds: Dict[object, ProductManifold] = {}
        for key in keys:
            if adaptive_curvature:
                manifold = ProductManifold.adaptive(self.num_subspaces,
                                                    self.subspace_dim)
            else:
                # frozen copies of the (initial) node-space curvatures
                from repro.geometry.manifold import UnifiedManifold
                manifold = ProductManifold([
                    UnifiedManifold(factor.dim, kappa=factor.kappa_value,
                                    trainable=False)
                    for factor in reference.factors])
            self.edge_manifolds[key] = manifold

        # projection weights W2^{m,t,r}: (d -> d), plus Möbius biases
        # (see the NodeEncoder module docstring for why biases are needed)
        self.proj_weights: Dict[tuple, Parameter] = {}
        self.proj_bias: Dict[tuple, Parameter] = {}
        for key in keys:
            for node_type in node_manifolds:
                for m in range(self.num_subspaces):
                    self.proj_weights[(key, node_type, m)] = Parameter(
                        glorot(rng, self.subspace_dim, self.subspace_dim))
                    self.proj_bias[(key, node_type, m)] = Parameter(
                        rng.normal(scale=0.05, size=self.subspace_dim))

        # attention weights W^t: (M*d -> M) (paper Eq. 12)
        self.att_weights: Dict[NodeType, Parameter] = {}
        if attention == "pair":
            for node_type in node_manifolds:
                self.att_weights[node_type] = Parameter(
                    glorot(rng, self.num_subspaces * self.subspace_dim,
                           self.num_subspaces))
        self.global_logits: Dict[object, Parameter] = {}
        if attention == "global":
            for key in keys:
                self.global_logits[key] = Parameter(
                    np.zeros(self.num_subspaces))

    # -- internals --------------------------------------------------------------

    def _edge_key(self, relation: Relation):
        return _SHARED if self.share_edge_space else relation

    def project(self, relation: Relation, node_type: NodeType,
                points: List[Tensor]) -> List[Tensor]:
        """Edge-space projection of per-subspace points (paper Eq. 9)."""
        key = self._edge_key(relation)
        edge_manifold = self.edge_manifolds[key]
        node_manifold = self.node_manifolds[node_type]
        projected: List[Tensor] = []
        for m, point in enumerate(points):
            weight = self.proj_weights[(key, node_type, m)]
            node_factor = node_manifold.factors[m]
            edge_factor = edge_manifold.factors[m]
            mapped = node_factor.matvec(weight, point)
            bias_point = node_factor.expmap0(self.proj_bias[(key, node_type, m)])
            mapped = node_factor.mobius_add(mapped, bias_point)
            mapped = node_factor.activation(mapped, ops.tanh, target=edge_factor)
            projected.append(edge_factor.project(mapped))
        return projected

    def node_weights(self, relation: Relation, node_type: NodeType,
                     projected: List[Tensor]) -> Tensor:
        """Node-level subspace attention ``w'`` (paper Eq. 12–13).

        Returns shape ``(batch, M)``; rows sum to 1 in ``'pair'`` mode,
        to ``softmax`` of the global logits in ``'global'`` mode, and to
        1 with constant entries in ``'uniform'`` mode.  Pair weights are
        ``w = w'(x) + w'(y)``, so each side contributes half.
        """
        batch = projected[0].shape[0]
        if self.attention == "pair":
            concat = ops.concatenate(projected, axis=-1)
            logits = ops.matmul(concat, self.att_weights[node_type])
            return ops.softmax(logits, axis=-1)
        if self.attention == "global":
            logits = self.global_logits[self._edge_key(relation)]
            weights = ops.softmax(logits.reshape(1, self.num_subspaces), axis=-1)
            ones = Tensor(np.ones((batch, 1)))
            return ones @ weights
        uniform = np.full((batch, self.num_subspaces), 1.0 / self.num_subspaces)
        return Tensor(uniform)

    def sub_distances(self, relation: Relation, src_projected: List[Tensor],
                      dst_projected: List[Tensor]) -> Tensor:
        """Per-subspace edge-space distances, shape ``(batch, M)`` (Eq. 10)."""
        edge_manifold = self.edge_manifolds[self._edge_key(relation)]
        dists = [factor.dist(x, y) for factor, x, y in
                 zip(edge_manifold.factors, src_projected, dst_projected)]
        return ops.concatenate(dists, axis=-1)

    # -- public API ---------------------------------------------------------------

    def distance(self, relation: Relation,
                 src_points: List[Tensor], src_type: NodeType,
                 dst_points: List[Tensor], dst_type: NodeType) -> Tensor:
        """Attention-combined mixed-curvature distance (paper Eq. 14).

        Returns shape ``(batch,)`` — smaller means more likely linked.
        """
        src_proj = self.project(relation, src_type, src_points)
        dst_proj = self.project(relation, dst_type, dst_points)
        w_src = self.node_weights(relation, src_type, src_proj)
        w_dst = self.node_weights(relation, dst_type, dst_proj)
        weights = w_src + w_dst                               # Eq. 11
        dists = self.sub_distances(relation, src_proj, dst_proj)
        combined = ops.sum(dists * weights, axis=-1)          # Eq. 14
        return combined

    def parameters(self) -> Iterable[Parameter]:
        yield from self.proj_weights.values()
        yield from self.proj_bias.values()
        yield from self.att_weights.values()
        yield from self.global_logits.values()
        for manifold in self.edge_manifolds.values():
            yield from manifold.parameters()

    def constrain(self) -> None:
        for manifold in self.edge_manifolds.values():
            manifold.constrain()
