"""Sparse feature embedding with per-subspace tables (paper Eq. 4).

Every node type ``t`` has the feature fields of paper Table IV (id,
category, terms, …).  For each mixed-curvature subspace ``m`` the
encoder keeps a *separate* embedding table per field — the paper's
``e^{m,t}_j`` — so each subspace can learn geometry-specific feature
representations.  Field embeddings are concatenated and linearly
projected to the subspace dimension in tangent space; the exponential
map into the subspace happens in the encoder.

Multi-slot fields (title terms, bid words) are mean-pooled over their
non-PAD slots.

:class:`LRUFeatureRegistry` implements the paper's §V-C feature-exit
mechanism: features unseen for a configurable horizon are evicted
(their embedding rows re-initialised) to stop the model growing without
bound during incremental training.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter, Tensor
from repro.common import PAD
from repro.graph.schema import NodeType


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class FeatureEmbedding:
    """Per-(subspace, field) embedding tables for one node type.

    Parameters
    ----------
    node_type:
        Which entity this embeds.
    vocab_sizes:
        ``field -> vocabulary size``.
    feature_dim:
        Embedding width per field.
    num_subspaces:
        M, the number of mixed-curvature subspaces.
    subspace_dim:
        Output width per subspace (tangent vectors).
    rng:
        Initialisation source.
    """

    def __init__(self, node_type: NodeType, vocab_sizes: Dict[str, int],
                 feature_dim: int, num_subspaces: int, subspace_dim: int,
                 rng: np.random.Generator):
        self.node_type = node_type
        self.fields = sorted(vocab_sizes)
        self.feature_dim = int(feature_dim)
        self.num_subspaces = int(num_subspaces)
        self.subspace_dim = int(subspace_dim)
        self.tables: Dict[Tuple[int, str], Parameter] = {}
        for m in range(num_subspaces):
            for field in self.fields:
                init = rng.normal(scale=0.1,
                                  size=(vocab_sizes[field], feature_dim))
                self.tables[(m, field)] = Parameter(init)
        concat_dim = feature_dim * len(self.fields)
        self.projections: List[Parameter] = [
            Parameter(glorot(rng, concat_dim, subspace_dim))
            for _ in range(num_subspaces)
        ]

    def _embed_field(self, m: int, field: str, values: np.ndarray) -> Tensor:
        """Look up one field; multi-slot fields are masked-mean pooled."""
        table = self.tables[(m, field)]
        values = np.asarray(values)
        if values.ndim == 1:
            return ops.gather(table, values)
        mask = (values != PAD).astype(np.float64)
        safe = np.where(values == PAD, 0, values)
        embedded = ops.gather(table, safe)            # (batch, slots, dim)
        mask_t = Tensor(mask[..., None])
        denom = Tensor(np.maximum(mask.sum(axis=-1, keepdims=True), 1.0)[..., None])
        return ops.sum(embedded * mask_t, axis=1) / denom[:, 0]

    def forward(self, features: Dict[str, np.ndarray],
                indices: np.ndarray) -> List[Tensor]:
        """Tangent-space embeddings, one ``(batch, subspace_dim)`` per subspace."""
        indices = np.asarray(indices, dtype=np.int64)
        out: List[Tensor] = []
        for m in range(self.num_subspaces):
            pieces = [self._embed_field(m, field, features[field][indices])
                      for field in self.fields]
            concat = ops.concatenate(pieces, axis=-1)
            out.append(ops.matmul(concat, self.projections[m]))
        return out

    def _embed_field_numpy(self, m: int, field: str,
                           values: np.ndarray) -> np.ndarray:
        """No-tape mirror of :meth:`_embed_field` (same masked pooling)."""
        table = self.tables[(m, field)].data
        values = np.asarray(values)
        if values.ndim == 1:
            return table[values]
        mask = (values != PAD).astype(np.float64)
        safe = np.where(values == PAD, 0, values)
        embedded = table[safe]                        # (batch, slots, dim)
        denom = np.maximum(mask.sum(axis=-1, keepdims=True), 1.0)
        return np.sum(embedded * mask[..., None], axis=1) / denom

    def forward_numpy(self, features: Dict[str, np.ndarray],
                      indices: np.ndarray) -> List[np.ndarray]:
        """No-tape mirror of :meth:`forward` — bit-equal plain arrays.

        Used by the full-graph offline inference path, where wrapping
        every lookup in value tensors is pure overhead.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out: List[np.ndarray] = []
        for m in range(self.num_subspaces):
            pieces = [self._embed_field_numpy(m, field,
                                              features[field][indices])
                      for field in self.fields]
            out.append(np.concatenate(pieces, axis=-1)
                       @ self.projections[m].data)
        return out

    def parameters(self) -> Iterable[Parameter]:
        yield from self.tables.values()
        yield from self.projections


class LRUFeatureRegistry:
    """Least-recently-used feature exit (paper §V-C).

    Tracks the last step each feature id of each table was seen and
    evicts stale rows — re-initialising their embeddings — so the model
    does not grow unboundedly across incremental training days.
    """

    def __init__(self, horizon_steps: int, reinit_scale: float = 0.1,
                 seed: int = 0):
        if horizon_steps < 1:
            raise ValueError("horizon must be positive")
        self.horizon = int(horizon_steps)
        self.reinit_scale = float(reinit_scale)
        self.rng = np.random.default_rng(seed)
        self.step = 0
        self._last_seen: Dict[int, np.ndarray] = {}
        self._tables: Dict[int, Parameter] = {}
        self.evicted_total = 0

    def register(self, table: Parameter) -> None:
        """Track a feature table."""
        key = id(table)
        if key not in self._tables:
            self._tables[key] = table
            self._last_seen[key] = np.full(table.shape[0], -1, dtype=np.int64)

    def touch(self, table: Parameter, indices: np.ndarray) -> None:
        """Record feature ids observed at the current step."""
        key = id(table)
        if key not in self._tables:
            self.register(table)
        flat = np.asarray(indices).ravel()
        flat = flat[flat != PAD]
        self._last_seen[key][flat] = self.step
        # sync in case the table was resized (not supported — guard)
        if self._last_seen[key].shape[0] != table.shape[0]:
            raise RuntimeError("feature table resized after registration")

    def advance(self, steps: int = 1) -> None:
        self.step += int(steps)

    def evict_stale(self) -> int:
        """Re-initialise rows unseen within the horizon; return count.

        Rows never seen (``-1``) are left alone — they are still at
        their initialisation and carry no stale signal.
        """
        evicted = 0
        threshold = self.step - self.horizon
        for key, table in self._tables.items():
            last = self._last_seen[key]
            stale = (last >= 0) & (last < threshold)
            count = int(stale.sum())
            if count:
                table.data[stale] = self.rng.normal(
                    scale=self.reinit_scale, size=(count, table.shape[1]))
                last[stale] = -1
                evicted += count
        self.evicted_total += evicted
        return evicted

    @property
    def active_rows(self) -> int:
        """Rows currently holding learned (recently seen) embeddings."""
        return int(np.sum([int((last >= 0).sum())
                           for last in self._last_seen.values()]))
