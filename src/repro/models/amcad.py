"""The AMCAD model: encoder + scorer + triplet objective (paper §IV-B).

:class:`AMCADConfig` exposes every design axis the paper evaluates:

- ``space`` — the geometry family of the node subspaces:
  ``'adaptive'`` (trainable κ per subspace per node type — full AMCAD),
  ``'euclidean'`` / ``'hyperbolic'`` / ``'spherical'`` (frozen constant
  curvature → AMCAD_E / AMCAD_H / AMCAD_S), ``'unified'`` (a single
  trainable subspace → AMCAD_U), or an explicit signature string such
  as ``'HS'`` / ``'EE'`` for the fixed product-space combinations of
  Table VIII;
- ``use_fusion`` (ablation ``- fusion``), ``share_edge_space``
  (``- proj``), ``attention`` (``'uniform'`` → ``- comb``);
- ``num_subspaces`` / ``subspace_dim`` for the Fig. 8 sweep.

:func:`make_model` builds the named model variants used throughout the
benchmark harness.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter, Tensor, no_grad
from repro.geometry import kernels as geometry_kernels
from repro.geometry.manifold import UnifiedManifold
from repro.geometry.product import ProductManifold
from repro.geometry.stereographic import fermi_dirac
from repro.graph.hetgraph import HetGraph
from repro.graph.sampling import SampleBatch, TrainingSample, as_sample_batches
from repro.graph.schema import NodeType, Relation
from repro.models.encoder import COMPUTE_PLANES, NodeEncoder
from repro.models.plan import (
    EncodePlan,
    NeighborDrawCache,
    build_full_graph_plan,
)
from repro.models.scorer import EdgeScorer

_SIGNATURE_KAPPA = {"H": -1.0, "E": 0.0, "S": 1.0, "U": None}

#: Variant names :func:`make_model` accepts, besides ``product:<SIG>``
#: signatures (kept in the docstring's presentation order).
MODEL_VARIANTS = (
    "amcad", "amcad_e", "amcad_h", "amcad_s", "amcad_u",
    "hyperml", "hgcn", "gil", "m2gnn",
    "amcad-mixed", "amcad-curv", "amcad-fusion", "amcad-proj", "amcad-comb",
)


def list_models() -> List[str]:
    """Registered variant names for :func:`make_model`.

    ``product:<SIG>`` signatures (e.g. ``product:HS``) are additionally
    accepted for any non-empty string over ``E``/``H``/``S``/``U``.
    """
    return list(MODEL_VARIANTS)


@dataclasses.dataclass
class AMCADConfig:
    """Architecture and geometry configuration.

    Defaults correspond to the full AMCAD model at laptop scale (the
    paper uses M=2 subspaces, 120 total dims; we default to M=2 × 16).
    """

    num_subspaces: int = 2
    subspace_dim: int = 16
    feature_dim: int = 8
    gcn_layers: int = 1
    neighbor_samples: int = 4
    #: context-encoder compute plane: ``"frontier"`` (dedup-encode-gather,
    #: default) or ``"recursive"`` (the parity reference)
    compute_plane: str = "frontier"
    #: geometry kernel implementations: ``"auto"`` (compiled when numba
    #: is importable, numpy otherwise), ``"numpy"``, or ``"compiled"``
    #: (requires the ``[compiled]`` extra) — see
    #: :mod:`repro.geometry.kernels`
    kernels: str = "auto"
    space: str = "adaptive"
    use_fusion: bool = True
    share_edge_space: bool = False
    adaptive_edge_curvature: bool = True
    attention: str = "pair"
    # Fermi-Dirac similarity scale.  The paper reports r=1, t=5 as best
    # on its production embedding scale; at this repo's scale distances
    # concentrate around ~2-5, so r=2, t=2 keeps the sigmoid responsive
    # (r=1, t=5 saturates and stalls training — verified empirically).
    margin: float = 0.5
    fermi_radius: float = 2.0
    fermi_temperature: float = 2.0
    regularization: float = 1e-3
    seed: int = 0

    def resolved_signature(self) -> List[Optional[float]]:
        """Initial curvature per subspace; ``None`` marks trainable."""
        space = self.space
        if space == "adaptive":
            if self.num_subspaces == 1:
                return [None]
            return [None] * self.num_subspaces
        if space == "unified":
            return [None] * self.num_subspaces
        if space == "euclidean":
            return [0.0] * self.num_subspaces
        if space == "hyperbolic":
            return [-1.0] * self.num_subspaces
        if space == "spherical":
            return [1.0] * self.num_subspaces
        if all(ch in _SIGNATURE_KAPPA for ch in space):
            if len(space) != self.num_subspaces:
                raise ValueError("signature %r length != num_subspaces=%d"
                                 % (space, self.num_subspaces))
            return [_SIGNATURE_KAPPA[ch] for ch in space]
        raise ValueError("unknown space specification %r" % space)


class AMCAD:
    """Adaptive mixed-curvature representation model over a graph."""

    def __init__(self, graph: HetGraph, config: Optional[AMCADConfig] = None):
        self.graph = graph
        self.config = config or AMCADConfig()
        cfg = self.config
        # resolve + activate the geometry kernel dial for this process;
        # raises a clear ValueError for "compiled" without numba
        self.kernel_mode = geometry_kernels.set_mode(cfg.kernels)
        rng = np.random.default_rng(cfg.seed)
        self.rng = rng

        signature = cfg.resolved_signature()
        self.node_manifolds: Dict[NodeType, ProductManifold] = {}
        for node_type in NodeType:
            factors = []
            for m, kappa in enumerate(signature):
                if kappa is None:
                    # spread trainable initialisations so subspaces start
                    # from distinct, strongly curved geometries — the
                    # curvatures then adapt from informative starting
                    # points instead of crawling away from flatness
                    if len(signature) == 1:
                        init = 0.0
                    else:
                        init = np.linspace(-1.0, 1.0, len(signature))[m]
                    factors.append(UnifiedManifold(cfg.subspace_dim, kappa=init,
                                                   trainable=True))
                else:
                    factors.append(UnifiedManifold(cfg.subspace_dim, kappa=kappa,
                                                   trainable=False))
            self.node_manifolds[node_type] = ProductManifold(factors)

        self.encoder = NodeEncoder(
            graph, self.node_manifolds, feature_dim=cfg.feature_dim,
            gcn_layers=cfg.gcn_layers, neighbor_samples=cfg.neighbor_samples,
            use_fusion=cfg.use_fusion, compute_plane=cfg.compute_plane,
            rng=rng)
        adaptive_edges = cfg.adaptive_edge_curvature and cfg.space in (
            "adaptive", "unified")
        self.scorer = EdgeScorer(
            self.node_manifolds, adaptive_curvature=adaptive_edges,
            share_edge_space=cfg.share_edge_space, attention=cfg.attention,
            rng=rng)

    # -- scoring ----------------------------------------------------------------

    def encode(self, node_type: NodeType, indices: np.ndarray,
               rng: Optional[np.random.Generator] = None,
               plan: Optional[EncodePlan] = None,
               use_draw_cache: bool = True) -> List[Tensor]:
        """Subspace points for a batch of nodes of one type."""
        return self.encoder.encode(node_type, indices, rng=rng, plan=plan,
                                   use_draw_cache=use_draw_cache)

    def pair_distance(self, relation: Relation, src_indices: np.ndarray,
                      dst_indices: np.ndarray,
                      rng: Optional[np.random.Generator] = None) -> Tensor:
        """Mixed-curvature distances for aligned (src, dst) index arrays."""
        src_points = self.encode(relation.source_type, src_indices, rng)
        dst_points = self.encode(relation.target_type, dst_indices, rng)
        return self.scorer.distance(relation, src_points, relation.source_type,
                                    dst_points, relation.target_type)

    def similarity(self, relation: Relation, src_indices: np.ndarray,
                   dst_indices: np.ndarray,
                   rng: Optional[np.random.Generator] = None) -> Tensor:
        """Fermi–Dirac link probability σ(t(r − dist)) (paper §IV-B-3)."""
        distance = self.pair_distance(relation, src_indices, dst_indices, rng)
        return fermi_dirac(distance, self.config.fermi_radius,
                           self.config.fermi_temperature)

    # -- loss --------------------------------------------------------------------

    @staticmethod
    def _resolve_plan(plans, role: str, node_type: NodeType):
        """Look up a pre-built plan for one endpoint role of a group.

        ``plans`` may be keyed by :class:`NodeType` (the encoder-plane
        parity hook) or by role — ``"source"`` / ``"target"`` — which is
        what the prefetching producer emits: same-type relations need
        *distinct* plans per role (shared draws are the common-random-
        numbers pathology described in ``_encode_group_frontier``), so a
        type-keyed dict cannot express them.
        """
        if not plans:
            return None
        plan = plans.get(role)
        if plan is not None:
            return plan
        return plans.get(node_type)

    def _encode_group_recursive(self, group: SampleBatch,
                                rng: np.random.Generator,
                                plans) -> Tuple[List[Tensor], List[Tensor],
                                                List[Tensor]]:
        """Reference encoding: source set and target set, no dedup."""
        relation = group.relation
        batch = group.src_idx.size
        plan = self._resolve_plan(plans, "source", relation.source_type)
        src_points = self.encode(relation.source_type, group.src_idx, rng,
                                 plan=plan)
        # positives and negatives share a type: one batched encode
        tgt_idx = np.concatenate([group.pos_idx, group.neg_idx.ravel()])
        plan = self._resolve_plan(plans, "target", relation.target_type)
        tgt_points = self.encode(relation.target_type, tgt_idx, rng,
                                 plan=plan)
        pos_points = [p[:batch] for p in tgt_points]
        neg_points = [p[batch:] for p in tgt_points]
        return src_points, pos_points, neg_points

    def _encode_group_frontier(self, group: SampleBatch,
                               rng: np.random.Generator,
                               plans) -> Tuple[List[Tensor], List[Tensor],
                                               List[Tensor]]:
        """Dedup encoding: one unique encode per endpoint role, gathered.

        The flattened ``(B, K)`` negative block overlaps heavily with the
        positives and with itself (negatives repeat across rows, walks
        revisit hot nodes), so ``pos ∪ neg`` is merged into a single
        deduplicated frontier encode per node type; the source set is
        deduplicated separately.  For the four cross-type relations that
        *is* one encode per node type.  For same-type relations
        (``q2q``/``i2i``) the source role deliberately keeps its own
        neighbour draws: collapsing source and target onto shared draws
        makes ``pos_sim`` and ``neg_sim`` move on common random numbers,
        which shrinks the variance of their difference and starves the
        margin hinge of gradient events — measured as a ~5-point
        next-day-AUC drop on the tiny pipeline, reproducible across
        seeds.
        """
        relation = group.relation
        batch = group.src_idx.size
        uniq_src, inv_src = np.unique(group.src_idx, return_inverse=True)
        plan = self._resolve_plan(plans, "source", relation.source_type)
        # use_draw_cache=False: a cross-step draw cache keys only on the
        # node, so letting the source role read it would re-couple both
        # endpoints of a same-type relation onto shared draws
        points = self.encode(relation.source_type, uniq_src, rng, plan=plan,
                             use_draw_cache=False)
        src_points = [ops.gather(p, inv_src) for p in points]
        merged = np.concatenate([group.pos_idx, group.neg_idx.ravel()])
        uniq_tgt, inv_tgt = np.unique(merged, return_inverse=True)
        plan = self._resolve_plan(plans, "target", relation.target_type)
        points = self.encode(relation.target_type, uniq_tgt, rng, plan=plan)
        pos_points = [ops.gather(p, inv_tgt[:batch]) for p in points]
        neg_points = [ops.gather(p, inv_tgt[batch:]) for p in points]
        return src_points, pos_points, neg_points

    def loss(self, samples: Union[SampleBatch, Sequence[TrainingSample]],
             rng: Optional[np.random.Generator] = None,
             plans: Optional[Dict[NodeType, EncodePlan]] = None) -> Tensor:
        """Triplet loss over a batch (paper Eq. 15 + Eq. 16 regulariser).

        Accepts a :class:`SampleBatch` from the array-native sampling
        plane directly, or a sequence of :class:`TrainingSample` from
        the looped reference path (grouped per relation as before).  On
        the frontier compute plane, ``src``/``pos``/``neg`` index sets
        are merged into one deduplicated encode per node type and the
        rows are gathered back out; the recursive plane keeps the
        original two-encode structure as the parity reference.  ``plans``
        optionally supplies pre-built
        :class:`~repro.models.plan.EncodePlan` objects whose captured
        neighbour draws both planes then share, keyed either by
        :class:`NodeType` (the parity hook used by the encoder-plane
        tests) or by endpoint role — ``"source"`` / ``"target"`` — the
        prefetching producer's contract (role keys win, and are the
        only way to give the two endpoints of a same-type relation
        distinct draws).
        """
        rng = rng or self.rng
        cfg = self.config
        total = None
        count = 0

        for group in as_sample_batches(samples):
            relation = group.relation
            src_idx = group.src_idx
            pos_idx = group.pos_idx
            neg_idx = group.neg_idx
            batch, k = neg_idx.shape

            if self.encoder.compute_plane == "frontier":
                src_points, pos_points, neg_points = \
                    self._encode_group_frontier(group, rng, plans)
            else:
                src_points, pos_points, neg_points = \
                    self._encode_group_recursive(group, rng, plans)

            # repeat source points K times to align with flattened negatives
            rep = np.repeat(np.arange(batch), k)
            src_rep = [p[rep] for p in src_points]

            pos_dist = self.scorer.distance(
                relation, src_points, relation.source_type,
                pos_points, relation.target_type)
            neg_dist = self.scorer.distance(
                relation, src_rep, relation.source_type,
                neg_points, relation.target_type)

            pos_sim = fermi_dirac(pos_dist, cfg.fermi_radius,
                                  cfg.fermi_temperature)
            neg_sim = fermi_dirac(neg_dist, cfg.fermi_radius,
                                  cfg.fermi_temperature)
            pos_rep = pos_sim[rep]
            hinge = ops.relu(cfg.margin + neg_sim - pos_rep)   # note below
            group_loss = ops.sum(hinge)

            if cfg.regularization > 0:
                # curved-space regulariser (Eq. 16): pull points toward
                # the origin of each subspace to stay in stable zones
                reg = None
                for points, node_type in ((src_points, relation.source_type),
                                          (pos_points, relation.target_type),
                                          (neg_points, relation.target_type)):
                    manifold = self.node_manifolds[node_type]
                    origin_like = [Tensor(np.zeros(p.shape)) for p in points]
                    dists = [factor.dist(p, o) for factor, p, o in
                             zip(manifold.factors, points, origin_like)]
                    term = ops.sum(ops.concatenate(dists, axis=-1))
                    reg = term if reg is None else reg + term
                group_loss = group_loss + cfg.regularization * reg

            total = group_loss if total is None else total + group_loss
            count += batch * k
        if total is None:
            return Tensor(np.asarray(0.0))
        return total / max(count, 1)

    # -- inference helpers ----------------------------------------------------------

    def build_full_plan(self, node_type: NodeType,
                        rng: Optional[np.random.Generator] = None,
                        draw_cache: Optional[NeighborDrawCache] = None
                        ) -> EncodePlan:
        """One :class:`EncodePlan` covering every node of ``node_type``.

        The sampling phase of offline inference: per-level unique
        frontiers over the full graph, draws captured once.  Passing a
        :class:`NeighborDrawCache` reuses draws across refreshes
        (GraphSAGE-style cached supports); the default is a fixed-seed
        generator so repeated offline materialisations are
        deterministic.
        """
        rng = rng or np.random.default_rng(12345)
        return build_full_graph_plan(self.graph, node_type,
                                     self.config.gcn_layers,
                                     self.config.neighbor_samples, rng,
                                     draw_cache=draw_cache)

    def encode_all(self, node_type: NodeType,
                   rng: Optional[np.random.Generator] = None,
                   plan: Optional[EncodePlan] = None) -> List[np.ndarray]:
        """Subspace embeddings for the whole vocabulary, plan-at-once.

        Builds (or reuses) one full-graph plan and runs the no-tape
        numpy compute phase — ``gcn_layers + 1`` fused vocabulary passes
        instead of ``N / batch_size`` recursive mini-batches.  Returns M
        arrays of shape ``(N, d_m)`` in vocabulary order; handed a
        partial ``plan``, rows follow ``plan.indices`` instead (the
        same contract as :meth:`encode` with a plan).
        """
        manifold = self.node_manifolds[node_type]
        if self.graph.num_nodes[node_type] == 0:
            return [np.zeros((0, factor.dim)) for factor in manifold.factors]
        if plan is None:
            plan = self.build_full_plan(node_type, rng)
        points = self.encoder.encode_from_plan_numpy(plan)
        out_map = plan.output_map()
        if (out_map.size == points[0].shape[0]
                and np.array_equal(out_map, np.arange(out_map.size))):
            return points    # full-graph plan: already vocabulary order
        return [p[out_map] for p in points]

    def embed_all(self, node_type: NodeType, batch_size: int = 256,
                  rng: Optional[np.random.Generator] = None,
                  method: str = "plan",
                  plan: Optional[EncodePlan] = None) -> List[np.ndarray]:
        """Materialise subspace embeddings for every node of a type.

        Returns M arrays of shape ``(N, d_m)``, ``d_m`` taken from the
        node type's manifold factors.

        ``method`` selects the compute path:

        - ``"plan"`` (default) — one full-graph
          :class:`~repro.models.plan.EncodePlan` + the no-tape numpy
          compute phase (:meth:`encode_all`);
        - ``"batch"`` — the per-batch reference: ``batch_size`` nodes at
          a time through :meth:`encode` under ``no_grad``.

        Seed policy: both paths default to a fresh
        ``default_rng(12345)``, but their *draw sequences* differ (one
        plan vs. many), so outputs only match when they share draws —
        pass the same full-graph ``plan`` to both and the two paths are
        bit-identical (the numpy compute phase mirrors the tensor ops
        exactly; tolerance 0, asserted in tests/test_inference_plane.py).
        """
        if method == "plan":
            return self.encode_all(node_type, rng=rng, plan=plan)
        if method != "batch":
            raise ValueError("embed_all method must be 'plan' or 'batch', "
                             "got %r" % (method,))
        rng = rng or np.random.default_rng(12345)
        n = self.graph.num_nodes[node_type]
        manifold = self.node_manifolds[node_type]
        chunks: List[List[np.ndarray]] = [[] for _ in range(len(manifold))]
        with no_grad():
            for start in range(0, n, batch_size):
                indices = np.arange(start, min(start + batch_size, n))
                points = self.encode(node_type, indices, rng, plan=plan)
                for m, point in enumerate(points):
                    chunks[m].append(point.data)
        # empty vocabularies still get correctly-shaped outputs; the dim
        # comes from the manifold factor, not config.subspace_dim, which
        # can go stale (factors are the authority on per-subspace width)
        return [np.concatenate(chunk, axis=0) if chunk else
                np.zeros((0, factor.dim))
                for chunk, factor in zip(chunks, manifold.factors)]

    def parameters(self) -> Iterable[Parameter]:
        yield from self.encoder.parameters()
        yield from self.scorer.parameters()

    def constrain(self) -> None:
        """Clamp all trainable curvatures after an optimiser step."""
        self.encoder.constrain()
        self.scorer.constrain()

    def curvature_report(self) -> Dict[str, List[float]]:
        """Learned curvatures per node type and edge space (for analysis)."""
        report: Dict[str, List[float]] = {}
        for node_type, manifold in self.node_manifolds.items():
            report["node:%s" % node_type.value] = manifold.kappas()
        for key, manifold in self.scorer.edge_manifolds.items():
            name = key if isinstance(key, str) else key.value
            report["edge:%s" % name] = manifold.kappas()
        return report


def make_model(name: str, graph: HetGraph, *, num_subspaces: int = 2,
               subspace_dim: int = 16, seed: int = 0,
               **overrides) -> AMCAD:
    """Factory for the named model variants of Tables VI–VIII.

    Recognised names (case-insensitive):

    - ``amcad`` — full model (adaptive spaces, fusion, projection,
      pairwise attention);
    - ``amcad_e`` / ``amcad_h`` / ``amcad_s`` / ``amcad_u`` — same
      architecture in Euclidean / hyperbolic / spherical / single
      unified space;
    - ``hyperml`` — shallow hyperbolic metric learning (no GCN/fusion,
      shared edge space);
    - ``hgcn`` — hyperbolic GCN (single hyperbolic space, no
      fusion/projection/attention);
    - ``gil`` — Euclidean×hyperbolic dual-geometry interaction;
    - ``m2gnn`` — fixed mixed-curvature product with *global* learned
      subspace weights;
    - ``product:<SIG>`` — product space with an explicit signature,
      e.g. ``product:HS``;
    - ablations: ``amcad-mixed``, ``amcad-curv``, ``amcad-fusion``,
      ``amcad-proj``, ``amcad-comb`` (Table VII rows).

    Every variant additionally accepts ``compute_plane="frontier"``
    (default; dedup-encode-gather context encoding) or ``"recursive"``
    (the original per-layer recursion, kept as the parity reference)
    through ``overrides`` — see :data:`repro.models.encoder.COMPUTE_PLANES` —
    and ``kernels="auto"`` / ``"numpy"`` / ``"compiled"`` selecting the
    geometry kernel implementations (compiled requires the
    ``[compiled]`` numba extra) — see
    :data:`repro.geometry.kernels.KERNEL_MODES`.
    """
    key = name.lower()
    base = dict(num_subspaces=num_subspaces, subspace_dim=subspace_dim,
                seed=seed)
    base.update(overrides)

    if key == "amcad":
        cfg = AMCADConfig(space="adaptive", **base)
    elif key == "amcad_e":
        cfg = AMCADConfig(space="euclidean", **base)
    elif key == "amcad_h":
        cfg = AMCADConfig(space="hyperbolic", **base)
    elif key == "amcad_s":
        cfg = AMCADConfig(space="spherical", **base)
    elif key == "amcad_u":
        base["num_subspaces"] = 1
        base["subspace_dim"] = num_subspaces * subspace_dim
        cfg = AMCADConfig(space="unified", **base)
    elif key == "hyperml":
        cfg = AMCADConfig(space="hyperbolic", gcn_layers=0, use_fusion=False,
                          share_edge_space=True, attention="uniform",
                          adaptive_edge_curvature=False, **base)
    elif key == "hgcn":
        base["num_subspaces"] = 1
        base["subspace_dim"] = num_subspaces * subspace_dim
        cfg = AMCADConfig(space="hyperbolic", use_fusion=False,
                          share_edge_space=True, attention="uniform",
                          adaptive_edge_curvature=False, **base)
    elif key == "gil":
        base["num_subspaces"] = 2
        cfg = AMCADConfig(space="EH", use_fusion=True, share_edge_space=True,
                          attention="pair", adaptive_edge_curvature=False,
                          **base)
    elif key == "m2gnn":
        cfg = AMCADConfig(space="HS" if num_subspaces == 2 else "hyperbolic",
                          use_fusion=False, share_edge_space=True,
                          attention="global", adaptive_edge_curvature=False,
                          **base)
    elif key.startswith("product:"):
        signature = name.split(":", 1)[1].upper()
        base["num_subspaces"] = len(signature)
        cfg = AMCADConfig(space=signature, use_fusion=False,
                          share_edge_space=True, attention="uniform",
                          adaptive_edge_curvature=False, **base)
    elif key == "amcad-mixed":
        base["num_subspaces"] = 1
        base["subspace_dim"] = num_subspaces * subspace_dim
        cfg = AMCADConfig(space="unified", **base)
    elif key == "amcad-curv":
        cfg = AMCADConfig(space="euclidean", **base)
    elif key == "amcad-fusion":
        cfg = AMCADConfig(space="adaptive", use_fusion=False, **base)
    elif key == "amcad-proj":
        cfg = AMCADConfig(space="adaptive", share_edge_space=True, **base)
    elif key == "amcad-comb":
        cfg = AMCADConfig(space="adaptive", attention="uniform", **base)
    else:
        raise ValueError(
            "unknown model name %r; choose one of: %s, or 'product:<SIG>' "
            "with a signature over 'EHSU' (e.g. 'product:HS')"
            % (name, ", ".join(MODEL_VARIANTS)))
    return AMCAD(graph, cfg)
