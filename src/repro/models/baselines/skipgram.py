"""Skip-gram with negative sampling (SGNS) over global node ids.

The shared trainer behind DeepWalk, LINE(1st/2nd), Node2Vec and
Metapath2Vec.  Gradients are hand-derived (the SGNS objective is a
two-layer log-bilinear model), which keeps the Euclidean baselines an
order of magnitude faster than routing them through the autodiff tape —
important because Table VI trains five of them.

Objective for a pair (u, v) with negatives {n}::

    L = -log σ(e_u · c_v) - Σ_n log σ(-e_u · c_n)

With ``use_context_table=False`` the context table *is* the embedding
table (LINE first-order style); with ``True`` a separate context table
is used (LINE second-order / word2vec style).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.graph.alias import AliasSampler
from repro.graph.hetgraph import HetGraph
from repro.graph.schema import NodeType, Relation
from repro.models.baselines.walks import GlobalIdSpace


@dataclasses.dataclass
class SkipGramConfig:
    """Hyper-parameters of the SGNS trainer."""

    dim: int = 32
    num_negatives: int = 5
    learning_rate: float = 0.05
    batch_size: int = 256
    use_context_table: bool = True
    degree_smoothing: float = 0.75
    seed: int = 0


class SkipGramModel:
    """A shallow embedding model over the flattened node id space."""

    def __init__(self, graph: HetGraph, config: SkipGramConfig, generator):
        self.graph = graph
        self.config = config
        self.generator = generator
        self.ids = GlobalIdSpace(graph)
        rng = np.random.default_rng(config.seed)
        self.rng = rng
        scale = 0.5 / config.dim
        self.embeddings = rng.normal(scale=scale,
                                     size=(self.ids.total, config.dim))
        if config.use_context_table:
            self.contexts = np.zeros((self.ids.total, config.dim))
        else:
            self.contexts = self.embeddings
        degrees = np.zeros(self.ids.total)
        for node_type in NodeType:
            offset = self.ids.offsets[node_type]
            n = graph.num_nodes[node_type]
            degrees[offset:offset + n] = graph.degree(node_type)
        weights = degrees ** config.degree_smoothing + 1e-3
        self._negative_sampler = AliasSampler(weights)

    # -- training ------------------------------------------------------------

    def _step(self, centers: np.ndarray, contexts: np.ndarray) -> float:
        """One SGNS minibatch update; returns mean loss."""
        cfg = self.config
        k = cfg.num_negatives
        negatives = self._negative_sampler.sample(
            self.rng, size=(centers.size, k))

        e_u = self.embeddings[centers]                     # (B, d)
        c_v = self.contexts[contexts]                      # (B, d)
        c_n = self.contexts[negatives]                     # (B, k, d)

        pos_logits = np.einsum("bd,bd->b", e_u, c_v)
        neg_logits = np.einsum("bd,bkd->bk", e_u, c_n)
        pos_sig = 1.0 / (1.0 + np.exp(-pos_logits))
        neg_sig = 1.0 / (1.0 + np.exp(-neg_logits))

        loss = (-np.log(np.maximum(pos_sig, 1e-12)).mean()
                - np.log(np.maximum(1.0 - neg_sig, 1e-12)).sum(axis=1).mean())

        g_pos = (pos_sig - 1.0)[:, None]                   # d/d(pos_logit)
        g_neg = neg_sig[..., None]                         # d/d(neg_logit)

        grad_e = g_pos * c_v + np.einsum("bkd,bko->bd", c_n, g_neg)
        grad_cv = g_pos * e_u
        grad_cn = g_neg * e_u[:, None, :]

        lr = cfg.learning_rate
        np.add.at(self.embeddings, centers, -lr * grad_e)
        np.add.at(self.contexts, contexts, -lr * grad_cv)
        np.add.at(self.contexts, negatives.ravel(),
                  -lr * grad_cn.reshape(-1, cfg.dim))
        return float(loss)

    def train(self, num_pairs: int, log_every: int = 0) -> float:
        """Stream pairs from the generator and run SGNS updates."""
        cfg = self.config
        batch_centers, batch_contexts = [], []
        last_loss = 0.0
        seen = 0
        for center, context in self.generator.pairs(num_pairs):
            batch_centers.append(center)
            batch_contexts.append(context)
            if len(batch_centers) == cfg.batch_size:
                last_loss = self._step(np.asarray(batch_centers),
                                       np.asarray(batch_contexts))
                seen += cfg.batch_size
                if log_every and seen % log_every == 0:
                    print("sgns pairs=%d loss=%.4f" % (seen, last_loss))
                batch_centers, batch_contexts = [], []
        if batch_centers:
            last_loss = self._step(np.asarray(batch_centers),
                                   np.asarray(batch_contexts))
        return last_loss

    # -- evaluation interface --------------------------------------------------

    def similarity(self, relation: Relation, src_indices: np.ndarray,
                   dst_indices: np.ndarray) -> np.ndarray:
        """Dot-product similarity for typed index arrays (higher = closer)."""
        src = self.ids.to_global(relation.source_type, src_indices)
        dst = self.ids.to_global(relation.target_type, dst_indices)
        return np.einsum("bd,bd->b", self.embeddings[src],
                         self.embeddings[dst])

    def embed(self, node_type: NodeType,
              indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Embeddings for nodes of a type (all nodes when unspecified)."""
        n = self.graph.num_nodes[node_type]
        if indices is None:
            indices = np.arange(n)
        return self.embeddings[self.ids.to_global(node_type, indices)]
