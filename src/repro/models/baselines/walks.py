"""Training-pair generators for the skip-gram baselines.

All generators speak *global* node ids: the heterogeneous graph is
flattened into one id space (queries, then items, then ads) because
DeepWalk/LINE/Node2Vec are homogeneous models — precisely the
limitation the paper calls out when explaining why AMCAD_E beats them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.graph.hetgraph import HetGraph
from repro.graph.metapath import MetaPathWalker
from repro.graph.schema import NodeType


class GlobalIdSpace:
    """Bijection between typed node refs and one flat id space."""

    def __init__(self, graph: HetGraph):
        self.offsets: Dict[NodeType, int] = {}
        offset = 0
        for node_type in NodeType:
            self.offsets[node_type] = offset
            offset += graph.num_nodes[node_type]
        self.total = offset

    def to_global(self, node_type: NodeType, index) -> np.ndarray:
        return np.asarray(index) + self.offsets[node_type]


def _flat_adjacency(graph: HetGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR over global ids merging every edge type/direction."""
    ids = GlobalIdSpace(graph)
    srcs, dsts, weights = [], [], []
    for (s_type, _edge, d_type), csr in graph._adj.items():
        n_src = graph.num_nodes[s_type]
        src_local = np.repeat(np.arange(n_src), np.diff(csr.indptr))
        srcs.append(src_local + ids.offsets[s_type])
        dsts.append(csr.indices + ids.offsets[d_type])
        weights.append(csr.weights)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    weight = np.concatenate(weights)
    order = np.argsort(src, kind="stable")
    src, dst, weight = src[order], dst[order], weight[order]
    counts = np.bincount(src, minlength=ids.total)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indptr, dst.astype(np.int64), weight


class DeepWalkGenerator:
    """Uniform truncated random walks + window co-occurrence pairs."""

    def __init__(self, graph: HetGraph, walk_length: int = 8, window: int = 3,
                 seed: int = 0):
        self.ids = GlobalIdSpace(graph)
        self.indptr, self.indices, self.weights = _flat_adjacency(graph)
        self.walk_length = int(walk_length)
        self.window = int(window)
        self.rng = np.random.default_rng(seed)
        self._starts = np.flatnonzero(np.diff(self.indptr) > 0)

    def _neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def _walk(self, start: int) -> List[int]:
        trail = [start]
        current = start
        for _ in range(self.walk_length - 1):
            neigh = self._neighbors(current)
            if neigh.size == 0:
                break
            current = int(neigh[self.rng.integers(neigh.size)])
            trail.append(current)
        return trail

    def pairs(self, num_pairs: int) -> Iterator[Tuple[int, int]]:
        produced = 0
        while produced < num_pairs:
            start = int(self._starts[self.rng.integers(self._starts.size)])
            trail = self._walk(start)
            for i, center in enumerate(trail):
                lo = max(0, i - self.window)
                hi = min(len(trail), i + self.window + 1)
                for j in range(lo, hi):
                    if j == i:
                        continue
                    yield (center, trail[j])
                    produced += 1
                    if produced >= num_pairs:
                        return


class Node2VecGenerator(DeepWalkGenerator):
    """Second-order biased walks (return parameter p, in-out parameter q)."""

    def __init__(self, graph: HetGraph, walk_length: int = 8, window: int = 3,
                 p: float = 1.0, q: float = 0.5, seed: int = 0):
        super().__init__(graph, walk_length, window, seed)
        self.p = float(p)
        self.q = float(q)
        self._neighbor_sets: Dict[int, frozenset] = {}

    def _neighbor_set(self, node: int) -> frozenset:
        cached = self._neighbor_sets.get(node)
        if cached is None:
            cached = frozenset(self._neighbors(node).tolist())
            self._neighbor_sets[node] = cached
        return cached

    def _walk(self, start: int) -> List[int]:
        trail = [start]
        previous: Optional[int] = None
        current = start
        for _ in range(self.walk_length - 1):
            neigh = self._neighbors(current)
            if neigh.size == 0:
                break
            if previous is None:
                nxt = int(neigh[self.rng.integers(neigh.size)])
            else:
                prev_neigh = self._neighbor_set(previous)
                bias = np.where(neigh == previous, 1.0 / self.p,
                                np.where([n in prev_neigh for n in neigh],
                                         1.0, 1.0 / self.q))
                bias = bias / bias.sum()
                nxt = int(self.rng.choice(neigh, p=bias))
            trail.append(nxt)
            previous, current = current, nxt
        return trail


class LineEdgeGenerator:
    """Direct edge sampling (LINE first/second order proximity)."""

    def __init__(self, graph: HetGraph, seed: int = 0):
        self.ids = GlobalIdSpace(graph)
        indptr, indices, weights = _flat_adjacency(graph)
        src = np.repeat(np.arange(self.ids.total), np.diff(indptr))
        self.src = src
        self.dst = indices
        probs = weights / weights.sum()
        self._probs = probs
        self.rng = np.random.default_rng(seed)

    def pairs(self, num_pairs: int) -> Iterator[Tuple[int, int]]:
        picks = self.rng.choice(self.src.size, size=num_pairs, p=self._probs)
        for edge in picks:
            yield (int(self.src[edge]), int(self.dst[edge]))


class MetapathPairGenerator:
    """Positive pairs from the Table III meta-path walker (Metapath2Vec)."""

    def __init__(self, graph: HetGraph, seed: int = 0):
        self.ids = GlobalIdSpace(graph)
        self.walker = MetaPathWalker(graph)
        self.rng = np.random.default_rng(seed)

    def pairs(self, num_pairs: int) -> Iterator[Tuple[int, int]]:
        produced = 0
        for pair in self.walker.iter_pairs(self.rng):
            src = int(self.ids.to_global(pair.source.node_type,
                                         pair.source.index))
            dst = int(self.ids.to_global(pair.target.node_type,
                                         pair.target.index))
            yield (src, dst)
            produced += 1
            if produced >= num_pairs:
                return
