"""Training-pair generators for the skip-gram baselines.

All generators speak *global* node ids: the heterogeneous graph is
flattened into one id space (queries, then items, then ads) because
DeepWalk/LINE/Node2Vec are homogeneous models — precisely the
limitation the paper calls out when explaining why AMCAD_E beats them.

The walkers run on the same batched alias machinery as the meta-path
training plane (:class:`~repro.graph.alias.CSRAliasTables`): every
active walk advances one level per vectorised draw, and window pairs
fall out of array shifts.  Node2vec's second-order bias is applied by
rejection — propose a first-order step, accept with ``bias/max_bias``
— so the biased walk stays batched without materialising per-edge
alias tables.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.graph.alias import AliasSampler, CSRAliasTables
from repro.graph.hetgraph import HetGraph
from repro.graph.metapath import MetaPathWalker
from repro.graph.schema import NodeType


class GlobalIdSpace:
    """Bijection between typed node refs and one flat id space."""

    def __init__(self, graph: HetGraph):
        self.offsets: Dict[NodeType, int] = {}
        offset = 0
        for node_type in NodeType:
            self.offsets[node_type] = offset
            offset += graph.num_nodes[node_type]
        self.total = offset

    def to_global(self, node_type: NodeType, index) -> np.ndarray:
        return np.asarray(index) + self.offsets[node_type]


def _flat_adjacency(graph: HetGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR over global ids merging every edge type/direction.

    Neighbour lists are sorted within each row so membership tests
    (node2vec's "is the candidate a neighbour of the previous node")
    reduce to one searchsorted over ``row * N + neighbour`` keys.
    """
    ids = GlobalIdSpace(graph)
    srcs, dsts, weights = [], [], []
    for (s_type, _edge, d_type), csr in graph._adj.items():
        n_src = graph.num_nodes[s_type]
        src_local = np.repeat(np.arange(n_src), np.diff(csr.indptr))
        srcs.append(src_local + ids.offsets[s_type])
        dsts.append(csr.indices + ids.offsets[d_type])
        weights.append(csr.weights)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    weight = np.concatenate(weights)
    order = np.lexsort((dst, src))
    src, dst, weight = src[order], dst[order], weight[order]
    counts = np.bincount(src, minlength=ids.total)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indptr, dst.astype(np.int64), weight


class DeepWalkGenerator:
    """Uniform truncated random walks + window co-occurrence pairs.

    Walks advance in blocks of :attr:`BLOCK_WALKS`: each level is one
    batched draw from per-row alias tables (uniform weights — DeepWalk
    ignores edge weights), and window pairs are extracted with array
    shifts over the trail matrix.
    """

    BLOCK_WALKS = 128

    def __init__(self, graph: HetGraph, walk_length: int = 8, window: int = 3,
                 seed: int = 0):
        self.ids = GlobalIdSpace(graph)
        self.indptr, self.indices, self.weights = _flat_adjacency(graph)
        self.walk_length = int(walk_length)
        self.window = int(window)
        self.rng = np.random.default_rng(seed)
        self._starts = np.flatnonzero(np.diff(self.indptr) > 0)
        self._tables = CSRAliasTables(self.indptr, self.indices,
                                      np.ones(self.indices.size))

    def _neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def _step_block(self, trails: np.ndarray, step: int,
                    current: np.ndarray) -> np.ndarray:
        """Next node per active walk (``-1`` dead-ends a walk)."""
        return self._tables.draw(self.rng, current)

    def _walk_block(self, size: int) -> np.ndarray:
        """``(size, walk_length)`` trails, ``-1``-padded after dead ends."""
        trails = np.full((size, self.walk_length), -1, dtype=np.int64)
        current = self._starts[self.rng.integers(self._starts.size, size=size)]
        trails[:, 0] = current
        alive = np.ones(size, dtype=bool)
        for step in range(1, self.walk_length):
            nxt = self._step_block(trails, step, current)
            alive &= nxt >= 0
            if not alive.any():
                break
            trails[alive, step] = nxt[alive]
            current = np.where(alive, nxt, current)
        return trails

    def _window_pairs(self, trails: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """All (center, context) pairs within the window, both directions."""
        centers, contexts = [], []
        for offset in range(1, self.window + 1):
            if offset >= trails.shape[1]:
                break
            left = trails[:, :-offset].ravel()
            right = trails[:, offset:].ravel()
            valid = (left >= 0) & (right >= 0)
            centers.append(left[valid])
            contexts.append(right[valid])
            centers.append(right[valid])
            contexts.append(left[valid])
        if not centers:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(centers), np.concatenate(contexts)

    def pairs(self, num_pairs: int) -> Iterator[Tuple[int, int]]:
        produced = 0
        while produced < num_pairs:
            trails = self._walk_block(self.BLOCK_WALKS)
            centers, contexts = self._window_pairs(trails)
            for center, context in zip(centers.tolist(), contexts.tolist()):
                yield (center, context)
                produced += 1
                if produced >= num_pairs:
                    return


class Node2VecGenerator(DeepWalkGenerator):
    """Second-order biased walks (return parameter p, in-out parameter q).

    The bias over a candidate ``c`` from current ``v`` given previous
    ``u`` is ``1/p`` (``c == u``), ``1`` (``c ∈ N(u)``) or ``1/q``.
    Rather than normalising it per step, each walk proposes a
    first-order step through the shared alias tables and accepts with
    probability ``bias / max_bias`` — the accepted marginal equals the
    normalised bias exactly, and rejected walks simply redraw in the
    next vectorised round.
    """

    MAX_REJECTION_ROUNDS = 64

    def __init__(self, graph: HetGraph, walk_length: int = 8, window: int = 3,
                 p: float = 1.0, q: float = 0.5, seed: int = 0):
        super().__init__(graph, walk_length, window, seed)
        if p <= 0 or q <= 0:
            raise ValueError("node2vec p and q must be positive")
        self.p = float(p)
        self.q = float(q)
        rows = np.repeat(np.arange(self.ids.total), np.diff(self.indptr))
        # rows are sorted and neighbours sorted within rows, so these
        # keys are globally sorted — one searchsorted tests membership
        self._edge_keys = rows * self.ids.total + self.indices

    def _has_edge(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        if self._edge_keys.size == 0:
            return np.zeros(src.shape, dtype=bool)
        keys = src * self.ids.total + dst
        pos = np.minimum(np.searchsorted(self._edge_keys, keys),
                         self._edge_keys.size - 1)
        return self._edge_keys[pos] == keys

    def _step_block(self, trails: np.ndarray, step: int,
                    current: np.ndarray) -> np.ndarray:
        proposal = self._tables.draw(self.rng, current)
        if step < 2:
            return proposal
        previous = trails[:, step - 2]
        inv_p, inv_q = 1.0 / self.p, 1.0 / self.q
        max_bias = max(inv_p, 1.0, inv_q)
        accepted = proposal.copy()
        pending = (accepted >= 0) & (previous >= 0)
        for _ in range(self.MAX_REJECTION_ROUNDS):
            idx = np.flatnonzero(pending)
            if idx.size == 0:
                break
            candidate = accepted[idx]
            bias = np.where(candidate == previous[idx], inv_p,
                            np.where(self._has_edge(previous[idx], candidate),
                                     1.0, inv_q))
            keep = self.rng.random(idx.size) * max_bias < bias
            pending[idx[keep]] = False
            redo = idx[~keep]
            if redo.size:
                accepted[redo] = self._tables.draw(self.rng, current[redo])
        return accepted


class LineEdgeGenerator:
    """Direct edge sampling (LINE first/second order proximity)."""

    def __init__(self, graph: HetGraph, seed: int = 0):
        self.ids = GlobalIdSpace(graph)
        indptr, indices, weights = _flat_adjacency(graph)
        src = np.repeat(np.arange(self.ids.total), np.diff(indptr))
        self.src = src
        self.dst = indices
        self._sampler = AliasSampler(weights)
        self.rng = np.random.default_rng(seed)

    def pairs(self, num_pairs: int) -> Iterator[Tuple[int, int]]:
        picks = self._sampler.sample(self.rng, size=num_pairs)
        for edge in picks:
            yield (int(self.src[edge]), int(self.dst[edge]))


class MetapathPairGenerator:
    """Positive pairs from the Table III meta-path walker (Metapath2Vec).

    Runs on the walker's batched plane: blocks of walks advance with
    vectorised alias draws and the typed pairs are mapped into the
    global id space array-wise.
    """

    BLOCK_WALKS = 120

    def __init__(self, graph: HetGraph, seed: int = 0):
        self.ids = GlobalIdSpace(graph)
        self.walker = MetaPathWalker(graph)
        self.rng = np.random.default_rng(seed)

    def pairs(self, num_pairs: int) -> Iterator[Tuple[int, int]]:
        produced = 0
        while produced < num_pairs:
            blocks = self.walker.sample_pair_blocks(self.rng, self.BLOCK_WALKS)
            for block in blocks:
                src = self.ids.to_global(block.relation.source_type,
                                         block.src_idx)
                dst = self.ids.to_global(block.relation.target_type,
                                         block.dst_idx)
                for s, d in zip(src.tolist(), dst.tolist()):
                    yield (s, d)
                    produced += 1
                    if produced >= num_pairs:
                        return
