"""Baseline models of paper Table VI.

Two families:

- **Random-walk / skip-gram baselines** (this module's
  :mod:`~repro.models.baselines.skipgram` and
  :mod:`~repro.models.baselines.walks`): DeepWalk, LINE (1st and 2nd
  order), Node2Vec and Metapath2Vec.  These are shallow Euclidean
  embedding models trained with skip-gram negative sampling, using
  hand-derived gradients (they need no manifold machinery and train an
  order of magnitude faster that way).

- **Geometric baselines** (HyperML, HGCN, GIL, M2GNN, product space):
  these share AMCAD's architecture with frozen design switches and are
  produced by :func:`repro.models.amcad.make_model`.
"""

from repro.models.baselines.skipgram import SkipGramConfig, SkipGramModel
from repro.models.baselines.walks import (
    DeepWalkGenerator,
    LineEdgeGenerator,
    MetapathPairGenerator,
    Node2VecGenerator,
)

SKIPGRAM_BASELINES = ("deepwalk", "line1", "line2", "node2vec", "metapath2vec")


def make_baseline(name: str, graph, *, dim: int = 32, seed: int = 0,
                  **kwargs) -> SkipGramModel:
    """Build a skip-gram baseline with its walk generator attached."""
    key = name.lower()
    if key == "deepwalk":
        generator = DeepWalkGenerator(graph, seed=seed)
        config = SkipGramConfig(dim=dim, use_context_table=False, seed=seed)
    elif key == "line1":
        generator = LineEdgeGenerator(graph, seed=seed)
        config = SkipGramConfig(dim=dim, use_context_table=False, seed=seed)
    elif key == "line2":
        generator = LineEdgeGenerator(graph, seed=seed)
        config = SkipGramConfig(dim=dim, use_context_table=True, seed=seed)
    elif key == "node2vec":
        generator = Node2VecGenerator(graph, seed=seed,
                                      p=kwargs.pop("p", 1.0),
                                      q=kwargs.pop("q", 0.5))
        config = SkipGramConfig(dim=dim, use_context_table=False, seed=seed)
    elif key == "metapath2vec":
        generator = MetapathPairGenerator(graph, seed=seed)
        config = SkipGramConfig(dim=dim, use_context_table=False, seed=seed)
    else:
        raise ValueError("unknown baseline %r" % name)
    return SkipGramModel(graph, config, generator)


__all__ = [
    "SkipGramModel",
    "SkipGramConfig",
    "SKIPGRAM_BASELINES",
    "make_baseline",
    "DeepWalkGenerator",
    "Node2VecGenerator",
    "LineEdgeGenerator",
    "MetapathPairGenerator",
]
