"""Node-level adaptive mixed-curvature encoder (paper §IV-B-1, Fig. 5).

Three stages:

1. **Inductive learning** (Eq. 4) — feature embeddings are concatenated
   in tangent space and exponentially mapped into each of the M
   subspaces of the node type's product manifold;
2. **Context encoding** (Eq. 5–6) — a tangent-space GCN: sampled
   neighbours of each type are log-mapped to the origin's tangent
   space, mean-aggregated per neighbour type, summed across types,
   concatenated with the node's own tangent vector, then pushed back
   through ``exp → ⊗κ → σκ``;
3. **Space fusion** (Eq. 7–8) — the average of all subspace tangent
   vectors (the global fused representation) is concatenated back into
   each subspace so subspaces co-adapt instead of training in
   isolation.

Each node type owns its own product manifold, i.e. its own set of
curvatures ``κ_{m,t}`` — queries can become hyperbolic while ads go
spherical, which is exactly the heterogeneity argument of the paper.

Implementation note — Möbius biases.  Every curved linear stage here is
``W ⊗κ x ⊕κ exp^κ_0(b)`` rather than the bias-free ``W ⊗κ x`` of the
paper's equations.  The Möbius bias (standard in hyperbolic neural
networks — Ganea et al., the paper's reference [26], and HGCN) is not
cosmetic: in exact arithmetic a bias-free chain of
``exp^κ_0 → log^κ_0`` maps cancels κ entirely, which would make the
node-level curvatures unidentifiable (zero gradient).  Möbius addition
of a bias point is the κ-dependent operation that makes "adaptive"
curvature actually adapt.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter, Tensor
from repro.geometry.product import ProductManifold
from repro.graph.hetgraph import HetGraph
from repro.graph.schema import NodeType
from repro.models.features import FeatureEmbedding, glorot


class NodeEncoder:
    """Maps typed node indices to points in per-type mixed-curvature spaces.

    Parameters
    ----------
    graph:
        Supplies features and neighbour sampling.
    manifolds:
        ``node type -> ProductManifold`` (all with M factors of equal dim).
    feature_dim:
        Width of each feature-field embedding.
    gcn_layers:
        L, number of context-encoding rounds (0 disables the GCN).
    neighbor_samples:
        Neighbours sampled per (node, neighbour-type) during aggregation.
    use_fusion:
        Enable the space-fusion stage (ablation ``- fusion``).
    """

    def __init__(self, graph: HetGraph,
                 manifolds: Dict[NodeType, ProductManifold],
                 feature_dim: int = 8, gcn_layers: int = 1,
                 neighbor_samples: int = 4, use_fusion: bool = True,
                 rng: Optional[np.random.Generator] = None):
        self.graph = graph
        self.manifolds = manifolds
        self.gcn_layers = int(gcn_layers)
        self.neighbor_samples = int(neighbor_samples)
        self.use_fusion = bool(use_fusion)
        rng = rng or np.random.default_rng(0)
        self._rng = rng

        reference = next(iter(manifolds.values()))
        self.num_subspaces = len(reference)
        self.subspace_dim = reference.factors[0].dim
        for manifold in manifolds.values():
            if len(manifold) != self.num_subspaces:
                raise ValueError("all node types must use the same number of subspaces")

        self.embeddings: Dict[NodeType, FeatureEmbedding] = {}
        vocab_sizes = self._vocab_sizes(graph)
        for node_type, sizes in vocab_sizes.items():
            self.embeddings[node_type] = FeatureEmbedding(
                node_type, sizes, feature_dim, self.num_subspaces,
                self.subspace_dim, rng)

        # GCN weights W^{m,t,l}: (2d -> d), paper Eq. 6
        self.gcn_weights: Dict[tuple, Parameter] = {}
        for node_type in self.embeddings:
            for layer in range(self.gcn_layers):
                for m in range(self.num_subspaces):
                    self.gcn_weights[(node_type, layer, m)] = Parameter(
                        glorot(rng, 2 * self.subspace_dim, self.subspace_dim))

        # fusion weights W1^{m,t}: (2d -> d), paper Eq. 8
        self.fusion_weights: Dict[tuple, Parameter] = {}
        if self.use_fusion:
            for node_type in self.embeddings:
                for m in range(self.num_subspaces):
                    self.fusion_weights[(node_type, m)] = Parameter(
                        glorot(rng, 2 * self.subspace_dim, self.subspace_dim))

        # Möbius biases (tangent parameters, see module docstring)
        self.inductive_bias: Dict[tuple, Parameter] = {}
        self.gcn_bias: Dict[tuple, Parameter] = {}
        for node_type in self.embeddings:
            for m in range(self.num_subspaces):
                self.inductive_bias[(node_type, m)] = Parameter(
                    rng.normal(scale=0.05, size=self.subspace_dim))
                for layer in range(self.gcn_layers):
                    self.gcn_bias[(node_type, layer, m)] = Parameter(
                        rng.normal(scale=0.05, size=self.subspace_dim))

    @staticmethod
    def _vocab_sizes(graph: HetGraph) -> Dict[NodeType, Dict[str, int]]:
        """Infer per-field vocabulary sizes from the stored features."""
        sizes: Dict[NodeType, Dict[str, int]] = {}
        for node_type, fields in graph.features.items():
            sizes[node_type] = {}
            for field, values in fields.items():
                values = np.asarray(values)
                sizes[node_type][field] = int(values.max()) + 1
        return sizes

    # -- stage 1: inductive learning (Eq. 4) ------------------------------------

    def inductive(self, node_type: NodeType, indices: np.ndarray) -> List[Tensor]:
        """Initial subspace points from features only (Eq. 4 + Möbius bias)."""
        tangents = self.embeddings[node_type].forward(
            self.graph.features[node_type], indices)
        manifold = self.manifolds[node_type]
        out = []
        for m, (factor, tangent) in enumerate(zip(manifold.factors, tangents)):
            point = factor.expmap0(tangent)
            bias_point = factor.expmap0(self.inductive_bias[(node_type, m)])
            out.append(factor.project(factor.mobius_add(point, bias_point)))
        return out

    # -- stage 2: context encoding (Eq. 5-6) -------------------------------------

    def _aggregate(self, node_type: NodeType, indices: np.ndarray,
                   layer: int, rng: np.random.Generator) -> List[Tensor]:
        """One GCN round: returns updated subspace points."""
        self_points = self._encode_layer(node_type, indices, layer, rng)
        manifold = self.manifolds[node_type]
        batch = len(indices)
        k = self.neighbor_samples

        # tangent aggregation per subspace, summed over neighbour types
        neighbor_sums: List[Optional[Tensor]] = [None] * self.num_subspaces
        for other_type in NodeType:
            if self.graph.num_nodes[other_type] == 0:
                continue
            neigh_ids, mask = self.graph.sample_neighbors(
                rng, node_type, indices, other_type, k)
            if mask.sum() == 0:
                continue
            neigh_points = self._encode_layer(
                other_type, neigh_ids.ravel(), layer, rng)
            other_manifold = self.manifolds[other_type]
            mask_t = Tensor(mask[..., None])                    # (B, k, 1)
            denom = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
            for m in range(self.num_subspaces):
                tangent = other_manifold.factors[m].logmap0(neigh_points[m])
                tangent = tangent.reshape(batch, k, self.subspace_dim)
                pooled = ops.sum(tangent * mask_t, axis=1) / denom
                if neighbor_sums[m] is None:
                    neighbor_sums[m] = pooled
                else:
                    neighbor_sums[m] = neighbor_sums[m] + pooled

        updated: List[Tensor] = []
        for m in range(self.num_subspaces):
            factor = self.manifolds[node_type].factors[m]
            self_tangent = factor.logmap0(self_points[m])
            agg = neighbor_sums[m]
            if agg is None:
                agg = Tensor(np.zeros((batch, self.subspace_dim)))
            combined = ops.concatenate([agg, self_tangent], axis=-1)  # Eq. 5
            weight = self.gcn_weights[(node_type, layer, m)]
            # Eq. 6: exp -> Mobius matvec (+ Mobius bias) -> curved activation
            point = factor.expmap0(combined)
            point = factor.matvec(weight, point)
            bias_point = factor.expmap0(self.gcn_bias[(node_type, layer, m)])
            point = factor.mobius_add(point, bias_point)
            point = factor.activation(point, ops.tanh)
            updated.append(factor.project(point))
        return updated

    def _encode_layer(self, node_type: NodeType, indices: np.ndarray,
                      layer: int, rng: np.random.Generator) -> List[Tensor]:
        if layer == 0:
            return self.inductive(node_type, indices)
        return self._aggregate(node_type, indices, layer - 1, rng)

    # -- stage 3: space fusion (Eq. 7-8) --------------------------------------------

    def _fuse(self, node_type: NodeType, points: List[Tensor]) -> List[Tensor]:
        manifold = self.manifolds[node_type]
        tangents = [factor.logmap0(point)
                    for factor, point in zip(manifold.factors, points)]
        stacked = ops.stack(tangents, axis=0)
        fused = ops.mean(stacked, axis=0)                     # Eq. 7
        out: List[Tensor] = []
        for m, factor in enumerate(manifold.factors):
            combined = ops.concatenate([fused, tangents[m]], axis=-1)
            weight = self.fusion_weights[(node_type, m)]
            point = factor.expmap0(ops.matmul(combined, weight))  # Eq. 8
            out.append(factor.project(point))
        return out

    # -- public entry point ----------------------------------------------------------

    def encode(self, node_type: NodeType, indices: np.ndarray,
               rng: Optional[np.random.Generator] = None) -> List[Tensor]:
        """Full node representation: one point tensor per subspace.

        Output: list of M tensors shaped ``(len(indices), subspace_dim)``.
        """
        rng = rng or self._rng
        indices = np.asarray(indices, dtype=np.int64)
        points = self._encode_layer(node_type, indices, self.gcn_layers, rng)
        if self.use_fusion:
            points = self._fuse(node_type, points)
        return points

    def parameters(self) -> Iterable[Parameter]:
        for embedding in self.embeddings.values():
            yield from embedding.parameters()
        yield from self.gcn_weights.values()
        yield from self.fusion_weights.values()
        yield from self.inductive_bias.values()
        yield from self.gcn_bias.values()
        for manifold in self.manifolds.values():
            yield from manifold.parameters()

    def constrain(self) -> None:
        """Clamp all curvatures to their stability ranges."""
        for manifold in self.manifolds.values():
            manifold.constrain()
