"""Node-level adaptive mixed-curvature encoder (paper §IV-B-1, Fig. 5).

Three stages:

1. **Inductive learning** (Eq. 4) — feature embeddings are concatenated
   in tangent space and exponentially mapped into each of the M
   subspaces of the node type's product manifold;
2. **Context encoding** (Eq. 5–6) — a tangent-space GCN: sampled
   neighbours of each type are log-mapped to the origin's tangent
   space, mean-aggregated per neighbour type, summed across types,
   concatenated with the node's own tangent vector, then pushed back
   through ``exp → ⊗κ → σκ``;
3. **Space fusion** (Eq. 7–8) — the average of all subspace tangent
   vectors (the global fused representation) is concatenated back into
   each subspace so subspaces co-adapt instead of training in
   isolation.

Each node type owns its own product manifold, i.e. its own set of
curvatures ``κ_{m,t}`` — queries can become hyperbolic while ads go
spherical, which is exactly the heterogeneity argument of the paper.

Compute planes.  The context encoder runs on one of two planes
(``compute_plane``), mirroring the trainer's ``data_plane`` switch:

- ``"frontier"`` (default) — a two-phase dedup-encode-gather design.
  A pure-numpy sampling phase builds an
  :class:`~repro.models.plan.EncodePlan` (per-level frontiers of unique
  nodes + captured neighbour draws + gather maps); the compute phase
  then encodes each unique frontier **once**, bottom-up, and routes
  rows through ``ops.gather``.  Cost grows with the number of *unique*
  nodes in the receptive field instead of ``(k·|types|)^L``.
- ``"recursive"`` — the original per-layer recursion, kept as the
  parity reference.  When handed a plan it replays the captured draws,
  which makes the two planes bit-comparable on the same batch.

Implementation note — Möbius biases.  Every curved linear stage here is
``W ⊗κ x ⊕κ exp^κ_0(b)`` rather than the bias-free ``W ⊗κ x`` of the
paper's equations.  The Möbius bias (standard in hyperbolic neural
networks — Ganea et al., the paper's reference [26], and HGCN) is not
cosmetic: in exact arithmetic a bias-free chain of
``exp^κ_0 → log^κ_0`` maps cancels κ entirely, which would make the
node-level curvatures unidentifiable (zero gradient).  Möbius addition
of a bias point is the κ-dependent operation that makes "adaptive"
curvature actually adapt.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Parameter, Tensor
from repro.geometry import fast
from repro.geometry.product import ProductManifold
from repro.graph.hetgraph import HetGraph
from repro.graph.schema import NodeType
from repro.models.features import FeatureEmbedding, glorot
from repro.models.plan import EncodePlan, NeighborDrawCache, build_encode_plan

#: Registered context-encoder compute planes (see module docstring).
COMPUTE_PLANES = ("frontier", "recursive")


class NodeEncoder:
    """Maps typed node indices to points in per-type mixed-curvature spaces.

    Parameters
    ----------
    graph:
        Supplies features and neighbour sampling.
    manifolds:
        ``node type -> ProductManifold`` (all with M factors of equal dim).
    feature_dim:
        Width of each feature-field embedding.
    gcn_layers:
        L, number of context-encoding rounds (0 disables the GCN).
    neighbor_samples:
        Neighbours sampled per (node, neighbour-type) during aggregation.
    use_fusion:
        Enable the space-fusion stage (ablation ``- fusion``).
    compute_plane:
        ``"frontier"`` (dedup-encode-gather, default) or
        ``"recursive"`` (per-layer recursion, the parity reference).
    """

    def __init__(self, graph: HetGraph,
                 manifolds: Dict[NodeType, ProductManifold],
                 feature_dim: int = 8, gcn_layers: int = 1,
                 neighbor_samples: int = 4, use_fusion: bool = True,
                 compute_plane: str = "frontier",
                 rng: Optional[np.random.Generator] = None):
        if compute_plane not in COMPUTE_PLANES:
            raise ValueError("compute_plane must be one of %s, got %r"
                             % (", ".join(COMPUTE_PLANES), compute_plane))
        self.graph = graph
        self.manifolds = manifolds
        self.gcn_layers = int(gcn_layers)
        self.neighbor_samples = int(neighbor_samples)
        self.use_fusion = bool(use_fusion)
        self.compute_plane = compute_plane
        #: optional :class:`NeighborDrawCache` shared across plans —
        #: attached by the trainer when ``plan_refresh > 1``
        self.draw_cache: Optional[NeighborDrawCache] = None
        #: truncated-backward dial (frontier plane only): 0 = full
        #: backward; ``n >= 1`` keeps only the top ``n`` GCN rounds on
        #: the tape — lower levels run the bit-exact no-tape numpy
        #: mirror, so the *forward* values are unchanged while the
        #: backward (and the tape it walks) stops at the boundary.  Set
        #: by the trainer from ``TrainerConfig.backward_depth``.
        self.backward_depth: int = 0
        rng = rng or np.random.default_rng(0)
        self._rng = rng

        reference = next(iter(manifolds.values()))
        self.num_subspaces = len(reference)
        self.subspace_dim = reference.factors[0].dim
        for manifold in manifolds.values():
            if len(manifold) != self.num_subspaces:
                raise ValueError("all node types must use the same number of subspaces")

        self.embeddings: Dict[NodeType, FeatureEmbedding] = {}
        vocab_sizes = self._vocab_sizes(graph)
        for node_type, sizes in vocab_sizes.items():
            self.embeddings[node_type] = FeatureEmbedding(
                node_type, sizes, feature_dim, self.num_subspaces,
                self.subspace_dim, rng)

        # GCN weights W^{m,t,l}: (2d -> d), paper Eq. 6
        self.gcn_weights: Dict[tuple, Parameter] = {}
        for node_type in self.embeddings:
            for layer in range(self.gcn_layers):
                for m in range(self.num_subspaces):
                    self.gcn_weights[(node_type, layer, m)] = Parameter(
                        glorot(rng, 2 * self.subspace_dim, self.subspace_dim))

        # fusion weights W1^{m,t}: (2d -> d), paper Eq. 8
        self.fusion_weights: Dict[tuple, Parameter] = {}
        if self.use_fusion:
            for node_type in self.embeddings:
                for m in range(self.num_subspaces):
                    self.fusion_weights[(node_type, m)] = Parameter(
                        glorot(rng, 2 * self.subspace_dim, self.subspace_dim))

        # Möbius biases (tangent parameters, see module docstring)
        self.inductive_bias: Dict[tuple, Parameter] = {}
        self.gcn_bias: Dict[tuple, Parameter] = {}
        for node_type in self.embeddings:
            for m in range(self.num_subspaces):
                self.inductive_bias[(node_type, m)] = Parameter(
                    rng.normal(scale=0.05, size=self.subspace_dim))
                for layer in range(self.gcn_layers):
                    self.gcn_bias[(node_type, layer, m)] = Parameter(
                        rng.normal(scale=0.05, size=self.subspace_dim))

    @staticmethod
    def _vocab_sizes(graph: HetGraph) -> Dict[NodeType, Dict[str, int]]:
        """Infer per-field vocabulary sizes from the stored features."""
        sizes: Dict[NodeType, Dict[str, int]] = {}
        for node_type, fields in graph.features.items():
            sizes[node_type] = {}
            for field, values in fields.items():
                values = np.asarray(values)
                if values.size == 0:
                    raise ValueError(
                        "feature field %r of node type %r is empty; cannot "
                        "infer a vocabulary size (provide at least one value "
                        "or drop the field)" % (field, node_type.value))
                sizes[node_type][field] = int(values.max()) + 1
        return sizes

    # -- stage 1: inductive learning (Eq. 4) ------------------------------------

    def inductive(self, node_type: NodeType, indices: np.ndarray) -> List[Tensor]:
        """Initial subspace points from features only (Eq. 4 + Möbius bias)."""
        tangents = self.embeddings[node_type].forward(
            self.graph.features[node_type], indices)
        manifold = self.manifolds[node_type]
        out = []
        for m, (factor, tangent) in enumerate(zip(manifold.factors, tangents)):
            point = factor.expmap0(tangent)
            bias_point = factor.expmap0(self.inductive_bias[(node_type, m)])
            out.append(factor.project(factor.mobius_add(point, bias_point)))
        return out

    # -- stage 2: context encoding (Eq. 5-6) -------------------------------------
    #
    # The Eq. 5-6 math is shared by both compute planes: `_pool` turns one
    # neighbour block into per-subspace masked-mean tangents, `_gcn_update`
    # applies the curved linear round.  The planes differ only in *what*
    # they feed in: the recursive plane re-encodes (duplicated) neighbour
    # sets depth-first, the frontier plane gathers rows from the unique
    # frontier encoded one level below.

    @staticmethod
    def _accumulate(neighbor_sums: List[Optional[Tensor]],
                    pooled: List[Tensor]) -> None:
        """Add one neighbour type's pooled tangents into the running sums."""
        for m, term in enumerate(pooled):
            if neighbor_sums[m] is None:
                neighbor_sums[m] = term
            else:
                neighbor_sums[m] = neighbor_sums[m] + term

    def _pool(self, other_type: NodeType, neigh_points: List[Tensor],
              mask: np.ndarray, batch: int) -> List[Tensor]:
        """Masked-mean tangent pooling of one ``(B, k)`` neighbour block."""
        k = self.neighbor_samples
        other_manifold = self.manifolds[other_type]
        mask_t = Tensor(mask[..., None])                    # (B, k, 1)
        denom = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        pooled: List[Tensor] = []
        for m in range(self.num_subspaces):
            tangent = other_manifold.factors[m].logmap0(neigh_points[m])
            tangent = tangent.reshape(batch, k, self.subspace_dim)
            pooled.append(ops.sum(tangent * mask_t, axis=1) / denom)
        return pooled

    def _gcn_update(self, node_type: NodeType, layer: int,
                    self_points: List[Tensor],
                    neighbor_sums: List[Optional[Tensor]],
                    batch: int) -> List[Tensor]:
        """One GCN round (Eq. 5-6) given pooled neighbour tangent sums."""
        updated: List[Tensor] = []
        for m in range(self.num_subspaces):
            factor = self.manifolds[node_type].factors[m]
            self_tangent = factor.logmap0(self_points[m])
            agg = neighbor_sums[m]
            if agg is None:
                agg = Tensor(np.zeros((batch, self.subspace_dim)))
            combined = ops.concatenate([agg, self_tangent], axis=-1)  # Eq. 5
            weight = self.gcn_weights[(node_type, layer, m)]
            # Eq. 6: exp -> Mobius matvec (+ Mobius bias) -> curved activation
            point = factor.expmap0(combined)
            point = factor.matvec(weight, point)
            bias_point = factor.expmap0(self.gcn_bias[(node_type, layer, m)])
            point = factor.mobius_add(point, bias_point)
            point = factor.activation(point, ops.tanh)
            updated.append(factor.project(point))
        return updated

    def _aggregate(self, node_type: NodeType, indices: np.ndarray,
                   layer: int, rng: np.random.Generator,
                   plan: Optional[EncodePlan] = None) -> List[Tensor]:
        """One recursive GCN round; with ``plan``, replays captured draws."""
        self_points = self._encode_layer(node_type, indices, layer, rng, plan)
        batch = len(indices)
        k = self.neighbor_samples

        # tangent aggregation per subspace, summed over neighbour types
        neighbor_sums: List[Optional[Tensor]] = [None] * self.num_subspaces
        for other_type in NodeType:
            if self.graph.num_nodes[other_type] == 0:
                continue
            if plan is not None:
                neigh_ids, mask = plan.lookup(layer, node_type, indices,
                                              other_type)
            else:
                neigh_ids, mask = self.graph.sample_neighbors(
                    rng, node_type, indices, other_type, k)
            if mask.sum() == 0:
                continue
            neigh_points = self._encode_layer(
                other_type, neigh_ids.ravel(), layer, rng, plan)
            self._accumulate(neighbor_sums,
                             self._pool(other_type, neigh_points, mask, batch))
        return self._gcn_update(node_type, layer, self_points, neighbor_sums,
                                batch)

    def _encode_layer(self, node_type: NodeType, indices: np.ndarray,
                      layer: int, rng: np.random.Generator,
                      plan: Optional[EncodePlan] = None) -> List[Tensor]:
        if layer == 0:
            return self.inductive(node_type, indices)
        return self._aggregate(node_type, indices, layer - 1, rng, plan)

    # -- frontier compute phase ---------------------------------------------------

    def build_plan(self, node_type: NodeType, indices: np.ndarray,
                   rng: Optional[np.random.Generator] = None,
                   use_draw_cache: bool = True) -> EncodePlan:
        """Sampling phase: capture the receptive field of ``indices``.

        Pure numpy — no tape.  The resulting plan can be fed back to
        :meth:`encode` (any requested indices must be covered by its top
        frontier), shared between the two planes for parity testing, and
        reused across steps via the attached :attr:`draw_cache`.
        ``use_draw_cache=False`` forces fresh draws even when a cache is
        attached — the loss uses this for the source role so cached
        draws never couple the two endpoints of a same-type relation.
        """
        rng = rng or self._rng
        cache = self.draw_cache if use_draw_cache else None
        return build_encode_plan(self.graph, node_type, indices,
                                 self.gcn_layers, self.neighbor_samples, rng,
                                 draw_cache=cache)

    def _encode_from_plan(self, plan: EncodePlan) -> List[Tensor]:
        """Compute phase: encode unique frontiers bottom-up, gather rows.

        Every node appears exactly once per level; upper levels address
        the level below through ``ops.gather``, whose scatter-add
        backward accumulates gradients of repeated rows.

        With :attr:`backward_depth` ``n`` in ``[1, layers]`` the levels
        below ``layers - n`` are computed by the no-tape numpy mirror
        (bit-identical forward, see :meth:`encode_from_plan_numpy`) and
        enter the tape as constants — the MyGrad ``bp_lim`` idiom: full
        forward, bounded backward.  Parameters partition cleanly by
        level (GCN round ``l`` weights are used only at level ``l+1``),
        so parameters above the boundary receive exactly the gradients
        of the full backward while those at or below it receive none;
        only the per-subspace curvatures, which appear at every level,
        see partial gradients.
        """
        depth = int(self.backward_depth or 0)
        cut = plan.layers - depth if 0 < depth <= plan.layers else -1
        reps: Dict[tuple, List[Tensor]] = {}
        if cut >= 0:
            frozen = self._plan_levels_numpy(plan, upto=cut)
            for t in NodeType:
                arrays = frozen.get((cut, t))
                if arrays is not None:
                    reps[(cut, t)] = [Tensor(a) for a in arrays]
        else:
            for t in NodeType:
                frontier = plan.levels[0].frontiers.get(t)
                if frontier is not None:
                    reps[(0, t)] = self.inductive(t, frontier)
        for l in range(max(cut, 0) + 1, plan.layers + 1):
            level = plan.levels[l]
            for t in NodeType:
                uniq = level.frontiers.get(t)
                if uniq is None:
                    continue
                self_points = [ops.gather(p, level.self_maps[t])
                               for p in reps[(l - 1, t)]]
                neighbor_sums: List[Optional[Tensor]] = \
                    [None] * self.num_subspaces
                for block in level.blocks[t]:
                    if block.gather is None:    # all-masked: contributes 0
                        continue
                    below = reps[(l - 1, block.dst_type)]
                    neigh_points = [ops.gather(p, block.gather) for p in below]
                    self._accumulate(neighbor_sums,
                                     self._pool(block.dst_type, neigh_points,
                                                block.mask, uniq.size))
                reps[(l, t)] = self._gcn_update(t, l - 1, self_points,
                                                neighbor_sums, uniq.size)
        return reps[(plan.layers, plan.node_type)]

    # -- no-tape numpy compute phase (offline inference) -----------------------
    #
    # Bit-exact mirrors of the tensor compute phase built from the
    # forward-only kernels in :mod:`repro.geometry.fast`.  The offline
    # path (``embed_all``, index builds) never calls ``backward``, so
    # even value-only Tensor wrapping is overhead; these run the same
    # float64 operations in the same order on plain arrays, which keeps
    # the offline embeddings bit-comparable to the training-side
    # encoder on the same plan (asserted in tests/test_inference_plane.py).

    def _inductive_numpy(self, node_type: NodeType,
                         indices: np.ndarray) -> List[np.ndarray]:
        tangents = self.embeddings[node_type].forward_numpy(
            self.graph.features[node_type], indices)
        manifold = self.manifolds[node_type]
        out: List[np.ndarray] = []
        for m, (factor, tangent) in enumerate(zip(manifold.factors, tangents)):
            kappa = factor.kappa_value
            point = fast.expmap0_numpy(tangent, kappa)
            bias_point = fast.expmap0_numpy(
                self.inductive_bias[(node_type, m)].data, kappa)
            out.append(fast.project_numpy(
                fast.mobius_add_numpy(point, bias_point, kappa), kappa))
        return out

    def _pool_numpy(self, neigh_tangents: List[np.ndarray], mask: np.ndarray,
                    batch: int) -> List[np.ndarray]:
        """Masked-mean pooling of pre-gathered ``(U·k, d)`` tangent rows."""
        k = self.neighbor_samples
        mask_t = mask[..., None]
        denom = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled: List[np.ndarray] = []
        for m in range(self.num_subspaces):
            tangent = neigh_tangents[m].reshape(batch, k, self.subspace_dim)
            pooled.append(np.sum(tangent * mask_t, axis=1) / denom)
        return pooled

    def _gcn_update_numpy(self, node_type: NodeType, layer: int,
                          self_tangents: List[np.ndarray],
                          neighbor_sums: List[Optional[np.ndarray]],
                          batch: int) -> List[np.ndarray]:
        updated: List[np.ndarray] = []
        for m in range(self.num_subspaces):
            factor = self.manifolds[node_type].factors[m]
            kappa = factor.kappa_value
            agg = neighbor_sums[m]
            if agg is None:
                agg = np.zeros((batch, self.subspace_dim))
            combined = np.concatenate([agg, self_tangents[m]], axis=-1)
            weight = self.gcn_weights[(node_type, layer, m)].data
            point = fast.expmap0_numpy(combined, kappa)
            point = fast.matvec_numpy(weight, point, kappa)
            bias_point = fast.expmap0_numpy(
                self.gcn_bias[(node_type, layer, m)].data, kappa)
            point = fast.mobius_add_numpy(point, bias_point, kappa)
            point = fast.expmap0_numpy(
                np.tanh(fast.logmap0_numpy(point, kappa)), kappa)
            updated.append(fast.project_numpy(point, kappa))
        return updated

    def _fuse_numpy(self, node_type: NodeType,
                    points: List[np.ndarray]) -> List[np.ndarray]:
        manifold = self.manifolds[node_type]
        tangents = [fast.logmap0_numpy(point, factor.kappa_value)
                    for factor, point in zip(manifold.factors, points)]
        fused = np.stack(tangents, axis=0).mean(axis=0)
        out: List[np.ndarray] = []
        for m, factor in enumerate(manifold.factors):
            combined = np.concatenate([fused, tangents[m]], axis=-1)
            weight = self.fusion_weights[(node_type, m)].data
            point = fast.expmap0_numpy(combined @ weight, factor.kappa_value)
            out.append(fast.project_numpy(point, factor.kappa_value))
        return out

    def _plan_levels_numpy(self, plan: EncodePlan,
                           upto: int) -> Dict[tuple, List[np.ndarray]]:
        """No-tape reps of levels ``0 .. upto``, keyed ``(level, type)``.

        The shared level loop of :meth:`encode_from_plan_numpy` (which
        runs it to the top) and the truncated-backward path of
        :meth:`_encode_from_plan` (which runs it up to the gradient
        boundary and wraps the result as constants).
        """
        reps: Dict[tuple, List[np.ndarray]] = {}
        tangents: Dict[tuple, List[np.ndarray]] = {}

        def tangents_of(l: int, t: NodeType) -> List[np.ndarray]:
            # logmap0 is row-wise, so tangents of a frontier are computed
            # once and *gathered* — bit-equal to mapping gathered points,
            # minus the duplicated work (the dedup idea applied to the
            # tangent stage as well)
            if (l, t) not in tangents:
                manifold = self.manifolds[t]
                tangents[(l, t)] = [
                    fast.logmap0_numpy(p, factor.kappa_value)
                    for factor, p in zip(manifold.factors, reps[(l, t)])]
            return tangents[(l, t)]

        for t in NodeType:
            frontier = plan.levels[0].frontiers.get(t)
            if frontier is not None:
                reps[(0, t)] = self._inductive_numpy(t, frontier)
        for l in range(1, upto + 1):
            level = plan.levels[l]
            for t in NodeType:
                uniq = level.frontiers.get(t)
                if uniq is None:
                    continue
                self_tangents = [tan[level.self_maps[t]]
                                 for tan in tangents_of(l - 1, t)]
                neighbor_sums: List[Optional[np.ndarray]] = \
                    [None] * self.num_subspaces
                for block in level.blocks[t]:
                    if block.gather is None:    # all-masked: contributes 0
                        continue
                    below = tangents_of(l - 1, block.dst_type)
                    pooled = self._pool_numpy(
                        [tan[block.gather] for tan in below], block.mask,
                        uniq.size)
                    for m, term in enumerate(pooled):
                        if neighbor_sums[m] is None:
                            neighbor_sums[m] = term
                        else:
                            neighbor_sums[m] = neighbor_sums[m] + term
                reps[(l, t)] = self._gcn_update_numpy(t, l - 1, self_tangents,
                                                      neighbor_sums,
                                                      uniq.size)
        return reps

    def encode_from_plan_numpy(self, plan: EncodePlan) -> List[np.ndarray]:
        """No-tape compute phase over a plan: plain arrays end to end.

        Structure mirrors :meth:`_encode_from_plan` exactly (each unique
        frontier encoded once, bottom-up, rows gathered by indexing) but
        never constructs a tensor, so a full-graph plan turns
        ``embed_all`` into ``layers + 1`` fused vocabulary passes.
        Output: one ``(top_frontier, subspace_dim)`` array per subspace,
        in top-frontier (sorted-unique) order, with fusion applied when
        the encoder uses it.

        The geometry hot loops (``fast.expmap0_numpy``/``logmap0_numpy``
        and the tape twins of :meth:`_encode_from_plan`) dispatch through
        the same :mod:`repro.geometry.kernels` registry, so this path
        and the tape path stay bit-comparable under either kernel mode
        and both speed up together when the compiled kernels are active.
        """
        reps = self._plan_levels_numpy(plan, upto=plan.layers)
        points = reps[(plan.layers, plan.node_type)]
        if self.use_fusion:
            points = self._fuse_numpy(plan.node_type, points)
        return points

    # -- stage 3: space fusion (Eq. 7-8) --------------------------------------------

    def _fuse(self, node_type: NodeType, points: List[Tensor]) -> List[Tensor]:
        manifold = self.manifolds[node_type]
        tangents = [factor.logmap0(point)
                    for factor, point in zip(manifold.factors, points)]
        stacked = ops.stack(tangents, axis=0)
        fused = ops.mean(stacked, axis=0)                     # Eq. 7
        out: List[Tensor] = []
        for m, factor in enumerate(manifold.factors):
            combined = ops.concatenate([fused, tangents[m]], axis=-1)
            weight = self.fusion_weights[(node_type, m)]
            point = factor.expmap0(ops.matmul(combined, weight))  # Eq. 8
            out.append(factor.project(point))
        return out

    # -- public entry point ----------------------------------------------------------

    def encode(self, node_type: NodeType, indices: np.ndarray,
               rng: Optional[np.random.Generator] = None,
               plan: Optional[EncodePlan] = None,
               use_draw_cache: bool = True) -> List[Tensor]:
        """Full node representation: one point tensor per subspace.

        Output: list of M tensors shaped ``(len(indices), subspace_dim)``.
        On the frontier plane a fresh :class:`EncodePlan` is built unless
        one is supplied; on the recursive plane a supplied plan replays
        its captured neighbour draws (the parity hook) instead of
        sampling from ``rng``.
        """
        rng = rng or self._rng
        indices = np.asarray(indices, dtype=np.int64)
        if self.compute_plane == "frontier":
            if plan is None:
                plan = self.build_plan(node_type, indices, rng,
                                       use_draw_cache=use_draw_cache)
            points = self._encode_from_plan(plan)
            if self.use_fusion:
                points = self._fuse(node_type, points)
            out_map = plan.output_map(indices)
            if (out_map.size == points[0].shape[0]
                    and np.array_equal(out_map, np.arange(out_map.size))):
                return points    # already unique and in frontier order
            return [ops.gather(p, out_map) for p in points]
        points = self._encode_layer(node_type, indices, self.gcn_layers, rng,
                                    plan)
        if self.use_fusion:
            points = self._fuse(node_type, points)
        return points

    def parameters(self) -> Iterable[Parameter]:
        for embedding in self.embeddings.values():
            yield from embedding.parameters()
        yield from self.gcn_weights.values()
        yield from self.fusion_weights.values()
        yield from self.inductive_bias.values()
        yield from self.gcn_bias.values()
        for manifold in self.manifolds.values():
            yield from manifold.parameters()

    def constrain(self) -> None:
        """Clamp all curvatures to their stability ranges."""
        for manifold in self.manifolds.values():
            manifold.constrain()
