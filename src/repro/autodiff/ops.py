"""Differentiable operations for the autodiff engine.

Every function takes :class:`~repro.autodiff.tensor.Tensor` (or
array-like) inputs and returns a ``Tensor`` whose backward closure
propagates gradients to its parents.  Broadcasting follows numpy
semantics; gradients of broadcast operands are summed back to the
original shape (:func:`_unbroadcast`).

The operation set is the minimum closure needed by the AMCAD model:
arithmetic, ``matmul``, reductions, the trig/hyperbolic family used by
the κ-stereographic operations of paper Table II, ``softmax`` for the
edge-level subspace attention, ``gather`` for sparse feature-embedding
lookup, plus shape plumbing (``concatenate``, ``stack``, slicing).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, ensure_tensor


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to invert numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# -- arithmetic ----------------------------------------------------------


def add(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad):
        return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad):
        return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        return (_unbroadcast(grad * b.data, a.shape),
                _unbroadcast(grad * a.data, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data / b.data

    def backward(grad):
        ga = grad / b.data
        gb = -grad * a.data / (b.data * b.data)
        return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def neg(a) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad):
        return (-grad,)

    return Tensor._make(-a.data, (a,), backward)


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    a = ensure_tensor(a)
    exponent = float(exponent)
    out_data = a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return Tensor._make(out_data, (a,), backward)


def matmul(a, b) -> Tensor:
    """Matrix product supporting 1-D/2-D/batched operands."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            return (grad * b_data, grad * a_data)
        if a_data.ndim == 1:
            ga = grad @ np.swapaxes(b_data, -1, -2)
            gb = np.outer(a_data, grad)
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))
        if b_data.ndim == 1:
            ga = np.expand_dims(grad, -1) * b_data
            gb = np.swapaxes(a_data, -1, -2) @ grad
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))
        ga = grad @ np.swapaxes(b_data, -1, -2)
        gb = np.swapaxes(a_data, -1, -2) @ grad
        return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), backward)


# -- reductions ----------------------------------------------------------


def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor._make(out_data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.data.shape[i] for i in axis]))
    else:
        count = a.data.shape[axis]

    def backward(grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape) / count,)

    return Tensor._make(out_data, (a,), backward)


# -- elementwise nonlinearities -------------------------------------------


def exp(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        return (grad * out_data,)

    return Tensor._make(out_data, (a,), backward)


def log(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return Tensor._make(out_data, (a,), backward)


def sqrt(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / np.maximum(out_data, 1e-15),)

    return Tensor._make(out_data, (a,), backward)


def tanh(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out_data * out_data),)

    return Tensor._make(out_data, (a,), backward)


def tan(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.tan(a.data)

    def backward(grad):
        return (grad * (1.0 + out_data * out_data),)

    return Tensor._make(out_data, (a,), backward)


def arctan(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.arctan(a.data)

    def backward(grad):
        return (grad / (1.0 + a.data * a.data),)

    return Tensor._make(out_data, (a,), backward)


def arctanh(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.arctanh(a.data)

    def backward(grad):
        return (grad / np.maximum(1.0 - a.data * a.data, 1e-15),)

    return Tensor._make(out_data, (a,), backward)


def sigmoid(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * out_data * (1.0 - out_data),)

    return Tensor._make(out_data, (a,), backward)


def relu(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.maximum(a.data, 0.0)

    def backward(grad):
        return (grad * (a.data > 0.0),)

    return Tensor._make(out_data, (a,), backward)


def abs_(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return Tensor._make(out_data, (a,), backward)


def clip(a, lo: Optional[float], hi: Optional[float]) -> Tensor:
    """Clamp values; the gradient is masked to zero outside the bounds.

    This is the numerically safe clamp used for the arguments of ``tan``
    and ``arctanh`` in the stereographic operations (mirroring geoopt).
    """
    a = ensure_tensor(a)
    out_data = np.clip(a.data, lo, hi)
    inside = np.ones_like(a.data, dtype=bool)
    if lo is not None:
        inside &= a.data >= lo
    if hi is not None:
        inside &= a.data <= hi

    def backward(grad):
        return (grad * inside,)

    return Tensor._make(out_data, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient routed to the winning operand."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def backward(grad):
        return (_unbroadcast(grad * a_wins, a.shape),
                _unbroadcast(grad * ~a_wins, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def where(cond, a, b) -> Tensor:
    """Select ``a`` where ``cond`` else ``b``; ``cond`` is a plain array."""
    cond = np.asarray(cond, dtype=bool)
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad):
        return (_unbroadcast(np.where(cond, grad, 0.0), a.shape),
                _unbroadcast(np.where(cond, 0.0, grad), b.shape))

    return Tensor._make(out_data, (a, b), backward)


# -- compositions ----------------------------------------------------------


def norm(a, axis: int = -1, keepdims: bool = True, eps: float = 1e-15) -> Tensor:
    """Euclidean norm along ``axis`` with a numerically safe gradient.

    Implemented as ``sqrt(sum(a**2) + eps)`` so the gradient at the
    origin is finite — important because gyrovector formulas divide by
    norms of vectors that can legitimately be zero.
    """
    squared = sum(mul(a, a), axis=axis, keepdims=keepdims)
    return sqrt(add(squared, eps))


def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = ensure_tensor(a)
    shifted = sub(a, Tensor(a.data.max(axis=axis, keepdims=True)))
    exps = exp(shifted)
    return div(exps, sum(exps, axis=axis, keepdims=True))


def logsumexp(a, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(a)))`` along ``axis``."""
    a = ensure_tensor(a)
    maxes = Tensor(a.data.max(axis=axis, keepdims=True))
    out = add(log(sum(exp(sub(a, maxes)), axis=axis, keepdims=True)), maxes)
    if not keepdims:
        out = reshape(out, tuple(d for i, d in enumerate(out.shape)
                                 if i != (axis % len(out.shape))))
    return out


# -- indexing / shape plumbing ---------------------------------------------


def gather(table, index) -> Tensor:
    """Row lookup ``table[index]`` with scatter-add backward.

    This is the embedding-lookup primitive: gradients of repeated rows
    are accumulated with ``np.add.at``.
    """
    table = ensure_tensor(table)
    index = np.asarray(index)
    out_data = table.data[index]

    def backward(grad):
        gtable = np.zeros_like(table.data)
        np.add.at(gtable, index, grad)
        return (gtable,)

    return Tensor._make(out_data, (table,), backward)


def getitem(a, key) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data[key]

    def backward(grad):
        ga = np.zeros_like(a.data)
        np.add.at(ga, key, grad)
        return (ga,)

    return Tensor._make(out_data, (a,), backward)


def reshape(a, shape: tuple) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return Tensor._make(out_data, (a,), backward)


def transpose(a, axes=None) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.transpose(axes)

    def backward(grad):
        if axes is None:
            return (grad.transpose(),)
        inverse = np.argsort(axes)
        return (grad.transpose(inverse),)

    return Tensor._make(out_data, (a,), backward)


def expand_dims(a, axis: int) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.expand_dims(a.data, axis)

    def backward(grad):
        return (np.squeeze(grad, axis=axis),)

    return Tensor._make(out_data, (a,), backward)


def concatenate(tensors: Sequence, axis: int = -1) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        for i in range(len(tensors)):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(out_data, tuple(tensors), backward)


def dropout(a, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return ensure_tensor(a)
    a = ensure_tensor(a)
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep) / keep

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(a.data * mask, (a,), backward)
