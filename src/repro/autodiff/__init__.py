"""Reverse-mode automatic differentiation over numpy arrays.

This package is the training-engine substrate of the AMCAD reproduction.
The paper trains its model on Alibaba's XDL framework; here a small
tape-based autodiff engine provides the same capability — gradients
through arbitrary compositions of the gyrovector operations of paper
Table II, including gradients with respect to trainable curvatures.

The public surface mirrors the small subset of a deep-learning framework
that the model needs:

- :class:`Tensor` — an array with an optional gradient tape entry.
- :class:`Parameter` — a trainable tensor.
- :func:`no_grad` — context manager disabling tape recording.
- the functional namespace (``repro.autodiff.ops``) with broadcasting
  arithmetic, `matmul`, reductions, the trigonometric/hyperbolic family
  needed by stereographic geometry, `softmax`, `gather`, `where`,
  `concatenate` and friends.
"""

from repro.autodiff.tensor import Parameter, Tensor, is_grad_enabled, no_grad
from repro.autodiff import ops
from repro.autodiff.ops import (
    arctan,
    arctanh,
    clip,
    concatenate,
    exp,
    gather,
    log,
    logsumexp,
    matmul,
    maximum,
    mean,
    norm,
    relu,
    sigmoid,
    softmax,
    sqrt,
    stack,
    sum as sum_,
    tan,
    tanh,
    where,
)

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "arctan",
    "arctanh",
    "clip",
    "concatenate",
    "exp",
    "gather",
    "log",
    "logsumexp",
    "matmul",
    "maximum",
    "mean",
    "norm",
    "relu",
    "sigmoid",
    "softmax",
    "sqrt",
    "stack",
    "sum_",
    "tan",
    "tanh",
    "where",
]
