"""The :class:`Tensor` core of the autodiff engine.

A ``Tensor`` wraps a ``numpy.ndarray`` together with an optional backward
closure and references to its parents in the computation graph.  Calling
:meth:`Tensor.backward` on a scalar output runs reverse-mode
differentiation over the recorded tape (a topological sort of the graph).

Gradient recording is controlled by a module-level switch so that
inference-time code (index building, online retrieval) pays no tape
overhead; see :func:`no_grad`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the backward tape."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording.

    Inside the block every operation produces plain value tensors with no
    parents, so no graph is retained and ``backward`` is unavailable.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array node in a reverse-mode differentiation graph.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        Whether a gradient should be accumulated for this tensor when
        ``backward`` is called on a descendant.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()

    # -- graph construction helpers -------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[["Tensor", np.ndarray], None]) -> "Tensor":
        """Create a result tensor, recording the tape entry if enabled."""
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- public API ------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def graph_size(self) -> int:
        """Number of distinct tensors reachable through the tape.

        Counts this tensor plus every ancestor linked by a recorded
        backward closure — i.e. the number of tape nodes ``backward``
        would visit.  A pure debugging/benchmark helper: the frontier
        encode plane exists precisely to keep this number small, and
        the encoder-plane tests assert it shrinks versus the recursive
        reference.
        """
        seen: set[int] = {id(self)}
        stack: list[Tensor] = [self]
        while stack:
            node = stack.pop()
            for parent in node._parents:
                if id(parent) not in seen:
                    seen.add(id(parent))
                    stack.append(parent)
        return len(seen)

    def backward(self, grad=None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only "
                    "defined for scalar outputs; got shape %r" % (self.shape,))
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if parent._backward is None and not parent._parents:
                    parent._accumulate(pgrad)
                else:
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + pgrad
                    else:
                        grads[key] = pgrad

    # -- operator overloads (implemented in ops to avoid import cycle) ---

    def __add__(self, other):
        from repro.autodiff import ops
        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.autodiff import ops
        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.autodiff import ops
        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.autodiff import ops
        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.autodiff import ops
        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.autodiff import ops
        return ops.div(other, self)

    def __neg__(self):
        from repro.autodiff import ops
        return ops.neg(self)

    def __pow__(self, exponent):
        from repro.autodiff import ops
        return ops.power(self, exponent)

    def __matmul__(self, other):
        from repro.autodiff import ops
        return ops.matmul(self, other)

    def __getitem__(self, index):
        from repro.autodiff import ops
        return ops.getitem(self, index)

    def sum(self, axis=None, keepdims: bool = False):
        from repro.autodiff import ops
        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autodiff import ops
        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.autodiff import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from repro.autodiff import ops
        return ops.transpose(self, axes)

    @property
    def T(self):
        return self.transpose()

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return "Tensor(%s%s)" % (np.array2string(self.data, precision=4), grad_flag)


class Parameter(Tensor):
    """A trainable :class:`Tensor`.

    ``Parameter`` always requires a gradient regardless of the tape switch
    at construction time (the switch still controls whether downstream
    operations record the graph).
    """

    __slots__ = ()

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.requires_grad = True


def ensure_tensor(value) -> Tensor:
    """Coerce arrays / scalars to a constant :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def collect_parameters(obj, seen: Optional[set] = None) -> Iterable[Parameter]:
    """Recursively yield :class:`Parameter` objects from containers/objects.

    Walks dicts, lists, tuples and any object exposing a ``parameters()``
    method or a ``__dict__``; deduplicates by identity.
    """
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, Parameter):
        yield obj
    elif isinstance(obj, dict):
        for value in obj.values():
            yield from collect_parameters(value, seen)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            yield from collect_parameters(value, seen)
    elif hasattr(obj, "parameters") and callable(obj.parameters) and not isinstance(obj, Tensor):
        for value in obj.parameters():
            yield from collect_parameters(value, seen)
