"""Deprecated compatibility shim — the simulator moved to :mod:`repro.serving`.

The Erlang-C :class:`ServingSimulator` now lives in
:mod:`repro.serving.simulator` next to the micro-batching
:class:`~repro.serving.engine.ServingEngine`; import from there in new
code.  This module keeps the historical import path working but emits a
:class:`DeprecationWarning` on import.
"""

import warnings

from repro.serving.simulator import (  # noqa: F401
    ServingSimulator,
    ServingStats,
    erlang_b,
    erlang_c_wait,
)

warnings.warn(
    "repro.retrieval.serving is deprecated and will be removed; import "
    "ServingSimulator, ServingStats, erlang_b and erlang_c_wait from "
    "repro.serving instead",
    DeprecationWarning, stacklevel=2)

__all__ = ["ServingSimulator", "ServingStats", "erlang_b", "erlang_c_wait"]
