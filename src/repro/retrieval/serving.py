"""Online serving simulator — response time vs QPS (paper Fig. 9).

The deployed system serves tens of thousands of requests per second
from the iGraph engine.  The *shape* of its latency curve (slow, smooth
growth until the worker pool saturates) is a queueing property, not a
hardware one, so it is reproduced with an M/M/c model:

- the per-request service time is *measured* by timing real two-layer
  retrievals on this machine;
- a c-worker Erlang-C queue maps an offered load λ (QPS) to the mean
  waiting time, giving ``response = wait(λ) + service``.

This keeps the benchmark honest: the service time comes from the real
code path, only the concurrency is modelled.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.retrieval.two_layer import TwoLayerRetriever


def erlang_c_wait(arrival_rate: float, service_rate: float,
                  servers: int) -> float:
    """Mean queueing delay of an M/M/c system (seconds).

    Returns ``inf`` when the system is unstable (λ ≥ c·μ).
    """
    if arrival_rate <= 0:
        return 0.0
    utilisation = arrival_rate / (servers * service_rate)
    if utilisation >= 1.0:
        return float("inf")
    offered = arrival_rate / service_rate
    # Erlang-C probability of queueing
    summation = sum(offered ** n / math.factorial(n) for n in range(servers))
    tail = offered ** servers / (math.factorial(servers) * (1.0 - utilisation))
    p_wait = tail / (summation + tail)
    return p_wait / (servers * service_rate - arrival_rate)


@dataclasses.dataclass
class ServingStats:
    """One point of the Fig. 9 curve."""

    qps: float
    response_time_ms: float
    utilisation: float


class ServingSimulator:
    """Measures service time, then sweeps QPS through the queue model.

    Parameters
    ----------
    retriever:
        The two-layer retriever to time.
    num_workers:
        Size of the simulated serving fleet.  The paper's fleet handles
        ~50k QPS at <5 ms; scale workers to the measured service time.
    """

    def __init__(self, retriever: TwoLayerRetriever, num_workers: int = 64):
        self.retriever = retriever
        self.num_workers = int(num_workers)
        self._service_seconds: Optional[float] = None

    def measure_service_time(self, queries: Sequence[int],
                             preclicks: Sequence[Sequence[int]],
                             k: int = 20, repeats: int = 1) -> float:
        """Mean wall-clock seconds of one two-layer retrieval."""
        start = time.perf_counter()
        count = 0
        for _ in range(repeats):
            for query, items in zip(queries, preclicks):
                self.retriever.retrieve(int(query), items, k=k)
                count += 1
        elapsed = time.perf_counter() - start
        self._service_seconds = elapsed / max(count, 1)
        return self._service_seconds

    @property
    def service_seconds(self) -> float:
        if self._service_seconds is None:
            raise RuntimeError("call measure_service_time() first")
        return self._service_seconds

    def sweep(self, qps_values: Sequence[float]) -> List[ServingStats]:
        """Mean response time for each offered load (paper Fig. 9)."""
        service_rate = 1.0 / self.service_seconds
        stats: List[ServingStats] = []
        for qps in qps_values:
            wait = erlang_c_wait(qps, service_rate, self.num_workers)
            response = wait + self.service_seconds
            stats.append(ServingStats(
                qps=float(qps),
                response_time_ms=1000.0 * response,
                utilisation=qps / (self.num_workers * service_rate)))
        return stats

    def saturation_qps(self) -> float:
        """Offered load at which the fleet saturates (λ = c·μ)."""
        return self.num_workers / self.service_seconds
