"""Compatibility shim — the simulator moved to :mod:`repro.serving`.

The Erlang-C :class:`ServingSimulator` now lives in
:mod:`repro.serving.simulator` next to the micro-batching
:class:`~repro.serving.engine.ServingEngine`; import from there in new
code.  This module keeps the historical import path working.
"""

from repro.serving.simulator import (  # noqa: F401
    ServingSimulator,
    ServingStats,
    erlang_b,
    erlang_c_wait,
)

__all__ = ["ServingSimulator", "ServingStats", "erlang_b", "erlang_c_wait"]
