"""Two-layer online ad retrieval (paper §IV-C-2, Fig. 6).

Given an online request — a query ``q`` plus the user's pre-click items
``P`` — the retrieval proceeds in two index-lookup layers:

1. **key expansion**: ``q`` is expanded through Q2Q and Q2I, each
   pre-click item through I2Q and I2I, producing a set of related
   query-keys and item-keys with expansion scores;
2. **ad retrieval**: every key is looked up in Q2A or I2A; candidate
   ads accumulate scores from all keys that retrieved them.

Scores are converted from distances with the same Fermi–Dirac link
function used in training, multiplied along the two hops, and summed
over paths — so an ad reachable through several strong keys ranks
higher.  Compared with single-hop embedding retrieval this covers far
more traffic (the paper's motivation for the design).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.schema import NodeType, Relation
from repro.retrieval.index import IndexSet


def _fermi(dist: np.ndarray, radius: float = 1.0,
           temperature: float = 5.0) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-temperature * (radius - dist)))


@dataclasses.dataclass
class RetrievalResult:
    """Ranked ads for one request."""

    ads: np.ndarray          # ad ids, best first
    scores: np.ndarray       # aggregated path scores
    num_keys: int            # size of the expanded key set (layer 1)

    def top(self, k: int) -> np.ndarray:
        return self.ads[:k]


class TwoLayerRetriever:
    """Serves requests from a built :class:`IndexSet`."""

    def __init__(self, index_set: IndexSet, expansion_k: int = 10,
                 ads_per_key: int = 10, radius: float = 1.0,
                 temperature: float = 5.0,
                 keep_original_query: bool = True):
        self.indices = index_set
        self.expansion_k = int(expansion_k)
        self.ads_per_key = int(ads_per_key)
        self.radius = float(radius)
        self.temperature = float(temperature)
        self.keep_original_query = bool(keep_original_query)

    # -- layer 1: key expansion ------------------------------------------------

    def expand_keys(self, query: int, preclick_items: Sequence[int]
                    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Expanded (query-key, item-key) score maps."""
        query_keys: Dict[int, float] = {}
        item_keys: Dict[int, float] = {}
        if self.keep_original_query:
            query_keys[query] = 1.0

        def absorb(keys: Dict[int, float], ids: np.ndarray,
                   dists: np.ndarray, base: float) -> None:
            scores = base * _fermi(dists, self.radius, self.temperature)
            for node, score in zip(ids, scores):
                node = int(node)
                keys[node] = max(keys.get(node, 0.0), float(score))

        if Relation.Q2Q in self.indices:
            ids, dists = self.indices[Relation.Q2Q].lookup(query,
                                                           self.expansion_k)
            absorb(query_keys, ids, dists, 1.0)
        if Relation.Q2I in self.indices:
            ids, dists = self.indices[Relation.Q2I].lookup(query,
                                                           self.expansion_k)
            absorb(item_keys, ids, dists, 1.0)
        for item in preclick_items:
            item = int(item)
            item_keys.setdefault(item, 1.0)
            if Relation.I2Q in self.indices:
                ids, dists = self.indices[Relation.I2Q].lookup(
                    item, self.expansion_k)
                absorb(query_keys, ids, dists, 1.0)
            if Relation.I2I in self.indices:
                ids, dists = self.indices[Relation.I2I].lookup(
                    item, self.expansion_k)
                absorb(item_keys, ids, dists, 1.0)
        return query_keys, item_keys

    # -- layer 2: ad retrieval ------------------------------------------------------

    def retrieve(self, query: int, preclick_items: Sequence[int] = (),
                 k: int = 20) -> RetrievalResult:
        """Run both layers and return the top-``k`` ads."""
        query_keys, item_keys = self.expand_keys(query, preclick_items)
        ad_scores: Dict[int, float] = {}

        def gather(index_relation: Relation, keys: Dict[int, float]) -> None:
            if index_relation not in self.indices or not keys:
                return
            index = self.indices[index_relation]
            key_ids = np.fromiter(keys, dtype=np.int64, count=len(keys))
            key_scores = np.fromiter(keys.values(), dtype=np.float64,
                                     count=len(keys))
            ids, dists = index.lookup_batch(key_ids, self.ads_per_key)
            hop = _fermi(dists, self.radius, self.temperature)
            path_scores = key_scores[:, None] * hop
            for row in range(ids.shape[0]):
                for ad, score in zip(ids[row], path_scores[row]):
                    ad = int(ad)
                    ad_scores[ad] = ad_scores.get(ad, 0.0) + float(score)

        gather(Relation.Q2A, query_keys)
        gather(Relation.I2A, item_keys)

        if not ad_scores:
            return RetrievalResult(ads=np.empty(0, dtype=np.int64),
                                   scores=np.empty(0),
                                   num_keys=len(query_keys) + len(item_keys))
        ads = np.fromiter(ad_scores, dtype=np.int64, count=len(ad_scores))
        scores = np.fromiter(ad_scores.values(), dtype=np.float64,
                             count=len(ad_scores))
        order = np.argsort(-scores)[:k]
        return RetrievalResult(ads=ads[order], scores=scores[order],
                               num_keys=len(query_keys) + len(item_keys))

    def retrieve_items(self, query: int, k: int = 100) -> np.ndarray:
        """Direct Q2I retrieval (used by the offline ranking metrics)."""
        ids, _dists = self.indices[Relation.Q2I].lookup(query, k)
        return ids
