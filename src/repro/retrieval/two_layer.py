"""Two-layer online ad retrieval (paper §IV-C-2, Fig. 6).

Given an online request — a query ``q`` plus the user's pre-click items
``P`` — the retrieval proceeds in two index-lookup layers:

1. **key expansion**: ``q`` is expanded through Q2Q and Q2I, each
   pre-click item through I2Q and I2I, producing a set of related
   query-keys and item-keys with expansion scores;
2. **ad retrieval**: every key is looked up in Q2A or I2A; candidate
   ads accumulate scores from all keys that retrieved them.

Scores are converted from distances with the same Fermi–Dirac link
function used in training, multiplied along the two hops, and summed
over paths — so an ad reachable through several strong keys ranks
higher.  Compared with single-hop embedding retrieval this covers far
more traffic (the paper's motivation for the design).

The hot path is fully vectorised: :meth:`TwoLayerRetriever.retrieve_batch`
serves a whole micro-batch of requests through flattened
``(request, key, score)`` / ``(request, ad, score)`` triples aggregated
with ``np.unique`` + ``np.bincount``, and :meth:`~TwoLayerRetriever.retrieve`
is a thin single-request wrapper over it.  The original per-key dict
accumulation survives as :meth:`~TwoLayerRetriever.retrieve_looped`, the
reference implementation the batch path is tested against.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.schema import Relation
from repro.retrieval.index import IndexSet


def _fermi(dist: np.ndarray, radius: float = 1.0,
           temperature: float = 5.0) -> np.ndarray:
    """Fermi–Dirac link function ``1 / (1 + exp(-t (r - d)))``.

    Evaluated as ``exp(-logaddexp(0, t (d - r)))`` so large distances
    underflow smoothly to 0.0 instead of overflowing ``exp``.
    """
    exponent = temperature * (np.asarray(dist, dtype=np.float64) - radius)
    return np.exp(-np.logaddexp(0.0, exponent))


@dataclasses.dataclass
class RetrievalResult:
    """Ranked ads for one request."""

    ads: np.ndarray          # ad ids, best first
    scores: np.ndarray       # aggregated path scores
    num_keys: int            # size of the expanded key set (layer 1)

    def top(self, k: int) -> np.ndarray:
        return self.ads[:k]


@dataclasses.dataclass
class KeyExpansion:
    """Layer-1 output for one request: unique keys, max-merged scores.

    The arrays are what the serving engine caches per request
    signature; :meth:`TwoLayerRetriever.gather_batch` consumes them.
    """

    query_keys: np.ndarray    # int64 unique query-key ids
    query_scores: np.ndarray
    item_keys: np.ndarray     # int64 unique item-key ids
    item_scores: np.ndarray

    @property
    def num_keys(self) -> int:
        return int(self.query_keys.size + self.item_keys.size)


def _group_reduce(requests: np.ndarray, keys: np.ndarray, scores: np.ndarray,
                  num_requests: int, reduce: str
                  ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Aggregate flattened (request, key, score) triples per request.

    Deduplicates by (request, key) through a composite ``np.unique``;
    ``reduce="max"`` keeps the strongest path (layer-1 key merge) and
    ``reduce="sum"`` accumulates over paths (layer-2 ad scoring, via
    ``np.bincount``).  Returns one ``(keys, scores)`` pair per request,
    keys ascending.
    """
    empty = (np.empty(0, dtype=np.int64), np.empty(0))
    if requests.size == 0:
        return [empty] * num_requests
    stride = int(keys.max()) + 1
    composite = requests.astype(np.int64) * stride + keys
    unique, inverse = np.unique(composite, return_inverse=True)
    if reduce == "max":
        merged = np.full(unique.size, -np.inf)
        np.maximum.at(merged, inverse, scores)
    elif reduce == "sum":
        merged = np.bincount(inverse, weights=scores, minlength=unique.size)
    else:
        raise ValueError("unknown reduce %r" % reduce)
    unique_req = unique // stride
    unique_key = unique - unique_req * stride
    bounds = np.searchsorted(unique_req, np.arange(num_requests + 1))
    return [(unique_key[a:b], merged[a:b])
            for a, b in zip(bounds[:-1], bounds[1:])]


class TwoLayerRetriever:
    """Serves requests from a built :class:`IndexSet`."""

    def __init__(self, index_set: IndexSet, expansion_k: int = 10,
                 ads_per_key: int = 10, radius: float = 1.0,
                 temperature: float = 5.0,
                 keep_original_query: bool = True):
        self.indices = index_set
        self.expansion_k = int(expansion_k)
        self.ads_per_key = int(ads_per_key)
        self.radius = float(radius)
        self.temperature = float(temperature)
        self.keep_original_query = bool(keep_original_query)

    # -- layer 1: key expansion ------------------------------------------------

    def expand_keys(self, query: int, preclick_items: Sequence[int]
                    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Expanded (query-key, item-key) score maps (looped reference)."""
        query_keys: Dict[int, float] = {}
        item_keys: Dict[int, float] = {}
        if self.keep_original_query:
            query_keys[query] = 1.0

        def absorb(keys: Dict[int, float], ids: np.ndarray,
                   dists: np.ndarray, base: float) -> None:
            scores = base * _fermi(dists, self.radius, self.temperature)
            for node, score in zip(ids, scores):
                node = int(node)
                keys[node] = max(keys.get(node, 0.0), float(score))

        if Relation.Q2Q in self.indices:
            ids, dists = self.indices[Relation.Q2Q].lookup(query,
                                                           self.expansion_k)
            absorb(query_keys, ids, dists, 1.0)
        if Relation.Q2I in self.indices:
            ids, dists = self.indices[Relation.Q2I].lookup(query,
                                                           self.expansion_k)
            absorb(item_keys, ids, dists, 1.0)
        for item in preclick_items:
            item = int(item)
            item_keys[item] = max(item_keys.get(item, 0.0), 1.0)
            if Relation.I2Q in self.indices:
                ids, dists = self.indices[Relation.I2Q].lookup(
                    item, self.expansion_k)
                absorb(query_keys, ids, dists, 1.0)
            if Relation.I2I in self.indices:
                ids, dists = self.indices[Relation.I2I].lookup(
                    item, self.expansion_k)
                absorb(item_keys, ids, dists, 1.0)
        return query_keys, item_keys

    def expand_keys_batch(self, queries: np.ndarray,
                          preclicks: Sequence[Sequence[int]]
                          ) -> List[KeyExpansion]:
        """Vectorised layer 1 for a whole micro-batch of requests.

        All index lookups run batched; duplicate (request, key) pairs
        from different expansion paths are max-merged via ``np.unique``
        over flattened triples.
        """
        queries = np.asarray(queries, dtype=np.int64).ravel()
        num_requests = queries.size
        if len(preclicks) != num_requests:
            raise ValueError("got %d queries but %d pre-click lists"
                             % (num_requests, len(preclicks)))
        request_ids = np.arange(num_requests, dtype=np.int64)

        # triple sinks for the two key namespaces
        q_req: List[np.ndarray] = []
        q_key: List[np.ndarray] = []
        q_score: List[np.ndarray] = []
        i_req: List[np.ndarray] = []
        i_key: List[np.ndarray] = []
        i_score: List[np.ndarray] = []

        def expand(relation: Relation, src_req: np.ndarray,
                   src_keys: np.ndarray, sink_req: List[np.ndarray],
                   sink_key: List[np.ndarray],
                   sink_score: List[np.ndarray]) -> None:
            if relation not in self.indices or src_keys.size == 0:
                return
            ids, dists = self.indices[relation].lookup_batch(
                src_keys, self.expansion_k)
            width = ids.shape[1]
            sink_req.append(np.repeat(src_req, width))
            sink_key.append(ids.ravel().astype(np.int64))
            sink_score.append(
                _fermi(dists, self.radius, self.temperature).ravel())

        if num_requests:
            if self.keep_original_query:
                q_req.append(request_ids)
                q_key.append(queries)
                q_score.append(np.ones(num_requests))
            expand(Relation.Q2Q, request_ids, queries, q_req, q_key, q_score)
            expand(Relation.Q2I, request_ids, queries, i_req, i_key, i_score)

        sizes = np.fromiter((len(p) for p in preclicks), dtype=np.int64,
                            count=num_requests)
        if sizes.sum():
            flat_req = np.repeat(request_ids, sizes)
            flat_items = np.concatenate(
                [np.asarray(list(p), dtype=np.int64) for p in preclicks
                 if len(p)])
            i_req.append(flat_req)
            i_key.append(flat_items)
            i_score.append(np.ones(flat_items.size))
            expand(Relation.I2Q, flat_req, flat_items, q_req, q_key, q_score)
            expand(Relation.I2I, flat_req, flat_items, i_req, i_key, i_score)

        def grouped(reqs, keys, scores):
            if not reqs:
                return [(np.empty(0, dtype=np.int64),
                         np.empty(0))] * num_requests
            return _group_reduce(np.concatenate(reqs), np.concatenate(keys),
                                 np.concatenate(scores), num_requests,
                                 reduce="max")

        return [KeyExpansion(qk, qs, ik, isc)
                for (qk, qs), (ik, isc) in zip(grouped(q_req, q_key, q_score),
                                               grouped(i_req, i_key, i_score))]

    # -- layer 2: ad retrieval ------------------------------------------------------

    def gather_batch(self, expansions: Sequence[KeyExpansion],
                     k: int = 20) -> List[RetrievalResult]:
        """Vectorised layer 2: expanded keys → ranked ads per request.

        Q2A/I2A lookups run batched over all keys of all requests; the
        per-path scores are summed per (request, ad) with
        ``np.unique`` + ``np.bincount`` over flattened triples.
        """
        num_requests = len(expansions)
        req_parts: List[np.ndarray] = []
        ad_parts: List[np.ndarray] = []
        score_parts: List[np.ndarray] = []

        def gather(relation: Relation, key_arrays, score_arrays) -> None:
            if relation not in self.indices:
                return
            sizes = np.fromiter((a.size for a in key_arrays), dtype=np.int64,
                                count=num_requests)
            if sizes.sum() == 0:
                return
            keys = np.concatenate(key_arrays)
            key_scores = np.concatenate(score_arrays)
            request_ids = np.repeat(np.arange(num_requests, dtype=np.int64),
                                    sizes)
            ids, dists = self.indices[relation].lookup_batch(
                keys, self.ads_per_key)
            hop = _fermi(dists, self.radius, self.temperature)
            path_scores = key_scores[:, None] * hop
            width = ids.shape[1]
            req_parts.append(np.repeat(request_ids, width))
            ad_parts.append(ids.ravel().astype(np.int64))
            score_parts.append(path_scores.ravel())

        gather(Relation.Q2A, [e.query_keys for e in expansions],
               [e.query_scores for e in expansions])
        gather(Relation.I2A, [e.item_keys for e in expansions],
               [e.item_scores for e in expansions])

        if not req_parts:
            return [RetrievalResult(ads=np.empty(0, dtype=np.int64),
                                    scores=np.empty(0),
                                    num_keys=e.num_keys) for e in expansions]

        segments = _group_reduce(np.concatenate(req_parts),
                                 np.concatenate(ad_parts),
                                 np.concatenate(score_parts),
                                 num_requests, reduce="sum")
        results = []
        for expansion, (segment_ads, segment_scores) in zip(expansions,
                                                            segments):
            order = np.argsort(-segment_scores)[:k]
            results.append(RetrievalResult(ads=segment_ads[order],
                                           scores=segment_scores[order],
                                           num_keys=expansion.num_keys))
        return results

    def retrieve_batch(self, queries: Sequence[int],
                       preclicks: Optional[Sequence[Sequence[int]]] = None,
                       k: int = 20) -> List[RetrievalResult]:
        """Run both layers for a micro-batch of requests, vectorised."""
        queries = np.asarray(queries, dtype=np.int64).ravel()
        if preclicks is None:
            preclicks = [()] * queries.size
        return self.gather_batch(self.expand_keys_batch(queries, preclicks),
                                 k=k)

    def retrieve(self, query: int, preclick_items: Sequence[int] = (),
                 k: int = 20) -> RetrievalResult:
        """Top-``k`` ads for one request (wrapper over the batch path)."""
        return self.retrieve_batch(np.array([query]), [preclick_items],
                                   k=k)[0]

    def retrieve_looped(self, query: int, preclick_items: Sequence[int] = (),
                        k: int = 20) -> RetrievalResult:
        """Reference single-request path with per-key dict accumulation.

        Kept as the semantic baseline the vectorised
        :meth:`retrieve_batch` is asserted against (tests and
        ``benchmarks/bench_serving_batch.py``).
        """
        query_keys, item_keys = self.expand_keys(query, preclick_items)
        ad_scores: Dict[int, float] = {}

        def gather(index_relation: Relation, keys: Dict[int, float]) -> None:
            if index_relation not in self.indices or not keys:
                return
            index = self.indices[index_relation]
            key_ids = np.fromiter(keys, dtype=np.int64, count=len(keys))
            key_scores = np.fromiter(keys.values(), dtype=np.float64,
                                     count=len(keys))
            ids, dists = index.lookup_batch(key_ids, self.ads_per_key)
            hop = _fermi(dists, self.radius, self.temperature)
            path_scores = key_scores[:, None] * hop
            for row in range(ids.shape[0]):
                for ad, score in zip(ids[row], path_scores[row]):
                    ad = int(ad)
                    ad_scores[ad] = ad_scores.get(ad, 0.0) + float(score)

        gather(Relation.Q2A, query_keys)
        gather(Relation.I2A, item_keys)

        if not ad_scores:
            return RetrievalResult(ads=np.empty(0, dtype=np.int64),
                                   scores=np.empty(0),
                                   num_keys=len(query_keys) + len(item_keys))
        ads = np.fromiter(ad_scores, dtype=np.int64, count=len(ad_scores))
        scores = np.fromiter(ad_scores.values(), dtype=np.float64,
                             count=len(ad_scores))
        order = np.argsort(-scores)[:k]
        return RetrievalResult(ads=ads[order], scores=scores[order],
                               num_keys=len(query_keys) + len(item_keys))

    def retrieve_items(self, query: int, k: int = 100) -> np.ndarray:
        """Direct Q2I retrieval (used by the offline ranking metrics)."""
        ids, _dists = self.indices[Relation.Q2I].lookup(query, k)
        return ids
