"""Product quantization (PQ) — the traditional ANN baseline.

Paper §IV-C-1: *"the similarity between two nodes in our approach is
calculated based on the attention mechanism, which is more complex and
hard to directly use traditional nearest neighbor search approach such
as product quantification"* — which is why AMCAD ships the exact MNN
search instead.

This module implements classic PQ (Jégou et al., the paper's ref. [31])
so that claim can be *measured*: a :class:`PQIndex` quantises vectors
into per-block codebooks and answers queries with asymmetric distance
computation (ADC) over Euclidean distance.  It is exactly the tool that
works well for flat dot-product/L2 retrieval and structurally cannot
express the per-pair attention-weighted sum of geodesic subspace
distances; ``benchmarks/bench_pq_vs_mnn.py`` quantifies the recall gap.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


#: float64 elements allowed in one ``(rows, k, dim)`` assignment block —
#: bounds the peak memory of :func:`assign_to_centroids` at ~32 MB
_ASSIGN_BLOCK_ELEMENTS = 2 ** 22


def assign_to_centroids(data: np.ndarray, centroids: np.ndarray,
                        block_rows: Optional[int] = None) -> np.ndarray:
    """Nearest-centroid assignment without the full ``(n, k, dim)`` tensor.

    The naive broadcast ``((data[:, None, :] - centroids) ** 2).sum(-1)``
    materialises ``n * k * dim`` floats at once — a memory blowup when a
    coarse quantiser trains over a scaled-up catalog.  This computes the
    same squared-Euclidean ``argmin`` one block of rows at a time, so
    peak memory is bounded by ``block_rows * k * dim`` regardless of
    ``n``.  Each row's distance vector is produced by the exact same
    elementwise expression, so assignments are bit-identical to the
    unblocked version.
    """
    n = data.shape[0]
    k, dim = centroids.shape
    if block_rows is None:
        block_rows = max(1, _ASSIGN_BLOCK_ELEMENTS // max(k * dim, 1))
    assign = np.empty(n, dtype=np.int64)
    for start in range(0, n, block_rows):
        chunk = data[start:start + block_rows]
        d2 = ((chunk[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1)
        assign[start:start + block_rows] = np.argmin(d2, axis=1)
    return assign


def _kmeans(rng: np.random.Generator, data: np.ndarray, k: int,
            iterations: int = 12) -> np.ndarray:
    """Lightweight Lloyd's k-means returning ``(k, dim)`` centroids."""
    n = data.shape[0]
    k = min(k, n)
    picks = rng.choice(n, size=k, replace=False)
    centroids = data[picks].copy()
    for _ in range(iterations):
        # blocked assignment by squared Euclidean distance: memory stays
        # bounded at scaled catalogs (IVF coarse training), assignments
        # bit-identical to the full-broadcast version
        assign = assign_to_centroids(data, centroids)
        for j in range(k):
            members = data[assign == j]
            if members.shape[0]:
                centroids[j] = members.mean(axis=0)
            else:  # re-seed empty clusters
                centroids[j] = data[int(rng.integers(n))]
    return centroids


@dataclasses.dataclass
class PQIndex:
    """Product-quantisation index with asymmetric distance computation.

    Parameters
    ----------
    num_blocks:
        How many sub-vectors each vector is split into (M in PQ papers).
    codebook_size:
        Centroids per block (k*; 256 in the classic setup, smaller here).
    """

    num_blocks: int = 4
    codebook_size: int = 32
    seed: int = 0

    def __post_init__(self):
        self._codebooks: Optional[np.ndarray] = None  # (blocks, k, block_dim)
        self._codes: Optional[np.ndarray] = None      # (n, blocks) uint8
        self._dim = 0
        self._block_dim = 0

    # -- build -------------------------------------------------------------

    def fit(self, vectors: np.ndarray) -> "PQIndex":
        """Train per-block codebooks and encode the database."""
        vectors = np.asarray(vectors, dtype=np.float64)
        n, dim = vectors.shape
        if dim % self.num_blocks != 0:
            raise ValueError("dim %d not divisible into %d blocks"
                             % (dim, self.num_blocks))
        self._dim = dim
        self._block_dim = dim // self.num_blocks
        rng = np.random.default_rng(self.seed)
        codebooks = []
        codes = np.zeros((n, self.num_blocks), dtype=np.int64)
        for b in range(self.num_blocks):
            block = vectors[:, b * self._block_dim:(b + 1) * self._block_dim]
            centroids = _kmeans(rng, block, self.codebook_size)
            codebooks.append(centroids)
            codes[:, b] = assign_to_centroids(block, centroids)
        # pad codebooks to a common size for stacking
        k_max = max(c.shape[0] for c in codebooks)
        stacked = np.full((self.num_blocks, k_max, self._block_dim), np.inf)
        for b, c in enumerate(codebooks):
            stacked[b, :c.shape[0]] = c
        self._codebooks = stacked
        self._codes = codes
        return self

    @property
    def is_fitted(self) -> bool:
        return self._codes is not None

    @property
    def num_vectors(self) -> int:
        return 0 if self._codes is None else self._codes.shape[0]

    def compression_ratio(self) -> float:
        """Stored bytes of raw float64 vectors vs PQ codes."""
        raw = self._dim * 8
        coded = self.num_blocks  # one byte per block at k<=256
        return raw / coded

    # -- query ---------------------------------------------------------------

    def _adc_tables(self, queries: np.ndarray) -> np.ndarray:
        """Asymmetric distance lookup tables, ``(q, blocks, k)``."""
        q = queries.shape[0]
        tables = np.empty((q, self.num_blocks, self._codebooks.shape[1]))
        for b in range(self.num_blocks):
            block = queries[:, b * self._block_dim:(b + 1) * self._block_dim]
            diff = block[:, None, :] - self._codebooks[b][None, :, :]
            with np.errstate(invalid="ignore"):
                tables[:, b] = np.square(diff).sum(axis=-1)
        return tables

    def search(self, queries: np.ndarray, k: int
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k`` by quantised Euclidean distance."""
        if not self.is_fitted:
            raise RuntimeError("call fit() before search()")
        queries = np.asarray(queries, dtype=np.float64)
        tables = self._adc_tables(queries)                  # (q, B, k*)
        # gather per-database-vector distances from the tables
        q = queries.shape[0]
        scores = np.zeros((q, self.num_vectors))
        for b in range(self.num_blocks):
            scores += tables[:, b, :][:, self._codes[:, b]]
        k = min(k, self.num_vectors)
        top = np.argpartition(scores, kth=k - 1, axis=1)[:, :k]
        rows = np.arange(q)[:, None]
        order = np.argsort(scores[rows, top], axis=1)
        ids = top[rows, order]
        return ids, scores[rows, ids]


def recall_at_k(approx_ids: np.ndarray, exact_ids: np.ndarray,
                k: int) -> float:
    """Mean fraction of the exact top-k recovered by the approximate top-k."""
    hits = 0
    for approx_row, exact_row in zip(approx_ids, exact_ids):
        hits += len(set(approx_row[:k].tolist())
                    & set(exact_row[:k].tolist()))
    return hits / (approx_ids.shape[0] * k)
