"""Retrieval system: MNN search, inverted indices, two-layer serving.

Reproduces the deployment half of AMCAD (paper §IV-C, Fig. 6):

- :mod:`repro.retrieval.mnn` — Mixed-curvature Nearest Neighbour
  search.  The paper notes product quantisation cannot handle the
  attention-weighted metric, so MNN is exact brute force distributed
  over workers with data-level (OpenMP) and instruction-level (SIMD)
  parallelism; here that is chunked numpy (vector units) plus an
  optional thread pool (data parallel);
- :mod:`repro.retrieval.index` — the six inverted indices
  (Q2Q/Q2I/I2Q/I2I/Q2A/I2A) built offline from trained embeddings;
- :mod:`repro.retrieval.two_layer` — the two-layer online retrieval
  framework: layer 1 expands the query and pre-click items into related
  keys, layer 2 retrieves ads through the key→ad indices;
- :mod:`repro.retrieval.serving` — an M/M/c queueing simulator mapping
  measured per-request service times to the response-time-vs-QPS curve
  of paper Fig. 9.
"""

from repro.retrieval.mnn import MNNSearcher, RelationSpace
from repro.retrieval.index import IndexSet, InvertedIndex
from repro.retrieval.two_layer import RetrievalResult, TwoLayerRetriever
from repro.retrieval.serving import ServingSimulator, ServingStats

__all__ = [
    "RelationSpace",
    "MNNSearcher",
    "InvertedIndex",
    "IndexSet",
    "TwoLayerRetriever",
    "RetrievalResult",
    "ServingSimulator",
    "ServingStats",
]
