"""Retrieval system: pluggable backends, inverted indices, two-layer serving.

Reproduces the deployment half of AMCAD (paper §IV-C, Fig. 6):

- :mod:`repro.retrieval.mnn` — Mixed-curvature Nearest Neighbour
  search.  The paper notes product quantisation cannot handle the
  attention-weighted metric, so MNN is exact brute force distributed
  over workers with data-level (OpenMP) and instruction-level (SIMD)
  parallelism; here that is chunked numpy (vector units) plus an
  optional thread pool (data parallel), with block results streamed
  into a bounded top-k merge;
- :mod:`repro.retrieval.backend` — the :class:`SearchBackend` seam all
  search strategies plug into (:class:`ExactBackend` wrapping MNN,
  :class:`PQBackend` wrapping product quantisation,
  :class:`ShardedBackend` partitioning the target space over per-shard
  inner backends with an exact top-k merge);
- :mod:`repro.retrieval.ann` — pruned ANN backends over the same
  metric (:class:`IVFBackend` inverted-file lists, :class:`NSWBackend`
  small-world graph): coarse candidate generation in the flat
  ``logmap0`` tangent space, exact re-rank with the attention-weighted
  manifold metric — the recall/latency dial the exact search lacks;
- :mod:`repro.retrieval.index` — the six inverted indices
  (Q2Q/Q2I/I2Q/I2I/Q2A/I2A) built offline through a backend factory,
  with ``save``/``load`` persistence for model-free serving;
- :mod:`repro.retrieval.two_layer` — the two-layer online retrieval
  framework: layer 1 expands the query and pre-click items into related
  keys, layer 2 retrieves ads through the key→ad indices; the hot path
  is the vectorised ``retrieve_batch``.

The online serving pieces (micro-batching engine, Erlang-C simulator)
live in :mod:`repro.serving`; ``repro.retrieval.serving`` remains as a
compatibility shim.
"""

from repro.retrieval.backend import (
    BACKENDS,
    ExactBackend,
    PQBackend,
    SearchBackend,
    ShardedBackend,
    make_backend,
    resolve_backend_factory,
)
from repro.retrieval.ann import IVFBackend, NSWBackend
from repro.retrieval.mnn import MNNSearcher, RelationSpace
from repro.retrieval.index import IndexSet, InvertedIndex
from repro.retrieval.two_layer import (
    KeyExpansion,
    RetrievalResult,
    TwoLayerRetriever,
)
from repro.serving.simulator import ServingSimulator, ServingStats

__all__ = [
    "BACKENDS",
    "SearchBackend",
    "ExactBackend",
    "PQBackend",
    "ShardedBackend",
    "IVFBackend",
    "NSWBackend",
    "make_backend",
    "resolve_backend_factory",
    "RelationSpace",
    "MNNSearcher",
    "InvertedIndex",
    "IndexSet",
    "KeyExpansion",
    "TwoLayerRetriever",
    "RetrievalResult",
    "ServingSimulator",
    "ServingStats",
]
