"""Mixed-curvature Nearest Neighbour (MNN) search — paper §IV-C-1.

The similarity of AMCAD is not a dot product: it is an attention-
weighted sum of per-subspace geodesic distances in relation-specific
edge spaces (paper Eq. 14).  Two properties make exact search feasible:

- the pair weight decomposes as ``w = w'(x) + w'(y)`` (Eq. 11), so the
  node-level attention weights can be *pre-computed* once per node
  before any search happens — this is the paper's own deployment trick;
- the per-subspace distance matrix reduces to inner products
  (:func:`repro.geometry.fast.pairwise_dist`), so a candidate block is
  scored entirely inside vectorised numpy (the SIMD level), and blocks
  are fanned out over a thread pool (the OpenMP/worker level).

A :class:`RelationSpace` is the frozen inference artefact for one
relation: projected source/target embeddings, per-node weights and edge
curvatures, extracted from a trained model under ``no_grad``.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.geometry.fast import pairwise_dist, rowwise_dist
from repro.graph.schema import NodeType, Relation


@dataclasses.dataclass
class RelationSpace:
    """Frozen edge-space geometry for one relation.

    Attributes
    ----------
    relation:
        Which typed pair this scores.
    src_embeddings / dst_embeddings:
        Per-subspace projected points, M arrays of ``(N, d)``.
    src_weights / dst_weights:
        Node-level attention weights ``w'``, arrays of ``(N, M)``.
    kappas:
        Edge-space curvature per subspace, length M.
    """

    relation: Relation
    src_embeddings: List[np.ndarray]
    dst_embeddings: List[np.ndarray]
    src_weights: np.ndarray
    dst_weights: np.ndarray
    kappas: List[float]

    @property
    def num_subspaces(self) -> int:
        return len(self.kappas)

    @property
    def num_sources(self) -> int:
        return self.src_embeddings[0].shape[0]

    @property
    def num_targets(self) -> int:
        return self.dst_embeddings[0].shape[0]

    @classmethod
    def from_model(cls, model, relation: Relation,
                   batch_size: int = 512,
                   encode_cache: Optional[dict] = None) -> "RelationSpace":
        """Extract projected embeddings + weights from a trained model.

        ``encode_cache`` (``node_type -> encoded subspace arrays``)
        memoises the relation-independent encode across calls — the
        per-relation projection still runs, but a caller building many
        relation spaces from one model (``IndexSet.build``) encodes
        each node type once instead of once per relation endpoint.
        """
        src_type, dst_type = relation.source_type, relation.target_type
        with no_grad():
            src_proj, src_w = _project_all(model, relation, src_type,
                                           batch_size, encode_cache)
            if src_type == dst_type:
                dst_proj, dst_w = src_proj, src_w
            else:
                dst_proj, dst_w = _project_all(model, relation, dst_type,
                                               batch_size, encode_cache)
            manifold = model.scorer.edge_manifolds[
                model.scorer._edge_key(relation)]
            kappas = manifold.kappas()
        return cls(relation=relation, src_embeddings=src_proj,
                   dst_embeddings=dst_proj, src_weights=src_w,
                   dst_weights=dst_w, kappas=kappas)

    def slice_targets(self, start: int, stop: int) -> "RelationSpace":
        """A view restricted to target rows ``[start, stop)``.

        Sources, weights-per-source and curvatures are shared (numpy
        views, no copies); only the target-side arrays are sliced.
        This is the unit of work a sharded backend hands to its inner
        per-shard backends.
        """
        return RelationSpace(
            relation=self.relation,
            src_embeddings=self.src_embeddings,
            dst_embeddings=[e[start:stop] for e in self.dst_embeddings],
            src_weights=self.src_weights,
            dst_weights=self.dst_weights[start:stop],
            kappas=self.kappas)

    def pair_distance(self, src_indices: np.ndarray,
                      dst_indices: np.ndarray) -> np.ndarray:
        """Weighted distance for aligned index arrays (evaluation path)."""
        src_indices = np.asarray(src_indices)
        dst_indices = np.asarray(dst_indices)
        weights = (self.src_weights[src_indices]
                   + self.dst_weights[dst_indices])          # (B, M)
        total = np.zeros(src_indices.shape[0])
        for m, kappa in enumerate(self.kappas):
            d = rowwise_dist(self.src_embeddings[m][src_indices],
                             self.dst_embeddings[m][dst_indices], kappa)
            total += weights[:, m] * d
        return total


def _project_all(model, relation: Relation, node_type: NodeType,
                 batch_size: int,
                 encode_cache: Optional[dict] = None
                 ) -> Tuple[List[np.ndarray], np.ndarray]:
    """Projected subspace embeddings + attention weights for all nodes.

    Models exposing ``encode_all`` (AMCAD) are encoded through one
    full-graph :class:`~repro.models.plan.EncodePlan` — a handful of
    fused vocabulary passes — and projected in a single vectorised
    call; the per-batch loop remains as the fallback for model objects
    without the full-graph path.  The encode is deterministic (fixed
    seed policy), so ``encode_cache`` can safely share it across
    relations.
    """
    graph = model.graph
    n = graph.num_nodes[node_type]
    rng = np.random.default_rng(2024)
    if n == 0:
        return [np.zeros((0, 1))], np.zeros((0, 1))
    if hasattr(model, "encode_all"):
        if encode_cache is not None and node_type in encode_cache:
            encoded = encode_cache[node_type]
        else:
            encoded = model.encode_all(node_type, rng)
            if encode_cache is not None:
                encode_cache[node_type] = encoded
        points = [Tensor(p) for p in encoded]
        projected = model.scorer.project(relation, node_type, points)
        weights = model.scorer.node_weights(relation, node_type, projected)
        return [t.data for t in projected], weights.data
    proj_chunks: Optional[List[List[np.ndarray]]] = None
    weight_chunks: List[np.ndarray] = []
    for start in range(0, n, batch_size):
        indices = np.arange(start, min(start + batch_size, n))
        points = model.encode(node_type, indices, rng)
        projected = model.scorer.project(relation, node_type, points)
        weights = model.scorer.node_weights(relation, node_type, projected)
        if proj_chunks is None:
            proj_chunks = [[] for _ in projected]
        for m, tensor in enumerate(projected):
            proj_chunks[m].append(tensor.data)
        weight_chunks.append(weights.data)
    return ([np.concatenate(chunk, axis=0) for chunk in proj_chunks],
            np.concatenate(weight_chunks, axis=0))


class MNNSearcher:
    """Exact top-K search under the attention-weighted mixed metric.

    Candidate blocks are scored one wave at a time and merged into a
    running per-source top-k, so peak memory is bounded by
    ``num_workers`` in-flight blocks plus the ``(B, k)`` result buffer —
    it does not scale with the full ``(B, N)`` score matrix.

    Parameters
    ----------
    space:
        The frozen relation geometry.
    num_workers:
        Thread-pool width (the paper's per-worker data parallelism).
        1 keeps everything on the calling thread.
    block_size:
        Candidate rows scored per vectorised block.
    """

    def __init__(self, space: RelationSpace, num_workers: int = 1,
                 block_size: int = 2048):
        self.space = space
        self.num_workers = max(int(num_workers), 1)
        self.block_size = int(block_size)
        #: Widest candidate buffer merged during the last search — the
        #: memory high-water mark, asserted far below N in the tests.
        self.peak_candidate_width = 0

    def _score_block(self, src_indices: np.ndarray,
                     block: slice) -> np.ndarray:
        """Weighted distances from given sources to one candidate block."""
        space = self.space
        width = block.stop - block.start
        total = np.zeros((src_indices.size, width))
        src_w = space.src_weights[src_indices]               # (B, M)
        dst_w = space.dst_weights[block]                     # (W, M)
        for m, kappa in enumerate(space.kappas):
            dists = pairwise_dist(space.src_embeddings[m][src_indices],
                                  space.dst_embeddings[m][block], kappa)
            weights = src_w[:, m:m + 1] + dst_w[None, :, m][0]
            total += weights * dists
        return total

    def _block_topk(self, src_indices: np.ndarray, block: slice, k: int,
                    mask_self: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Score one block and reduce it to per-source top-``k``."""
        scores = self._score_block(src_indices, block)
        if mask_self:
            in_block = ((src_indices >= block.start)
                        & (src_indices < block.stop))
            rows = np.nonzero(in_block)[0]
            scores[rows, src_indices[rows] - block.start] = np.inf
        width = scores.shape[1]
        kk = min(k, width)
        if kk < width:
            top = np.argpartition(scores, kth=kk - 1, axis=1)[:, :kk]
        else:
            top = np.broadcast_to(np.arange(width),
                                  (src_indices.size, width)).copy()
        dists = np.take_along_axis(scores, top, axis=1)
        return top.astype(np.int64) + block.start, dists

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` nearest targets per source.

        Returns ``(ids, distances)`` of shape ``(B, k)``, sorted by
        ascending distance.  ``exclude_self`` drops the diagonal for
        same-type relations (a node is trivially nearest to itself).

        Blocks are streamed: each wave of ``num_workers`` blocks is
        reduced to block-local top-k and folded into a running best-k
        buffer, so the full ``(B, N)`` matrix is never materialised.
        """
        src_indices = np.asarray(src_indices, dtype=np.int64)
        n_targets = self.space.num_targets
        k = min(k, n_targets - (1 if exclude_self else 0))
        mask_self = exclude_self and (self.space.relation.source_type
                                      == self.space.relation.target_type)
        blocks = [slice(start, min(start + self.block_size, n_targets))
                  for start in range(0, n_targets, self.block_size)]

        best_ids = np.empty((src_indices.size, 0), dtype=np.int64)
        best_dists = np.empty((src_indices.size, 0))
        self.peak_candidate_width = 0

        def absorb(pieces) -> None:
            nonlocal best_ids, best_dists
            best_ids = np.concatenate([best_ids] + [p[0] for p in pieces],
                                      axis=1)
            best_dists = np.concatenate([best_dists] + [p[1] for p in pieces],
                                        axis=1)
            self.peak_candidate_width = max(self.peak_candidate_width,
                                            best_dists.shape[1])
            if best_dists.shape[1] > k:
                keep = np.argpartition(best_dists, kth=k - 1, axis=1)[:, :k]
                best_ids = np.take_along_axis(best_ids, keep, axis=1)
                best_dists = np.take_along_axis(best_dists, keep, axis=1)

        wave = self.num_workers
        if self.num_workers > 1 and len(blocks) > 1:
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                for start in range(0, len(blocks), wave):
                    group = blocks[start:start + wave]
                    absorb(list(pool.map(
                        lambda b: self._block_topk(src_indices, b, k,
                                                   mask_self), group)))
        else:
            for block in blocks:
                absorb([self._block_topk(src_indices, block, k, mask_self)])

        order = np.argsort(best_dists, axis=1, kind="stable")
        return (np.take_along_axis(best_ids, order, axis=1),
                np.take_along_axis(best_dists, order, axis=1))
