"""Pluggable retrieval backends behind one search interface.

The deployed system (paper §IV-C-1) builds its inverted indices through
one search engine; the reproduction historically hard-wired the exact
:class:`~repro.retrieval.mnn.MNNSearcher` into every call site, so
alternative strategies (PQ, and later ANN pruning or sharding) forked
code paths.  This module defines the seam all of them plug into:

- :class:`SearchBackend` — ``build(space)`` freezes a backend over one
  :class:`~repro.retrieval.mnn.RelationSpace`, ``search(src, k)``
  answers batched top-k queries;
- :class:`ExactBackend` — the MNN brute-force search (recall 1.0 by
  construction), streaming per-block top-k merges so memory stays
  bounded at large target counts;
- :class:`PQBackend` — product quantisation over the concatenated
  Euclidean embedding, the traditional-ANN baseline the paper argues
  cannot express the attention-weighted mixed metric.

:class:`~repro.retrieval.index.IndexSet` takes a backend factory, so
every one of the six relation indices is built through whichever
backend the caller selects.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.retrieval.mnn import MNNSearcher, RelationSpace
from repro.retrieval.quantization import PQIndex


class SearchBackend(abc.ABC):
    """Top-k search over one frozen relation geometry.

    Lifecycle: construct with hyper-parameters, :meth:`build` once with
    a :class:`RelationSpace`, then :meth:`search` any number of times.
    """

    space: Optional[RelationSpace] = None

    @abc.abstractmethod
    def build(self, space: RelationSpace) -> "SearchBackend":
        """Freeze the backend over ``space`` and return ``self``."""

    @abc.abstractmethod
    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, distances)`` of shape ``(B, k)``, ascending distance."""

    @property
    def is_built(self) -> bool:
        return self.space is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("%s: call build(space) before search()"
                               % type(self).__name__)


class ExactBackend(SearchBackend):
    """Exact mixed-curvature search (MNN) behind the backend interface.

    Wraps :class:`MNNSearcher`, whose streamed per-block top-k merge
    keeps peak memory independent of the target-set size.
    """

    def __init__(self, num_workers: int = 1, block_size: int = 2048):
        self.num_workers = max(int(num_workers), 1)
        self.block_size = int(block_size)
        self.space: Optional[RelationSpace] = None
        self._searcher: Optional[MNNSearcher] = None

    def build(self, space: RelationSpace) -> "ExactBackend":
        self.space = space
        self._searcher = MNNSearcher(space, num_workers=self.num_workers,
                                     block_size=self.block_size)
        return self

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        return self._searcher.search(np.asarray(src_indices, dtype=np.int64),
                                     k, exclude_self=exclude_self)

    @property
    def peak_candidate_width(self) -> int:
        """Memory high-water mark of the last search (candidate columns)."""
        return 0 if self._searcher is None else \
            self._searcher.peak_candidate_width


class PQBackend(SearchBackend):
    """Product-quantisation backend over concatenated embeddings.

    This is the best a traditional ANN pipeline can do against the
    mixed-curvature metric: it sees only the flat concatenation of the
    per-subspace coordinates and ranks by quantised Euclidean distance,
    ignoring both the geodesic geometry and the per-pair attention
    weights.  Returned "distances" are therefore PQ/ADC squared
    Euclidean scores, comparable within one backend only.
    """

    def __init__(self, num_blocks: int = 4, codebook_size: int = 32,
                 seed: int = 0):
        self.num_blocks = int(num_blocks)
        self.codebook_size = int(codebook_size)
        self.seed = int(seed)
        self.space: Optional[RelationSpace] = None
        self.index: Optional[PQIndex] = None
        self._src_vectors: Optional[np.ndarray] = None

    def build(self, space: RelationSpace) -> "PQBackend":
        self.space = space
        database = np.concatenate(space.dst_embeddings, axis=1)
        self._src_vectors = np.concatenate(space.src_embeddings, axis=1)
        dim = database.shape[1]
        blocks = self.num_blocks
        while dim % blocks:  # PQ needs an even split; shrink to a divisor
            blocks -= 1
        self.index = PQIndex(num_blocks=blocks,
                             codebook_size=self.codebook_size,
                             seed=self.seed).fit(database)
        return self

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        src_indices = np.asarray(src_indices, dtype=np.int64)
        space = self.space
        same = exclude_self and (space.relation.source_type
                                 == space.relation.target_type)
        k = min(k, space.num_targets - (1 if exclude_self else 0))
        fetch = min(k + 1, space.num_targets) if same else k
        ids, dists = self.index.search(self._src_vectors[src_indices], fetch)
        if same:
            # drop the source row itself, keeping the remaining order
            not_self = ids != src_indices[:, None]
            keep = np.argsort(~not_self, axis=1, kind="stable")[:, :k]
            ids = np.take_along_axis(ids, keep, axis=1)
            dists = np.take_along_axis(dists, keep, axis=1)
        return ids[:, :k], dists[:, :k]


#: Registry of selectable backends, keyed by the name ``IndexSet`` and
#: the benchmarks accept ("exact", "pq", ...).
BACKENDS: Dict[str, Type[SearchBackend]] = {
    "exact": ExactBackend,
    "pq": PQBackend,
}

BackendSpec = Union[str, Type[SearchBackend], Callable[[], SearchBackend]]


def make_backend(name: str, **kwargs) -> SearchBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError("unknown backend %r (have: %s)"
                         % (name, ", ".join(sorted(BACKENDS)))) from None
    return cls(**kwargs)


def resolve_backend_factory(spec: BackendSpec = "exact",
                            **kwargs) -> Callable[[], SearchBackend]:
    """Normalise a backend spec into a zero-argument factory.

    Accepts a registry name (``"exact"``), a backend class, or an
    existing zero-argument factory; ``kwargs`` are forwarded to the
    constructor in the first two cases.
    """
    if isinstance(spec, str):
        return lambda: make_backend(spec, **kwargs)
    if isinstance(spec, type) and issubclass(spec, SearchBackend):
        return lambda: spec(**kwargs)
    if callable(spec):
        if kwargs:
            raise ValueError("kwargs cannot be combined with a ready-made "
                             "backend factory")
        return spec
    raise TypeError("backend spec must be a name, class or factory, got %r"
                    % (spec,))
