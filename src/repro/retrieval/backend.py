"""Pluggable retrieval backends behind one search interface.

The deployed system (paper §IV-C-1) builds its inverted indices through
one search engine; the reproduction historically hard-wired the exact
:class:`~repro.retrieval.mnn.MNNSearcher` into every call site, so
alternative strategies (PQ, and later ANN pruning or sharding) forked
code paths.  This module defines the seam all of them plug into:

- :class:`SearchBackend` — ``build(space)`` freezes a backend over one
  :class:`~repro.retrieval.mnn.RelationSpace`, ``search(src, k)``
  answers batched top-k queries;
- :class:`ExactBackend` — the MNN brute-force search (recall 1.0 by
  construction), streaming per-block top-k merges so memory stays
  bounded at large target counts;
- :class:`PQBackend` — product quantisation over the concatenated
  Euclidean embedding, the traditional-ANN baseline the paper argues
  cannot express the attention-weighted mixed metric.

:class:`~repro.retrieval.index.IndexSet` takes a backend factory, so
every one of the six relation indices is built through whichever
backend the caller selects.
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.retrieval.mnn import MNNSearcher, RelationSpace
from repro.retrieval.quantization import PQIndex
from repro.testing.faults import InjectedTimeout, fault_point


class SearchBackend(abc.ABC):
    """Top-k search over one frozen relation geometry.

    Lifecycle: construct with hyper-parameters, :meth:`build` once with
    a :class:`RelationSpace`, then :meth:`search` any number of times.
    """

    space: Optional[RelationSpace] = None

    @abc.abstractmethod
    def build(self, space: RelationSpace) -> "SearchBackend":
        """Freeze the backend over ``space`` and return ``self``."""

    @abc.abstractmethod
    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, distances)`` of shape ``(B, k)``, ascending distance."""

    @property
    def is_built(self) -> bool:
        return self.space is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("%s: call build(space) before search()"
                               % type(self).__name__)

    @staticmethod
    def _clamp_k(space: RelationSpace, k: int,
                 exclude_self: bool) -> Tuple[int, bool]:
        """Shared search preamble: effective ``k`` and self-drop flag.

        ``k`` shrinks by one reservable slot when the caller asked to
        exclude the source row; the self row only actually exists (and
        is dropped) for same-type relations.
        """
        same = exclude_self and (space.relation.source_type
                                 == space.relation.target_type)
        return min(k, space.num_targets - (1 if exclude_self else 0)), same


class ExactBackend(SearchBackend):
    """Exact mixed-curvature search (MNN) behind the backend interface.

    Wraps :class:`MNNSearcher`, whose streamed per-block top-k merge
    keeps peak memory independent of the target-set size.
    """

    def __init__(self, num_workers: int = 1, block_size: int = 2048):
        self.num_workers = max(int(num_workers), 1)
        self.block_size = int(block_size)
        self.space: Optional[RelationSpace] = None
        self._searcher: Optional[MNNSearcher] = None

    def build(self, space: RelationSpace) -> "ExactBackend":
        self.space = space
        self._searcher = MNNSearcher(space, num_workers=self.num_workers,
                                     block_size=self.block_size)
        return self

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        return self._searcher.search(np.asarray(src_indices, dtype=np.int64),
                                     k, exclude_self=exclude_self)

    @property
    def peak_candidate_width(self) -> int:
        """Memory high-water mark of the last search (candidate columns)."""
        return 0 if self._searcher is None else \
            self._searcher.peak_candidate_width


class PQBackend(SearchBackend):
    """Product-quantisation backend over concatenated embeddings.

    This is the best a traditional ANN pipeline can do against the
    mixed-curvature metric: it sees only the flat concatenation of the
    per-subspace coordinates and ranks by quantised Euclidean distance,
    ignoring both the geodesic geometry and the per-pair attention
    weights.  Returned "distances" are therefore PQ/ADC squared
    Euclidean scores, comparable within one backend only.
    """

    def __init__(self, num_blocks: int = 4, codebook_size: int = 32,
                 seed: int = 0):
        self.num_blocks = int(num_blocks)
        self.codebook_size = int(codebook_size)
        self.seed = int(seed)
        self.space: Optional[RelationSpace] = None
        self.index: Optional[PQIndex] = None
        self._src_vectors: Optional[np.ndarray] = None

    def build(self, space: RelationSpace) -> "PQBackend":
        self.space = space
        database = np.concatenate(space.dst_embeddings, axis=1)
        self._src_vectors = np.concatenate(space.src_embeddings, axis=1)
        dim = database.shape[1]
        blocks = self.num_blocks
        while dim % blocks:  # PQ needs an even split; shrink to a divisor
            blocks -= 1
        self.index = PQIndex(num_blocks=blocks,
                             codebook_size=self.codebook_size,
                             seed=self.seed).fit(database)
        return self

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        src_indices = np.asarray(src_indices, dtype=np.int64)
        space = self.space
        k, same = self._clamp_k(space, k, exclude_self)
        fetch = min(k + 1, space.num_targets) if same else k
        ids, dists = self.index.search(self._src_vectors[src_indices], fetch)
        if same:
            # drop the source row itself, keeping the remaining order
            not_self = ids != src_indices[:, None]
            keep = np.argsort(~not_self, axis=1, kind="stable")[:, :k]
            ids = np.take_along_axis(ids, keep, axis=1)
            dists = np.take_along_axis(dists, keep, axis=1)
        return ids[:, :k], dists[:, :k]


class ShardedBackend(SearchBackend):
    """Shard-partitioned search delegating to per-shard inner backends.

    The target space is split into ``num_shards`` contiguous shards;
    each shard is a :meth:`RelationSpace.slice_targets` view handed to
    its own inner backend (``"exact"`` or ``"pq"`` from
    :data:`BACKENDS`).  Shards build independently — optionally on a
    thread pool (``parallelism``) — and a search fans out to every
    shard, maps shard-local ids back to global ids, and merges the
    per-shard top-k into a global top-k.

    Merge semantics: every shard returns its true local top-k (one
    extra candidate when the self row must be dropped, since the self
    row lives in exactly one shard) and the global top-k is taken over
    the union.  Whenever the inner scores are metric-true — the
    ``"exact"`` inner backend — this merge is *exact*: results are
    bit-identical to the monolithic :class:`ExactBackend`.  With
    ``"pq"`` each shard trains its own codebooks on its slice, so ADC
    scores are only calibrated within a shard; merging them globally is
    the usual sharded-ANN approximation and can skew the merged top-k
    toward tightly-quantising shards (recall can differ from a
    monolithic :class:`PQBackend` — the exactness claim does not extend
    to quantised inners).

    ``shard_bounds`` (the ``[start, stop)`` target ranges) is exposed
    so index persistence can record the shard layout.

    Degraded mode: with ``shard_timeout`` (seconds) each shard search
    runs on the pool and is awaited with that deadline; a timed-out,
    raising, or fault-injected shard (``"shard.search"`` site, context
    ``shard=i``) is retried up to ``shard_retries`` times with
    exponential backoff (``shard_backoff * 2**round`` seconds between
    rounds), and a shard that exhausts its retries is *excluded from
    the merge* rather than failing the query.  The merged result is
    then exactly the top-k over the healthy shards — never empty (all
    shards failing raises), never out of order.  ``last_failed_shards``
    / ``last_degraded`` describe the most recent search, ``health()``
    aggregates counters, and the optional ``on_shard_outcome(shard,
    ok)`` callback lets a circuit breaker watch per-shard outcomes.
    """

    def __init__(self, num_shards: int = 2, inner_backend: str = "exact",
                 inner_kwargs: Optional[dict] = None, parallelism: int = 1,
                 shard_timeout: Optional[float] = None,
                 shard_retries: int = 0, shard_backoff: float = 0.0):
        if int(num_shards) < 1:
            raise ValueError("num_shards must be >= 1, got %d"
                             % int(num_shards))
        if inner_backend == "sharded":
            raise ValueError("inner_backend cannot itself be 'sharded'")
        if inner_backend not in BACKENDS:
            raise ValueError("unknown inner backend %r (have: %s)"
                             % (inner_backend,
                                ", ".join(sorted(BACKENDS))))
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0 seconds or None, "
                             "got %r" % shard_timeout)
        if int(shard_retries) < 0:
            raise ValueError("shard_retries must be >= 0, got %d"
                             % int(shard_retries))
        if shard_backoff < 0:
            raise ValueError("shard_backoff must be >= 0, got %r"
                             % shard_backoff)
        self.num_shards = int(num_shards)
        self.inner_backend = inner_backend
        self.inner_kwargs = dict(inner_kwargs or {})
        self.parallelism = max(int(parallelism), 1)
        self.shard_timeout = shard_timeout
        self.shard_retries = int(shard_retries)
        self.shard_backoff = float(shard_backoff)
        self.space: Optional[RelationSpace] = None
        self.shards: List[SearchBackend] = []
        self.shard_bounds: List[Tuple[int, int]] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        # degraded-mode bookkeeping
        self.searches = 0
        self.degraded_searches = 0
        self.shard_errors: List[int] = []
        self.shard_timeouts: List[int] = []
        self.last_failed_shards: List[int] = []
        self.on_shard_outcome: Optional[Callable[[int, bool], None]] = None

    def _pool(self) -> ThreadPoolExecutor:
        # lazy and persistent: search() is the hot path (every index
        # chunk, every serving key expansion), so the pool must not be
        # rebuilt per call.  With a shard timeout every shard search is
        # awaited through a future, so the pool is sized to fan out all
        # shards at once — otherwise queue wait would eat the deadline.
        if self._executor is None:
            workers = self.parallelism
            if self.shard_timeout is not None:
                workers = max(workers, len(self.shard_bounds) or
                              self.num_shards)
            self._executor = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="shard-search")
        return self._executor

    def close(self) -> None:
        """Shut down the shard thread pool (no-op when unused)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=False)

    def build(self, space: RelationSpace) -> "ShardedBackend":
        self.space = space
        n = space.num_targets
        shards = min(self.num_shards, max(n, 1))
        edges = np.linspace(0, n, shards + 1).astype(np.int64)
        self.shard_bounds = [(int(a), int(b))
                             for a, b in zip(edges[:-1], edges[1:])]

        def build_one(bounds: Tuple[int, int]) -> SearchBackend:
            lo, hi = bounds
            inner = make_backend(self.inner_backend, **self.inner_kwargs)
            return inner.build(space.slice_targets(lo, hi))

        if self.parallelism > 1 and len(self.shard_bounds) > 1:
            self.shards = list(self._pool().map(build_one,
                                                self.shard_bounds))
        else:
            self.shards = [build_one(b) for b in self.shard_bounds]
        self.shard_errors = [0] * len(self.shards)
        self.shard_timeouts = [0] * len(self.shards)
        return self

    @property
    def last_degraded(self) -> bool:
        return bool(self.last_failed_shards)

    def health(self) -> Dict[str, object]:
        """Degraded-mode counters for stats/monitoring surfaces."""
        return {
            "searches": self.searches,
            "degraded_searches": self.degraded_searches,
            "shard_errors": list(self.shard_errors),
            "shard_timeouts": list(self.shard_timeouts),
            "last_failed_shards": list(self.last_failed_shards),
        }

    def _record_shard_error(self, shard: int, exc: BaseException) -> None:
        self.shard_errors[shard] += 1
        if isinstance(exc, (FuturesTimeout, TimeoutError, InjectedTimeout)):
            self.shard_timeouts[shard] += 1

    def _run_shard_searches(self, tasks: Dict[int, Callable]
                           ) -> Tuple[Dict[int, Tuple[np.ndarray, np.ndarray]],
                                      Dict[int, BaseException]]:
        """One fan-out round; returns per-shard results and failures."""
        results: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        failures: Dict[int, BaseException] = {}
        use_pool = (self.shard_timeout is not None
                    or (self.parallelism > 1 and len(tasks) > 1))
        if use_pool:
            futures = {shard: self._pool().submit(task)
                       for shard, task in tasks.items()}
            for shard, future in futures.items():
                try:
                    results[shard] = future.result(timeout=self.shard_timeout)
                except Exception as exc:
                    failures[shard] = exc
        else:
            for shard, task in tasks.items():
                try:
                    results[shard] = task()
                except Exception as exc:
                    failures[shard] = exc
        return results, failures

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        src_indices = np.asarray(src_indices, dtype=np.int64)
        space = self.space
        self.searches += 1
        self.last_failed_shards = []
        k, same = self._clamp_k(space, k, exclude_self)
        if k < 1:
            return (np.zeros((src_indices.size, 0), dtype=np.int64),
                    np.zeros((src_indices.size, 0)))

        def make_task(shard: int) -> Callable:
            lo, hi = self.shard_bounds[shard]
            backend = self.shards[shard]
            # one extra candidate when the (single) self row may be
            # dropped after the merge
            fetch = min(k + 1, hi - lo) if same else min(k, hi - lo)

            def task() -> Tuple[np.ndarray, np.ndarray]:
                if fetch < 1:
                    return (np.zeros((src_indices.size, 0), dtype=np.int64),
                            np.zeros((src_indices.size, 0)))
                fault_point("shard.search", shard=shard)
                ids, dists = backend.search(src_indices, fetch)
                return ids + lo, dists

            return task

        results: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        remaining = list(range(len(self.shards)))
        last_failure: Optional[BaseException] = None
        for round_no in range(self.shard_retries + 1):
            if not remaining:
                break
            if round_no > 0 and self.shard_backoff > 0:
                time.sleep(self.shard_backoff * (2 ** (round_no - 1)))
            round_results, failures = self._run_shard_searches(
                {shard: make_task(shard) for shard in remaining})
            results.update(round_results)
            for shard, exc in failures.items():
                self._record_shard_error(shard, exc)
                last_failure = exc
            remaining = sorted(failures)

        self.last_failed_shards = remaining
        if self.on_shard_outcome is not None:
            for shard in range(len(self.shards)):
                self.on_shard_outcome(shard, shard not in remaining)
        if remaining:
            self.degraded_searches += 1
        if not results:
            raise RuntimeError(
                "sharded search failed: all %d shard(s) errored (last: %s)"
                % (len(self.shards), last_failure)) from last_failure

        pieces = [results[shard] for shard in sorted(results)]
        all_ids = np.concatenate([p[0] for p in pieces], axis=1)
        all_dists = np.concatenate([p[1] for p in pieces], axis=1)
        if same:
            all_dists = np.where(all_ids == src_indices[:, None], np.inf,
                                 all_dists)
        if k < all_dists.shape[1]:
            keep = np.argpartition(all_dists, kth=k - 1, axis=1)[:, :k]
            all_ids = np.take_along_axis(all_ids, keep, axis=1)
            all_dists = np.take_along_axis(all_dists, keep, axis=1)
        order = np.argsort(all_dists, axis=1, kind="stable")
        return (np.take_along_axis(all_ids, order, axis=1),
                np.take_along_axis(all_dists, order, axis=1))


#: Registry of selectable backends, keyed by the name ``IndexSet`` and
#: the benchmarks accept ("exact", "pq", ...).
BACKENDS: Dict[str, Type[SearchBackend]] = {
    "exact": ExactBackend,
    "pq": PQBackend,
    "sharded": ShardedBackend,
}

BackendSpec = Union[str, Type[SearchBackend], Callable[[], SearchBackend]]


def make_backend(name: str, **kwargs) -> SearchBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError("unknown backend %r (have: %s)"
                         % (name, ", ".join(sorted(BACKENDS)))) from None
    return cls(**kwargs)


def resolve_backend_factory(spec: BackendSpec = "exact",
                            **kwargs) -> Callable[[], SearchBackend]:
    """Normalise a backend spec into a zero-argument factory.

    Accepts a registry name (``"exact"``), a backend class, or an
    existing zero-argument factory; ``kwargs`` are forwarded to the
    constructor in the first two cases.
    """
    if isinstance(spec, str):
        return lambda: make_backend(spec, **kwargs)
    if isinstance(spec, type) and issubclass(spec, SearchBackend):
        return lambda: spec(**kwargs)
    if callable(spec):
        if kwargs:
            raise ValueError("kwargs cannot be combined with a ready-made "
                             "backend factory")
        return spec
    raise TypeError("backend spec must be a name, class or factory, got %r"
                    % (spec,))
