"""Pruned ANN backends over the mixed-curvature metric: IVF and NSW.

Paper §IV-C-1 argues traditional ANN — product quantisation over a flat
concatenation (its ref [31]) — cannot express the attention-weighted
mixed-curvature similarity, and ships exact MNN search instead.  Exact
search holds at the paper's catalog but not at 10–100x.  The backends
here exploit the structure PQ cannot: every κ-stereographic subspace is
*flattened* by ``logmap0`` into a Euclidean tangent space at the
origin, where classic ANN machinery applies, and the candidates that
survive the flat prune are re-scored with the true attention-weighted
geodesic metric — the same per-pair formula the exact searcher uses.
The resulting two-phase split is the recall/latency dial:

    tangent-space prune (cheap, metric-blind, dialled by
    ``nprobe`` / ``ef_search``)
        → manifold re-rank (true metric on ≤ ``rerank_k`` candidates)

- :class:`IVFBackend` — inverted-file search: a k-means coarse
  quantiser over the tangent projections partitions the targets into
  ``num_lists`` inverted lists; a query scans its ``nprobe`` nearest
  lists (expanding automatically until ``k`` candidates exist) and
  re-ranks.  ``nprobe >= num_lists`` with an uncapped re-rank
  degenerates to the exact search and is served by the MNN searcher
  itself, so it is *bit-identical* to
  :class:`~repro.retrieval.backend.ExactBackend`.
- :class:`NSWBackend` — a navigable-small-world graph built by
  chunked incremental insertion with tangent-space edge selection;
  queries run a batched greedy best-first beam search (``ef_search``
  beam slots per query) and re-rank the beam.

Both return metric-true distances after the re-rank (unless
``manifold_rerank=False``, the tangent-only diagnostic mode the ANN
bench uses to isolate the mixed-curvature twist), so they compose with
:class:`~repro.retrieval.backend.ShardedBackend` via
``inner_backend="ivf"`` / ``"nsw"``: per-shard results merge under the
sharded exact-top-k semantics over whatever candidates the shards
surface, and a faulted shard degrades exactly as exact inner shards do.
Builds and searches are deterministic functions of ``(space, seed)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.fast import artan_k_numpy, logmap0_numpy
from repro.retrieval.backend import BACKENDS, SearchBackend
from repro.retrieval.mnn import MNNSearcher, RelationSpace
from repro.retrieval.quantization import _kmeans, assign_to_centroids

#: beam entries expanded per vectorised NSW search iteration — trades a
#: few wasted expansions for ~8x fewer Python-level loop iterations
#: (measured: same recall as width 4, ~25% higher queries/sec)
_EXPAND_WIDTH = 8

#: query rows scored per manifold re-rank block — bounds the ``(B, R, d)``
#: candidate gather and its ``(B, R)`` scalar intermediates the same way
#: ``ExactBackend``'s blocked merge bounds the exact scan, so a 100x
#: catalog (larger ``R`` pools) cannot spike memory with the batch size
_RERANK_BLOCK_ROWS = 512


def tangent_projection(embeddings: List[np.ndarray],
                       kappas: List[float]) -> np.ndarray:
    """Concatenated ``logmap0`` tangent coordinates, ``(N, sum d_m)``.

    Each subspace is flattened at the origin with its own curvature, so
    the result is one flat Euclidean vector per node — the coordinate
    system the coarse prune (k-means lists, NSW edges, beam search)
    operates in.  The attention weights are deliberately *not* folded
    in: they are per-pair quantities (``w'(x) + w'(y)``) that only the
    manifold re-rank can apply.
    """
    return np.concatenate(
        [logmap0_numpy(emb, kappa) for emb, kappa in zip(embeddings, kappas)],
        axis=1)


def candidate_dist(space: RelationSpace, src_indices: np.ndarray,
                   cand_ids: np.ndarray, valid: np.ndarray,
                   block_rows: int = 0) -> np.ndarray:
    """True mixed-metric distances for per-row candidate sets, ``(B, R)``.

    Mirrors the weighted per-subspace geodesic sum of
    :meth:`~repro.retrieval.mnn.MNNSearcher._score_block` on aligned
    ``(query, candidate)`` pairs instead of a full pairwise block;
    invalid (padding) entries come back ``+inf``.  ``block_rows > 0``
    streams the query rows in blocks of that size, bounding the
    ``(B, R, d)`` candidate gather at ``(block_rows, R, d)``; each
    row's score is independent of the blocking, so the result is
    identical either way.
    """
    src_indices = np.asarray(src_indices, dtype=np.int64)
    if block_rows and 0 < block_rows < src_indices.shape[0]:
        out = np.empty(cand_ids.shape)
        for start in range(0, src_indices.shape[0], block_rows):
            stop = min(start + block_rows, src_indices.shape[0])
            out[start:stop] = candidate_dist(
                space, src_indices[start:stop], cand_ids[start:stop],
                valid[start:stop])
        return out
    safe = np.where(valid, cand_ids, 0)
    src_w = space.src_weights[src_indices]                 # (B, M)
    total = np.zeros(cand_ids.shape)
    for m, kappa in enumerate(space.kappas):
        x = space.src_embeddings[m][src_indices]           # (B, d)
        y = space.dst_embeddings[m][safe]                  # (B, R, d)
        # pairwise_mobius_norm expansion on aligned rows
        inner = -np.einsum("bd,brd->br", x, y)
        x2 = np.sum(x * x, axis=1)[:, None]
        y2 = np.sum(y * y, axis=2)
        coeff_a = 1.0 - 2.0 * kappa * inner - kappa * y2
        coeff_b = 1.0 + kappa * x2
        denom = 1.0 - 2.0 * kappa * inner + kappa * kappa * x2 * y2
        denom = np.where(np.abs(denom) < 1e-15, 1e-15, denom)
        squared = np.maximum(coeff_a * coeff_a * x2
                             + 2.0 * coeff_a * coeff_b * inner
                             + coeff_b * coeff_b * y2, 0.0)
        norm = np.sqrt(squared) / np.abs(denom)
        weights = src_w[:, m:m + 1] + space.dst_weights[safe, m]
        total += weights * (2.0 * artan_k_numpy(norm, kappa))
    return np.where(valid, total, np.inf)


def _rank_candidates(space: RelationSpace, src_indices: np.ndarray,
                     cand: np.ndarray, valid: np.ndarray,
                     tangent_d2: np.ndarray, k: int, same: bool,
                     rerank_k: int, manifold_rerank: bool
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Shared tail of both backends: prune → re-rank → top-k.

    ``cand``/``valid``/``tangent_d2`` are the ``(B, R)`` candidate pool
    a coarse stage produced (``tangent_d2`` already ``+inf`` on invalid
    entries).  ``rerank_k > 0`` keeps only the tangent-nearest
    ``max(rerank_k, k + 1)`` candidates before the manifold re-rank; 0
    re-ranks the whole pool.
    """
    fetch = min(k + 1, space.num_targets) if same else k
    pool = cand.shape[1]
    if rerank_k > 0:
        keep_n = min(max(rerank_k, fetch), pool)
        if keep_n < pool:
            keep = np.argpartition(tangent_d2, kth=keep_n - 1,
                                   axis=1)[:, :keep_n]
            cand = np.take_along_axis(cand, keep, axis=1)
            valid = np.take_along_axis(valid, keep, axis=1)
            tangent_d2 = np.take_along_axis(tangent_d2, keep, axis=1)
    if manifold_rerank:
        scores = candidate_dist(space, src_indices, cand, valid,
                                block_rows=_RERANK_BLOCK_ROWS)
    else:
        scores = tangent_d2
    if same:
        scores = np.where(cand == src_indices[:, None], np.inf, scores)
    if k < scores.shape[1]:
        top = np.argpartition(scores, kth=k - 1, axis=1)[:, :k]
        cand = np.take_along_axis(cand, top, axis=1)
        scores = np.take_along_axis(scores, top, axis=1)
    order = np.argsort(scores, axis=1, kind="stable")
    return (np.take_along_axis(cand, order, axis=1)[:, :k],
            np.take_along_axis(scores, order, axis=1)[:, :k])


class IVFBackend(SearchBackend):
    """Inverted-file search: tangent-space k-means lists + manifold re-rank.

    Build: project every target into the concatenated tangent space,
    train a ``num_lists``-centroid k-means coarse quantiser over it
    (blocked assignment, memory bounded at any catalog size), and
    bucket the targets into inverted lists.  Search: rank the lists by
    centroid distance to the query's tangent vector, scan the nearest
    ``nprobe`` lists (more when fewer than ``k`` candidates fall out —
    every query always gets a full top-k), prune the pool to the
    ``rerank_k`` tangent-nearest and re-rank those with the true
    attention-weighted geodesic metric.

    Dials: ``nprobe`` trades recall for scan fraction, ``rerank_k``
    bounds the exact-metric work per query (0 re-ranks every scanned
    candidate).  ``nprobe >= num_lists`` with an uncapped re-rank is
    served by the exact MNN searcher — bit-identical to
    :class:`ExactBackend`.
    """

    def __init__(self, num_lists: int = 0, nprobe: int = 16,
                 rerank_k: int = 0, kmeans_iters: int = 8, seed: int = 0,
                 manifold_rerank: bool = True):
        if int(num_lists) < 0:
            raise ValueError("num_lists must be >= 0 (0 = sqrt heuristic), "
                             "got %d" % int(num_lists))
        if int(nprobe) < 1:
            raise ValueError("nprobe must be >= 1, got %d" % int(nprobe))
        if int(rerank_k) < 0:
            raise ValueError("rerank_k must be >= 0 (0 = re-rank every "
                             "candidate), got %d" % int(rerank_k))
        if int(kmeans_iters) < 1:
            raise ValueError("kmeans_iters must be >= 1, got %d"
                             % int(kmeans_iters))
        self.num_lists = int(num_lists)
        self.nprobe = int(nprobe)
        self.rerank_k = int(rerank_k)
        self.kmeans_iters = int(kmeans_iters)
        self.seed = int(seed)
        self.manifold_rerank = bool(manifold_rerank)
        self.space: Optional[RelationSpace] = None
        self.resolved_lists = 0
        self._centroids: Optional[np.ndarray] = None
        self._list_sizes: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        self._grouped_ids: Optional[np.ndarray] = None
        self._grouped_tangent: Optional[np.ndarray] = None
        self._grouped_norm2: Optional[np.ndarray] = None
        self._dst_tangent: Optional[np.ndarray] = None
        self._src_tangent: Optional[np.ndarray] = None
        self._exact: Optional[MNNSearcher] = None

    def build(self, space: RelationSpace) -> "IVFBackend":
        self.space = space
        self._dst_tangent = tangent_projection(space.dst_embeddings,
                                               space.kappas)
        self._src_tangent = tangent_projection(space.src_embeddings,
                                               space.kappas)
        n = space.num_targets
        if n == 0:
            self.resolved_lists = 0
            return self
        lists = self.num_lists or max(1, int(round(np.sqrt(n))))
        rng = np.random.default_rng(self.seed)
        self._centroids = _kmeans(rng, self._dst_tangent, min(lists, n),
                                  iterations=self.kmeans_iters)
        self.resolved_lists = self._centroids.shape[0]
        assign = assign_to_centroids(self._dst_tangent, self._centroids)
        counts = np.bincount(assign, minlength=self.resolved_lists)
        order = np.argsort(assign, kind="stable")   # grouped, ascending ids
        # inverted lists as contiguous slices of one grouped tangent
        # matrix: the scan is then one BLAS matmul per probed list
        # instead of 3-D fancy-index gathers
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        self._grouped_ids = order.astype(np.int64)
        self._grouped_tangent = np.ascontiguousarray(self._dst_tangent[order])
        self._grouped_norm2 = np.sum(self._grouped_tangent ** 2, axis=1)
        self._list_sizes = counts
        return self

    @property
    def is_exact_dial(self) -> bool:
        """Whether the current dial degenerates to exact search."""
        return (self.manifold_rerank
                and self.nprobe >= self.resolved_lists
                and (self.rerank_k == 0
                     or self.rerank_k >= self.space.num_targets))

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        src_indices = np.asarray(src_indices, dtype=np.int64)
        space = self.space
        k, same = self._clamp_k(space, k, exclude_self)
        if k < 1:
            return (np.zeros((src_indices.size, 0), dtype=np.int64),
                    np.zeros((src_indices.size, 0)))
        if self.is_exact_dial:
            # full probe + uncapped re-rank scans every candidate under
            # the true metric — exactly the MNN search, so serve it
            # through the MNN searcher (bit-identical to ExactBackend)
            if self._exact is None:
                self._exact = MNNSearcher(space)
            return self._exact.search(src_indices, k,
                                      exclude_self=exclude_self)
        fetch = min(k + 1, space.num_targets) if same else k
        lists = self.resolved_lists
        b = src_indices.size
        q = self._src_tangent[src_indices]                 # (B, D)
        q_norm2 = np.sum(q * q, axis=1)
        cdist = (q_norm2[:, None]
                 + np.sum(self._centroids ** 2, axis=1)[None, :]
                 - 2.0 * q @ self._centroids.T)            # (B, L)
        probe_order = np.argsort(cdist, axis=1, kind="stable")
        cum = np.cumsum(self._list_sizes[probe_order], axis=1)
        # expand past nprobe until every query holds >= fetch candidates
        enough = cum >= fetch
        first = np.where(enough.any(axis=1), np.argmax(enough, axis=1),
                         lists - 1)
        probes = np.minimum(np.maximum(self.nprobe, first + 1), lists)
        rows = np.arange(b)
        ranks = np.empty((b, lists), dtype=np.int64)
        ranks[rows[:, None], probe_order] = np.arange(lists)[None, :]
        probed = ranks < probes[:, None]                   # (B, L)
        total = cum[rows, probes - 1]
        width = max(int(total.max()), 1)
        cand = np.zeros((b, width), dtype=np.int64)
        tangent_d2 = np.full((b, width), np.inf)
        fill = np.zeros(b, dtype=np.int64)
        # list-major scan: one contiguous-block BLAS matmul per probed
        # list, scattered into each probing query's candidate row
        for l in range(lists):
            rr = np.nonzero(probed[:, l])[0]
            lo, hi = self._offsets[l], self._offsets[l + 1]
            if rr.size == 0 or hi == lo:
                continue
            block = (q_norm2[rr, None] + self._grouped_norm2[lo:hi][None, :]
                     - 2.0 * q[rr] @ self._grouped_tangent[lo:hi].T)
            cols = fill[rr][:, None] + np.arange(hi - lo)[None, :]
            cand[rr[:, None], cols] = self._grouped_ids[lo:hi][None, :]
            tangent_d2[rr[:, None], cols] = block
            fill[rr] += hi - lo
        valid = np.arange(width)[None, :] < fill[:, None]
        return _rank_candidates(space, src_indices, cand, valid, tangent_d2,
                                k, same, self.rerank_k, self.manifold_rerank)


class NSWBackend(SearchBackend):
    """Navigable-small-world graph search with tangent-space edges.

    Build: insert targets in a seeded random order, chunk by chunk; the
    first chunk is linked brute-force, every later chunk runs the
    batched greedy beam search (``ef_construction`` beam) against the
    graph built so far and links each new node to its ``max_degree``
    nearest discovered neighbours (bidirectionally, deduplicated,
    far-edge eviction beyond ``2 * max_degree``).  Search: batched
    greedy best-first beam search seeded from the tangent medoid plus
    a seeded random spread of entry points, ``ef_search`` beam slots
    per query, then the shared tangent-prune → manifold-re-rank tail.
    A query whose beam comes back short (disconnected component) falls
    back to a full tangent scan for that row, so every query always
    gets a full top-k.

    Dials: ``ef_search`` trades recall for hops; ``rerank_k > 0``
    switches on *neighbourhood widening* — the graph neighbours of the
    beam (and, with ``expand_hops > 1``, of the tangent-nearest
    survivors, repeatedly) join the candidate pool, which is pruned to
    the ``rerank_k`` tangent-nearest before the manifold re-rank.  The
    widening is the cheap counter to the tangent/metric mismatch:
    true-metric neighbours that the tangent-blind beam ranks just
    outside ``ef_search`` are almost always within a hop or two of it,
    so the re-rank pool grows ~``max_degree``-fold per hop for one
    vectorised gather each instead of a deeper beam.  ``rerank_k = 0``
    re-ranks exactly the beam (no widening).
    """

    def __init__(self, max_degree: int = 12, ef_construction: int = 48,
                 ef_search: int = 48, rerank_k: int = 0, seed: int = 0,
                 manifold_rerank: bool = True, insert_chunk: int = 256,
                 expand_hops: int = 1):
        if int(max_degree) < 1:
            raise ValueError("max_degree must be >= 1, got %d"
                             % int(max_degree))
        if int(ef_construction) < 1:
            raise ValueError("ef_construction must be >= 1, got %d"
                             % int(ef_construction))
        if int(ef_search) < 1:
            raise ValueError("ef_search must be >= 1, got %d"
                             % int(ef_search))
        if int(rerank_k) < 0:
            raise ValueError("rerank_k must be >= 0 (0 = re-rank every "
                             "candidate), got %d" % int(rerank_k))
        if int(insert_chunk) < 1:
            raise ValueError("insert_chunk must be >= 1, got %d"
                             % int(insert_chunk))
        if int(expand_hops) < 0:
            raise ValueError("expand_hops must be >= 0 (0 = re-rank the "
                             "bare beam), got %d" % int(expand_hops))
        self.max_degree = int(max_degree)
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self.rerank_k = int(rerank_k)
        self.seed = int(seed)
        self.manifold_rerank = bool(manifold_rerank)
        self.insert_chunk = int(insert_chunk)
        self.expand_hops = int(expand_hops)
        self.space: Optional[RelationSpace] = None
        self._dst_tangent: Optional[np.ndarray] = None
        self._dst_tangent_norm2: Optional[np.ndarray] = None
        self._dst_tangent32: Optional[np.ndarray] = None
        self._dst_tangent32_norm2: Optional[np.ndarray] = None
        self._src_tangent: Optional[np.ndarray] = None
        self._adj: Optional[np.ndarray] = None       # (N, cap), -1 padded
        self._adj_d2: Optional[np.ndarray] = None    # (N, cap), inf padded
        self._deg: Optional[np.ndarray] = None
        self._entries: Optional[np.ndarray] = None

    # -- graph construction --------------------------------------------------

    def _add_edge(self, a: int, b: int, d2: float) -> None:
        """Directed edge ``a -> b``; evicts the farthest when full."""
        if a == b:
            return
        deg = self._deg[a]
        if np.any(self._adj[a, :deg] == b):
            return
        if deg < self._adj.shape[1]:
            self._adj[a, deg] = b
            self._adj_d2[a, deg] = d2
            self._deg[a] = deg + 1
            return
        worst = int(np.argmax(self._adj_d2[a]))
        if d2 < self._adj_d2[a, worst]:
            self._adj[a, worst] = b
            self._adj_d2[a, worst] = d2

    def _select_diverse(self, neighbour_ids: np.ndarray,
                        neighbour_d2: np.ndarray) -> List[int]:
        """Diversity-pruned neighbour selection (the HNSW heuristic).

        Walking candidates nearest-first, a candidate is kept only if
        it is closer to the new node than to every neighbour already
        kept — same-direction near-duplicates are pruned so the edge
        budget buys *coverage* of directions, which is what greedy
        routing needs.  Pruned candidates backfill any remaining slots
        (nearest-first) so nodes keep their full degree.
        """
        cand_t = self._dst_tangent[neighbour_ids]
        norms = np.sum(cand_t * cand_t, axis=1)
        # pairwise candidate-to-candidate d2, one small BLAS per node
        pair = norms[:, None] + norms[None, :] - 2.0 * cand_t @ cand_t.T
        take: List[int] = []
        skipped: List[int] = []
        for j in range(neighbour_ids.size):
            if len(take) == self.max_degree:
                break
            if take and bool(np.any(pair[j, take] < neighbour_d2[j])):
                skipped.append(j)
                continue
            take.append(j)
        if len(take) < self.max_degree:
            take.extend(skipped[:self.max_degree - len(take)])
        return take

    def _link(self, node: int, neighbour_ids: np.ndarray,
              neighbour_d2: np.ndarray) -> None:
        """Bidirectional links from ``node`` to a diverse nearest set."""
        for j in self._select_diverse(neighbour_ids, neighbour_d2):
            other = int(neighbour_ids[j])
            d2 = float(neighbour_d2[j])
            self._add_edge(node, other, d2)
            self._add_edge(other, node, d2)

    def build(self, space: RelationSpace) -> "NSWBackend":
        self.space = space
        self._dst_tangent = tangent_projection(space.dst_embeddings,
                                               space.kappas)
        self._dst_tangent_norm2 = np.sum(self._dst_tangent ** 2, axis=1)
        # float32 shadow copy for the widening hops: the hop distances
        # only *prune* candidates (the re-rank recomputes true metric
        # distances in float64), and halving the gather bytes is where
        # the widening time goes
        self._dst_tangent32 = self._dst_tangent.astype(np.float32)
        self._dst_tangent32_norm2 = np.sum(self._dst_tangent32 ** 2, axis=1)
        self._src_tangent = tangent_projection(space.src_embeddings,
                                               space.kappas)
        n = space.num_targets
        cap = 2 * self.max_degree
        self._adj = np.full((max(n, 1), cap), -1, dtype=np.int64)
        self._adj_d2 = np.full((max(n, 1), cap), np.inf)
        self._deg = np.zeros(max(n, 1), dtype=np.int64)
        if n == 0:
            return self
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        t = self._dst_tangent
        # entry points: the medoid-ish node nearest the tangent centroid
        # plus a seeded random spread — multiple beam seeds let the
        # greedy search escape local minima one entry cannot
        centre = t.mean(axis=0, keepdims=True)
        medoid = int(np.argmin(np.sum((t - centre) ** 2, axis=1)))
        extra = rng.choice(n, size=min(8, n), replace=False)
        self._entries = np.unique(
            np.concatenate([[medoid], extra]).astype(np.int64))
        # insert the entry nodes first so every later chunk's search
        # starts from linked seeds
        order = np.concatenate(
            [self._entries,
             order[~np.isin(order, self._entries)]])

        first = order[:min(max(self.insert_chunk, self._entries.size + 1),
                           n)]
        if first.size > 1:
            diff = t[first][:, None, :] - t[first][None, :, :]
            d2 = np.sum(diff * diff, axis=-1)
            np.fill_diagonal(d2, np.inf)
            take = min(self.max_degree, first.size - 1)
            nearest = np.argpartition(d2, kth=take - 1, axis=1)[:, :take]
            for i, node in enumerate(first):
                cols = nearest[i][np.argsort(d2[i, nearest[i]],
                                             kind="stable")]
                self._link(int(node), first[cols], d2[i, cols])
        inserted = first.size
        while inserted < n:
            chunk = order[inserted:inserted + self.insert_chunk]
            cand, cand_d2, valid = self._graph_search(
                t[chunk], ef=max(self.ef_construction, self.max_degree))
            for i, node in enumerate(chunk):
                ids = cand[i][valid[i]]
                d2s = cand_d2[i][valid[i]]
                sel = np.argsort(d2s, kind="stable")
                self._link(int(node), ids[sel], d2s[sel])
            inserted += chunk.size
        return self

    # -- batched greedy beam search ------------------------------------------

    def _graph_search(self, queries: np.ndarray, ef: int
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Greedy best-first beam search for all queries at once.

        Returns ``(ids, d2, valid)`` of shape ``(B, ef)`` — the beam of
        tangent-nearest reachable nodes per query.  Every iteration
        expands the ``_EXPAND_WIDTH`` nearest unexpanded beam entries
        of every still-active query in one vectorised step, so the
        Python-level loop runs ~``ef / _EXPAND_WIDTH`` times per
        *batch*, not per query.
        """
        n = self.space.num_targets
        b = queries.shape[0]
        t = self._dst_tangent
        q32 = queries.astype(np.float32)
        qn = np.sum(q32 * q32, axis=1)
        t32 = self._dst_tangent32
        tn = self._dst_tangent32_norm2
        rows = np.arange(b)[:, None]
        # one sentinel column absorbs the writes of masked-out filler
        # entries: a plain always-True scatter has no read-modify-write
        # hazard on duplicate indices (an |= on a fancy index is
        # buffered — the last duplicate would win and could *clear* a
        # visited flag set by an earlier duplicate in the same batch)
        visited = np.zeros((b, n + 1), dtype=bool)
        scratch = np.empty((b, n + 1), dtype=np.int32)
        beam_ids = np.full((b, ef), -1, dtype=np.int64)
        beam_d2 = np.full((b, ef), np.inf)
        beam_exp = np.zeros((b, ef), dtype=bool)
        entries = self._entries[:ef]
        beam_ids[:, :entries.size] = entries[None, :]
        ediff = t[entries][None, :, :] - queries[:, None, :]
        beam_d2[:, :entries.size] = np.sum(ediff * ediff, axis=-1)
        visited[:, entries] = True
        expand = min(_EXPAND_WIDTH, ef)
        for _ in range(n + ef):
            open_d2 = np.where(beam_exp | (beam_ids < 0), np.inf, beam_d2)
            if expand < ef:
                sel = np.argpartition(open_d2, kth=expand - 1,
                                      axis=1)[:, :expand]   # (B, E)
            else:
                sel = np.broadcast_to(np.arange(ef)[None, :],
                                      (b, ef)).copy()
            act = np.isfinite(np.take_along_axis(open_d2, sel, axis=1))
            if not act.any():
                break
            np.put_along_axis(beam_exp, sel,
                              np.take_along_axis(beam_exp, sel, axis=1)
                              | act, axis=1)
            cur = np.where(act, np.take_along_axis(beam_ids, sel, axis=1),
                           entries[0])                      # (B, E)
            nbrs = self._adj[cur]                           # (B, E, cap)
            ok = (nbrs >= 0) & act[:, :, None]
            w = nbrs.shape[1] * nbrs.shape[2]
            safe = np.where(ok, nbrs, 0).reshape(b, w)
            ok = ok.reshape(b, w)
            vslot = np.where(ok, safe, n)
            fresh = ok & ~visited[rows, vslot]
            visited[rows, vslot] = True
            # two expanded nodes can share a neighbour: freshness is
            # uniform per id within an iteration (all occurrences read
            # `visited` before any write), so the O(width) column
            # scatter keeps exactly one survivor per id per row
            cols = np.broadcast_to(np.arange(w)[None, :], (b, w))
            scratch[rows, vslot] = cols
            fresh &= scratch[rows, vslot] == cols
            # float32 shadow distances: the beam only *prunes* (the
            # re-rank recomputes true metric in float64), and the
            # norm trick halves the gather bytes where the time goes
            dots = np.matmul(t32[safe], q32[:, :, None])[:, :, 0]
            nd2 = np.where(
                fresh,
                np.maximum(qn[:, None] + tn[safe] - 2.0 * dots, 0.0),
                np.inf).astype(np.float64)
            all_ids = np.concatenate(
                [beam_ids, np.where(fresh, safe, -1)], axis=1)
            all_d2 = np.concatenate([beam_d2, nd2], axis=1)
            all_exp = np.concatenate(
                [beam_exp, np.zeros_like(fresh)], axis=1)
            keep = np.argpartition(all_d2, kth=ef - 1, axis=1)[:, :ef]
            beam_ids = np.take_along_axis(all_ids, keep, axis=1)
            beam_d2 = np.take_along_axis(all_d2, keep, axis=1)
            beam_exp = np.take_along_axis(all_exp, keep, axis=1)
        valid = beam_ids >= 0
        return beam_ids, beam_d2, valid

    def search(self, src_indices: np.ndarray, k: int,
               exclude_self: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        src_indices = np.asarray(src_indices, dtype=np.int64)
        space = self.space
        k, same = self._clamp_k(space, k, exclude_self)
        if k < 1:
            return (np.zeros((src_indices.size, 0), dtype=np.int64),
                    np.zeros((src_indices.size, 0)))
        fetch = min(k + 1, space.num_targets) if same else k
        q = self._src_tangent[src_indices]
        ef = max(self.ef_search, fetch)
        cand, tangent_d2, valid = self._graph_search(q, ef=ef)
        # disconnected-component safety net: a short beam falls back to
        # a full tangent scan for that query row
        short = valid.sum(axis=1) < fetch
        if short.any():
            t = self._dst_tangent
            for i in np.nonzero(short)[0]:
                diff = t - q[i][None, :]
                d2 = np.sum(diff * diff, axis=1)
                top = np.argpartition(d2, kth=min(ef, d2.size) - 1
                                      )[:ef]
                top = top[np.argsort(d2[top], kind="stable")]
                # wipe the whole row: the beam's valid entries are not
                # packed to the front, so a partial overwrite would
                # leave stale (duplicate) ids behind the refill
                cand[i] = -1
                valid[i] = False
                tangent_d2[i] = np.inf
                cand[i, :top.size] = top
                tangent_d2[i, :top.size] = d2[top]
                valid[i, :top.size] = True
        cand = np.where(valid, cand, 0)
        tangent_d2 = np.where(valid, tangent_d2, np.inf)
        if self.rerank_k > 0 and self.expand_hops > 0:
            cand, valid, tangent_d2 = self._widen(
                q, cand, valid, tangent_d2, fetch)
        return _rank_candidates(space, src_indices, cand, valid, tangent_d2,
                                k, same, self.rerank_k, self.manifold_rerank)

    def _widen(self, q: np.ndarray, cand: np.ndarray, valid: np.ndarray,
               tangent_d2: np.ndarray, fetch: int
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Neighbourhood widening of the beam (class docstring).

        Each hop gathers the graph neighbours of the current pool,
        deduplicates ids per row with an O(width) last-write column
        scatter (no per-row sort), and prunes back by tangent distance:
        intermediate hops to a small working set, the last hop to the
        ``rerank_k`` re-rank budget.
        """
        n = self.space.num_targets
        b = q.shape[0]
        q32 = q.astype(np.float32)
        qn = np.sum(q32 * q32, axis=1)
        t32 = self._dst_tangent32
        tn = self._dst_tangent32_norm2
        rows = np.arange(b)[:, None]
        # one extra column absorbs the scatter of invalid entries
        scratch = np.empty((b, n + 1), dtype=np.int32)
        inter_keep = max(fetch, min(96, self.rerank_k))
        for hop in range(self.expand_hops):
            nbrs = self._adj[cand]                         # (B, P, cap)
            ok = (nbrs >= 0) & valid[:, :, None]
            width = nbrs.shape[1] * nbrs.shape[2]
            ext = np.where(ok, nbrs, 0).reshape(b, width)
            ok = ok.reshape(b, width)
            dots = np.matmul(t32[ext], q32[:, :, None])[:, :, 0]
            ext_d2 = np.where(ok, qn[:, None] + tn[ext] - 2.0 * dots,
                              np.inf).astype(np.float64)
            cand = np.concatenate([cand, ext], axis=1)
            valid = np.concatenate([valid, ok], axis=1)
            tangent_d2 = np.concatenate([tangent_d2, ext_d2], axis=1)
            # dedup: scatter each entry's column index keyed by id (last
            # write wins), keep only the entry that reads its own column
            # back — exactly one survivor per id per row
            cols = np.broadcast_to(np.arange(cand.shape[1])[None, :],
                                   cand.shape)
            slot = np.where(valid, cand, n)
            scratch[rows, slot] = cols
            valid = valid & (scratch[rows, slot] == cols)
            tangent_d2 = np.where(valid, tangent_d2, np.inf)
            keep_n = (inter_keep if hop < self.expand_hops - 1
                      else max(self.rerank_k, fetch))
            if keep_n < cand.shape[1]:
                kp = np.argpartition(tangent_d2, kth=keep_n - 1,
                                     axis=1)[:, :keep_n]
                cand = np.take_along_axis(cand, kp, axis=1)
                valid = np.take_along_axis(valid, kp, axis=1)
                tangent_d2 = np.take_along_axis(tangent_d2, kp, axis=1)
        return cand, valid, tangent_d2


BACKENDS["ivf"] = IVFBackend
BACKENDS["nsw"] = NSWBackend
