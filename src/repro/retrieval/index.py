"""Offline inverted-index construction (paper §IV-C-1, Fig. 6).

An :class:`InvertedIndex` maps each key node to its K nearest result
nodes under the mixed-curvature metric.  :class:`IndexSet` builds the
six indices the two-layer retrieval framework needs — Q2Q, Q2I, I2Q,
I2I (layer one: key expansion) and Q2A, I2A (layer two: ad retrieval) —
from one trained model.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.graph.schema import Relation
from repro.retrieval.backend import (
    BackendSpec,
    ExactBackend,
    SearchBackend,
    resolve_backend_factory,
)
from repro.retrieval.mnn import RelationSpace

#: Layer-one (key expansion) and layer-two (ad retrieval) relations.
LAYER_ONE = (Relation.Q2Q, Relation.Q2I, Relation.I2Q, Relation.I2I)
LAYER_TWO = (Relation.Q2A, Relation.I2A)


def _json_clean(value):
    """Recursively keep only the JSON-serialisable parts of ``value``.

    Backend kwargs may contain non-serialisable entries (e.g. a class
    or factory passed as ``inner_backend``); those are dropped rather
    than failing the whole save.
    """
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            cleaned = _json_clean(item)
            if cleaned is not _DROP:
                out[str(key)] = cleaned
        return out
    if isinstance(value, (list, tuple)):
        return [item for item in (_json_clean(v) for v in value)
                if item is not _DROP]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return _DROP


_DROP = object()


@dataclasses.dataclass
class InvertedIndex:
    """key node id -> (top-K result ids, distances)."""

    relation: Relation
    ids: np.ndarray        # (N, K) result node ids
    distances: np.ndarray  # (N, K) ascending distances
    build_seconds: float

    def lookup(self, key: int, k: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Results for one key, optionally truncated to ``k``."""
        k = k if k is not None else self.ids.shape[1]
        return self.ids[key, :k], self.distances[key, :k]

    def lookup_batch(self, keys: np.ndarray, k: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
        k = k if k is not None else self.ids.shape[1]
        keys = np.asarray(keys, dtype=np.int64)
        return self.ids[keys, :k], self.distances[keys, :k]

    @property
    def num_keys(self) -> int:
        return self.ids.shape[0]


class IndexSet:
    """Builds and holds the six inverted indices for one model.

    Every index is constructed through a pluggable
    :class:`~repro.retrieval.backend.SearchBackend`, so the exact MNN
    search and approximate strategies (PQ, future ANN variants) share
    one build path.  A built set can be persisted with :meth:`save` and
    reloaded with :meth:`load` into a model-free serving artefact.

    Parameters
    ----------
    model:
        A trained :class:`~repro.models.amcad.AMCAD` (or any object
        exposing ``encode``/``scorer``/``graph``).  ``None`` only for
        sets restored via :meth:`load`, which serve lookups but cannot
        :meth:`build`.
    top_k:
        Results stored per key.
    num_workers:
        Backend thread-pool width per index build (exact backend).
    backend:
        Backend spec — a registry name (``"exact"``, ``"pq"``), a
        :class:`SearchBackend` subclass, or a zero-argument factory.
    backend_kwargs:
        Constructor arguments forwarded when ``backend`` is a name or a
        class.
    """

    def __init__(self, model, top_k: int = 50, num_workers: int = 1,
                 batch_size: int = 256, backend: BackendSpec = "exact",
                 backend_kwargs: Optional[dict] = None):
        self.model = model
        self.top_k = int(top_k)
        self.num_workers = int(num_workers)
        self.batch_size = int(batch_size)
        kwargs = dict(backend_kwargs or {})
        if backend == "exact" or (isinstance(backend, type)
                                  and issubclass(backend, ExactBackend)):
            kwargs.setdefault("num_workers", self.num_workers)
        elif backend == "sharded":
            # exact inner shards keep the configured MNN worker width —
            # switching "exact" -> "sharded" must not silently drop it
            if kwargs.get("inner_backend", "exact") == "exact":
                inner_kwargs = dict(kwargs.get("inner_kwargs") or {})
                inner_kwargs.setdefault("num_workers", self.num_workers)
                kwargs["inner_kwargs"] = inner_kwargs
        self.backend_factory = resolve_backend_factory(backend, **kwargs)
        #: registry name the set was built through (``None`` for
        #: class/factory specs) — persisted by :meth:`save`
        self.backend_name: Optional[str] = (backend
                                            if isinstance(backend, str)
                                            else None)
        #: JSON-serialisable constructor arguments of the backend (ANN
        #: dials like ``nprobe``/``ef_search``, shard layout, inner
        #: backend spec) — persisted by :meth:`save` so a reloaded set
        #: knows the dial it was built at
        self.backend_params: Dict[str, object] = _json_clean(kwargs)
        self.indices: Dict[Relation, InvertedIndex] = {}
        self.spaces: Dict[Relation, RelationSpace] = {}
        self.backends: Dict[Relation, SearchBackend] = {}
        #: per-relation target-shard ``[start, stop)`` bounds (sharded
        #: backends only); restored by :meth:`load`
        self.shard_bounds: Dict[Relation, list] = {}

    def build(self, relations: Optional[Sequence[Relation]] = None
              ) -> "IndexSet":
        """Construct indices for the given relations (default: all six).

        The relation-independent full-vocabulary encode is shared
        across the relations through one per-build cache — each node
        type is encoded once, not once per relation endpoint.
        """
        relations = list(relations or (LAYER_ONE + LAYER_TWO))
        encode_cache: dict = {}
        for relation in relations:
            self.build_one(relation, encode_cache=encode_cache)
        return self

    def build_one(self, relation: Relation,
                  encode_cache: Optional[dict] = None) -> InvertedIndex:
        """Build a single inverted index through the configured backend."""
        if self.model is None:
            raise RuntimeError("this IndexSet was loaded from disk and has "
                               "no model to build from")
        start = time.perf_counter()
        space = RelationSpace.from_model(self.model, relation,
                                         encode_cache=encode_cache)
        backend = self.backend_factory().build(space)
        same_type = relation.source_type == relation.target_type
        n_src = space.num_sources
        k = min(self.top_k, space.num_targets - (1 if same_type else 0))
        all_ids = np.zeros((n_src, k), dtype=np.int64)
        all_dists = np.zeros((n_src, k))
        for chunk_start in range(0, n_src, self.batch_size):
            chunk = np.arange(chunk_start,
                              min(chunk_start + self.batch_size, n_src))
            ids, dists = backend.search(chunk, k, exclude_self=same_type)
            all_ids[chunk] = ids
            all_dists[chunk] = dists
        elapsed = time.perf_counter() - start
        index = InvertedIndex(relation=relation, ids=all_ids,
                              distances=all_dists, build_seconds=elapsed)
        self.indices[relation] = index
        self.spaces[relation] = space
        self.backends[relation] = backend
        bounds = getattr(backend, "shard_bounds", None)
        if bounds:
            self.shard_bounds[relation] = [(int(a), int(b))
                                           for a, b in bounds]
        return index

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> pathlib.Path:
        """Write the built indices to one ``.npz`` (via :mod:`repro.io`)."""
        from repro.io import save_index_set  # local: io imports this module
        return save_index_set(self, path)

    @classmethod
    def load(cls, path) -> "IndexSet":
        """Reload indices written by :meth:`save`.

        The result serves lookups (and therefore the two-layer
        retriever) without any model object in scope; only
        :meth:`build` is unavailable.  Shard-aware: the backend name
        and per-relation shard bounds recorded by :meth:`save` are
        restored, so a serving process knows the shard layout its
        indices were built over.
        """
        from repro.io import load_index_set  # local: io imports this module
        stored = load_index_set(path)
        index_set = cls(model=None, backend=stored.backend or "exact",
                        backend_kwargs=stored.backend_params)
        index_set.backend_name = stored.backend
        index_set.backend_params = dict(stored.backend_params)
        index_set.indices = dict(stored.indices)
        index_set.shard_bounds = dict(stored.shard_bounds)
        if index_set.indices:
            index_set.top_k = max(ix.ids.shape[1]
                                  for ix in index_set.indices.values())
        return index_set

    def __getitem__(self, relation: Relation) -> InvertedIndex:
        return self.indices[relation]

    def __contains__(self, relation: Relation) -> bool:
        return relation in self.indices

    @property
    def total_build_seconds(self) -> float:
        return float(np.sum([ix.build_seconds for ix in self.indices.values()]))
