"""Online A/B test simulator — CTR / RPM per page (paper §VI-F, Table X).

The paper replaces one retrieval channel (AMCAD_E) with AMCAD on 4% of
live traffic and reports CTR and RPM lifts per result page.  Here the
live traffic is simulated:

- requests are drawn from the same user-intent model as the behaviour
  logs (a user searches a query under a leaf category and carries
  recent pre-click items);
- each channel retrieves ads with its two-layer retriever; ads are
  paginated; the user clicks ad slots with probability
  ``base_ctr × position_bias(page) × relevance(ad, intent)`` where
  relevance is 1 for the intent leaf, a discount for sibling leaves and
  ~0 otherwise — the ground truth the synthetic platform is built on;
- a click pays the advertiser's per-click price, giving RPM.

CTR and RPM therefore improve exactly when the channel retrieves ads
whose category matches the user intent — which is what the offline
metrics say AMCAD does better; Table X checks the effect survives the
serving stack.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.universe import Universe
from repro.graph.schema import NodeType
from repro.retrieval.two_layer import TwoLayerRetriever


@dataclasses.dataclass
class ABTestConfig:
    """Traffic model parameters."""

    num_requests: int = 400
    ads_per_page: int = 4
    num_pages: int = 5
    base_ctr: float = 0.35
    position_bias_decay: float = 0.75
    #: click relevance decays by this factor per category-tree hop
    #: between the user's intent leaf and the ad's leaf — the same
    #: graded locality the behaviour simulator uses
    relevance_decay: float = 0.35
    preclick_items: int = 2
    seed: int = 0


@dataclasses.dataclass
class ChannelOutcome:
    """Raw counters for one channel."""

    impressions: np.ndarray   # per page
    clicks: np.ndarray        # per page
    revenue: np.ndarray       # per page

    def ctr(self) -> np.ndarray:
        return np.divide(self.clicks, np.maximum(self.impressions, 1))

    def rpm(self) -> np.ndarray:
        return 1000.0 * np.divide(self.revenue, np.maximum(self.impressions, 1))


@dataclasses.dataclass
class ABTestResult:
    """Lift of the treatment channel over control, per page + overall."""

    control: ChannelOutcome
    treatment: ChannelOutcome

    def ctr_lift(self) -> Dict[str, float]:
        return self._lift(self.control.ctr(), self.treatment.ctr(),
                          self.control.clicks, self.treatment.clicks,
                          self.control.impressions, self.treatment.impressions)

    def rpm_lift(self) -> Dict[str, float]:
        return self._lift(self.control.rpm(), self.treatment.rpm(),
                          self.control.revenue, self.treatment.revenue,
                          self.control.impressions, self.treatment.impressions)

    @staticmethod
    def _lift(control_rate, treatment_rate, control_num, treatment_num,
              control_den, treatment_den) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for page in range(len(control_rate)):
            base = control_rate[page]
            out["page %d" % (page + 1)] = (
                100.0 * (treatment_rate[page] - base) / base if base > 0
                else float("nan"))
        control_overall = control_num.sum() / max(control_den.sum(), 1)
        treatment_overall = treatment_num.sum() / max(treatment_den.sum(), 1)
        out["overall"] = (100.0 * (treatment_overall - control_overall)
                          / control_overall if control_overall > 0
                          else float("nan"))
        return out


class _TrafficModel:
    """Draws requests and simulates click behaviour over retrieved ads."""

    def __init__(self, universe: Universe, config: ABTestConfig,
                 queries_for_leaf: Dict[int, np.ndarray],
                 items_for_leaf: Dict[int, np.ndarray]):
        self.universe = universe
        self.config = config
        self.queries_for_leaf = queries_for_leaf
        self.items_for_leaf = items_for_leaf
        self.leaves = np.asarray(universe.category_tree.leaves)

    def draw_request(self, rng: np.random.Generator
                     ) -> Tuple[int, int, List[int]]:
        """(intent leaf, query, pre-click items)."""
        cfg = self.config
        while True:
            leaf = int(self.leaves[rng.integers(self.leaves.size)])
            queries = self.queries_for_leaf.get(leaf)
            if queries is not None and queries.size:
                break
        query = int(queries[rng.integers(queries.size)])
        items = self.items_for_leaf.get(leaf, np.empty(0, dtype=np.int64))
        preclicks: List[int] = []
        if items.size:
            picks = rng.integers(items.size, size=min(cfg.preclick_items,
                                                      items.size))
            preclicks = [int(items[p]) for p in picks]
        return leaf, query, preclicks

    def relevance(self, leaf: int, ad: int) -> float:
        tree = self.universe.category_tree
        ad_leaf = int(self.universe.ads.category[ad])
        distance = tree.tree_distance(leaf, ad_leaf)
        return self.config.relevance_decay ** distance

    def simulate_pages(self, rng: np.random.Generator, leaf: int,
                       ads: np.ndarray,
                       outcome: ChannelOutcome) -> None:
        cfg = self.config
        prices = self.universe.ads.price_per_click
        slot = 0
        for page in range(cfg.num_pages):
            bias = cfg.position_bias_decay ** page
            for _ in range(cfg.ads_per_page):
                if slot >= ads.size:
                    return
                ad = int(ads[slot])
                slot += 1
                outcome.impressions[page] += 1
                p_click = cfg.base_ctr * bias * self.relevance(leaf, ad)
                if rng.random() < p_click:
                    outcome.clicks[page] += 1
                    outcome.revenue[page] += float(prices[ad])


def run_ab_test(universe: Universe, control: TwoLayerRetriever,
                treatment: TwoLayerRetriever,
                config: Optional[ABTestConfig] = None,
                queries_for_leaf: Optional[Dict[int, np.ndarray]] = None,
                items_for_leaf: Optional[Dict[int, np.ndarray]] = None
                ) -> ABTestResult:
    """Serve identical traffic to both channels and compare CTR/RPM.

    Both channels see the *same* request stream (common random numbers
    for the requests, independent draws for the clicks), the standard
    variance-reduction setup for A/B simulation.
    """
    config = config or ABTestConfig()
    tree = universe.category_tree
    if queries_for_leaf is None:
        queries_for_leaf = {}
        for leaf in tree.leaves:
            path = set(tree.path(leaf))
            queries_for_leaf[leaf] = np.flatnonzero(
                np.isin(universe.queries.category, list(path)))
    if items_for_leaf is None:
        items_for_leaf = {leaf: np.flatnonzero(universe.items.category == leaf)
                          for leaf in tree.leaves}

    traffic = _TrafficModel(universe, config, queries_for_leaf, items_for_leaf)
    pages = config.num_pages
    outcome_control = ChannelOutcome(np.zeros(pages), np.zeros(pages),
                                     np.zeros(pages))
    outcome_treatment = ChannelOutcome(np.zeros(pages), np.zeros(pages),
                                       np.zeros(pages))
    request_rng = np.random.default_rng(config.seed)
    total_ads = config.ads_per_page * config.num_pages

    for request in range(config.num_requests):
        leaf, query, preclicks = traffic.draw_request(request_rng)
        ads_control = control.retrieve(query, preclicks, k=total_ads).ads
        ads_treatment = treatment.retrieve(query, preclicks, k=total_ads).ads
        # common random numbers: both channels see the identical click
        # coin sequence for this request, so identical rankings produce
        # exactly identical outcomes and the lift estimator is paired
        click_seed = config.seed + 7919 * (request + 1)
        traffic.simulate_pages(np.random.default_rng(click_seed), leaf,
                               ads_control, outcome_control)
        traffic.simulate_pages(np.random.default_rng(click_seed), leaf,
                               ads_treatment, outcome_treatment)
    return ABTestResult(control=outcome_control, treatment=outcome_treatment)
