"""Evaluation: offline metrics (paper §VI-A-4) and the online A/B simulator.

- :mod:`repro.evaluation.metrics` — Next AUC (AUC on the next day's
  graph), Hitrate@K and nDCG@K against click-count-sorted ground truth;
- :mod:`repro.evaluation.ab_test` — simulated online traffic comparing
  two retrieval channels on CTR and RPM per result page (paper Table X).
"""

from repro.evaluation.metrics import (
    RankingMetrics,
    auc_from_scores,
    evaluate_ranking,
    ground_truth_from_log,
    hitrate_at_k,
    ndcg_at_k,
    next_auc,
)
from repro.evaluation.ab_test import ABTestConfig, ABTestResult, run_ab_test

__all__ = [
    "auc_from_scores",
    "next_auc",
    "hitrate_at_k",
    "ndcg_at_k",
    "evaluate_ranking",
    "ground_truth_from_log",
    "RankingMetrics",
    "ABTestConfig",
    "ABTestResult",
    "run_ab_test",
]
