"""Offline evaluation metrics (paper §VI-A-4).

The paper trains on one day's graph and evaluates on the next day's:

- **Next AUC** — area under the ROC curve for link prediction on
  next-day edges against sampled non-edges;
- **Hitrate@K / nDCG@K** — per query, the ground truth is the item/ad
  list sorted by next-day click count; a retrieval function supplies
  the model's top-K and is scored against that list.

Models plug in through two small protocols:

- a *similarity function* ``sim(relation, src_idx, dst_idx) -> array``
  (both :class:`~repro.models.amcad.AMCAD` and the skip-gram baselines
  provide ``.similarity`` with this shape);
- a *retrieval function* ``retrieve(relation, src_idx, k) -> (ids, scores)``
  (provided by the MNN index layer).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.data.logs import BehaviorLog
from repro.graph.hetgraph import HetGraph
from repro.graph.schema import NodeType, Relation


def _as_numpy(values) -> np.ndarray:
    if isinstance(values, Tensor):
        return values.data
    return np.asarray(values)


def auc_from_scores(positive: np.ndarray, negative: np.ndarray) -> float:
    """Exact AUC via the Mann-Whitney rank statistic."""
    positive = np.asarray(positive, dtype=np.float64)
    negative = np.asarray(negative, dtype=np.float64)
    if positive.size == 0 or negative.size == 0:
        return float("nan")
    scores = np.concatenate([positive, negative])
    ranks = np.empty(scores.size)
    order = np.argsort(scores, kind="stable")
    sorted_scores = scores[order]
    # average ranks for ties
    ranks[order] = np.arange(1, scores.size + 1)
    unique, start = np.unique(sorted_scores, return_index=True)
    if unique.size != scores.size:
        boundaries = np.append(start, scores.size)
        for i in range(unique.size):
            lo, hi = boundaries[i], boundaries[i + 1]
            if hi - lo > 1:
                ranks[order[lo:hi]] = 0.5 * (lo + 1 + hi)
    rank_sum = ranks[:positive.size].sum()
    n_pos, n_neg = positive.size, negative.size
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def _positive_edges(graph: HetGraph, relation: Relation,
                    rng: np.random.Generator,
                    num_samples: int) -> Tuple[np.ndarray, np.ndarray]:
    """Sample edges of the relation (any edge type) from a graph."""
    srcs, dsts, weights = [], [], []
    src_type, dst_type = relation.source_type, relation.target_type
    for (s, _e, d), csr in graph._adj.items():
        if s != src_type or d != dst_type:
            continue
        n_src = graph.num_nodes[s]
        srcs.append(np.repeat(np.arange(n_src), np.diff(csr.indptr)))
        dsts.append(csr.indices)
        weights.append(csr.weights)
    if not srcs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    weight = np.concatenate(weights)
    if src.size <= num_samples:
        return src, dst
    probs = weight / weight.sum()
    picks = rng.choice(src.size, size=num_samples, replace=False, p=probs)
    return src[picks], dst[picks]


def next_auc(similarity: Callable, next_graph: HetGraph,
             relations: Optional[Sequence[Relation]] = None,
             num_samples: int = 500, seed: int = 0) -> float:
    """Next-day link-prediction AUC averaged over relations (×100).

    For each relation, positive pairs are edges of the *next day's*
    graph and negatives are random pairs of the same types; scores come
    from ``similarity(relation, src, dst)``.  Returned on the paper's
    0–100 scale.
    """
    rng = np.random.default_rng(seed)
    relations = list(relations or [Relation.Q2I, Relation.Q2A, Relation.Q2Q,
                                   Relation.I2I])
    aucs: List[float] = []
    with no_grad():
        for relation in relations:
            src, dst = _positive_edges(next_graph, relation, rng, num_samples)
            if src.size == 0:
                continue
            neg_dst = rng.integers(next_graph.num_nodes[relation.target_type],
                                   size=src.size)
            pos_scores = _as_numpy(similarity(relation, src, dst))
            neg_scores = _as_numpy(similarity(relation, src, neg_dst))
            auc = auc_from_scores(pos_scores, neg_scores)
            if not np.isnan(auc):
                aucs.append(auc)
    if not aucs:
        return float("nan")
    return 100.0 * float(np.mean(aucs))


def ground_truth_from_log(log: BehaviorLog,
                          target_type: NodeType) -> Dict[int, List[int]]:
    """Per-query relevance lists: targets sorted by next-day click count."""
    counts: Dict[int, Dict[int, int]] = {}
    for session in log:
        for ref in session.clicks:
            if ref.node_type != target_type:
                continue
            counts.setdefault(session.query, {})
            counts[session.query][ref.index] = \
                counts[session.query].get(ref.index, 0) + 1
    truth: Dict[int, List[int]] = {}
    for query, clicked in counts.items():
        ranked = sorted(clicked.items(), key=lambda kv: (-kv[1], kv[0]))
        truth[query] = [idx for idx, _count in ranked]
    return truth


def hitrate_at_k(retrieved: Sequence[int], relevant: Sequence[int],
                 k: int) -> float:
    """|top-k ∩ relevant| / |relevant| (the paper's Hitrate definition)."""
    if not relevant:
        return float("nan")
    top = set(list(retrieved)[:k])
    hits = sum(1 for r in relevant if r in top)
    return hits / len(relevant)


def ndcg_at_k(retrieved: Sequence[int], relevant: Sequence[int],
              k: int) -> float:
    """Binary-gain nDCG with the ground-truth order as the ideal ranking."""
    if not relevant:
        return float("nan")
    relevant_set = set(relevant)
    dcg = 0.0
    for rank, candidate in enumerate(list(retrieved)[:k]):
        if candidate in relevant_set:
            dcg += 1.0 / np.log2(rank + 2)
    ideal = sum(1.0 / np.log2(rank + 2)
                for rank in range(min(len(relevant), k)))
    return dcg / ideal if ideal > 0 else float("nan")


@dataclasses.dataclass
class RankingMetrics:
    """Hitrate@K and nDCG@K for a set of cutoffs (paper Table VI columns)."""

    hitrate: Dict[int, float]
    ndcg: Dict[int, float]
    num_queries: int

    def row(self, scale: float = 100.0) -> Dict[str, float]:
        """Flat dict on the paper's percentage scale."""
        out = {}
        for k, v in self.hitrate.items():
            out["hr@%d" % k] = scale * v
        for k, v in self.ndcg.items():
            out["ndcg@%d" % k] = scale * v
        return out


def evaluate_ranking(retrieve: Callable, truth: Dict[int, List[int]],
                     ks: Sequence[int] = (10, 100, 300),
                     max_queries: Optional[int] = None,
                     seed: int = 0) -> RankingMetrics:
    """Score a retrieval function against ground-truth lists.

    ``retrieve(query_indices, k) -> (batch, k) candidate ids``; queries
    with empty truth are skipped.
    """
    rng = np.random.default_rng(seed)
    queries = sorted(truth)
    if max_queries is not None and len(queries) > max_queries:
        picks = rng.choice(len(queries), size=max_queries, replace=False)
        queries = [queries[i] for i in sorted(picks)]
    if not queries:
        return RankingMetrics(hitrate={k: float("nan") for k in ks},
                              ndcg={k: float("nan") for k in ks},
                              num_queries=0)
    k_max = max(ks)
    retrieved = retrieve(np.asarray(queries), k_max)
    hit = {k: [] for k in ks}
    ndcg = {k: [] for k in ks}
    for row, query in enumerate(queries):
        relevant = truth[query]
        candidates = list(np.asarray(retrieved[row]).ravel())
        for k in ks:
            hit[k].append(hitrate_at_k(candidates, relevant, k))
            ndcg[k].append(ndcg_at_k(candidates, relevant, k))
    return RankingMetrics(
        hitrate={k: float(np.nanmean(hit[k])) for k in ks},
        ndcg={k: float(np.nanmean(ndcg[k])) for k in ks},
        num_queries=len(queries))
