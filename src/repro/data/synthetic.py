"""Generative simulator of a sponsored-search platform.

Substitutes the proprietary Taobao behaviour logs.  The simulator
plants exactly the two structures paper Fig. 1 motivates:

- **hierarchy** — queries live at *all* depths of the category tree
  ("shoes" → "canvas shoes" → "women's canvas shoes"), with broader
  queries searched more often (a power law over depth and popularity);
  this is the tree structure hyperbolic subspaces capture;
- **cycles** — users click many interchangeable items/ads of the same
  leaf category, creating dense co-click/co-bid cliques; this is the
  cyclic structure spherical subspaces capture.

Everything is driven by one :class:`numpy.random.Generator` so datasets
are exactly reproducible from a seed.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.data.logs import BehaviorLog, Session
from repro.data.universe import PAD, AdCatalog, ItemCatalog, QueryCatalog, Universe
from repro.graph.category import CategoryTree
from repro.graph.schema import NodeRef, NodeType


@dataclasses.dataclass
class SimulatorConfig:
    """Knobs of the synthetic platform (defaults: laptop-scale graph).

    The paper's 1-day graph has 40M/60M/6M query/item/ad nodes; the
    defaults scale this down ~30000x while keeping the q:i:a ratio and
    edge density per node comparable.
    """

    num_queries: int = 1200
    num_items: int = 1800
    num_ads: int = 400
    num_users: int = 600
    num_brands: int = 60
    num_shops: int = 120
    tree_depth: int = 4
    tree_branching: int = 3
    terms_per_category: int = 8
    query_term_slots: int = 6
    title_term_slots: int = 6
    bid_word_slots: int = 4
    sessions_per_user_day: float = 2.5
    clicks_per_session: float = 3.0
    ad_click_share: float = 0.25
    #: decay per tree hop for off-leaf clicks: a user browsing leaf L
    #: clicks products of leaf L' with weight ``tree_locality**d(L,L')``
    #: — graded hierarchical locality rather than a flat partition
    tree_locality: float = 0.35
    #: von-Mises concentration of within-leaf browsing on the style
    #: ring: each session anchors at an angle and clicks products with
    #: weight ``exp(ring_concentration · cos(θ - anchor))`` — the
    #: wrap-around (cyclic) structure of paper Fig. 1
    ring_concentration: float = 4.0
    broad_query_share: float = 0.3
    price_scale: float = 1.0
    seed: int = 7

    @property
    def num_leaves(self) -> int:
        return self.tree_branching ** self.tree_depth


class SponsoredSearchSimulator:
    """Builds a :class:`Universe` and samples daily behaviour logs."""

    def __init__(self, config: Optional[SimulatorConfig] = None):
        self.config = config or SimulatorConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.universe = self._build_universe()
        self._prepare_behavior_model()

    # -- universe construction ----------------------------------------------

    def _build_universe(self) -> Universe:
        cfg = self.config
        tree = CategoryTree.balanced(cfg.tree_depth, cfg.tree_branching)
        # Each tree node owns a contiguous slice of the term vocabulary;
        # an entity's terms are drawn from its category's root-to-node
        # path, giving ancestors shared terms (semantic similarity).
        vocab_size = len(tree) * cfg.terms_per_category
        self._term_pool = {
            node: np.arange(node * cfg.terms_per_category,
                            (node + 1) * cfg.terms_per_category)
            for node in range(len(tree))
        }
        queries = self._make_queries(tree)
        items = self._make_items(tree)
        ads = self._make_ads(tree)
        return Universe(category_tree=tree, queries=queries, items=items,
                        ads=ads, vocab_size=vocab_size,
                        num_brands=cfg.num_brands, num_shops=cfg.num_shops)

    def _path_terms(self, tree: CategoryTree, node: int, count: int) -> np.ndarray:
        """Sample ``count`` terms along the root→node path, PAD-filled.

        Deeper path nodes contribute more terms so specific queries look
        specific; the root contributes none (it is a catch-all).
        """
        path = [n for n in tree.path(node) if n != 0]
        if not path:
            path = [0]
        slots = np.full(count, PAD, dtype=np.int64)
        weights = np.arange(1, len(path) + 1, dtype=np.float64)
        weights /= weights.sum()
        # one term per path node guaranteed, remaining slots random
        take = min(count, len(path))
        for i, n in enumerate(path[-take:]):
            slots[i] = self.rng.choice(self._term_pool[n])
        for i in range(take, count):
            n = path[self.rng.choice(len(path), p=weights)]
            slots[i] = self.rng.choice(self._term_pool[n])
        return slots

    def _make_queries(self, tree: CategoryTree) -> QueryCatalog:
        cfg = self.config
        internal = [n for n in range(1, len(tree)) if not tree.is_leaf(n)]
        leaves = tree.leaves
        categories = np.empty(cfg.num_queries, dtype=np.int64)
        terms = np.empty((cfg.num_queries, cfg.query_term_slots), dtype=np.int64)
        for q in range(cfg.num_queries):
            if internal and self.rng.random() < cfg.broad_query_share:
                cat = internal[int(self.rng.integers(len(internal)))]
            else:
                cat = leaves[int(self.rng.integers(len(leaves)))]
            categories[q] = cat
            terms[q] = self._path_terms(tree, cat, cfg.query_term_slots)
        return QueryCatalog(category=categories, terms=terms)

    def _make_items(self, tree: CategoryTree) -> ItemCatalog:
        cfg = self.config
        leaves = np.asarray(tree.leaves)
        categories = leaves[self.rng.integers(len(leaves), size=cfg.num_items)]
        terms = np.stack([self._path_terms(tree, c, cfg.title_term_slots)
                          for c in categories])
        brand = self.rng.integers(cfg.num_brands, size=cfg.num_items)
        shop = self.rng.integers(cfg.num_shops, size=cfg.num_items)
        popularity = self.rng.pareto(1.8, size=cfg.num_items) + 0.2
        style_angle = self.rng.uniform(0.0, 2 * np.pi, size=cfg.num_items)
        return ItemCatalog(category=categories, terms=terms, brand=brand,
                           shop=shop, popularity=popularity,
                           style_angle=style_angle)

    def _make_ads(self, tree: CategoryTree) -> AdCatalog:
        cfg = self.config
        leaves = np.asarray(tree.leaves)
        categories = leaves[self.rng.integers(len(leaves), size=cfg.num_ads)]
        terms = np.stack([self._path_terms(tree, c, cfg.title_term_slots)
                          for c in categories])
        # Advertisers bid on a handful of keywords from their category's
        # term pool (plus ancestors): ads of one leaf share keywords,
        # forming the co-bid rings of paper §IV-A-1.
        bid_words = np.stack([self._path_terms(tree, c, cfg.bid_word_slots)
                              for c in categories])
        brand = self.rng.integers(cfg.num_brands, size=cfg.num_ads)
        shop = self.rng.integers(cfg.num_shops, size=cfg.num_ads)
        popularity = self.rng.pareto(1.8, size=cfg.num_ads) + 0.2
        style_angle = self.rng.uniform(0.0, 2 * np.pi, size=cfg.num_ads)
        price = (self.rng.pareto(2.5, size=cfg.num_ads) + 0.5) * cfg.price_scale
        return AdCatalog(category=categories, terms=terms, bid_words=bid_words,
                         brand=brand, shop=shop, popularity=popularity,
                         style_angle=style_angle, price_per_click=price)

    # -- behaviour model -------------------------------------------------------

    def _prepare_behavior_model(self) -> None:
        tree = self.universe.category_tree
        cfg = self.config
        # user interests: a Dirichlet over leaves, concentrated on few
        leaves = tree.leaves
        alpha = np.full(len(leaves), 0.15)
        self._user_interests = self.rng.dirichlet(alpha, size=cfg.num_users)
        self._leaves = np.asarray(leaves)
        # queries grouped by compatibility with a leaf: a query matches a
        # leaf if its category is the leaf or one of its ancestors
        self._queries_for_leaf = {}
        q_cat = self.universe.queries.category
        for leaf in leaves:
            path = set(tree.path(leaf))
            matches = np.flatnonzero(np.isin(q_cat, list(path)))
            self._queries_for_leaf[leaf] = matches
        self._items_for_leaf = {
            leaf: np.flatnonzero(self.universe.items.category == leaf)
            for leaf in leaves
        }
        self._ads_for_leaf = {
            leaf: np.flatnonzero(self.universe.ads.category == leaf)
            for leaf in leaves
        }
        self._leaf_click_probs: dict = {}

    def _leaf_click_distribution(self, leaf: int) -> np.ndarray:
        """P(click target leaf | browsing leaf) ∝ locality^tree_distance.

        Cached; this graded locality is what plants a *hierarchical*
        interaction structure (nearby tree branches interact more) on
        top of the within-leaf cliques (cyclic structure).
        """
        cached = self._leaf_click_probs.get(leaf)
        if cached is None:
            tree = self.universe.category_tree
            distances = np.array([tree.tree_distance(leaf, other)
                                  for other in self._leaves], dtype=np.float64)
            weights = self.config.tree_locality ** distances
            cached = weights / weights.sum()
            self._leaf_click_probs[leaf] = cached
        return cached

    def _pick_clicked(self, leaf: int, n_clicks: int) -> List[NodeRef]:
        """Sample the click sequence for one session browsing ``leaf``.

        The session anchors at a style angle; click probability combines
        popularity with a von-Mises ring kernel around the anchor, so
        co-clicked products are ring neighbours (cyclic structure) while
        the leaf choice follows tree locality (hierarchical structure).
        """
        cfg = self.config
        clicks: List[NodeRef] = []
        leaf_probs = self._leaf_click_distribution(leaf)
        anchor = self.rng.uniform(0.0, 2 * np.pi)
        for _ in range(n_clicks):
            target_leaf = int(self.rng.choice(self._leaves, p=leaf_probs))
            pick_ad = self.rng.random() < cfg.ad_click_share
            if pick_ad:
                pool = self._ads_for_leaf.get(target_leaf, np.empty(0, dtype=int))
                popularity = self.universe.ads.popularity
                angles = self.universe.ads.style_angle
                node_type = NodeType.AD
            else:
                pool = self._items_for_leaf.get(target_leaf, np.empty(0, dtype=int))
                popularity = self.universe.items.popularity
                angles = self.universe.items.style_angle
                node_type = NodeType.ITEM
            if pool.size == 0:
                continue
            ring = np.exp(cfg.ring_concentration
                          * (np.cos(angles[pool] - anchor) - 1.0))
            probs = popularity[pool] * ring
            probs = probs / probs.sum()
            chosen = int(self.rng.choice(pool, p=probs))
            clicks.append(NodeRef(node_type, chosen))
        return clicks

    def simulate_day(self, day: int) -> BehaviorLog:
        """Generate one day of sessions, grouped per user."""
        cfg = self.config
        sessions: List[Session] = []
        for user in range(cfg.num_users):
            n_sessions = self.rng.poisson(cfg.sessions_per_user_day)
            if n_sessions == 0:
                continue
            interests = self._user_interests[user]
            for _ in range(n_sessions):
                leaf = int(self.rng.choice(self._leaves, p=interests))
                candidates = self._queries_for_leaf[leaf]
                if candidates.size == 0:
                    continue
                query = int(candidates[self.rng.integers(candidates.size)])
                n_clicks = max(1, self.rng.poisson(cfg.clicks_per_session))
                clicks = self._pick_clicked(leaf, n_clicks)
                if not clicks:
                    continue
                sessions.append(Session(user=user, query=query, clicks=clicks))
        return BehaviorLog(day=day, sessions=sessions)

    def simulate_days(self, num_days: int, start_day: int = 0) -> List[BehaviorLog]:
        """Generate consecutive daily logs (paper uses 1-day and 7-day windows)."""
        return [self.simulate_day(day) for day in range(start_day, start_day + num_days)]
