"""Behaviour-log records.

A :class:`Session` is one user search: the posed query and the ordered
sequence of clicked products (items and ads interleaved, as in paper
Fig. 4 where a user clicks ``i1, a1, a2`` under ``q1``).  A
:class:`BehaviorLog` is a day's worth of sessions; multi-day windows
are lists of logs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence, Tuple

from repro.graph.schema import NodeRef, NodeType


@dataclasses.dataclass
class Session:
    """One search interaction: user, query, ordered clicks."""

    user: int
    query: int
    clicks: List[NodeRef]

    def clicked_of_type(self, node_type: NodeType) -> List[int]:
        return [ref.index for ref in self.clicks if ref.node_type == node_type]


@dataclasses.dataclass
class BehaviorLog:
    """All sessions of one day, ordered per user.

    Sessions of the same user on the same day appear consecutively, so
    consecutive sessions of one user yield query-to-query co-click
    (co-search) edges.
    """

    day: int
    sessions: List[Session]

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions)

    def user_session_runs(self) -> Iterator[List[Session]]:
        """Yield maximal runs of consecutive sessions by the same user."""
        run: List[Session] = []
        for session in self.sessions:
            if run and session.user != run[-1].user:
                yield run
                run = []
            run.append(session)
        if run:
            yield run

    def click_counts(self) -> dict:
        """``(query, NodeRef) -> click count`` — ground truth for eval."""
        counts: dict = {}
        for session in self.sessions:
            for ref in session.clicks:
                key = (session.query, ref)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def query_counts(self) -> dict:
        """``query -> number of sessions posing it``.

        The empirical popularity ranking the serving traffic harness
        (:class:`~repro.serving.traffic.TrafficGenerator`) re-shapes
        into its Zipf head-skewed replay marginal.
        """
        counts: dict = {}
        for session in self.sessions:
            counts[session.query] = counts.get(session.query, 0) + 1
        return counts


def merge_logs(logs: Sequence[BehaviorLog]) -> BehaviorLog:
    """Concatenate several daily logs into one window (paper's 7-day log)."""
    sessions: List[Session] = []
    for log in logs:
        sessions.extend(log.sessions)
    last_day = logs[-1].day if logs else 0
    return BehaviorLog(day=last_day, sessions=sessions)
