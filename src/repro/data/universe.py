"""Static entity catalogues: the queries, items and ads of the platform.

The *universe* is everything that exists independently of user
behaviour: the category tree, term vocabulary, and per-entity features
(paper Table IV).  Behaviour logs (sessions of queries and clicks) are
generated over a universe by the simulator and consumed by the graph
builder.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.common import PAD
from repro.graph.category import CategoryTree
from repro.graph.schema import NodeType


@dataclasses.dataclass
class QueryCatalog:
    """Query entities: category (any tree depth — broad to specific) + terms."""

    category: np.ndarray          # (n,) category-tree node id
    terms: np.ndarray             # (n, t) term ids, PAD-filled

    def __len__(self) -> int:
        return self.category.shape[0]


@dataclasses.dataclass
class ItemCatalog:
    """Organic product entities (paper Table IV: ID, category, title, brand, shop).

    ``style_angle`` places each item on its leaf category's *style ring*
    (paper Fig. 1's cyclic structure): within a leaf, users browse
    angular neighbourhoods — e.g. a price/style spectrum that wraps
    around — so item-item co-click similarity is ring distance.
    """

    category: np.ndarray          # (n,) leaf category id
    terms: np.ndarray             # (n, t) title term ids
    brand: np.ndarray             # (n,)
    shop: np.ndarray              # (n,)
    popularity: np.ndarray        # (n,) relative click attractiveness
    style_angle: np.ndarray       # (n,) position on the leaf's style ring

    def __len__(self) -> int:
        return self.category.shape[0]


@dataclasses.dataclass
class AdCatalog:
    """Sponsored product entities; ads additionally carry bid keywords."""

    category: np.ndarray          # (n,) leaf category id
    terms: np.ndarray             # (n, t) title term ids
    bid_words: np.ndarray         # (n, b) bid keyword ids (shared term vocab)
    brand: np.ndarray             # (n,)
    shop: np.ndarray              # (n,)
    popularity: np.ndarray        # (n,)
    style_angle: np.ndarray       # (n,) position on the leaf's style ring
    price_per_click: np.ndarray   # (n,) advertiser bid in currency units

    def __len__(self) -> int:
        return self.category.shape[0]


@dataclasses.dataclass
class Universe:
    """All static entities plus vocabulary sizes for feature embedding."""

    category_tree: CategoryTree
    queries: QueryCatalog
    items: ItemCatalog
    ads: AdCatalog
    vocab_size: int
    num_brands: int
    num_shops: int

    def num_nodes(self) -> Dict[NodeType, int]:
        return {
            NodeType.QUERY: len(self.queries),
            NodeType.ITEM: len(self.items),
            NodeType.AD: len(self.ads),
        }

    def categories(self) -> Dict[NodeType, np.ndarray]:
        return {
            NodeType.QUERY: self.queries.category,
            NodeType.ITEM: self.items.category,
            NodeType.AD: self.ads.category,
        }

    def features(self) -> Dict[NodeType, Dict[str, np.ndarray]]:
        """Feature fields per node type, as in paper Table IV."""
        n_q, n_i, n_a = len(self.queries), len(self.items), len(self.ads)
        return {
            NodeType.QUERY: {
                "id": np.arange(n_q),
                "category": self.queries.category,
                "terms": self.queries.terms,
            },
            NodeType.ITEM: {
                "id": np.arange(n_i),
                "category": self.items.category,
                "terms": self.items.terms,
                "brand": self.items.brand,
                "shop": self.items.shop,
            },
            NodeType.AD: {
                "id": np.arange(n_a),
                "category": self.ads.category,
                "terms": self.ads.terms,
                "bid_words": self.ads.bid_words,
                "brand": self.ads.brand,
                "shop": self.ads.shop,
            },
        }

    def feature_vocab_sizes(self) -> Dict[NodeType, Dict[str, int]]:
        """Vocabulary size per feature field (for embedding tables)."""
        n_cat = len(self.category_tree)
        return {
            NodeType.QUERY: {
                "id": len(self.queries),
                "category": n_cat,
                "terms": self.vocab_size,
            },
            NodeType.ITEM: {
                "id": len(self.items),
                "category": n_cat,
                "terms": self.vocab_size,
                "brand": self.num_brands,
                "shop": self.num_shops,
            },
            NodeType.AD: {
                "id": len(self.ads),
                "category": n_cat,
                "terms": self.vocab_size,
                "bid_words": self.vocab_size,
                "brand": self.num_brands,
                "shop": self.num_shops,
            },
        }
