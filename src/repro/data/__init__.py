"""Synthetic sponsored-search behaviour data.

The paper's graphs are built from proprietary Taobao user-behaviour
logs (Table V: 40M queries / 60M items / 6M ads for one day).  This
package provides the substitute: a generative simulator of an
e-commerce sponsored-search platform that produces behaviour logs with
the same *structural* properties the paper exploits —

- a category taxonomy inducing a hierarchical (tree-like) query space,
- dense co-click clusters among items/ads of one leaf category
  (cyclic structure),
- advertiser keyword bidding that links ads in co-bid rings,
- day-over-day logs enabling next-day evaluation and incremental
  training.
"""

from repro.data.universe import AdCatalog, ItemCatalog, QueryCatalog, Universe
from repro.data.logs import BehaviorLog, Session
from repro.data.synthetic import SimulatorConfig, SponsoredSearchSimulator

__all__ = [
    "Universe",
    "QueryCatalog",
    "ItemCatalog",
    "AdCatalog",
    "Session",
    "BehaviorLog",
    "SimulatorConfig",
    "SponsoredSearchSimulator",
]
