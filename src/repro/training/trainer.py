"""The joint training loop (paper §IV-B-3, §V-A).

One training iteration mirrors the paper's XDL/Euler deployment loop:
the worker asks the graph engine for meta-path walk samples plus
negatives, computes the triplet loss over all relation types jointly,
and applies an (asynchronous in the paper, synchronous here) AdaGrad
update.  Curvatures are clamped after every step.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

import numpy as np

from repro.graph.metapath import MetaPathWalker
from repro.graph.sampling import NegativeSampler
from repro.models.amcad import AMCAD
from repro.training.optim import AdaGrad


@dataclasses.dataclass
class TrainerConfig:
    """Loop hyper-parameters (paper §VI-A-3 scaled down).

    The paper uses batch 1024, K=6 negatives, lr=1e-2; defaults here
    keep those ratios at laptop scale.
    """

    steps: int = 60
    batch_size: int = 64
    num_negatives: int = 6
    easy_ratio: float = 2.0 / 3.0
    learning_rate: float = 1e-2
    warmup_steps: int = 10
    clip_norm: float = 5.0
    seed: int = 0


@dataclasses.dataclass
class TrainingReport:
    """What a training run produced (losses, wall-clock, grad norms)."""

    losses: List[float]
    wall_seconds: float
    steps: int
    samples_seen: int

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def mean_tail_loss(self) -> float:
        """Mean of the last quarter of steps — a stable convergence proxy."""
        if not self.losses:
            return float("nan")
        tail = self.losses[-max(1, len(self.losses) // 4):]
        return float(np.mean(tail))


class Trainer:
    """Trains an :class:`AMCAD` model (or variant) on its graph."""

    def __init__(self, model: AMCAD, config: Optional[TrainerConfig] = None,
                 walker: Optional[MetaPathWalker] = None,
                 negative_sampler: Optional[NegativeSampler] = None):
        self.model = model
        self.config = config or TrainerConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        self.walker = walker or MetaPathWalker(model.graph)
        self.negative_sampler = negative_sampler or NegativeSampler(
            model.graph, num_negatives=cfg.num_negatives,
            easy_ratio=cfg.easy_ratio)
        self.optimizer = AdaGrad(model.parameters(),
                                 learning_rate=cfg.learning_rate,
                                 warmup_steps=cfg.warmup_steps,
                                 clip_norm=cfg.clip_norm)
        self._pair_stream = self.walker.iter_pairs(self.rng)
        self._buffers: dict = {}

    def _next_batch(self):
        """A relation-homogeneous batch.

        Pairs stream in mixed relation order; buffering until one
        relation fills a batch keeps every training step a single large
        batched encode instead of six small ones (≈6× fewer python-op
        dispatches — all relations still train jointly over steps).
        """
        target = self.config.batch_size
        while True:
            try:
                pair = next(self._pair_stream)
            except StopIteration:  # pragma: no cover - stream is endless
                break
            bucket = self._buffers.setdefault(pair.relation, [])
            bucket.append(pair)
            if len(bucket) >= target:
                self._buffers[pair.relation] = []
                return self.negative_sampler.sample_batch(self.rng, bucket)
        merged = [p for bucket in self._buffers.values() for p in bucket]
        self._buffers.clear()
        return self.negative_sampler.sample_batch(self.rng, merged[:target])

    def train_step(self) -> float:
        """One batch: sample → loss → backward → clip → AdaGrad → clamp κ."""
        samples = self._next_batch()
        self.optimizer.zero_grad()
        loss = self.model.loss(samples, rng=self.rng)
        loss.backward()
        self.optimizer.step()
        self.model.constrain()
        return loss.item()

    def train(self, steps: Optional[int] = None,
              log_every: int = 0) -> TrainingReport:
        """Run the loop; returns losses and wall-clock time."""
        steps = steps if steps is not None else self.config.steps
        losses: List[float] = []
        start = time.perf_counter()
        for step in range(steps):
            losses.append(self.train_step())
            if log_every and (step + 1) % log_every == 0:
                print("step %4d  loss %.4f  |grad| %.3f" %
                      (step + 1, losses[-1], self.optimizer.last_grad_norm))
        elapsed = time.perf_counter() - start
        return TrainingReport(losses=losses, wall_seconds=elapsed, steps=steps,
                              samples_seen=steps * self.config.batch_size)
