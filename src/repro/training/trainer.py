"""The joint training loop (paper §IV-B-3, §V-A).

One training iteration mirrors the paper's XDL/Euler deployment loop:
the worker asks the graph engine for meta-path walk samples plus
negatives, computes the triplet loss over all relation types jointly,
and applies an (asynchronous in the paper, synchronous here) AdaGrad
update.  Curvatures are clamped after every step.

Two data planes feed the loop.  The default ``"batched"`` plane walks
meta-paths in blocks (one alias draw per level for every walk at once)
and attaches negatives with array-native draws, handing the loss a
:class:`~repro.graph.sampling.SampleBatch`.  The ``"looped"`` plane is
the original one-pair-at-a-time reference implementation, kept for
parity testing and as documentation of the semantics.

The forward/backward itself runs on the model's encoder *compute
plane* (``AMCADConfig.compute_plane``): ``"frontier"`` dedups the GCN
receptive field into per-level unique frontiers before touching the
tape, ``"recursive"`` is the reference recursion.
``TrainerConfig.plan_refresh`` adds cross-step reuse of the frontier
plane's captured neighbour draws.

Three throughput knobs stack on top (all default off; the synchronous
single-process loop remains the parity reference):

- ``prefetch_workers`` — run the sampling phase (batch + per-role
  encode plans) in a :class:`~repro.training.prefetch.PlanProducer`
  process pool, double-buffered so step N+1's payload is built while
  step N's forward/backward runs;
- ``accumulate_steps`` — K micro-batches per optimiser step,
  loss-scaled by 1/K so the update equals one K-times-larger batch;
- ``backward_depth`` — truncate the backward below a GCN level on the
  frontier plane (full forward, bounded tape).
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common import atomic_savez
from repro.graph.metapath import MetaPathWalker
from repro.graph.sampling import NegativeSampler, SampleBatch
from repro.graph.schema import Relation
from repro.models.amcad import AMCAD
from repro.models.plan import NeighborDrawCache
from repro.training.optim import AdaGrad
from repro.training.prefetch import PlanProducer

DATA_PLANES = ("batched", "looped")


@dataclasses.dataclass
class TrainerConfig:
    """Loop hyper-parameters (paper §VI-A-3 scaled down).

    The paper uses batch 1024, K=6 negatives, lr=1e-2; defaults here
    keep those ratios at laptop scale.  ``data_plane`` selects the
    sampling implementation: ``"batched"`` (array-native, default) or
    ``"looped"`` (the per-pair reference path).

    ``plan_refresh`` controls encode-plan reuse across steps on the
    frontier compute plane: with a value N > 1, ``train()`` attaches a
    :class:`~repro.models.plan.NeighborDrawCache` to the encoder for
    the duration of the loop, so a node revisited within an N-step
    window reuses its captured neighbour draws (plans are cheaper to
    build and the GCN sees a stable frontier), and the cache is
    cleared — draws resampled — every N steps, then detached before
    ``train()`` returns (inference never sees training-time draws).
    The default 1 resamples every step, matching the paper's
    stochastic aggregation exactly.

    ``prefetch_workers`` moves the sampling phase into a
    :class:`~repro.training.prefetch.PlanProducer` pool of that many
    spawn-context processes (0 = the synchronous reference path);
    ``prefetch_depth`` bounds the payload queue (double-buffering).
    Requires ``data_plane="batched"``; combined with
    ``plan_refresh > 1`` the producer owns the draw cache (one per
    worker) and demands ``plan_refresh > prefetch_workers`` — a
    shorter window can never hit a worker's cache.

    ``accumulate_steps`` runs K micro-batches per optimiser step with
    the loss scaled by 1/K, so gradients match one K·batch_size batch
    exactly (the loss is mean-normalised; asserted in tests).

    ``backward_depth`` keeps only the top N GCN rounds on the tape
    (frontier plane only): the forward is bit-identical — lower levels
    run the no-tape numpy mirror — while the backward stops at the
    boundary.  0 = full backward.
    """

    steps: int = 60
    batch_size: int = 64
    num_negatives: int = 6
    easy_ratio: float = 2.0 / 3.0
    learning_rate: float = 1e-2
    warmup_steps: int = 10
    clip_norm: float = 5.0
    seed: int = 0
    data_plane: str = "batched"
    plan_refresh: int = 1
    prefetch_workers: int = 0
    prefetch_depth: int = 2
    accumulate_steps: int = 1
    backward_depth: int = 0
    #: optimiser steps between resume checkpoints (0 disables).
    #: Checkpointed runs consume the producer payload stream (inline
    #: when ``prefetch_workers=0``) whose step payloads are pure
    #: ``(seed, step)``, so a run resumed from a checkpoint produces
    #: losses bit-identical to the uninterrupted run.
    checkpoint_every: int = 0


@dataclasses.dataclass
class TrainingReport:
    """What a training run produced (losses, wall-clock, grad norms)."""

    losses: List[float]
    wall_seconds: float
    steps: int
    samples_seen: int
    #: time the consumer spent blocked on the prefetch queue (0.0 on
    #: the synchronous path)
    prefetch_wait_seconds: float = 0.0
    #: optimiser step this run resumed from (0 = fresh run)
    resumed_from_step: int = 0
    #: resume checkpoints written during this run
    checkpoints_written: int = 0
    #: prefetch workers that crashed / replacements spawned mid-run
    worker_deaths: int = 0
    worker_respawns: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def overlap_fraction(self) -> float:
        """Fraction of the wall during which the producer kept up.

        ``1 - wait/wall``: 1.0 means the consumer never blocked on the
        queue (sampling fully hidden behind forward/backward), 0.0
        means it waited the whole run.  Synchronous runs report 1.0
        trivially — there is no queue to wait on.
        """
        if self.wall_seconds <= 0:
            return 1.0
        return float(np.clip(1.0 - self.prefetch_wait_seconds
                             / self.wall_seconds, 0.0, 1.0))

    @property
    def mean_tail_loss(self) -> float:
        """Mean of the last quarter of steps — a stable convergence proxy."""
        if not self.losses:
            return float("nan")
        tail = self.losses[-max(1, len(self.losses) // 4):]
        return float(np.mean(tail))


class Trainer:
    """Trains an :class:`AMCAD` model (or variant) on its graph."""

    def __init__(self, model: AMCAD, config: Optional[TrainerConfig] = None,
                 walker: Optional[MetaPathWalker] = None,
                 negative_sampler: Optional[NegativeSampler] = None,
                 checkpoint_path=None):
        self.model = model
        self.config = config or TrainerConfig()
        self.checkpoint_path = checkpoint_path
        cfg = self.config
        if cfg.data_plane not in DATA_PLANES:
            raise ValueError("data_plane must be one of %s, got %r"
                             % (", ".join(DATA_PLANES), cfg.data_plane))
        if cfg.plan_refresh < 1:
            raise ValueError("plan_refresh must be >= 1, got %d"
                             % cfg.plan_refresh)
        if cfg.plan_refresh > 1 and model.encoder.compute_plane != "frontier":
            raise ValueError(
                "plan_refresh > 1 reuses frontier-plane encode plans; it has "
                "no effect on compute_plane=%r — set the model's "
                "compute_plane to 'frontier' or leave plan_refresh at 1"
                % model.encoder.compute_plane)
        if cfg.prefetch_workers < 0:
            raise ValueError("prefetch_workers must be >= 0, got %d"
                             % cfg.prefetch_workers)
        if cfg.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1, got %d"
                             % cfg.prefetch_depth)
        if cfg.accumulate_steps < 1:
            raise ValueError("accumulate_steps must be >= 1, got %d"
                             % cfg.accumulate_steps)
        if cfg.backward_depth < 0:
            raise ValueError("backward_depth must be >= 0, got %d"
                             % cfg.backward_depth)
        if cfg.prefetch_workers > 0 and cfg.data_plane != "batched":
            raise ValueError(
                "prefetch_workers > 0 produces SampleBatch payloads out of "
                "process, which only the 'batched' data plane consumes; "
                "data_plane=%r cannot prefetch" % cfg.data_plane)
        if cfg.backward_depth > 0 and model.encoder.compute_plane != "frontier":
            raise ValueError(
                "backward_depth truncates the frontier plane's tape; it has "
                "no meaning on compute_plane=%r — set the model's "
                "compute_plane to 'frontier' or leave backward_depth at 0"
                % model.encoder.compute_plane)
        if (cfg.plan_refresh > 1 and cfg.prefetch_workers >= 1
                and cfg.plan_refresh <= cfg.prefetch_workers):
            raise ValueError(
                "plan_refresh=%d with prefetch_workers=%d would silently "
                "miss the draw cache on every plan (each worker produces "
                "every %d-th step); use plan_refresh > prefetch_workers"
                % (cfg.plan_refresh, cfg.prefetch_workers,
                   cfg.prefetch_workers))
        if cfg.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0, got %d"
                             % cfg.checkpoint_every)
        if cfg.checkpoint_every > 0 and cfg.data_plane != "batched":
            raise ValueError(
                "checkpoint_every > 0 resumes through the (seed, step)-pure "
                "producer payload stream, which only the 'batched' data "
                "plane provides; data_plane=%r cannot checkpoint"
                % cfg.data_plane)
        if (cfg.checkpoint_every > 0 and cfg.plan_refresh > 1
                and (cfg.checkpoint_every * cfg.accumulate_steps)
                % cfg.plan_refresh != 0):
            raise ValueError(
                "checkpoint_every=%d (x%d micro-steps) must land on a "
                "plan_refresh=%d window boundary, or a resumed run would "
                "rebuild plans from a different draw window"
                % (cfg.checkpoint_every, cfg.accumulate_steps,
                   cfg.plan_refresh))
        # drop any stale cache a previous trainer left on the encoder;
        # train() attaches a fresh one for the duration of the loop only
        model.encoder.draw_cache = None
        model.encoder.backward_depth = cfg.backward_depth
        self._steps_done = 0
        self.rng = np.random.default_rng(cfg.seed)
        self.walker = walker or MetaPathWalker(model.graph)
        self.negative_sampler = negative_sampler or NegativeSampler(
            model.graph, num_negatives=cfg.num_negatives,
            easy_ratio=cfg.easy_ratio)
        self.optimizer = AdaGrad(model.parameters(),
                                 learning_rate=cfg.learning_rate,
                                 warmup_steps=cfg.warmup_steps,
                                 clip_norm=cfg.clip_norm)
        self._pair_stream = self.walker.iter_pairs(self.rng)
        #: losses across the whole trainer lifetime (survives resume —
        #: restored from the checkpoint, appended to by every run)
        self.loss_history: List[float] = []
        self._buffers: dict = {}
        # batched plane: per-relation (src, pos) array chunks, and how
        # many walks each refill round advances together
        self._array_buffers: Dict[Relation, List[Tuple[np.ndarray,
                                                       np.ndarray]]] = {}
        self._walks_per_round = max(len(self.walker.meta_paths),
                                    3 * cfg.batch_size)

    def _next_batch(self):
        """A relation-homogeneous batch from the configured data plane."""
        if self.config.data_plane == "looped":
            return self._next_batch_looped()
        return self._next_batch_batched()

    def _next_batch_looped(self):
        """The reference path: pairs stream in one at a time.

        Pairs arrive in mixed relation order; buffering until one
        relation fills a batch keeps every training step a single large
        batched encode instead of six small ones (≈6× fewer python-op
        dispatches — all relations still train jointly over steps).
        """
        target = self.config.batch_size
        while True:
            try:
                pair = next(self._pair_stream)
            except StopIteration:  # pragma: no cover - stream is endless
                break
            bucket = self._buffers.setdefault(pair.relation, [])
            bucket.append(pair)
            if len(bucket) >= target:
                self._buffers[pair.relation] = []
                return self.negative_sampler.sample_batch(self.rng, bucket)
        merged = [p for bucket in self._buffers.values() for p in bucket]
        self._buffers.clear()
        return self.negative_sampler.sample_batch(self.rng, merged[:target])

    def _next_batch_batched(self) -> SampleBatch:
        """The array plane: walks advance in blocks, buffers hold arrays.

        Same relation-homogeneous buffering policy as the looped path,
        but a refill advances ``_walks_per_round`` walks per meta-path
        level with batched alias draws, and the returned batch is a
        :class:`SampleBatch` ready for the vectorised negative sampler
        and loss.
        """
        target = self.config.batch_size
        while True:
            for relation, chunks in self._array_buffers.items():
                if sum(chunk[0].size for chunk in chunks) < target:
                    continue
                src = np.concatenate([chunk[0] for chunk in chunks])
                pos = np.concatenate([chunk[1] for chunk in chunks])
                leftover = ([] if src.size == target
                            else [(src[target:], pos[target:])])
                self._array_buffers[relation] = leftover
                return self.negative_sampler.sample_arrays(
                    self.rng, relation, src[:target], pos[:target])
            for block in self.walker.sample_pair_blocks(
                    self.rng, self._walks_per_round):
                self._array_buffers.setdefault(block.relation, []).append(
                    (block.src_idx, block.dst_idx))

    def _accumulate_micro(self, next_micro) -> float:
        """One optimiser step over K micro-batches from ``next_micro``.

        ``next_micro()`` returns ``(samples, plans)``; ``plans`` is
        ``None`` on the synchronous path (the loss samples its own
        draws) and the producer's role-keyed plan dict when
        prefetching.  Each micro loss is scaled by 1/K before its
        backward — the tape accumulates gradients across ``backward``
        calls, so after K micro-batches the parameter gradients equal
        those of a single K·batch_size batch (the loss is
        mean-normalised per batch).  The returned scalar is the mean
        micro loss, directly comparable to a K=1 step's loss.
        """
        k = self.config.accumulate_steps
        self.optimizer.zero_grad()
        total = 0.0
        for _ in range(k):
            samples, plans = next_micro()
            loss = self.model.loss(samples, rng=self.rng, plans=plans)
            if k > 1:
                loss = loss / k
            loss.backward()
            total += loss.item()
        self.optimizer.step()
        self.model.constrain()
        return total

    def train_step(self) -> float:
        """One batch: sample → loss → backward → clip → AdaGrad → clamp κ.

        With ``accumulate_steps=K`` this is K sampled micro-batches and
        one optimiser step; the returned loss is their (1/K-scaled)
        sum, i.e. the mean micro loss.
        """
        cache = self.model.encoder.draw_cache
        if cache is not None and self._steps_done % self.config.plan_refresh == 0:
            cache.clear()
        self._steps_done += 1
        return self._accumulate_micro(lambda: (self._next_batch(), None))

    CHECKPOINT_FORMAT = 1

    def _checkpoint_fingerprint(self) -> Dict[str, object]:
        """The config subset a checkpoint must match to be resumable.

        ``prefetch_workers`` / ``prefetch_depth`` are excluded on
        purpose: producer payloads are pure ``(seed, step)``, so the
        worker topology may change between the checkpointing run and
        the resuming run without perturbing the loss trajectory.
        """
        fingerprint = dataclasses.asdict(self.config)
        fingerprint.pop("prefetch_workers", None)
        fingerprint.pop("prefetch_depth", None)
        return fingerprint

    def save_checkpoint(self, path=None) -> None:
        """Atomically write a resume checkpoint (npz) to ``path``.

        Captures everything ``restore_checkpoint`` needs for a
        bit-identical continuation: parameter tensors, AdaGrad
        accumulators and step count, the trainer's step counter and
        loss history, and the consumer RNG's full bit-generator state.
        The write goes through :func:`repro.common.atomic_savez`, so a
        crash mid-write leaves the previous checkpoint intact.
        """
        path = path if path is not None else self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path configured")
        header = {
            "format_version": self.CHECKPOINT_FORMAT,
            "steps_done": self._steps_done,
            "optimizer_step_count": self.optimizer.step_count,
            "losses": [float(x) for x in self.loss_history],
            "rng_state": self.rng.bit_generator.state,
            "fingerprint": self._checkpoint_fingerprint(),
        }
        arrays = {"header": np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)}
        for i, param in enumerate(self.optimizer.parameters):
            arrays["param_%06d" % i] = param.data
        for i, accumulator in enumerate(self.optimizer._accumulators):
            arrays["accum_%06d" % i] = accumulator
        atomic_savez(path, arrays)

    def restore_checkpoint(self, path=None) -> int:
        """Load a checkpoint written by :meth:`save_checkpoint`.

        Restores parameters, optimiser state, the step counter, the
        loss history, and the RNG state in place, then returns the
        optimiser step the checkpoint was taken at.  Raises
        ``ValueError`` if the checkpoint's config fingerprint does not
        match this trainer's (resuming under different hyper-parameters
        would silently diverge from the uninterrupted run).
        """
        path = path if path is not None else self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path configured")
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            if header.get("format_version") != self.CHECKPOINT_FORMAT:
                raise ValueError(
                    "checkpoint %s has format_version %r, expected %d"
                    % (path, header.get("format_version"),
                       self.CHECKPOINT_FORMAT))
            ours = self._checkpoint_fingerprint()
            theirs = header.get("fingerprint")
            if theirs != ours:
                diff = sorted(k for k in set(ours) | set(dict(theirs or {}))
                              if ours.get(k) != (theirs or {}).get(k))
                raise ValueError(
                    "checkpoint %s was written under a different config "
                    "(mismatched: %s); resuming would diverge from the "
                    "uninterrupted run" % (path, ", ".join(diff) or "?"))
            params = self.optimizer.parameters
            for i, param in enumerate(params):
                stored = data["param_%06d" % i]
                if stored.shape != param.data.shape:
                    raise ValueError(
                        "checkpoint %s parameter %d has shape %s, model "
                        "expects %s" % (path, i, stored.shape,
                                        param.data.shape))
                param.data[...] = stored
            for i, accumulator in enumerate(self.optimizer._accumulators):
                accumulator[...] = data["accum_%06d" % i]
        self.optimizer.step_count = int(header["optimizer_step_count"])
        self._steps_done = int(header["steps_done"])
        self.loss_history = [float(x) for x in header["losses"]]
        self.rng.bit_generator.state = header["rng_state"]
        return self._steps_done

    def train(self, steps: Optional[int] = None,
              log_every: int = 0) -> TrainingReport:
        """Run the loop; returns losses and wall-clock time.

        The ``plan_refresh`` draw cache lives only for the duration of
        the loop — it is detached before returning so post-training
        inference (index builds, evaluation) never reuses frozen
        training-time neighbour draws.  With ``prefetch_workers > 0``
        the cache is owned by the producer's workers instead and the
        encoder never carries one.
        """
        steps = steps if steps is not None else self.config.steps
        cfg = self.config
        if (cfg.prefetch_workers > 0 or cfg.checkpoint_every > 0
                or self._steps_done > 0):
            # checkpointed (and resumed) runs must consume the
            # (seed, step)-pure producer payload stream — inline when
            # prefetch_workers=0 — so micro-step i's payload is the
            # same whether or not the run was interrupted
            return self._train_prefetched(steps, log_every)
        if cfg.plan_refresh > 1:
            self.model.encoder.draw_cache = NeighborDrawCache()
        losses: List[float] = []
        start = time.perf_counter()
        try:
            for step in range(steps):
                losses.append(self.train_step())
                self.loss_history.append(losses[-1])
                if log_every and (step + 1) % log_every == 0:
                    print("step %4d  loss %.4f  |grad| %.3f" %
                          (step + 1, losses[-1],
                           self.optimizer.last_grad_norm))
        finally:
            self.model.encoder.draw_cache = None
        elapsed = time.perf_counter() - start
        return TrainingReport(
            losses=losses, wall_seconds=elapsed, steps=steps,
            samples_seen=steps * cfg.batch_size * cfg.accumulate_steps)

    def make_producer(self, steps: Optional[int] = None,
                      num_workers: Optional[int] = None) -> PlanProducer:
        """A :class:`PlanProducer` configured like this trainer's loop.

        One producer *step* is one micro-batch, so the producer runs
        ``steps * accumulate_steps`` payloads.  Exposed separately so
        benchmarks and tests can consume the payload stream directly.
        """
        cfg = self.config
        steps = steps if steps is not None else cfg.steps
        encoder = self.model.encoder
        return PlanProducer(
            self.walker, self.negative_sampler,
            total_steps=steps * cfg.accumulate_steps,
            batch_size=cfg.batch_size, gcn_layers=encoder.gcn_layers,
            neighbor_samples=encoder.neighbor_samples, seed=cfg.seed,
            num_workers=(cfg.prefetch_workers if num_workers is None
                         else num_workers),
            depth=cfg.prefetch_depth, plan_refresh=cfg.plan_refresh,
            walks_per_round=self._walks_per_round,
            start_step=self._steps_done * cfg.accumulate_steps)

    def _train_prefetched(self, steps: int, log_every: int) -> TrainingReport:
        """The overlapped loop: consume producer payloads in step order.

        Batches and per-role plans arrive pre-built; the loss replays
        the captured draws, so the main process touches only the tape.
        The payload for micro-step ``i`` is a pure function of
        ``(seed, i)`` (see :mod:`repro.training.prefetch`), which makes
        the loss trajectory independent of the worker count (asserted
        in tests; the synchronous path interleaves sampling with
        encoding on one stream, so it is a *statistically* equivalent
        reference, not a bit-equal one).
        """
        cfg = self.config
        start_opt = self._steps_done
        if start_opt >= steps:
            return TrainingReport(
                losses=[], wall_seconds=0.0, steps=0, samples_seen=0,
                resumed_from_step=start_opt)
        losses: List[float] = []
        checkpoints_written = 0
        producer = self.make_producer(steps)
        with producer:
            # workers have completed their ready handshake here, so the
            # clock measures the steady-state loop, not spawn start-up
            # (the synchronous path pays no start-up either)
            start = time.perf_counter()
            stream = iter(producer)

            def next_micro():
                payload = next(stream)
                return payload.batch, payload.plans

            for step in range(start_opt, steps):
                self._steps_done += 1
                loss = self._accumulate_micro(next_micro)
                losses.append(loss)
                self.loss_history.append(loss)
                if log_every and (step + 1) % log_every == 0:
                    print("step %4d  loss %.4f  |grad| %.3f" %
                          (step + 1, losses[-1],
                           self.optimizer.last_grad_norm))
                if (cfg.checkpoint_every > 0
                        and self.checkpoint_path is not None
                        and self._steps_done % cfg.checkpoint_every == 0
                        and self._steps_done < steps):
                    self.save_checkpoint()
                    checkpoints_written += 1
            elapsed = time.perf_counter() - start
        if cfg.checkpoint_every > 0 and self.checkpoint_path is not None:
            # a completed run leaves no checkpoint behind: rerunning the
            # stage trains fresh instead of resuming past the end
            with contextlib.suppress(FileNotFoundError):
                os.remove(self.checkpoint_path)
        return TrainingReport(
            losses=losses, wall_seconds=elapsed, steps=steps - start_opt,
            samples_seen=((steps - start_opt) * cfg.batch_size
                          * cfg.accumulate_steps),
            prefetch_wait_seconds=producer.wait_seconds,
            resumed_from_step=start_opt,
            checkpoints_written=checkpoints_written,
            worker_deaths=producer.worker_deaths,
            worker_respawns=producer.worker_respawns)
